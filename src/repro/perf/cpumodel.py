"""Serial / multicore CPU cost model (3 GHz Xeon Harpertown, single core).

The paper's speedups are ratios of measured times; its serial column is a
measurement of the original C code we cannot re-run.  We therefore model the
CPU with a small set of per-primitive throughput constants.  Three are
generic hardware-plausible magnitudes (documented below); four are the
paper's own Table 2 per-pair measurements, carried over directly.  The GPU
side is *predicted* from the C1060 datasheet (``repro.cuda``), so every
reproduced speedup is model-vs-model, not fit.

Derivations of the generic constants (all at N = 128, T = 125, C = 22):

* ``effective_gflops = 2.9``: Table 1 reports 3600 ms for the FFT
  correlations of one rotation.  22 channels x (forward FFT + modulation +
  inverse FFT) ~ 22 x (2 x 5 N^3 log2 N + 6 N^3) ~ 10 Gflop; 10 G / 3.6 s =
  2.8 Gflop/s — a typical achieved rate for out-of-cache FFTs on a 3 GHz
  Core-era Xeon (peak 12 Gflop/s SSE).
* ``stream_ns = 4.8``: Table 1 reports 180 ms to accumulate the (up to) 18
  desolvation term grids: 18 x 2.1 M gather-adds -> 4.8 ns each
  (cache-miss-bound accumulate).
* ``scan_ns = 24``: Table 1 reports 200 ms for scoring + filtering: ~4
  selection scans x 2.1 M branchy compares -> 24 ns each.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["CpuSpec", "XEON_HARPERTOWN", "CpuModel"]


@dataclass(frozen=True)
class CpuSpec:
    """Per-primitive throughputs of the serial reference machine."""

    name: str
    clock_ghz: float
    cores: int
    effective_gflops: float        # streaming arithmetic (FFT/direct corr)
    stream_ns: float               # per-element grid accumulate
    scan_ns: float                 # per-element branchy scan (filtering)
    # -- paper Table 2 per-pair serial costs (measured inputs) --
    self_pair_ns: float            # Eq. 6, both directions of one pair
    gb_pair_ns: float              # Eq. 7 per pair
    vdw_pair_ns: float             # Eq. 8 per pair
    force_atom_ns: float           # force update per atom
    # -- host-side steps shared by serial and GPU pipelines --
    rotation_grid_ms: float        # rotation + grid assignment per rotation
    host_move_ms: float            # optimization move + coordinate update
    bonded_ms: float               # bonded terms per iteration (~0.2% of eval)
    parallel_efficiency: float     # multicore scaling efficiency
    # -- reproduction-host (NumPy evaluator) constants, used only by the
    # -- minimization backend selector (repro.minimize.selection); they
    # -- describe *this* package's vectorized evaluator, not the paper's C
    # -- code, so the paper-table models above never read them.
    numpy_pair_ns: float = 40.0    # vectorized non-bonded work per pair per eval
    numpy_atom_ns: float = 5.0     # vectorized per-atom work (forces, bonded) per eval
    eval_dispatch_ms: float = 1.2  # fixed per-evaluation interpreter/dispatch cost
    fork_spawn_ms: float = 30.0    # per-worker process-pool startup
    # Cost of an energies-only evaluation relative to a full energy+force
    # evaluation.  Every line-search probe (serial and batched alike, since
    # the serial-fast-paths re-baselining) skips gradient arithmetic and all
    # per-atom scatters; measured ~0.65 on the NumPy evaluator at paper
    # scale (~3400 atoms).
    energy_only_fraction: float = 0.65


#: The paper's serial reference host (Sec. V).  Table 2's per-pair times:
#: 6.15 ms / 10k pairs, 2.75 ms / 10k, 0.5 ms / 10k, 0.95 ms / 2200 atoms.
XEON_HARPERTOWN = CpuSpec(
    name="Intel Xeon Harpertown 3 GHz (1 core)",
    clock_ghz=3.0,
    cores=4,
    effective_gflops=2.9,
    stream_ns=4.8,
    scan_ns=24.0,
    self_pair_ns=615.0,
    gb_pair_ns=275.0,
    vdw_pair_ns=50.0,
    force_atom_ns=432.0,
    rotation_grid_ms=80.0,
    host_move_ms=0.25,
    bonded_ms=0.02,
    parallel_efficiency=0.735,
)


class CpuModel:
    """Serial-time formulas for every FTMap step."""

    def __init__(self, spec: CpuSpec = XEON_HARPERTOWN) -> None:
        self.spec = spec

    # -- rigid docking, per rotation ------------------------------------------

    def fft_correlation_s(self, n: int, channels: int) -> float:
        """All FFT correlations of one rotation (fwd FFT + modulate + inv FFT
        per channel; the protein spectra are precomputed).

        A 3-D transform of an n^3 grid costs ~5 n^3 log2(n^3) flops (three
        1-D FFT sweeps).
        """
        flops = channels * (2 * 5.0 * n**3 * np.log2(float(n) ** 3) + 6.0 * n**3)
        return flops / (self.spec.effective_gflops * 1e9)

    def direct_correlation_s(self, n: int, m: int, channels: int) -> float:
        """Direct correlation of one rotation (2 flops per MAC)."""
        t = n - m + 1
        flops = 2.0 * t**3 * m**3 * channels
        return flops / (self.spec.effective_gflops * 1e9)

    def batched_fft_correlation_s(
        self, n: int, m: int, channels: int, batch: int = 8
    ) -> float:
        """Batched-FFT correlation, per rotation amortized over ``batch``.

        The batched path (``repro.docking.batched``) does staged zero-padded
        forward transforms — per channel one 1-D sweep over ``m*m*n + m*n*n
        + n^3`` points instead of three over ``n^3`` — plus a single shared
        inverse transform and one fused channel reduction per rotation.  The
        receptor spectra are prepared once per batch and amortized.
        """
        if batch < 1:
            raise ValueError("batch must be >= 1")
        log_n = np.log2(float(n))
        fwd = channels * 5.0 * log_n * (m * m * n + m * n * n + n**3)
        inv = 3.0 * 5.0 * log_n * n**3
        modulate = 6.0 * channels * n**3
        # Receptor-side spectra: C forward transforms shared by the batch.
        prep = channels * 3.0 * 5.0 * log_n * n**3 / batch
        flops = fwd + inv + modulate + prep
        return flops / (self.spec.effective_gflops * 1e9)

    def accumulation_s(self, n: int, m: int, desolvation_terms: int) -> float:
        """Accumulate the desolvation pairwise-potential term grids."""
        t = n - m + 1
        return desolvation_terms * t**3 * self.spec.stream_ns * 1e-9

    def scoring_filtering_s(self, n: int, m: int, k: int) -> float:
        """Weighted scoring + k exclusion-filtered selections."""
        t = n - m + 1
        return k * t**3 * self.spec.scan_ns * 1e-9

    def rotation_grid_s(self) -> float:
        return self.spec.rotation_grid_ms * 1e-3

    def docking_rotation_s(
        self,
        n: int,
        m: int,
        channels: int,
        desolvation_terms: int,
        k: int,
        engine: str = "fft",
    ) -> float:
        """Total serial time for one docking rotation."""
        corr = (
            self.fft_correlation_s(n, channels)
            if engine == "fft"
            else self.direct_correlation_s(n, m, channels)
        )
        return (
            self.rotation_grid_s()
            + corr
            + self.accumulation_s(n, m, desolvation_terms)
            + self.scoring_filtering_s(n, m, k)
        )

    def docking_phase_s(
        self,
        rotations: int,
        n: int,
        m: int,
        channels: int,
        desolvation_terms: int,
        k: int,
        engine: str = "fft",
        cores: int = 1,
    ) -> float:
        """Whole docking phase; >1 cores distributes rotations coarsely."""
        per = self.docking_rotation_s(n, m, channels, desolvation_terms, k, engine)
        total = rotations * per
        if cores > 1:
            total /= cores * self.spec.parallel_efficiency
        return total

    # -- energy minimization, per iteration --------------------------------------

    def self_energies_s(self, pairs: int) -> float:
        return pairs * self.spec.self_pair_ns * 1e-9

    def pairwise_s(self, pairs: int) -> float:
        return pairs * self.spec.gb_pair_ns * 1e-9

    def vdw_s(self, pairs: int) -> float:
        return pairs * self.spec.vdw_pair_ns * 1e-9

    def force_updates_s(self, atoms: int) -> float:
        return atoms * self.spec.force_atom_ns * 1e-9

    def minimization_iteration_s(self, pairs: int, atoms: int) -> float:
        """One serial minimization iteration (energy + forces + host steps)."""
        return (
            self.self_energies_s(pairs)
            + self.pairwise_s(pairs)
            + self.vdw_s(pairs)
            + self.force_updates_s(atoms)
            + (self.spec.bonded_ms + self.spec.host_move_ms) * 1e-3
        )

    def minimization_phase_s(
        self, conformations: int, iterations: int, pairs: int, atoms: int
    ) -> float:
        return conformations * iterations * self.minimization_iteration_s(pairs, atoms)

    # -- reproduction-host minimization (NumPy evaluator) --------------------------
    #
    # The paper-table formulas above model the original serial C code.  The
    # formulas below model the *reproduction's own* vectorized evaluator,
    # whose per-iteration cost splits into array arithmetic (linear in
    # pairs) plus a fixed interpreter/dispatch overhead per evaluation —
    # the overhead is what ensemble batching amortizes, and what process
    # fan-out cannot touch.  Used by ``repro.minimize.selection``.

    def vectorized_evaluation_s(self, pairs: int, atoms: int, poses: int = 1) -> float:
        """One NumPy energy/force evaluation of ``poses`` stacked poses."""
        per_pose = (
            pairs * self.spec.numpy_pair_ns + atoms * self.spec.numpy_atom_ns
        ) * 1e-9
        return poses * per_pose + self.spec.eval_dispatch_ms * 1e-3

    def host_minimization_phase_s(
        self,
        conformations: int,
        iterations: int,
        pairs: int,
        atoms: int,
        batch: int = 1,
    ) -> float:
        """Whole minimization phase on the reproduction host.

        ``batch = 1`` is the serial per-pose loop; larger batches evaluate
        that many poses per NumPy dispatch (the ensemble path).  Each
        iteration costs one full accepted-point refresh plus one
        energies-only line-search probe — both the serial and batched
        minimizers use the kernels' energies-only fast path for the probe,
        so an iteration is ``1 + energy_only_fraction`` full-evaluation
        equivalents (historically 2.0, before the serial fast path landed).
        """
        if conformations <= 0:
            return 0.0
        batch = max(1, min(batch, conformations))
        evals_per_iteration = 1.0 + self.spec.energy_only_fraction
        per_iteration = evals_per_iteration * self.vectorized_evaluation_s(
            pairs, atoms, batch
        )
        n_groups = -(-conformations // batch)
        return n_groups * iterations * per_iteration

    def multiprocess_minimization_phase_s(
        self,
        conformations: int,
        iterations: int,
        pairs: int,
        atoms: int,
        workers: int,
    ) -> float:
        """Serial per-pose loop fanned out over ``workers`` forked processes.

        Workers are clamped by the pose count — the execution path never
        forks more processes than it has poses to hand out.
        """
        serial = self.host_minimization_phase_s(conformations, iterations, pairs, atoms)
        w = max(1, min(workers, conformations))
        if w == 1:
            return serial
        return serial / (w * self.spec.parallel_efficiency) + (
            w * self.spec.fork_spawn_ms * 1e-3
        )
