"""Paper-vs-measured table rendering.

Benchmarks print these tables; EXPERIMENTS.md archives them.  Each row
carries the paper's reported value and ours, plus the ratio, so shape
agreement is visible at a glance.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional

__all__ = ["ComparisonRow", "render_table", "format_time"]


@dataclass(frozen=True)
class ComparisonRow:
    """One line of a paper-vs-measured comparison."""

    label: str
    paper: Optional[float]
    ours: float
    unit: str = ""

    @property
    def ratio(self) -> Optional[float]:
        if self.paper is None or self.paper == 0:
            return None
        return self.ours / self.paper


def format_time(seconds: float) -> str:
    """Human-scale time formatting (us/ms/s/min)."""
    if seconds < 1e-3:
        return f"{seconds * 1e6:.1f} us"
    if seconds < 1.0:
        return f"{seconds * 1e3:.2f} ms"
    if seconds < 120.0:
        return f"{seconds:.2f} s"
    return f"{seconds / 60.0:.1f} min"


def render_table(title: str, rows: Iterable[ComparisonRow]) -> str:
    """ASCII table: label | paper | ours | ours/paper."""
    lines: List[str] = [title, "-" * len(title)]
    header = f"{'step':<34s} {'paper':>12s} {'ours':>12s} {'ours/paper':>11s}"
    lines.append(header)
    lines.append("=" * len(header))
    for r in rows:
        paper = f"{r.paper:.4g}{r.unit}" if r.paper is not None else "n/a"
        ours = f"{r.ours:.4g}{r.unit}"
        ratio = f"{r.ratio:.2f}" if r.ratio is not None else "--"
        lines.append(f"{r.label:<34s} {paper:>12s} {ours:>12s} {ratio:>11s}")
    return "\n".join(lines)
