"""Performance models and paper-figure/table reproduction harness.

* :mod:`cpumodel` — serial (and multicore) cost model of the original
  FTMap/PIPER C code on the 3 GHz Xeon Harpertown, with calibration
  constants taken from the paper's own serial measurements (Tables 1-2),
* :mod:`profiles` — the profile decompositions of Figs. 2-3,
* :mod:`speedup` — Tables 1-2, the batching/scheme ablations, and the
  overall 13x roll-up of Sec. V,
* :mod:`tables` — paper-vs-measured rendering used by benchmarks and
  EXPERIMENTS.md.
"""

from repro.perf.cpumodel import CpuSpec, XEON_HARPERTOWN, CpuModel
from repro.perf.profiles import ftmap_profile, docking_profile, minimization_profile
from repro.perf.speedup import (
    table1_docking_speedups,
    table2_minimization_speedups,
    overall_speedup,
    multicore_comparison,
    batching_sweep,
    scheme_ladder,
    pipeline_makespan,
    multigpu_minimization_scaling,
)
from repro.perf.tables import ComparisonRow, render_table

__all__ = [
    "CpuSpec",
    "XEON_HARPERTOWN",
    "CpuModel",
    "ftmap_profile",
    "docking_profile",
    "minimization_profile",
    "table1_docking_speedups",
    "table2_minimization_speedups",
    "overall_speedup",
    "multicore_comparison",
    "batching_sweep",
    "scheme_ladder",
    "pipeline_makespan",
    "multigpu_minimization_scaling",
    "ComparisonRow",
    "render_table",
]
