"""Profile decompositions: Figures 2 and 3 of the paper.

* Fig. 2(a): FTMap splits ~7% rigid docking / ~93% energy minimization.
* Fig. 2(b): within a docking rotation, ~93% FFT correlations, ~2.3%
  rotation+grid assignment, ~2.4% accumulation, ~2.3% scoring & filtering.
* Fig. 3(a): within minimization, ~99% is energy evaluation.
* Fig. 3(b): within energy evaluation, 94.4% electrostatics / 5.38% vdW /
  0.2% bonded.

All fractions here are *derived* from the serial cost model — the same
model that feeds the speedup tables — so the reproduction is internally
consistent: if the model reproduces Table 1's serial column, it must also
reproduce these pie charts.
"""

from __future__ import annotations

from typing import Dict

from repro.constants import (
    CONFORMATIONS_PER_PROBE,
    DEFAULT_PROBE_GRID,
    DEFAULT_PROTEIN_GRID,
    FTMAP_NUM_ROTATIONS,
    MAX_CORRELATION_TERMS,
    MAX_DESOLVATION_TERMS,
    POSES_PER_ROTATION,
    TYPICAL_COMPLEX_ATOMS,
    TYPICAL_PAIR_COUNT,
)
from repro.perf.cpumodel import CpuModel

__all__ = ["ftmap_profile", "docking_profile", "minimization_profile"]

#: Iterations per conformation (see repro.gpu.pipeline).
_ITERATIONS = 1150


def _normalize(parts: Dict[str, float]) -> Dict[str, float]:
    total = sum(parts.values())
    return {k: v / total for k, v in parts.items()}


def docking_profile(
    cpu: CpuModel | None = None,
    n: int = DEFAULT_PROTEIN_GRID,
    m: int = DEFAULT_PROBE_GRID,
    channels: int = MAX_CORRELATION_TERMS,
    desolvation_terms: int = MAX_DESOLVATION_TERMS,
    k: int = POSES_PER_ROTATION,
) -> Dict[str, float]:
    """Fig. 2(b): fraction of one serial docking rotation per step."""
    cpu = cpu or CpuModel()
    parts = {
        "fft_correlations": cpu.fft_correlation_s(n, channels),
        "rotation_grid_assignment": cpu.rotation_grid_s(),
        "accumulation": cpu.accumulation_s(n, m, desolvation_terms),
        "scoring_filtering": cpu.scoring_filtering_s(n, m, k),
    }
    return _normalize(parts)


def minimization_profile(
    cpu: CpuModel | None = None,
    pairs: int = TYPICAL_PAIR_COUNT,
    atoms: int = TYPICAL_COMPLEX_ATOMS,
) -> Dict[str, Dict[str, float]]:
    """Fig. 3: (a) energy evaluation vs rest; (b) elec / vdw / bonded split.

    Returns ``{"iteration": {...}, "energy_evaluation": {...}}``.
    """
    cpu = cpu or CpuModel()
    elec = cpu.self_energies_s(pairs) + cpu.pairwise_s(pairs)
    vdw = cpu.vdw_s(pairs)
    bonded = cpu.spec.bonded_ms * 1e-3
    # Fig. 3(a) counts "evaluating these energy terms and the forces" as the
    # energy-evaluation share; "rest" is the optimization move + coordinate
    # updates.
    energy_eval = elec + vdw + bonded + cpu.force_updates_s(atoms)
    rest = cpu.spec.host_move_ms * 1e-3
    return {
        "iteration": _normalize({"energy_evaluation": energy_eval, "rest": rest}),
        "energy_evaluation": _normalize(
            {"electrostatics": elec, "vdw": vdw, "bonded": bonded}
        ),
    }


def ftmap_profile(
    cpu: CpuModel | None = None,
    rotations: int = FTMAP_NUM_ROTATIONS,
    conformations: int = CONFORMATIONS_PER_PROBE,
    iterations: int = _ITERATIONS,
    n: int = DEFAULT_PROTEIN_GRID,
    m: int = DEFAULT_PROBE_GRID,
    channels: int = MAX_CORRELATION_TERMS,
    desolvation_terms: int = MAX_DESOLVATION_TERMS,
    k: int = POSES_PER_ROTATION,
    pairs: int = TYPICAL_PAIR_COUNT,
    atoms: int = TYPICAL_COMPLEX_ATOMS,
) -> Dict[str, float]:
    """Fig. 2(a): rigid docking vs energy minimization share of a probe."""
    cpu = cpu or CpuModel()
    docking = cpu.docking_phase_s(rotations, n, m, channels, desolvation_terms, k)
    minimization = cpu.minimization_phase_s(conformations, iterations, pairs, atoms)
    return _normalize({"rigid_docking": docking, "energy_minimization": minimization})
