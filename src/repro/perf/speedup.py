"""Speedup tables and ablations: Tables 1-2, Sec. V roll-ups, and the
design-choice sweeps (batching, minimization schemes, multicore).

Each function returns ``(rows, summary)`` where rows are
:class:`~repro.perf.tables.ComparisonRow` entries carrying the paper's
reported number next to ours.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.cuda.device import Device
from repro.perf.cpumodel import CpuModel
from repro.perf.tables import ComparisonRow

__all__ = [
    "table1_docking_speedups",
    "table2_minimization_speedups",
    "overall_speedup",
    "multicore_comparison",
    "batching_sweep",
    "scheme_ladder",
    "pipeline_makespan",
    "multigpu_minimization_scaling",
]

#: Paper Table 1 (per rotation): (serial ms, GPU ms, speedup).
PAPER_TABLE1 = {
    "rotation_grid": (80.0, 80.0, 1.0),
    "correlation": (3600.0, 13.5, 267.0),
    "accumulation": (180.0, 1.0, 180.0),
    "scoring_filtering": (200.0, 30.0, 6.67),
    "total": (4060.0, 125.5, 32.6),
}

#: Paper Table 2 (per iteration): (serial ms, GPU ms, speedup).
PAPER_TABLE2 = {
    "self_energies": (6.15, 0.23, 26.7),
    "pairwise_vdw": (3.25, 0.19, 17.0),
    "force_updates": (0.95, 0.14, 6.7),
}

#: Paper Sec. V: overall numbers.
PAPER_OVERALL = {
    "minimization_serial_min": 400.0,
    "minimization_gpu_min": 32.0,
    "minimization_speedup": 12.5,
    "probe_serial_min": 435.0,
    "probe_gpu_min": 33.0,
    "overall_speedup": 13.0,
    "multicore_fft_speedup": 11.0,
    "multicore_direct_speedup": 6.0,
    "overall_vs_multicore": 12.3,
    "batching_speedup": 2.7,
    "flat_pairs_speedup": 3.0,
}


def _fresh_pipeline(**kwargs):
    # Imported lazily: repro.gpu.pipeline itself uses the CPU model.
    from repro.gpu.pipeline import GpuFTMapPipeline

    return GpuFTMapPipeline(Device(), **kwargs)


def table1_docking_speedups(**kwargs) -> Tuple[List[ComparisonRow], Dict[str, float]]:
    """Reproduce Table 1: per-rotation docking speedups."""
    pipe = _fresh_pipeline(**kwargs)
    gpu = pipe.docking_times()
    ser = pipe.serial_docking_times()
    g = gpu.as_dict()
    s = ser.as_dict()
    # Fold the (tiny) per-rotation probe upload into the correlation row.
    g["correlation"] += g.pop("upload")
    s.pop("upload")
    rows: List[ComparisonRow] = []
    ours: Dict[str, float] = {}
    for key in ("rotation_grid", "correlation", "accumulation", "scoring_filtering"):
        speedup = s[key] / g[key]
        ours[key] = speedup
        rows.append(ComparisonRow(f"{key} speedup", PAPER_TABLE1[key][2], speedup, "x"))
    total = ser.total_per_rotation_s / gpu.total_per_rotation_s
    ours["total"] = total
    rows.append(ComparisonRow("total per-rotation speedup", PAPER_TABLE1["total"][2], total, "x"))
    ours["serial_total_ms"] = ser.total_per_rotation_s * 1e3
    ours["gpu_total_ms"] = gpu.total_per_rotation_s * 1e3
    return rows, ours


def table2_minimization_speedups(**kwargs) -> Tuple[List[ComparisonRow], Dict[str, float]]:
    """Reproduce Table 2: per-iteration minimization kernel speedups."""
    pipe = _fresh_pipeline(**kwargs)
    gpu = pipe.minimization_times()
    ser = pipe.serial_minimization_times()
    pairs = [
        ("self_energies", ser.self_energies_s, gpu.self_energies_s),
        ("pairwise_vdw", ser.pairwise_vdw_s, gpu.pairwise_vdw_s),
        ("force_updates", ser.force_updates_s, gpu.force_updates_s),
    ]
    rows: List[ComparisonRow] = []
    ours: Dict[str, float] = {}
    for key, s, g in pairs:
        speedup = s / g
        ours[key] = speedup
        ours[f"{key}_gpu_ms"] = g * 1e3
        ours[f"{key}_serial_ms"] = s * 1e3
        rows.append(ComparisonRow(f"{key} speedup", PAPER_TABLE2[key][2], speedup, "x"))
    return rows, ours


def overall_speedup(**kwargs) -> Tuple[List[ComparisonRow], Dict[str, float]]:
    """Sec. V.B/V.C: phase and whole-probe speedups (435 -> 33 min, 13x)."""
    pipe = _fresh_pipeline(**kwargs)
    ser = pipe.probe_mapping_time_s(gpu=False)
    gpu = pipe.probe_mapping_time_s(gpu=True)
    mini_speedup = ser["minimization"] / gpu["minimization"]
    total_speedup = ser["total"] / gpu["total"]
    rows = [
        ComparisonRow("serial minimization (min)", PAPER_OVERALL["minimization_serial_min"], ser["minimization"] / 60),
        ComparisonRow("GPU minimization (min)", PAPER_OVERALL["minimization_gpu_min"], gpu["minimization"] / 60),
        ComparisonRow("minimization speedup", PAPER_OVERALL["minimization_speedup"], mini_speedup, "x"),
        ComparisonRow("serial probe total (min)", PAPER_OVERALL["probe_serial_min"], ser["total"] / 60),
        ComparisonRow("GPU probe total (min)", PAPER_OVERALL["probe_gpu_min"], gpu["total"] / 60),
        ComparisonRow("overall speedup", PAPER_OVERALL["overall_speedup"], total_speedup, "x"),
    ]
    ours = {
        "minimization_speedup": mini_speedup,
        "overall_speedup": total_speedup,
        "serial_total_min": ser["total"] / 60,
        "gpu_total_min": gpu["total"] / 60,
        "serial_docking_fraction": ser["docking"] / ser["total"],
    }
    return rows, ours


def multicore_comparison(**kwargs) -> Tuple[List[ComparisonRow], Dict[str, float]]:
    """Sec. V.A/V.C: GPU PIPER vs quad-core FFT and direct multicore."""
    pipe = _fresh_pipeline(**kwargs)
    cpu = CpuModel()
    cores = cpu.spec.cores
    gpu_rot = pipe.docking_times().total_per_rotation_s
    args = (pipe.n, pipe.m, pipe.channels, pipe.desolvation_terms, pipe.k)
    fft_multicore = cpu.docking_rotation_s(*args, engine="fft") / (
        cores * cpu.spec.parallel_efficiency
    )
    direct_multicore = cpu.docking_rotation_s(*args, engine="direct") / (
        cores * cpu.spec.parallel_efficiency
    )
    vs_fft = fft_multicore / gpu_rot
    vs_direct = direct_multicore / gpu_rot

    # Overall vs multicore docking (minimization stays serial: "creating an
    # efficient multicore version appears to be challenging").
    ser = pipe.probe_mapping_time_s(gpu=False)
    gpu_total = pipe.probe_mapping_time_s(gpu=True)["total"]
    multicore_total = fft_multicore * pipe.rotations + ser["minimization"]
    overall_vs_multicore = multicore_total / gpu_total

    rows = [
        ComparisonRow("GPU vs multicore FFT PIPER", PAPER_OVERALL["multicore_fft_speedup"], vs_fft, "x"),
        ComparisonRow("GPU vs multicore direct PIPER", PAPER_OVERALL["multicore_direct_speedup"], vs_direct, "x"),
        ComparisonRow("overall vs multicore docking", PAPER_OVERALL["overall_vs_multicore"], overall_vs_multicore, "x"),
    ]
    ours = {
        "vs_fft_multicore": vs_fft,
        "vs_direct_multicore": vs_direct,
        "overall_vs_multicore": overall_vs_multicore,
    }
    return rows, ours


def batching_sweep(
    batches=(1, 2, 4, 8), **kwargs
) -> Tuple[List[ComparisonRow], Dict[int, float]]:
    """Sec. III.A: per-rotation correlation time vs rotation batch size.

    The paper reports 2.7x from batching 8 rotations of a 4^3 probe.
    """
    times: Dict[int, float] = {}
    for b in batches:
        pipe = _fresh_pipeline(**kwargs)
        d = pipe.docking_times(batch=b)
        times[b] = d.correlation_s + d.upload_s
    speedup = times[batches[0]] / times[batches[-1]]
    rows = [
        ComparisonRow(
            f"batch={b} correlation (ms/rotation)", None, times[b] * 1e3, ""
        )
        for b in batches
    ]
    rows.append(
        ComparisonRow(
            f"batching speedup (B={batches[-1]} vs {batches[0]})",
            PAPER_OVERALL["batching_speedup"],
            speedup,
            "x",
        )
    )
    return rows, times


def scheme_ladder(
    device: Device | None = None, model=None
) -> Tuple[List[ComparisonRow], Dict[str, float]]:
    """Sec. IV: per-iteration time of minimization schemes A, B, C.

    With ``model=None`` a paper-scale complex (2200 atoms, ~10k pairs) is
    built; pass an :class:`~repro.minimize.energy.EnergyModel` to sweep a
    custom workload.
    """
    from repro.gpu.minimize_kernels import GpuMinimizationEngine, GpuMinimizationScheme
    from repro.minimize.energy import EnergyModel
    from repro.structure.builder import pocket_movable_mask, synthetic_complex

    if model is None:
        mol = synthetic_complex()
        mask = pocket_movable_mask(mol, mol.meta["n_probe_atoms"])
        model = EnergyModel(mol, movable=mask)

    cpu = CpuModel()
    pairs = model.n_active_pairs
    atoms = model.molecule.n_atoms
    serial = cpu.minimization_iteration_s(pairs, atoms)

    times: Dict[str, float] = {"serial": serial}
    for scheme in GpuMinimizationScheme:
        dev = device or Device()
        engine = GpuMinimizationEngine(Device(dev.spec), model, scheme)
        times[scheme.value] = engine.iteration_timing().total_s

    rows = [
        ComparisonRow("serial iteration (ms)", None, serial * 1e3),
        ComparisonRow(
            "scheme A neighbor-list (ms)", None, times["A-neighbor-list"] * 1e3
        ),
        ComparisonRow(
            "scheme B flat-pairs speedup",
            PAPER_OVERALL["flat_pairs_speedup"],
            serial / times["B-flat-pairs"],
            "x",
        ),
        ComparisonRow(
            "scheme C split+assignment speedup",
            PAPER_OVERALL["minimization_speedup"],
            serial / times["C-split-assignment"],
            "x",
        ),
    ]
    return rows, times


def multigpu_minimization_scaling(
    device_counts: Sequence[int] = (1, 2, 4, 8),
    conformations: int | None = None,
    iterations: int | None = None,
    pairs: int | None = None,
    atoms: int | None = None,
    device_spec=None,
    measured: Dict[int, float] | None = None,
) -> Tuple[List[ComparisonRow], Dict[int, float]]:
    """Predicted (and optionally measured) minimization shard scaling.

    For each device count, the sharded phase makespan from
    :func:`repro.minimize.selection.multi_device_phase_s` — the *same*
    formula auto-selection prices and the engine's ledger realizes, not a
    parallel one, so this table cannot drift from what executes.
    Defaults are the paper-scale workload (2000 conformations x ~1150
    iterations over ~10k pairs / 2200 atoms).

    ``measured`` maps device count -> measured wall seconds (e.g. from the
    shard-scaling benchmark); measured rows and speedups are appended
    next to the predictions.

    Returns ``(rows, ours)`` where ``ours[g]`` is the predicted speedup
    over the first device count.
    """
    from repro.constants import (
        CONFORMATIONS_PER_PROBE,
        TYPICAL_COMPLEX_ATOMS,
        TYPICAL_PAIR_COUNT,
    )
    from repro.exec.topology import DeviceTopology, default_device_spec
    from repro.gpu.pipeline import ITERATIONS_PER_CONFORMATION
    from repro.minimize.selection import multi_device_phase_s

    if not device_counts:
        raise ValueError("device_counts must name at least one count")
    conformations = conformations or CONFORMATIONS_PER_PROBE
    iterations = iterations or ITERATIONS_PER_CONFORMATION
    pairs = pairs or TYPICAL_PAIR_COUNT
    atoms = atoms or TYPICAL_COMPLEX_ATOMS
    spec = device_spec or default_device_spec()

    times: Dict[int, float] = {
        g: multi_device_phase_s(
            conformations, pairs, atoms, iterations,
            DeviceTopology(num_devices=g, device_spec=spec),
        )
        for g in device_counts
    }

    base = times[device_counts[0]]
    ours = {g: base / t for g, t in times.items()}
    rows: List[ComparisonRow] = []
    for g in device_counts:
        rows.append(
            ComparisonRow(
                f"{g}-device predicted makespan (min)", None, times[g] / 60.0
            )
        )
        rows.append(
            ComparisonRow(f"{g}-device predicted speedup", None, ours[g], "x")
        )
    if measured:
        m_base_count = min(measured)
        for g in sorted(measured):
            rows.append(
                ComparisonRow(f"{g}-device measured wall (s)", None, measured[g])
            )
        for g in sorted(measured):
            if g != m_base_count:
                rows.append(
                    ComparisonRow(
                        f"{g}-device measured speedup",
                        None,
                        measured[m_base_count] / measured[g],
                        "x",
                    )
                )
    return rows, ours


def pipeline_makespan(stage_times: Sequence[Sequence[float]]) -> float:
    """Makespan of a stage pipeline over measured per-item stage times.

    ``stage_times[k][s]`` is the time item ``k`` spends in stage ``s``.
    The schedule is the one :class:`~repro.util.parallel.PipelineExecutor`
    executes: each stage is a single sequential worker, so stage ``s``
    starts item ``k`` once *both* stage ``s-1`` finished item ``k`` and
    stage ``s`` itself finished item ``k-1``:

    ``finish[k][s] = max(finish[k][s-1], finish[k-1][s]) + t[k][s]``

    The return value is the finish time of the last item in the last
    stage.  Dividing the sequential sum ``sum_k sum_s t[k][s]`` by this
    makespan gives the overlap speedup the pipeline schedule extracts on
    a machine with one core per stage — the deterministic counterpart of
    the wall-clock measurement, in the same spirit as the repo's other
    cost models.
    """
    times = [list(map(float, row)) for row in stage_times]
    if not times:
        return 0.0
    n_stages = len(times[0])
    if n_stages == 0 or any(len(row) != n_stages for row in times):
        raise ValueError("stage_times must be a rectangular (items x stages) table")
    if any(t < 0 for row in times for t in row):
        raise ValueError("stage times must be non-negative")
    finish_prev_item = [0.0] * n_stages      # finish[k-1][s]
    for row in times:
        finish = 0.0                          # finish[k][s-1]
        for s, t in enumerate(row):
            finish = max(finish, finish_prev_item[s]) + t
            finish_prev_item[s] = finish
    return finish_prev_item[-1]
