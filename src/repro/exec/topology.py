"""Shared execution topology: virtual devices + host constants in one place.

Every backend selector and multi-device model in the package prices work
against the same two machines — the reproduction host
(:class:`~repro.perf.cpumodel.CpuModel`) and the paper's Tesla C1060
(:class:`~repro.cuda.costmodel.CostModel`).  Before this layer existed,
``repro.docking.selection`` and ``repro.minimize.selection`` each built
their own ``CpuModel()`` default and re-imported ``TESLA_C1060`` as a
private fallback, and ``repro.cuda.multigpu`` carried its own
ceil-division device math; three copies of the same constants is how
cost models drift.  :class:`DeviceTopology` is now the single source:
*N* homogeneous virtual devices (one :class:`~repro.cuda.device.DeviceSpec`)
plus the host :class:`~repro.perf.cpumodel.CpuSpec`, with sharding
(:meth:`DeviceTopology.plan`) and the serialized host-side broadcast model
(:meth:`DeviceTopology.broadcast_s`) both phases share.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.cuda.costmodel import CostModel
from repro.cuda.device import DeviceSpec, TESLA_C1060
from repro.exec.plan import ShardPlan
from repro.perf.cpumodel import CpuModel, CpuSpec, XEON_HARPERTOWN

__all__ = [
    "VirtualDevice",
    "DeviceTopology",
    "default_topology",
    "default_device_spec",
    "host_model",
]


@dataclass(frozen=True)
class VirtualDevice:
    """One addressable device of a topology."""

    index: int
    spec: DeviceSpec


@dataclass(frozen=True)
class DeviceTopology:
    """``num_devices`` homogeneous virtual devices plus the host machine.

    Frozen and hashable: a topology is a value describing hardware, not a
    stateful object — per-run state (predicted-time ledgers) lives with
    the executors that consume it.
    """

    num_devices: int = 1
    device_spec: DeviceSpec = TESLA_C1060
    cpu_spec: CpuSpec = XEON_HARPERTOWN

    def __post_init__(self) -> None:
        if self.num_devices < 1:
            raise ValueError(f"num_devices must be >= 1, got {self.num_devices}")

    @property
    def devices(self) -> Tuple[VirtualDevice, ...]:
        return tuple(
            VirtualDevice(index=i, spec=self.device_spec)
            for i in range(self.num_devices)
        )

    # -- models -------------------------------------------------------------------

    def cpu_model(self) -> CpuModel:
        """Host cost model (the constants both selection layers read)."""
        return CpuModel(self.cpu_spec)

    def cost_model(self) -> CostModel:
        """Per-device GPU cost model."""
        return CostModel(self.device_spec)

    # -- sharding -----------------------------------------------------------------

    def plan(self, n_items: int) -> ShardPlan:
        """Balanced contiguous shard plan of ``n_items`` over the devices."""
        return ShardPlan.contiguous(n_items, self.num_devices)

    def broadcast_s(self, n_bytes: int) -> float:
        """One ``n_bytes`` host->device copy to *every* device, serialized.

        PCIe transfers of this era serialize through the host, so the
        broadcast costs ``num_devices`` full copies — the shared-input
        distribution model both the docking receptor-grid broadcast and
        the minimization template broadcast use.
        """
        return self.num_devices * self.cost_model().transfer_time(n_bytes)


#: The package-default topology: one paper GPU + the paper's serial host.
DEFAULT_TOPOLOGY = DeviceTopology()

_HOST_MODEL = DEFAULT_TOPOLOGY.cpu_model()


def default_topology(num_devices: int = 1) -> DeviceTopology:
    """Default-hardware topology at a given device count."""
    if num_devices == DEFAULT_TOPOLOGY.num_devices:
        return DEFAULT_TOPOLOGY
    return DeviceTopology(num_devices=num_devices)


def default_device_spec() -> DeviceSpec:
    """The device spec selectors fall back to (the paper's C1060)."""
    return DEFAULT_TOPOLOGY.device_spec


def host_model() -> CpuModel:
    """The shared host cost model (one instance, one set of constants)."""
    return _HOST_MODEL
