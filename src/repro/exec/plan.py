"""Generic work sharding over virtual devices.

Both accelerated phases fan independent work items out over devices —
docking distributes rotations, minimization distributes conformations
(:mod:`repro.cuda.multigpu` Sec. VI framing: "embarrassingly parallel
across devices") — and both need the same three answers: which device
gets which contiguous slice, how big the busiest slice is (the makespan
driver under ceil-division imbalance), and in what order per-device
results merge back (the deterministic reduction that keeps multi-device
runs bitwise-comparable to single-device ones).

:class:`ShardPlan` answers all three once, so the docking and
minimization shard logic cannot drift apart.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

__all__ = ["Shard", "ShardPlan"]


@dataclass(frozen=True)
class Shard:
    """One device's contiguous slice of the work items."""

    device_index: int
    start: int
    stop: int

    def __post_init__(self) -> None:
        if self.device_index < 0:
            raise ValueError(f"device_index must be >= 0, got {self.device_index}")
        if not (0 <= self.start < self.stop):
            raise ValueError(f"need 0 <= start < stop, got [{self.start}, {self.stop})")

    @property
    def size(self) -> int:
        return self.stop - self.start


@dataclass(frozen=True)
class ShardPlan:
    """Balanced contiguous assignment of ``n_items`` to ``num_devices``.

    Items split into contiguous slices whose sizes differ by at most one
    (the first ``n_items % num_devices`` devices take the extra item);
    devices left without work carry no shard, so ``num_shards`` can be
    smaller than ``num_devices`` (e.g. 2 poses on 4 devices -> 2
    single-item shards).  Shards are ordered by item range, which is also
    ascending device index — that order *is* the reduction order, fixed at
    planning time rather than by completion timing.
    """

    n_items: int
    num_devices: int
    shards: Tuple[Shard, ...]

    @classmethod
    def contiguous(cls, n_items: int, num_devices: int) -> "ShardPlan":
        """Plan ``n_items`` over ``num_devices`` (zero items = zero shards)."""
        if n_items < 0:
            raise ValueError(f"n_items must be >= 0, got {n_items}")
        if num_devices < 1:
            raise ValueError(f"num_devices must be >= 1, got {num_devices}")
        base, extra = divmod(n_items, num_devices)
        shards = []
        start = 0
        for d in range(num_devices):
            size = base + (1 if d < extra else 0)
            if size == 0:
                break
            shards.append(Shard(device_index=d, start=start, stop=start + size))
            start += size
        return cls(n_items=n_items, num_devices=num_devices, shards=tuple(shards))

    @property
    def num_shards(self) -> int:
        return len(self.shards)

    @property
    def shard_sizes(self) -> Tuple[int, ...]:
        return tuple(s.size for s in self.shards)

    @property
    def largest(self) -> int:
        """Busiest device's item count (the ceil-division makespan driver)."""
        return max(self.shard_sizes, default=0)

    @property
    def reduction_order(self) -> Tuple[int, ...]:
        """Device indices in merge order (ascending item range, fixed)."""
        return tuple(s.device_index for s in self.shards)

    def makespan_s(self, per_item_s: float, per_shard_s: float = 0.0) -> float:
        """Wall-clock of the busiest device at a uniform per-item cost.

        ``per_shard_s`` is a fixed per-device overhead (e.g. the shard's
        input upload) added to every shard before taking the max.
        """
        if not self.shards:
            return 0.0
        return max(s.size * per_item_s + per_shard_s for s in self.shards)
