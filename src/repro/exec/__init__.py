"""Shared execution-topology layer: devices, sharding, host constants.

The one place the package describes *where work runs*: a
:class:`DeviceTopology` (N homogeneous virtual devices + the host
machine's cost constants) and a generic :class:`ShardPlan` (balanced
contiguous assignment with a fixed reduction order).  Multi-device
docking (:mod:`repro.cuda.multigpu`), multi-device ensemble minimization
(:mod:`repro.minimize.multidevice`) and both backend-selection layers
consume this module instead of keeping private copies of the same
device math.
"""

from repro.exec.plan import Shard, ShardPlan
from repro.exec.topology import (
    DEFAULT_TOPOLOGY,
    DeviceTopology,
    VirtualDevice,
    default_device_spec,
    default_topology,
    host_model,
)

__all__ = [
    "Shard",
    "ShardPlan",
    "DeviceTopology",
    "VirtualDevice",
    "DEFAULT_TOPOLOGY",
    "default_topology",
    "default_device_spec",
    "host_model",
]
