"""Kernel-launch event record.

A :class:`KernelLaunch` captures everything the cost model needs about one
CUDA kernel invocation: thread geometry, instruction counts, and the bytes
it moves through each memory path, split by access quality (coalesced
streaming vs uncoalesced gathers — the distinction at the heart of the
paper's pairs-list redesign).
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["KernelLaunch"]


@dataclass
class KernelLaunch:
    """One kernel invocation and its resource usage.

    Attributes
    ----------
    name:
        Kernel identifier (appears in timelines and reports).
    num_blocks, threads_per_block:
        Launch geometry; occupancy is derived from these (a kernel running
        on fewer blocks than SMs — e.g. the single-SM filtering kernel of
        Fig. 6 — gets proportionally less compute and bandwidth).
    flops:
        Simple arithmetic instructions executed across all threads.
    sfu_ops:
        Special-function ops (exp, sqrt, division, pow) — multi-cycle on
        the SFU units.
    global_bytes_coalesced:
        Bytes moved to/from global memory with streaming (coalesced)
        access; charged at peak bandwidth.
    global_uncoalesced_accesses:
        Count of scattered/random accesses (each costs a full memory
        transaction regardless of size — the paper's "random occurrences of
        the second atoms" problem).
    shared_accesses:
        Shared-memory accesses (cheap; charged at 1 cycle each across the
        active SMs).
    constant_bytes:
        Bytes of constant memory referenced (capacity-validated; access is
        cached and charged like shared memory per the paper's observation
        that "access time from constant memory and shared memory is
        identical").
    serial_fraction:
        Fraction of the kernel's work executed by a single thread (master-
        thread accumulation rounds); that portion runs at single-core speed.
    """

    name: str
    num_blocks: int
    threads_per_block: int
    flops: float = 0.0
    sfu_ops: float = 0.0
    global_bytes_coalesced: float = 0.0
    global_uncoalesced_accesses: float = 0.0
    shared_accesses: float = 0.0
    constant_bytes: float = 0.0
    shared_bytes_per_block: int = 0
    serial_fraction: float = 0.0
    predicted_time_s: float = field(default=0.0, compare=False)

    def __post_init__(self) -> None:
        if self.num_blocks < 1 or self.threads_per_block < 1:
            raise ValueError(f"{self.name}: launch geometry must be positive")
        if not (0.0 <= self.serial_fraction <= 1.0):
            raise ValueError(f"{self.name}: serial_fraction must be in [0, 1]")

    @property
    def total_threads(self) -> int:
        return self.num_blocks * self.threads_per_block
