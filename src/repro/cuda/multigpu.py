"""Multi-GPU extension model (the paper's stated future work).

"In the future, we plan on extending this work to a multi-GPU
implementation and integrating it into a production web server."
(Sec. VI)

FTMap parallelizes naturally at two granularities, both embarrassingly
parallel across devices:

* **docking**: rotations distribute across GPUs (the same coarse-grained
  decomposition the Blue Gene production server uses across nodes),
* **minimization**: independent conformations distribute across GPUs.

The per-device work is the single-GPU pipeline; the multi-GPU model adds
(i) one receptor-grid broadcast per device, (ii) per-batch probe-grid
uploads on every device, and (iii) load imbalance from integer division of
the work items.  There is no inter-GPU communication — the reduction of
filtered poses is a host-side merge of k x rotations tiny records.

The device math lives in the shared execution-topology layer
(:mod:`repro.exec`): :class:`MultiGpuConfig` is a thin front over a
:class:`~repro.exec.topology.DeviceTopology`, and the per-phase work
split is a :class:`~repro.exec.plan.ShardPlan` — the same plan the
minimization engine executes for real
(:mod:`repro.minimize.multidevice`), so the docking model and the
minimization implementation cannot disagree about sharding.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.cuda.device import Device, DeviceSpec, TESLA_C1060
from repro.exec.topology import DeviceTopology

__all__ = ["MultiGpuConfig", "MultiGpuTimes", "multi_gpu_mapping_times", "scaling_curve"]


@dataclass(frozen=True)
class MultiGpuConfig:
    """A homogeneous multi-GPU node."""

    num_gpus: int
    spec: DeviceSpec = TESLA_C1060

    def __post_init__(self) -> None:
        if self.num_gpus < 1:
            raise ValueError("need at least one GPU")

    def topology(self) -> DeviceTopology:
        """This node as a shared execution topology."""
        return DeviceTopology(num_devices=self.num_gpus, device_spec=self.spec)


@dataclass
class MultiGpuTimes:
    """Predicted per-phase wall-clock (seconds) on a multi-GPU node."""

    docking_s: float
    minimization_s: float
    broadcast_s: float

    @property
    def total_s(self) -> float:
        return self.docking_s + self.minimization_s + self.broadcast_s


def multi_gpu_mapping_times(
    config: MultiGpuConfig,
    rotations: int = 500,
    conformations: int = 2000,
    **pipeline_kwargs,
) -> MultiGpuTimes:
    """Predict per-probe mapping time on ``config.num_gpus`` devices.

    Work items shard contiguously across devices
    (:meth:`~repro.exec.topology.DeviceTopology.plan`); wall-clock per
    phase is the busiest device (ceil-division load imbalance).  Each
    device receives the receptor grids once (22 channels x 128^3 floats
    ~ 184 MB), serialized through the host.
    """
    from repro.gpu.pipeline import GpuFTMapPipeline, ITERATIONS_PER_CONFORMATION

    topology = config.topology()
    pipe = GpuFTMapPipeline(Device(config.spec), **pipeline_kwargs)

    per_rotation = pipe.docking_times().total_per_rotation_s
    per_iteration = pipe.minimization_times().total_per_iteration_s

    rec_bytes = pipe.channels * pipe.n**3 * 4

    return MultiGpuTimes(
        docking_s=topology.plan(rotations).largest * per_rotation,
        minimization_s=topology.plan(conformations).largest
        * ITERATIONS_PER_CONFORMATION
        * per_iteration,
        broadcast_s=topology.broadcast_s(rec_bytes),
    )


def scaling_curve(
    max_gpus: int = 8,
    rotations: int = 500,
    conformations: int = 2000,
    **pipeline_kwargs,
) -> Dict[int, float]:
    """Speedup over one GPU as a function of device count.

    Near-linear until ceil-division imbalance and the serialized receptor
    broadcast flatten it — the scaling a production multi-GPU FTMap server
    would see before any algorithmic changes.
    """
    base = multi_gpu_mapping_times(
        MultiGpuConfig(1), rotations, conformations, **pipeline_kwargs
    ).total_s
    out: Dict[int, float] = {}
    for g in range(1, max_gpus + 1):
        t = multi_gpu_mapping_times(
            MultiGpuConfig(g), rotations, conformations, **pipeline_kwargs
        ).total_s
        out[g] = base / t
    return out
