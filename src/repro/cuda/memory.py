"""Memory spaces and transfer events of the virtual device.

The paper's design choices are memory-placement arguments:

* protein grids -> **global** memory ("due to the relatively large sizes of
  the protein grids and the limited amount of shared memory"),
* probe grids -> **constant** memory (<= 8^3 fits; 7^3 in shared),
* partial-energy arrays -> **shared** memory per SM,
* exclusion flags -> **global** (N^3 bytes exceed 16 KB shared).

This module defines the spaces, the buffer record used to enforce capacity
limits, and host<->device transfer events.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

__all__ = ["MemorySpace", "TransferDirection", "TransferEvent", "DeviceBuffer"]


class MemorySpace(Enum):
    """Where data lives on the device."""

    GLOBAL = "global"
    SHARED = "shared"
    CONSTANT = "constant"


class TransferDirection(Enum):
    """Host<->device copy direction."""

    H2D = "h2d"
    D2H = "d2h"


@dataclass
class DeviceBuffer:
    """A tracked allocation in one memory space."""

    n_bytes: int
    space: MemorySpace
    label: str = ""

    def __post_init__(self) -> None:
        if self.n_bytes < 0:
            raise ValueError("buffer size must be non-negative")


@dataclass
class TransferEvent:
    """One recorded host<->device copy."""

    n_bytes: int
    direction: TransferDirection
    label: str = ""
    predicted_time_s: float = 0.0
