"""Device specification and the virtual device object.

:data:`TESLA_C1060` encodes the paper's GPU (Sec. V: "NVIDIA TESLA C1060
GPU, containing 240 processor cores @ 1.3 GHz", housed in a Windows XP
workstation).  Architectural constants follow the GT200 datasheet; the two
calibration constants that are not datasheet values — kernel-launch overhead
and the per-transaction cost of uncoalesced gathers — use the well-known
WinXP/CUDA-2.x era magnitudes and are documented inline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.cuda.kernel import KernelLaunch
from repro.cuda.memory import DeviceBuffer, MemorySpace, TransferDirection, TransferEvent

__all__ = ["DeviceSpec", "Device", "TESLA_C1060"]


@dataclass(frozen=True)
class DeviceSpec:
    """Hardware parameters of a CUDA device (cost-model inputs)."""

    name: str
    num_sms: int                    # streaming multiprocessors
    cores_per_sm: int
    clock_ghz: float
    global_bandwidth_gbs: float     # peak global-memory bandwidth
    shared_mem_per_sm: int          # bytes
    constant_mem: int               # bytes (cached per SM)
    max_threads_per_block: int
    warp_size: int
    # -- calibration constants (documented era-typical magnitudes) --
    kernel_launch_overhead_us: float   # driver launch cost (WinXP WDDM ~60us)
    uncoalesced_access_ns: float       # per-transaction cost of random gathers
    sfu_cycles: float                  # cycles per special-function op (exp/sqrt/div)
    pcie_bandwidth_gbs: float          # host<->device transfer bandwidth
    pcie_latency_us: float             # per-transfer fixed cost
    compute_efficiency: float          # achieved fraction of peak issue rate

    @property
    def total_cores(self) -> int:
        return self.num_sms * self.cores_per_sm

    @property
    def peak_gips(self) -> float:
        """Peak simple-instruction throughput (G instructions/s)."""
        return self.total_cores * self.clock_ghz


#: The paper's GPU.  Launch overhead and gather cost are the calibration
#: constants discussed in DESIGN.md; all else is the GT200 datasheet.
TESLA_C1060 = DeviceSpec(
    name="NVIDIA Tesla C1060",
    num_sms=30,
    cores_per_sm=8,
    clock_ghz=1.296,
    global_bandwidth_gbs=102.0,
    shared_mem_per_sm=16 * 1024,
    constant_mem=64 * 1024,
    max_threads_per_block=512,
    warp_size=32,
    kernel_launch_overhead_us=60.0,
    uncoalesced_access_ns=4.0,
    sfu_cycles=16.0,
    pcie_bandwidth_gbs=5.2,
    pcie_latency_us=15.0,
    compute_efficiency=0.85,
)


class Device:
    """A virtual CUDA device: records launches/transfers, predicts time.

    ``Device`` does not execute code — the GPU algorithm implementations in
    ``repro.gpu`` compute their results in NumPy and *report* what the CUDA
    kernel would have done.  The device validates resource limits (shared
    memory, threads per block, constant memory) exactly as a real launch
    would fail, and accumulates a timeline.
    """

    def __init__(self, spec: DeviceSpec = TESLA_C1060) -> None:
        self.spec = spec
        self.launches: List[KernelLaunch] = []
        self.transfers: List[TransferEvent] = []
        self._buffers: List[DeviceBuffer] = []
        from repro.cuda.costmodel import CostModel

        self.cost_model = CostModel(spec)

    # -- resource validation ----------------------------------------------------

    def validate_launch(self, launch: KernelLaunch) -> None:
        """Raise if the launch exceeds device limits (as CUDA would)."""
        spec = self.spec
        if launch.threads_per_block > spec.max_threads_per_block:
            raise ValueError(
                f"{launch.name}: {launch.threads_per_block} threads/block exceeds "
                f"device limit {spec.max_threads_per_block}"
            )
        if launch.shared_bytes_per_block > spec.shared_mem_per_sm:
            raise ValueError(
                f"{launch.name}: {launch.shared_bytes_per_block} B shared/block "
                f"exceeds {spec.shared_mem_per_sm} B per SM"
            )
        if launch.constant_bytes > spec.constant_mem:
            raise ValueError(
                f"{launch.name}: {launch.constant_bytes} B exceeds "
                f"{spec.constant_mem} B constant memory"
            )

    # -- event recording ----------------------------------------------------------

    def launch(self, launch: KernelLaunch) -> float:
        """Validate, record, and return the predicted kernel time (seconds)."""
        self.validate_launch(launch)
        t = self.cost_model.kernel_time(launch)
        launch.predicted_time_s = t
        self.launches.append(launch)
        return t

    def transfer(
        self, n_bytes: int, direction: TransferDirection, label: str = ""
    ) -> float:
        """Record a host<->device copy; returns predicted time (seconds)."""
        t = self.cost_model.transfer_time(n_bytes)
        ev = TransferEvent(
            n_bytes=int(n_bytes), direction=direction, label=label, predicted_time_s=t
        )
        self.transfers.append(ev)
        return t

    def alloc(self, n_bytes: int, space: MemorySpace, label: str = "") -> DeviceBuffer:
        """Track an allocation (constant-memory overflow raises, as on HW)."""
        if space is MemorySpace.CONSTANT:
            used = sum(
                b.n_bytes for b in self._buffers if b.space is MemorySpace.CONSTANT
            )
            if used + n_bytes > self.spec.constant_mem:
                raise MemoryError(
                    f"constant memory exhausted: {used + n_bytes} > {self.spec.constant_mem}"
                )
        if space is MemorySpace.SHARED and n_bytes > self.spec.shared_mem_per_sm:
            raise MemoryError(
                f"shared allocation {n_bytes} B exceeds {self.spec.shared_mem_per_sm} B/SM"
            )
        buf = DeviceBuffer(n_bytes=int(n_bytes), space=space, label=label)
        self._buffers.append(buf)
        return buf

    def free_all(self) -> None:
        self._buffers.clear()

    # -- reporting ------------------------------------------------------------------

    def total_time(self) -> float:
        """Total predicted device time (kernels + transfers), seconds."""
        return sum(k.predicted_time_s for k in self.launches) + sum(
            t.predicted_time_s for t in self.transfers
        )

    def reset(self) -> None:
        self.launches.clear()
        self.transfers.clear()

    def timeline(self) -> List[str]:
        """Human-readable event log (used by examples and reports)."""
        rows = []
        for k in self.launches:
            rows.append(
                f"kernel {k.name:<28s} grid={k.num_blocks:<6d} "
                f"threads/blk={k.threads_per_block:<4d} t={k.predicted_time_s * 1e3:8.3f} ms"
            )
        for t in self.transfers:
            rows.append(
                f"xfer   {t.label:<28s} {t.n_bytes / 1024:10.1f} KiB "
                f"{t.direction.value:<4s} t={t.predicted_time_s * 1e3:8.3f} ms"
            )
        return rows
