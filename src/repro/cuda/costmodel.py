"""Analytic GPU timing model.

Converts :class:`~repro.cuda.kernel.KernelLaunch` events into predicted
seconds on a :class:`~repro.cuda.device.DeviceSpec`.  The model is additive
over the classic GPU bottlenecks:

    t = launch_overhead
      + compute_time        (flops + SFU ops at the achieved issue rate,
                             scaled by occupancy)
      + coalesced_time      (streaming bytes at peak bandwidth x occupancy)
      + gather_time         (uncoalesced transactions at a fixed per-access
                             cost — latency-bound, the paper's enemy #1)
      + shared_time         (1 cycle/access across active SMs)
      + serial_time         (master-thread accumulation at 1-core speed)

An additive (rather than max/overlap) combination matches the behaviour of
GT200-era kernels with little ILP-driven overlap, and — as the calibration
notebooks in ``benchmarks/`` show — lands the paper's measured kernel times
within ~15% from datasheet constants alone.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cuda.device import DeviceSpec
from repro.cuda.kernel import KernelLaunch

__all__ = ["CostModel"]


@dataclass
class CostModel:
    """Timing formulas for one device specification."""

    spec: DeviceSpec

    # -- helpers -----------------------------------------------------------------

    def occupancy(self, launch: KernelLaunch) -> float:
        """Fraction of the device's SMs kept busy by this launch.

        Fewer blocks than SMs leaves SMs idle (the paper's single-SM
        scoring/filtering kernel: "this is a heavy under-utilization of the
        available GPU computation power").  More blocks than SMs count as
        full occupancy.
        """
        return min(1.0, launch.num_blocks / self.spec.num_sms)

    # -- component times -----------------------------------------------------------

    def compute_time(self, launch: KernelLaunch) -> float:
        spec = self.spec
        occ = self.occupancy(launch)
        issue = spec.peak_gips * spec.compute_efficiency * occ  # G ops/s
        cycles_equiv = launch.flops + launch.sfu_ops * spec.sfu_cycles
        return cycles_equiv / (issue * 1e9) if issue > 0 else 0.0

    def coalesced_time(self, launch: KernelLaunch) -> float:
        occ = self.occupancy(launch)
        bw = self.spec.global_bandwidth_gbs * occ
        return launch.global_bytes_coalesced / (bw * 1e9) if bw > 0 else 0.0

    def gather_time(self, launch: KernelLaunch) -> float:
        # Uncoalesced accesses pipeline across SMs but each still burns a
        # full transaction; per-access cost is the calibrated constant.
        occ = self.occupancy(launch)
        per_access = self.spec.uncoalesced_access_ns * 1e-9 / max(occ, 1e-9)
        return launch.global_uncoalesced_accesses * per_access * self.occupancy_norm()

    def occupancy_norm(self) -> float:
        """Normalization so the calibrated gather constant is per-device."""
        return 1.0

    def shared_time(self, launch: KernelLaunch) -> float:
        # Shared memory: one access per cycle per SM across active SMs.
        active_sms = min(launch.num_blocks, self.spec.num_sms)
        rate = active_sms * self.spec.clock_ghz * 1e9
        return launch.shared_accesses / rate if rate > 0 else 0.0

    def serial_time(self, launch: KernelLaunch) -> float:
        # Master-thread work runs at one core's scalar rate.
        if launch.serial_fraction == 0.0:
            return 0.0
        one_core = self.spec.clock_ghz * 1e9 * self.spec.compute_efficiency
        serial_ops = (launch.flops + launch.sfu_ops * self.spec.sfu_cycles) * (
            launch.serial_fraction
        )
        return serial_ops / one_core

    # -- public API -----------------------------------------------------------------

    def kernel_time(self, launch: KernelLaunch) -> float:
        """Predicted wall-clock seconds for one kernel launch."""
        parallel_scale = 1.0 - launch.serial_fraction
        return (
            self.spec.kernel_launch_overhead_us * 1e-6
            + self.compute_time(launch) * parallel_scale
            + self.coalesced_time(launch)
            + self.gather_time(launch)
            + self.shared_time(launch)
            + self.serial_time(launch)
        )

    def transfer_time(self, n_bytes: int) -> float:
        """Predicted host<->device copy time (PCIe latency + bandwidth)."""
        spec = self.spec
        return spec.pcie_latency_us * 1e-6 + n_bytes / (spec.pcie_bandwidth_gbs * 1e9)
