"""Virtual CUDA device: execution model + performance accounting.

The paper's results depend on GPU-architecture effects — kernel-launch
overhead, global-memory latency and coalescing, shared/constant memory
speed, per-SM occupancy, and host<->device transfer cost.  Lacking hardware,
we reproduce those effects with a *virtual device*: GPU "kernels" in
``repro.gpu`` execute their algorithms numerically in NumPy while recording
a :class:`KernelLaunch` event (thread geometry, flop/SFU counts, bytes moved
per memory space, coalescing quality).  The :mod:`costmodel` converts events
into predicted wall-clock time using the NVIDIA Tesla C1060 parameters the
paper used (240 cores @ 1.296 GHz, 102 GB/s, 16 KB shared + 64 KB constant
per SM, Windows-XP-era launch overhead).

The reproduced quantity is the *time structure* — which scheme wins, by what
factor, where crossovers fall — not absolute milliseconds (DESIGN.md).
"""

from repro.cuda.device import DeviceSpec, Device, TESLA_C1060
from repro.cuda.memory import MemorySpace, TransferDirection, TransferEvent, DeviceBuffer
from repro.cuda.kernel import KernelLaunch
from repro.cuda.costmodel import CostModel

__all__ = [
    "DeviceSpec",
    "Device",
    "TESLA_C1060",
    "MemorySpace",
    "TransferDirection",
    "TransferEvent",
    "DeviceBuffer",
    "KernelLaunch",
    "CostModel",
]
