"""Parameter-sweep runner: the repeat-mapping workload the cache exists for.

A sweep maps one receptor under a grid of :class:`FTMapConfig` variants —
the protocol-tuning loop of a real mapping service (how sensitive are the
consensus sites to ``cluster_radius``?  how many rotations are enough?).
Most variants share the expensive artifacts: every config with the same
receptor/grid spec reuses the receptor energy grids and FFT spectra, and
variants that only touch post-docking parameters (clustering radii,
minimization depth) reuse whole per-probe dock results.  The runner wires
all runs through one :class:`repro.api.FTMapService` session (one shared
:class:`~repro.cache.manager.CacheManager`) and reports per-run wall time
and cache hit rates, so the sharing is visible, not assumed.  Each run
also records its variant's serialized config
(:attr:`SweepRun.config_dict`) for replay and job logs.

Serial by default; ``workers > 1`` fans configs out over forked processes
(:func:`repro.util.parallel.parallel_map`).  Cross-run sharing then needs
the ``disk`` cache policy — forked workers cannot see each other's memory
tier, and the runner says so rather than silently running cold.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields, replace
from itertools import product
from typing import Dict, List, Optional, Sequence

from repro.cache.manager import CacheManager, CacheStats
from repro.mapping.ftmap import FTMapConfig, FTMapResult
from repro.structure.molecule import Molecule
from repro.util.parallel import parallel_map

__all__ = ["SweepRun", "SweepReport", "sweep_grid", "run_sweep"]


@dataclass
class SweepRun:
    """One sweep point: the config variant, its result and its cost.

    ``config_dict`` is the variant's serialized form
    (:meth:`FTMapConfig.to_dict`), recorded at execution time so sweep
    reports and job logs can replay or ship any point without holding
    live objects.
    """

    label: str
    config: FTMapConfig
    result: FTMapResult
    wall_time_s: float
    cache_stats: CacheStats
    config_dict: Dict[str, object] = field(default_factory=dict)

    @property
    def hit_rate(self) -> float:
        return self.cache_stats.hit_rate

    @property
    def minimize_provenance(self) -> Dict[str, str]:
        """Per-probe tag of where this run's minimization actually ran.

        ``"batched"``, ``"multi-gpu-sim x4"`` (sharded over 4 virtual
        devices), or ``"cached"`` (the stage was served whole from the
        artifact cache — the warm-sweep case the minimized-ensemble cache
        exists for).
        """
        out: Dict[str, str] = {}
        for name, pr in self.result.probe_results.items():
            if pr.minimize_cached:
                out[name] = "cached"
            elif pr.minimize_devices > 1:
                out[name] = f"{pr.minimize_backend} x{pr.minimize_devices}"
            else:
                out[name] = pr.minimize_backend or "-"
        return out

    @property
    def backend_summary(self) -> str:
        """Deduplicated run-level tag (most runs use one backend)."""
        seen: List[str] = []
        for tag in self.minimize_provenance.values():
            if tag not in seen:
                seen.append(tag)
        return ",".join(seen) if seen else "-"


@dataclass
class SweepReport:
    """All sweep points plus aggregate accounting."""

    runs: List[SweepRun]

    @property
    def total_time_s(self) -> float:
        return sum(r.wall_time_s for r in self.runs)

    @property
    def overall_hit_rate(self) -> float:
        hits = sum(r.cache_stats.hits for r in self.runs)
        lookups = sum(r.cache_stats.lookups for r in self.runs)
        return hits / lookups if lookups else 0.0

    def render(self) -> str:
        """ASCII table: run | wall | cache hits/lookups | rate | where ran."""
        title = (
            f"Parameter sweep — {len(self.runs)} runs, "
            f"{self.total_time_s:.2f} s total, "
            f"{self.overall_hit_rate:.0%} cache hit rate"
        )
        lines = [title, "-" * len(title)]
        header = (
            f"{'run':<40s} {'time':>10s} {'hits':>6s} {'lookups':>8s} "
            f"{'rate':>6s} {'minimize ran on':<20s}"
        )
        lines.append(header)
        lines.append("=" * len(header))
        for r in self.runs:
            lines.append(
                f"{r.label:<40.40s} {r.wall_time_s:>9.3f}s "
                f"{r.cache_stats.hits:>6d} {r.cache_stats.lookups:>8d} "
                f"{r.hit_rate:>6.0%} {r.backend_summary:<20.20s}"
            )
        return "\n".join(lines)


def sweep_grid(base: FTMapConfig, **axes: Sequence) -> List[FTMapConfig]:
    """Cartesian grid of config variants over the named axes.

    ``sweep_grid(base, cluster_radius=(3.0, 4.0), minimize_top=(4, 8))``
    yields 4 configs, last axis varying fastest.  Axis names must be
    :class:`FTMapConfig` fields; values pass through ``dataclasses.replace``
    so every variant re-validates at construction.
    """
    if not axes:
        return [base]
    known = {f.name for f in fields(FTMapConfig)}
    unknown = sorted(set(axes) - known)
    if unknown:
        raise ValueError(f"unknown FTMapConfig field(s) in sweep axes: {unknown}")
    names = list(axes)
    configs = []
    for combo in product(*(axes[n] for n in names)):
        configs.append(replace(base, **dict(zip(names, combo))))
    return configs


def _variant_label(config: FTMapConfig, base: FTMapConfig, index: int) -> str:
    """Human label from the fields where ``config`` differs from ``base``."""
    diffs = [
        f"{f.name}={getattr(config, f.name)}"
        for f in fields(FTMapConfig)
        if getattr(config, f.name) != getattr(base, f.name)
    ]
    return ", ".join(diffs) if diffs else f"run{index}"


def _execute_one(service, receptor, probes, config, label) -> SweepRun:
    mapped = service.map(receptor, config=config, probes=probes)
    stats = (
        mapped.cache_stats if mapped.cache_stats is not None else CacheStats()
    )
    return SweepRun(
        label=label,
        config=config,
        result=mapped.result,
        wall_time_s=mapped.wall_time_s,
        cache_stats=stats,
        config_dict=config.to_dict(),
    )


# Worker state for parallel sweeps: one service (receptor/probes/shared
# cache config) installed per forked process, tasks carry only
# (index-labelled) configs.
_SWEEP_WORKER_CTX = None


def _init_sweep_worker(receptor, probes, cache) -> None:
    global _SWEEP_WORKER_CTX
    from repro.api.service import FTMapService

    _SWEEP_WORKER_CTX = (FTMapService(cache=cache), receptor, probes)


def _sweep_task(item) -> SweepRun:
    label, config = item
    service, receptor, probes = _SWEEP_WORKER_CTX
    return _execute_one(service, receptor, probes, config, label)


def run_sweep(
    receptor: Molecule,
    configs: Sequence[FTMapConfig],
    probes: Optional[Dict[str, Molecule]] = None,
    cache: Optional[CacheManager] = None,
    workers: Optional[int] = None,
    labels: Optional[Sequence[str]] = None,
) -> SweepReport:
    """Map ``receptor`` under every config, sharing one artifact cache.

    Parameters
    ----------
    receptor:
        The (fixed) protein all variants map.
    configs:
        The sweep points, e.g. from :func:`sweep_grid`.
    probes:
        Optional pre-built probe molecules shared by all runs.
    cache:
        Shared :class:`CacheManager`; defaults to the first config's
        manager (``configs[0].cache_manager()``), so setting
        ``cache_policy="memory"`` on the base config is enough.
    workers:
        Fan configs out over this many forked processes.  Requires a
        disk-policy cache for cross-run sharing (memory tiers are
        per-process); raises otherwise instead of silently running cold.
    labels:
        Optional per-run labels; defaults to the fields where each variant
        differs from ``configs[0]``.

    Returns
    -------
    :class:`SweepReport` with per-run results, wall times and cache
    hit-rate deltas (run order matches ``configs`` in both modes).
    """
    configs = list(configs)
    if not configs:
        raise ValueError("run_sweep needs at least one config")
    manager = cache if cache is not None else configs[0].cache_manager()
    if labels is None:
        labels = [
            _variant_label(cfg, configs[0], i) for i, cfg in enumerate(configs)
        ]
    elif len(labels) != len(configs):
        raise ValueError(f"{len(labels)} labels for {len(configs)} configs")
    items = list(zip(labels, configs))

    n_workers = workers or 1
    if n_workers > 1 and len(items) > 1:
        if manager.enabled and manager.disk is None:
            raise ValueError(
                "parallel sweeps share artifacts through the filesystem: use "
                "cache_policy='disk' (or workers=1 for the in-memory tier)"
            )
        runs = parallel_map(
            _sweep_task,
            items,
            processes=min(n_workers, len(items)),
            initializer=_init_sweep_worker,
            initargs=(receptor, probes, manager),
        )
    else:
        # One session for the whole sweep: every variant is a request
        # against the same service, sharing its artifact cache.
        from repro.api.service import FTMapService

        service = FTMapService(cache=manager)
        runs = [
            _execute_one(service, receptor, probes, cfg, label)
            for label, cfg in items
        ]
    return SweepReport(runs=runs)
