"""The FTMap driver: dock -> minimize -> cluster -> consensus.

This is the end-to-end application the paper accelerates.  The driver is
workload-parameterized so tests and examples can run scaled-down instances
(fewer rotations / probes / iterations) while the benchmarks use the cost
models for paper-scale timing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.constants import POSES_PER_ROTATION
from repro.docking.engine import DockingEngine
from repro.docking.piper import DockedPose, PiperConfig
from repro.geometry.transforms import centered
from repro.mapping.clustering import Cluster, cluster_poses
from repro.mapping.consensus import ConsensusSite, consensus_sites
from repro.minimize.energy import EnergyModel
from repro.minimize.minimizer import MinimizationResult, Minimizer, MinimizerConfig
from repro.structure.builder import pocket_movable_mask
from repro.structure.molecule import Molecule
from repro.structure.probes import FTMAP_PROBE_NAMES, build_probe

__all__ = ["FTMapConfig", "ProbeResult", "FTMapResult", "run_ftmap"]


@dataclass(frozen=True)
class FTMapConfig:
    """Workload configuration of one mapping run.

    Defaults are scaled for interactive use; the paper-scale workload is
    500 rotations x 16 probes x 2000 minimized conformations (see
    ``repro.gpu.pipeline`` for the timing-model equivalents).
    """

    probe_names: Sequence[str] = FTMAP_PROBE_NAMES
    num_rotations: int = 24
    poses_per_rotation: int = POSES_PER_ROTATION
    receptor_grid: int = 48
    probe_grid: int = 4
    grid_spacing: float = 1.25
    minimize_top: int = 12            # conformations minimized per probe
    minimizer_iterations: int = 60
    cluster_radius: float = 4.0
    consensus_radius: float = 6.0
    flexible_radius: float = 8.2
    engine: str = "direct"            # any DockingEngine backend, or "auto"
    batch_size: Optional[int] = None
    docking_workers: Optional[int] = None

    def piper_config(self) -> PiperConfig:
        engine = self.engine if self.engine != "gpu-sim" else "direct"
        return PiperConfig(
            num_rotations=self.num_rotations,
            poses_per_rotation=self.poses_per_rotation,
            receptor_grid=self.receptor_grid,
            probe_grid=self.probe_grid,
            grid_spacing=self.grid_spacing,
            engine=engine,
            batch_size=self.batch_size,
        )


@dataclass
class ProbeResult:
    """Everything FTMap learns about one probe."""

    probe_name: str
    docked_poses: List[DockedPose]
    minimized: List[MinimizationResult]
    minimized_centers: np.ndarray          # (M, 3) probe centers after refinement
    minimized_energies: np.ndarray         # (M,)
    clusters: List[Cluster]


@dataclass
class FTMapResult:
    """Full mapping outcome: per-probe details + consensus hotspots."""

    probe_results: Dict[str, ProbeResult]
    sites: List[ConsensusSite]

    @property
    def top_site(self) -> Optional[ConsensusSite]:
        return self.sites[0] if self.sites else None


def _minimize_pose(
    receptor: Molecule,
    probe: Molecule,
    pose: DockedPose,
    config: FTMapConfig,
) -> MinimizationResult:
    """Build the complex at the docked pose and energy-minimize it."""
    placed = probe.with_coords(pose.transform.apply(centered(probe.coords)))
    complex_mol = receptor.merged_with(placed)
    movable = pocket_movable_mask(
        complex_mol, probe.n_atoms, flexible_radius=config.flexible_radius
    )
    model = EnergyModel(complex_mol, movable=movable)
    minimizer = Minimizer(
        model,
        config=MinimizerConfig(max_iterations=config.minimizer_iterations),
    )
    return minimizer.run()


def run_ftmap(
    receptor: Molecule,
    config: FTMapConfig | None = None,
    probes: Dict[str, Molecule] | None = None,
) -> FTMapResult:
    """Map a receptor with a set of probes.

    Parameters
    ----------
    receptor:
        Protein molecule (synthetic or from PDB).
    config:
        Workload configuration; defaults to a laptop-scale run.
    probes:
        Optional pre-built probe molecules; defaults to building
        ``config.probe_names`` from the standard library.

    Returns
    -------
    :class:`FTMapResult` with per-probe docking/minimization details and
    the ranked consensus sites.
    """
    cfg = config or FTMapConfig()
    probe_set = probes or {name: build_probe(name) for name in cfg.probe_names}

    probe_results: Dict[str, ProbeResult] = {}
    for name, probe in probe_set.items():
        engine = DockingEngine(
            receptor,
            probe,
            cfg.piper_config(),
            backend=cfg.engine,
            workers=cfg.docking_workers,
        )
        poses = engine.run()

        n_probe = probe.n_atoms
        minimized: List[MinimizationResult] = []
        centers: List[np.ndarray] = []
        energies: List[float] = []
        for pose in poses[: cfg.minimize_top]:
            res = _minimize_pose(receptor, probe, pose, cfg)
            minimized.append(res)
            centers.append(res.coords[-n_probe:].mean(axis=0))
            energies.append(res.energy)

        centers_arr = (
            np.array(centers) if centers else np.empty((0, 3))
        )
        energies_arr = np.array(energies)
        clusters = (
            cluster_poses(centers_arr, energies_arr, radius=cfg.cluster_radius)
            if len(centers)
            else []
        )
        probe_results[name] = ProbeResult(
            probe_name=name,
            docked_poses=poses,
            minimized=minimized,
            minimized_centers=centers_arr,
            minimized_energies=energies_arr,
            clusters=clusters,
        )

    sites = consensus_sites(
        {name: pr.clusters for name, pr in probe_results.items()},
        radius=cfg.consensus_radius,
    )
    return FTMapResult(probe_results=probe_results, sites=sites)
