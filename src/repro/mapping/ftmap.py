"""FTMap stages and configuration: dock -> minimize -> cluster per probe.

This is the end-to-end application the paper accelerates.  Each probe
flows through the staged functions — :func:`dock_probe` (the
:class:`~repro.docking.engine.DockingEngine` facade),
:func:`minimize_poses` (the
:class:`~repro.minimize.engine.MinimizationEngine` facade over the docked
ensemble) and :func:`cluster_probe` — which
:class:`repro.api.FTMapService` schedules across a request's probes
(sequentially, thread stage-pipelined, or across stage worker
processes — see :mod:`repro.workers`).  The
:class:`FTMapConfig` here is the single workload description shared by
every layer, JSON-round-trippable through :meth:`FTMapConfig.to_dict`.

:func:`run_ftmap` remains as the deprecated one-shot wrapper around the
service.  The stages are workload-parameterized so tests and examples can
run scaled-down instances (fewer rotations / probes / iterations) while
the benchmarks use the cost models for paper-scale timing.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, fields, replace
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.cache.keys import (
    array_token,
    compose_key,
    float_token,
    hash_parts,
    mapping_token,
    molecule_token,
)
from repro.cache.manager import CACHE_POLICIES, CacheManager, CacheStats, resolve_manager
from repro.constants import POSES_PER_ROTATION
from repro.docking.engine import BACKEND_NAMES, DockingEngine, DockingRun
from repro.docking.piper import DockedPose, PiperConfig
from repro.geometry.transforms import centered
from repro.mapping.clustering import Cluster, cluster_poses
from repro.mapping.consensus import ConsensusSite
from repro.minimize.engine import MINIMIZE_BACKEND_NAMES, MinimizationEngine
from repro.minimize.multidevice import ShardExecution
from repro.minimize.minimizer import MinimizationResult, MinimizerConfig
from repro.obs.trace import current_span, current_tracer
from repro.structure.builder import pocket_movable_mask
from repro.structure.molecule import Molecule
from repro.structure.probes import FTMAP_PROBE_NAMES

__all__ = [
    "FTMapConfig",
    "ProbeResult",
    "FTMapResult",
    "MinimizeStage",
    "run_ftmap",
    "dock_probe",
    "minimize_poses",
    "cluster_probe",
    "map_probe",
]


@dataclass(frozen=True)
class FTMapConfig:
    """Workload configuration of one mapping run.

    Defaults are scaled for interactive use; the paper-scale workload is
    500 rotations x 16 probes x 2000 minimized conformations (see
    ``repro.gpu.pipeline`` for the timing-model equivalents).

    ``engine`` selects the docking backend (any
    :class:`~repro.docking.engine.DockingEngine` backend, including
    ``"gpu-sim"`` and ``"auto"``); ``minimize_engine`` selects the
    minimization backend (any
    :class:`~repro.minimize.engine.MinimizationEngine` backend, default
    cost-model ``"auto"``).  ``minimize_devices`` shards the minimization
    ensemble over that many virtual devices
    (:mod:`repro.minimize.multidevice`): with ``minimize_engine`` set to
    ``"multi-gpu-sim"`` it is the shard width, with ``"auto"`` it opts the
    sharded backend into cost-model selection.  ``probe_workers`` opts a
    run into process-staged probe streaming (``streaming="process"``:
    dock and minimize in separate worker processes with shared-memory
    pose shipping) — the coarse-grained parallelism of Sec. V.A applied
    one level up from rotations; an explicit per-request streaming mode
    still wins.

    ``cache_policy`` drives the content-addressed artifact cache
    (:mod:`repro.cache`): ``"off"`` | ``"memory"`` | ``"disk"`` | the
    default ``"inherit"``, which reads ``REPRO_CACHE_POLICY`` from the
    environment (off unless set).  When enabled, receptor grids, receptor
    FFT spectra and whole per-probe dock results are reused across runs
    keyed by receptor x probe x rotation set x grid spec, which makes
    repeat mappings and parameter sweeps (:mod:`repro.mapping.sweep`)
    near-free on the docking side.  Nonsensical field values are rejected
    here, at construction, instead of failing deep in the pipeline.
    """

    probe_names: Sequence[str] = FTMAP_PROBE_NAMES
    num_rotations: int = 24
    poses_per_rotation: int = POSES_PER_ROTATION
    receptor_grid: int = 48
    probe_grid: int = 4
    grid_spacing: float = 1.25
    minimize_top: int = 12            # conformations minimized per probe
    minimizer_iterations: int = 60
    cluster_radius: float = 4.0
    consensus_radius: float = 6.0
    flexible_radius: float = 8.2
    engine: str = "direct"            # any DockingEngine backend, or "auto"
    batch_size: Optional[int] = None
    docking_workers: Optional[int] = None
    minimize_engine: str = "auto"     # any MinimizationEngine backend
    minimize_batch_size: Optional[int] = None
    minimize_devices: Optional[int] = None   # virtual devices for minimization
    probe_workers: Optional[int] = None
    cache_policy: str = "inherit"     # inherit | off | memory | disk
    cache_dir: Optional[str] = None
    cache_memory_bytes: Optional[int] = None
    #: Record a per-request trace (:mod:`repro.obs.trace`).  Excluded
    #: from every cache key by construction (keys name their fields
    #: explicitly), so traced and untraced runs share artifacts.
    tracing: bool = False

    def __post_init__(self) -> None:
        if not isinstance(self.tracing, bool):
            raise ValueError(
                f"tracing must be a boolean, got {self.tracing!r}"
            )
        if not self.probe_names:
            raise ValueError("probe_names must name at least one probe")
        for name, value in (
            ("num_rotations", self.num_rotations),
            ("poses_per_rotation", self.poses_per_rotation),
            ("receptor_grid", self.receptor_grid),
            ("probe_grid", self.probe_grid),
            ("minimize_top", self.minimize_top),
            ("minimizer_iterations", self.minimizer_iterations),
        ):
            if value < 1:
                raise ValueError(f"{name} must be >= 1, got {value}")
        for name, value in (
            ("grid_spacing", self.grid_spacing),
            ("cluster_radius", self.cluster_radius),
            ("consensus_radius", self.consensus_radius),
            ("flexible_radius", self.flexible_radius),
        ):
            if not (value > 0):
                raise ValueError(f"{name} must be positive, got {value}")
        if self.engine not in BACKEND_NAMES:
            raise ValueError(
                f"unknown docking engine {self.engine!r}; expected one of "
                f"{BACKEND_NAMES}"
            )
        if self.minimize_engine not in MINIMIZE_BACKEND_NAMES:
            raise ValueError(
                f"unknown minimize engine {self.minimize_engine!r}; expected "
                f"one of {MINIMIZE_BACKEND_NAMES}"
            )
        for name, value in (
            ("batch_size", self.batch_size),
            ("docking_workers", self.docking_workers),
            ("minimize_batch_size", self.minimize_batch_size),
            ("minimize_devices", self.minimize_devices),
            ("probe_workers", self.probe_workers),
            ("cache_memory_bytes", self.cache_memory_bytes),
        ):
            if value is not None and value < 1:
                raise ValueError(f"{name} must be >= 1 when set, got {value}")
        if self.cache_policy not in CACHE_POLICIES + ("inherit",):
            raise ValueError(
                f"unknown cache policy {self.cache_policy!r}; expected one of "
                f"{CACHE_POLICIES + ('inherit',)}"
            )

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready form of the config (every field; tuples as lists).

        The round trip ``FTMapConfig.from_dict(json.loads(json.dumps(
        cfg.to_dict())))`` reproduces ``cfg`` exactly — this is what lets
        sweep reports, job logs and a future wire protocol carry whole
        workload configurations as plain data.
        """
        out: Dict[str, object] = {}
        for f in fields(self):
            value = getattr(self, f.name)
            out[f.name] = list(value) if isinstance(value, tuple) else value
        return out

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "FTMapConfig":
        """Rebuild a config from :meth:`to_dict` output (re-validated)."""
        known = {f.name for f in fields(cls)}
        unknown = sorted(set(data) - known)
        if unknown:
            raise ValueError(f"unknown FTMapConfig field(s): {unknown}")
        kwargs = dict(data)
        if "probe_names" in kwargs:
            kwargs["probe_names"] = tuple(kwargs["probe_names"])
        return cls(**kwargs)

    def cache_manager(self) -> CacheManager:
        """The artifact cache this run uses (process-memoized per config)."""
        return resolve_manager(
            self.cache_policy, self.cache_dir, self.cache_memory_bytes
        )

    def piper_config(self) -> PiperConfig:
        """The PIPER workload of this run, for direct :class:`PiperDocker` use.

        ``engine="gpu-sim"`` cannot be expressed as a PIPER correlation
        engine — it is a :class:`DockingEngine` facade backend (the virtual
        device wraps the whole rotation loop, not one correlation).  Rather
        than silently downgrading it, this raises; :func:`dock_probe` routes
        gpu-sim through the facade honestly.
        """
        if self.engine == "gpu-sim":
            raise ValueError(
                "engine='gpu-sim' is a DockingEngine facade backend, not a "
                "PiperConfig correlation engine; use run_ftmap / "
                "DockingEngine(..., backend='gpu-sim') which route it "
                "through the virtual-device pipeline"
            )
        return self._docking_workload()

    def _docking_workload(self) -> PiperConfig:
        # The facade receives the backend separately (dock_probe passes
        # ``backend=self.engine``), so for gpu-sim the PiperConfig's own
        # engine field is an inert placeholder, never executed.
        engine = "direct" if self.engine == "gpu-sim" else self.engine
        return PiperConfig(
            num_rotations=self.num_rotations,
            poses_per_rotation=self.poses_per_rotation,
            receptor_grid=self.receptor_grid,
            probe_grid=self.probe_grid,
            grid_spacing=self.grid_spacing,
            engine=engine,
            batch_size=self.batch_size,
        )

    def minimizer_config(self) -> MinimizerConfig:
        return MinimizerConfig(max_iterations=self.minimizer_iterations)


@dataclass
class ProbeResult:
    """Everything FTMap learns about one probe."""

    probe_name: str
    docked_poses: List[DockedPose]
    minimized: List[MinimizationResult]
    minimized_centers: np.ndarray          # (M, 3) probe centers after refinement
    minimized_energies: np.ndarray         # (M,)
    clusters: List[Cluster]
    docking_backend: str = ""
    minimize_backend: str = ""
    #: Where the minimization actually ran: device count the stage was
    #: planned over, per-shard pose counts, and the fixed merge order
    #: (empty / 1 for single-device backends).  ``minimize_cached`` marks
    #: stages served from the artifact cache — no shards ran at all.
    minimize_devices: int = 1
    minimize_shard_sizes: Tuple[int, ...] = ()
    minimize_reduction_order: Tuple[int, ...] = ()
    minimize_cached: bool = False

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready summary of this probe's outcome.

        Carries everything a wire client consumes — clusters, the exact
        minimized centers/energies (Python floats round-trip bitwise
        through JSON), and the backend/shard provenance — but not the
        bulk pose/conformation payloads (``docked_poses``/``minimized``),
        which stay process-local; ``n_docked_poses``/``n_minimized``
        record their sizes.
        """
        return {
            "probe_name": self.probe_name,
            "n_docked_poses": len(self.docked_poses),
            "n_minimized": len(self.minimized),
            "minimized_centers": [
                [float(x) for x in row]
                for row in np.asarray(self.minimized_centers).reshape(-1, 3)
            ],
            "minimized_energies": [
                float(e) for e in np.asarray(self.minimized_energies).ravel()
            ],
            "clusters": [c.to_dict() for c in self.clusters],
            "docking_backend": self.docking_backend,
            "minimize_backend": self.minimize_backend,
            "minimize_devices": int(self.minimize_devices),
            "minimize_shard_sizes": [int(s) for s in self.minimize_shard_sizes],
            "minimize_reduction_order": [
                int(i) for i in self.minimize_reduction_order
            ],
            "minimize_cached": bool(self.minimize_cached),
        }


@dataclass
class FTMapResult:
    """Full mapping outcome: per-probe details + consensus hotspots."""

    probe_results: Dict[str, ProbeResult]
    sites: List[ConsensusSite]
    #: Artifact-cache counter delta of this run (None with caching off).
    #: Under process streaming only the parent process's lookups are
    #: counted — stage workers keep their own managers (and share
    #: artifacts through a configured disk tier).
    cache_stats: Optional[CacheStats] = None

    @property
    def top_site(self) -> Optional[ConsensusSite]:
        return self.sites[0] if self.sites else None

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready summary: per-probe summaries + ranked sites + stats."""
        return {
            "probes": {
                name: pr.to_dict() for name, pr in self.probe_results.items()
            },
            "sites": [site.to_dict() for site in self.sites],
            "cache_stats": (
                self.cache_stats.to_dict()
                if self.cache_stats is not None
                else None
            ),
        }


# -- pipeline stages ----------------------------------------------------------------


def _dock_result_key(
    receptor: Molecule, probe: Molecule, config: FTMapConfig
) -> str:
    """Cache key of one probe's full dock result.

    Keyed by receptor content x probe content x the complete docking
    workload (rotation count + scheme, grid edges and spacing, poses per
    rotation, exclusion radius, desolvation terms/seed) *plus* the facade
    backend and batch size: backends agree on the retained poses but not
    bitwise on scores, so a cached result is only served to the exact
    engine configuration that produced it.
    """
    workload = config._docking_workload()
    return compose_key(
        "dock-results",
        [
            molecule_token(receptor),
            molecule_token(probe),
            mapping_token(
                num_rotations=workload.num_rotations,
                poses_per_rotation=workload.poses_per_rotation,
                receptor_grid=workload.receptor_grid,
                probe_grid=workload.probe_grid,
                grid_spacing=float(workload.grid_spacing),
                n_desolvation_terms=workload.n_desolvation_terms,
                exclusion_radius=workload.exclusion_radius,
                rotation_scheme=workload.rotation_scheme,
                desolvation_seed=workload.desolvation_seed,
                engine=config.engine,
                batch_size=config.batch_size,
            ),
        ],
    )


def dock_probe(
    receptor: Molecule,
    probe: Molecule,
    config: FTMapConfig,
    cache: Optional[CacheManager] = None,
) -> DockingRun:
    """Stage 1: exhaustive rigid docking through the engine facade.

    With an enabled cache (``cache`` argument, else
    ``config.cache_manager()``), the whole :class:`DockingRun` is served
    content-addressed: a repeat mapping of the same receptor/probe/workload
    skips gridding, spectra and the rotation loop entirely.  Pose lists are
    shallow-copied on hits so callers may reorder them freely.
    """
    span = current_span()
    manager = cache if cache is not None else config.cache_manager()
    if manager.enabled:
        key = _dock_result_key(receptor, probe, config)
        hit = manager.get(key)
        if hit is not None:
            span.set_attributes(cache="hit", backend=hit.backend)
            return replace(hit, poses=list(hit.poses))
    engine = DockingEngine(
        receptor,
        probe,
        config._docking_workload(),
        backend=config.engine,
        workers=config.docking_workers,
        cache=manager if manager.enabled else None,
    )
    span.set_attributes(
        cache="miss" if manager.enabled else "off",
        backend=engine.backend,
        rotations=config.num_rotations,
    )
    run = engine.run_detailed()
    if manager.enabled:
        manager.put(key, replace(run, poses=list(run.poses)), codec="pickle")
    return run


@dataclass
class MinimizeStage:
    """Outcome of the minimization stage for one probe, with provenance.

    Iterates as the legacy ``(results, centers, energies, backend)``
    4-tuple, so existing ``a, b, c, d = minimize_poses(...)`` unpacking
    keeps working; the extra fields record where the work actually ran —
    device count, per-shard pose counts, the fixed reduction order, and
    whether the whole stage was served from the artifact cache.
    """

    results: List[MinimizationResult]
    centers: np.ndarray                    # (M, 3)
    energies: np.ndarray                   # (M,)
    backend: str
    devices: int = 1
    shards: Tuple[ShardExecution, ...] = ()
    reduction_order: Tuple[int, ...] = ()
    cached: bool = False
    predicted_makespan_s: Optional[float] = None

    @property
    def shard_sizes(self) -> Tuple[int, ...]:
        return tuple(s.n_poses for s in self.shards)

    def __iter__(self):
        return iter((self.results, self.centers, self.energies, self.backend))


#: Numerics families of the minimization backends: every backend in a
#: family produces bitwise-identical per-pose results (serial ==
#: multiprocess == gpu-sim's fp64 reference numerics; batched ==
#: multi-gpu-sim's fp32 lock-step arithmetic, shard/batch-invariant), so
#: cached ensembles are shared within a family and never across.
_MINIMIZE_NUMERICS_FAMILY = {
    "serial": "serial-fp64",
    "multiprocess": "serial-fp64",
    "gpu-sim": "serial-fp64",
    "batched": "batched-fp32",
    "multi-gpu-sim": "batched-fp32",
}


def _minimize_result_key(
    receptor: Molecule,
    probe: Molecule,
    top: Sequence[DockedPose],
    config: FTMapConfig,
    resolved_backend: str,
) -> str:
    """Cache key of one probe's minimized ensemble.

    Keyed by the dock-result content actually refined (the top poses'
    transforms and scores — a different docking engine or rotation set
    changes these, so dock identity is carried by the poses themselves),
    the minimizer configuration, and the *numerics family* of the
    **resolved** backend — never the config string, so ``"auto"`` keys on
    what it actually resolved to and cannot serve fp32 results where a
    fresh run would compute fp64 (or vice versa).  Deliberately
    **shard-invariant**: device count and batch size are excluded because
    per-pose results are independent of how the ensemble is sharded or
    batched (the multi-device reduction is deterministic, tested
    bitwise), so a warm repeat skips minimization whatever topology it
    asks for.
    """
    family = _MINIMIZE_NUMERICS_FAMILY[resolved_backend]
    pose_parts = []
    for pose in top:
        pose_parts.append(array_token(pose.transform.rotation))
        pose_parts.append(array_token(pose.transform.translation))
        pose_parts.append(float_token(pose.score))
    return compose_key(
        "minimize-results",
        [
            molecule_token(receptor),
            molecule_token(probe),
            hash_parts("minimized-poses", *pose_parts),
            mapping_token(
                minimize_top=config.minimize_top,
                minimizer_iterations=config.minimizer_iterations,
                flexible_radius=float(config.flexible_radius),
                engine_family=family,
            ),
        ],
    )


def minimize_poses(
    receptor: Molecule,
    probe: Molecule,
    poses: Sequence[DockedPose],
    config: FTMapConfig,
    cache: Optional[CacheManager] = None,
    cancel_check: Optional[Callable[[], None]] = None,
    on_shard: Optional[Callable[[int, int], None]] = None,
) -> MinimizeStage:
    """Stage 2: refine the top docked poses as one batched ensemble.

    Builds the receptor+probe complex template once, stacks the top
    ``minimize_top`` pose conformations into a ``(P, N, 3)`` ensemble with
    per-pose pocket masks, and hands the whole stack to the
    :class:`MinimizationEngine` (backend per ``config.minimize_engine``,
    sharded over ``config.minimize_devices`` virtual devices when set).

    With an enabled cache (``cache`` argument, else
    ``config.cache_manager()``), the whole minimized ensemble is served
    content-addressed — keyed by the dock-result content x minimizer
    config x the *resolved* backend's numerics family, shard-invariantly
    — so a warm repeat mapping skips the minimization itself entirely
    (the engine is still constructed, because ``"auto"`` only resolves
    against the real workload; that costs one pose-0 neighbor list, not
    P poses x iterations of refinement).

    ``cancel_check`` / ``on_shard`` reach the multi-device backend's
    shard boundaries (cooperative cancellation, per-shard progress).

    Returns a :class:`MinimizeStage` (unpacks as the legacy
    ``(results, centers, energies, backend)`` tuple); a probe whose
    docking produced no poses yields the explicit empty ensemble rather
    than tripping over empty array construction downstream.
    """
    top = list(poses[: config.minimize_top])
    n_probe = probe.n_atoms
    if not top:
        return MinimizeStage([], np.empty((0, 3)), np.empty((0,)), "")

    placed0 = probe.with_coords(top[0].transform.apply(centered(probe.coords)))
    template = receptor.merged_with(placed0)
    n_total = template.n_atoms
    stack = np.empty((len(top), n_total, 3))
    stack[:, : n_total - n_probe] = receptor.coords
    for k, pose in enumerate(top):
        stack[k, n_total - n_probe:] = pose.transform.apply(centered(probe.coords))
    movable = np.stack(
        [
            pocket_movable_mask(
                template.with_coords(stack[k]),
                n_probe,
                flexible_radius=config.flexible_radius,
            )
            for k in range(len(top))
        ]
    )
    engine = MinimizationEngine(
        template,
        stack,
        movable=movable,
        config=config.minimizer_config(),
        backend=config.minimize_engine,
        batch_size=config.minimize_batch_size,
        devices=config.minimize_devices,
    )

    span = current_span()
    manager = cache if cache is not None else config.cache_manager()
    key = ""
    if manager.enabled:
        key = _minimize_result_key(receptor, probe, top, config, engine.backend)
        hit = manager.get(key)
        if hit is not None:
            span.set_attributes(cache="hit", backend=hit["backend"])
            return MinimizeStage(
                results=list(hit["results"]),
                centers=hit["centers"].copy(),
                energies=hit["energies"].copy(),
                backend=hit["backend"],
                devices=hit["devices"],
                cached=True,
            )

    span.set_attributes(
        cache="miss" if manager.enabled else "off",
        backend=engine.backend,
        poses=len(top),
    )
    run = engine.run_detailed(cancel_check=cancel_check, on_shard=on_shard)
    tracer = current_tracer()
    if tracer.enabled:
        span.set_attributes(devices=run.num_devices)
        # Per-shard spans from the wall clocks the multi-device engine
        # measured on its worker threads: recorded post hoc so the trace
        # shows true shard overlap without plumbing obs into the engine.
        for shard in run.shards:
            if shard.wall_s > 0.0:
                tracer.add_span(
                    "minimize-shard",
                    shard.wall_start_s,
                    shard.wall_start_s + shard.wall_s,
                    parent=span,
                    thread=f"minimize-device-{shard.device_index}",
                    device=shard.device_index,
                    n_poses=shard.n_poses,
                )
    centers = np.stack([r.coords[-n_probe:].mean(axis=0) for r in run.results])
    energies = np.array([r.energy for r in run.results], dtype=float)
    stage = MinimizeStage(
        results=run.results,
        centers=centers,
        energies=energies,
        backend=run.backend,
        devices=run.num_devices,
        shards=run.shards,
        reduction_order=run.reduction_order,
        predicted_makespan_s=run.predicted_device_time_s,
    )
    if manager.enabled:
        manager.put(
            key,
            {
                "results": list(run.results),
                "centers": centers.copy(),
                "energies": energies.copy(),
                "backend": run.backend,
                "devices": run.num_devices,
            },
            codec="pickle",
        )
    return stage


def cluster_probe(
    centers: np.ndarray, energies: np.ndarray, config: FTMapConfig
) -> List[Cluster]:
    """Stage 3: energy-weighted clustering of the refined probe centers."""
    if len(centers) == 0:
        return []
    return cluster_poses(centers, energies, radius=config.cluster_radius)


def map_probe(
    receptor: Molecule,
    name: str,
    probe: Molecule,
    config: FTMapConfig,
    cache: Optional[CacheManager] = None,
) -> ProbeResult:
    """Run one probe through dock -> minimize -> cluster."""
    docking = dock_probe(receptor, probe, config, cache=cache)
    stage = minimize_poses(receptor, probe, docking.poses, config, cache=cache)
    clusters = cluster_probe(stage.centers, stage.energies, config)
    return ProbeResult(
        probe_name=name,
        docked_poses=docking.poses,
        minimized=stage.results,
        minimized_centers=stage.centers,
        minimized_energies=stage.energies,
        clusters=clusters,
        docking_backend=docking.backend,
        minimize_backend=stage.backend,
        minimize_devices=stage.devices,
        minimize_shard_sizes=stage.shard_sizes,
        minimize_reduction_order=stage.reduction_order,
        minimize_cached=stage.cached,
    )


def run_ftmap(
    receptor: Molecule,
    config: FTMapConfig | None = None,
    probes: Dict[str, Molecule] | None = None,
    cache: Optional[CacheManager] = None,
) -> FTMapResult:
    """Map a receptor with a set of probes (legacy one-shot entrypoint).

    .. deprecated:: 1.3.0
        ``run_ftmap`` is a thin wrapper over the session-scoped service:
        it builds an ephemeral :class:`~repro.api.service.FTMapService`
        per call, so repeated calls re-resolve everything a session would
        keep warm.  Use ``FTMapService.map`` (or ``submit`` for async
        jobs) instead; outputs are bitwise-identical.

    Parameters
    ----------
    receptor:
        Protein molecule (synthetic or from PDB).
    config:
        Workload configuration; defaults to a laptop-scale run.
    probes:
        Optional pre-built probe molecules; defaults to building
        ``config.probe_names`` from the standard library.
    cache:
        Optional explicit :class:`~repro.cache.manager.CacheManager`
        (overrides the config's cache fields); sweeps use this to share
        one cache across config variants.

    Returns
    -------
    :class:`FTMapResult` with per-probe docking/minimization details and
    the ranked consensus sites.  With ``config.probe_workers > 1`` the
    stages run in worker processes (order-preserving and bitwise-equal
    to the sequential loop, so the result is deterministic either way).
    When an artifact cache is
    enabled, ``result.cache_stats`` carries this run's hit/miss delta.
    """
    warnings.warn(
        "run_ftmap is a legacy wrapper around repro.api.FTMapService; "
        "use FTMapService.map(receptor, config) / submit(MapRequest(...)) "
        "for session-scoped, cache-aware serving",
        DeprecationWarning,
        stacklevel=2,
    )
    # Imported here: repro.api builds on this module (service -> stages),
    # so the legacy shim resolves the service lazily to avoid the cycle.
    from repro.api.service import FTMapService

    cfg = config or FTMapConfig()
    manager = cache if cache is not None else cfg.cache_manager()
    service = FTMapService(config=cfg, cache=manager)
    return service.map(receptor, config=cfg, probes=probes).result
