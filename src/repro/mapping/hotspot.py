"""Pocket/hotspot geometry utilities: burial maps and pocket detection.

Used to *validate* mapping runs: FTMap's consensus sites should coincide
with concave surface regions.  The burial map is the same quantity the
docking shape-halo channel uses, exposed here at analysis granularity.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.grids.energyfunctions import HALO_THICKNESS, _burial_density
from repro.grids.gridding import GridSpec, voxelize_spheres
from repro.structure.molecule import Molecule

__all__ = ["BurialMap", "burial_map", "top_pockets", "site_concavity"]


@dataclass
class BurialMap:
    """Burial density over a grid around one molecule."""

    spec: GridSpec
    occupied: np.ndarray   # bool (n, n, n)
    burial: np.ndarray     # float (n, n, n); zero on occupied voxels

    def value_at(self, point: np.ndarray, window: int = 2) -> float:
        """Max burial within a ``window``-voxel box of a world-space point.

        Points outside the grid have zero burial by definition.
        """
        vf = np.rint(self.spec.world_to_voxel(np.asarray(point)))
        if np.any(vf < 0) or np.any(vf > self.spec.n - 1):
            return 0.0
        v = vf.astype(int)
        region = self.burial[
            max(0, v[0] - window) : v[0] + window + 1,
            max(0, v[1] - window) : v[1] + window + 1,
            max(0, v[2] - window) : v[2] + window + 1,
        ]
        return float(region.max()) if region.size else 0.0

    def percentile(self, q: float) -> float:
        """q-th percentile of positive burial values (surface statistics)."""
        positive = self.burial[self.burial > 1e-9]
        if positive.size == 0:
            return 0.0
        return float(np.percentile(positive, q))


def burial_map(
    molecule: Molecule,
    grid_edge: int = 48,
    spacing: float = 1.25,
    radius: int = HALO_THICKNESS,
) -> BurialMap:
    """Compute the burial map of a molecule (vdW-sphere occupancy)."""
    spec = GridSpec.centered_on(molecule, grid_edge, spacing)
    occupied = voxelize_spheres(molecule, spec)
    burial = _burial_density(occupied, radius) * (~occupied)
    return BurialMap(spec=spec, occupied=occupied, burial=burial)


def top_pockets(
    bmap: BurialMap, k: int = 3, exclusion_radius_voxels: int = 4
) -> List[np.ndarray]:
    """World-space centers of the ``k`` deepest distinct pockets.

    Greedy selection of burial maxima with region exclusion (same pattern
    as pose filtering) — a geometry-only baseline to compare FTMap's
    probe-consensus sites against.
    """
    work = bmap.burial.copy()
    out: List[np.ndarray] = []
    for _ in range(k):
        idx = np.unravel_index(int(np.argmax(work)), work.shape)
        if work[idx] <= 0:
            break
        out.append(bmap.spec.voxel_to_world(np.asarray(idx, dtype=float)))
        r = exclusion_radius_voxels
        work[
            max(0, idx[0] - r) : idx[0] + r + 1,
            max(0, idx[1] - r) : idx[1] + r + 1,
            max(0, idx[2] - r) : idx[2] + r + 1,
        ] = 0.0
    return out


def site_concavity(bmap: BurialMap, center: np.ndarray, percentile: float = 60.0) -> bool:
    """True when a site sits in an above-``percentile`` burial region."""
    return bmap.value_at(center) >= bmap.percentile(percentile)
