"""Human-readable mapping reports."""

from __future__ import annotations

from typing import List

import numpy as np

from repro.mapping.ftmap import FTMapResult

__all__ = ["mapping_report"]


def mapping_report(result: FTMapResult, max_sites: int = 5) -> str:
    """Render an FTMap run as text: per-probe stats + ranked hotspots."""
    lines: List[str] = ["FTMap binding-site mapping report", "=" * 34, ""]
    lines.append(f"{'probe':<20s} {'poses':>6s} {'minimized':>10s} {'clusters':>9s} {'best E':>10s}")
    for name, pr in sorted(result.probe_results.items()):
        best = f"{pr.minimized_energies.min():.2f}" if len(pr.minimized_energies) else "--"
        lines.append(
            f"{name:<20s} {len(pr.docked_poses):>6d} {len(pr.minimized):>10d} "
            f"{len(pr.clusters):>9d} {best:>10s}"
        )
    lines.append("")
    lines.append(f"consensus sites (top {max_sites}):")
    if not result.sites:
        lines.append("  none found")
    for rank, site in enumerate(result.sites[:max_sites], start=1):
        c = np.asarray(site.center)
        lines.append(
            f"  #{rank}: {site.probe_count} distinct probes at "
            f"({c[0]:.1f}, {c[1]:.1f}, {c[2]:.1f}) A, best E = {site.best_energy:.2f}"
        )
    return "\n".join(lines)
