"""FTMap binding-site mapping: the end-to-end application.

"A hotspot on a protein surface can be found by docking some number of
small molecule probes and finding a consensus region that binds most of
these probes with high affinity." (Sec. I)

Pipeline per probe: PIPER rigid docking (top 4 poses x rotations) ->
CHARMM/ACE minimization of each retained conformation -> per-probe
clustering of minimized poses.  Across probes: consensus clustering of the
per-probe cluster representatives; consensus sites rank by how many
*distinct* probe types they attract.
"""

from repro.mapping.ftmap import (
    FTMapConfig,
    FTMapResult,
    MinimizeStage,
    ProbeResult,
    cluster_probe,
    dock_probe,
    map_probe,
    minimize_poses,
    run_ftmap,
)
from repro.mapping.clustering import Cluster, cluster_poses
from repro.mapping.consensus import ConsensusSite, consensus_sites
from repro.mapping.hotspot import BurialMap, burial_map, site_concavity, top_pockets
from repro.mapping.report import mapping_report
from repro.mapping.sweep import SweepReport, SweepRun, run_sweep, sweep_grid

__all__ = [
    "FTMapConfig",
    "FTMapResult",
    "MinimizeStage",
    "ProbeResult",
    "run_ftmap",
    "dock_probe",
    "minimize_poses",
    "cluster_probe",
    "map_probe",
    "SweepRun",
    "SweepReport",
    "run_sweep",
    "sweep_grid",
    "Cluster",
    "cluster_poses",
    "ConsensusSite",
    "consensus_sites",
    "BurialMap",
    "burial_map",
    "top_pockets",
    "site_concavity",
    "mapping_report",
]
