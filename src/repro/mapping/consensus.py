"""Cross-probe consensus sites — the "hotspots" of the paper's title.

After each probe's minimized poses are clustered, FTMap overlays the
per-probe cluster representatives and finds *consensus sites*: regions
where clusters of many **different** probes coincide.  The strongest
consensus site is the predicted druggable hotspot (Landon et al. 2007).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.mapping.clustering import Cluster

__all__ = ["ConsensusSite", "consensus_sites"]


@dataclass
class ConsensusSite:
    """A consensus cluster of per-probe cluster representatives."""

    center: np.ndarray
    probe_names: List[str]          # distinct probes contributing
    member_clusters: List[Tuple[str, int]]  # (probe, cluster index) pairs
    best_energy: float

    @property
    def probe_count(self) -> int:
        """Distinct probe types at this site — FTMap's ranking key."""
        return len(set(self.probe_names))

    def to_dict(self) -> dict:
        """JSON-ready form (the wire shape of one ranked hotspot)."""
        return {
            "center": [float(x) for x in np.asarray(self.center)],
            "probe_names": list(self.probe_names),
            "member_clusters": [
                [probe, int(ci)] for probe, ci in self.member_clusters
            ],
            "best_energy": float(self.best_energy),
            "probe_count": self.probe_count,
        }


def consensus_sites(
    probe_clusters: Dict[str, Sequence[Cluster]],
    radius: float = 6.0,
    top_clusters_per_probe: int = 6,
) -> List[ConsensusSite]:
    """Overlay per-probe clusters and group them into consensus sites.

    Parameters
    ----------
    probe_clusters:
        Mapping probe name -> that probe's clusters (energy-ordered, as
        returned by :func:`repro.mapping.clustering.cluster_poses`).
    radius:
        Consensus radius in Angstrom (cluster representatives within this
        distance belong to the same site).
    top_clusters_per_probe:
        Only each probe's best few clusters participate (FTMap keeps ~6).

    Returns sites sorted by (descending probe count, ascending best energy).
    """
    entries: List[Tuple[str, int, np.ndarray, float]] = []
    for probe, clusters in probe_clusters.items():
        for ci, c in enumerate(list(clusters)[:top_clusters_per_probe]):
            entries.append((probe, ci, np.asarray(c.center, dtype=float), c.best_energy))
    if not entries:
        return []

    # Greedy grouping seeded by the most-populated neighborhoods: for
    # stability, seed by lowest energy (as with pose clustering).
    entries.sort(key=lambda e: e[3])
    used = [False] * len(entries)
    sites: List[ConsensusSite] = []
    for si, (_probe, _ci, pos, _energy) in enumerate(entries):
        if used[si]:
            continue
        members = [si]
        used[si] = True
        for sj in range(len(entries)):
            if used[sj]:
                continue
            if np.linalg.norm(entries[sj][2] - pos) <= radius:
                members.append(sj)
                used[sj] = True
        sites.append(
            ConsensusSite(
                center=np.mean([entries[k][2] for k in members], axis=0),
                probe_names=[entries[k][0] for k in members],
                member_clusters=[(entries[k][0], entries[k][1]) for k in members],
                best_energy=min(entries[k][3] for k in members),
            )
        )
    sites.sort(key=lambda s: (-s.probe_count, s.best_energy))
    return sites
