"""Greedy energy-ordered clustering of minimized probe poses.

FTMap clusters the minimized conformations of each probe and keeps the
lowest-energy clusters (Brenke et al. 2009 use a 4 Angstrom RMSD-like
criterion with energy-ordered greedy seeding; we cluster probe centers the
same way).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

__all__ = ["Cluster", "cluster_poses"]


@dataclass
class Cluster:
    """One cluster of poses (probe center positions + energies)."""

    center: np.ndarray            # representative (lowest-energy) position
    member_indices: List[int]     # indices into the input pose list
    energies: List[float]

    @property
    def size(self) -> int:
        return len(self.member_indices)

    @property
    def best_energy(self) -> float:
        return min(self.energies)

    @property
    def mean_position(self) -> np.ndarray:
        return self.center  # representative, per FTMap convention

    def to_dict(self) -> dict:
        """JSON-ready form (floats via Python ``float`` — exact round trip)."""
        return {
            "center": [float(x) for x in np.asarray(self.center)],
            "member_indices": [int(i) for i in self.member_indices],
            "energies": [float(e) for e in self.energies],
        }


def cluster_poses(
    positions: np.ndarray,
    energies: Sequence[float],
    radius: float = 4.0,
    max_clusters: int | None = None,
) -> List[Cluster]:
    """Greedy clustering: lowest-energy unassigned pose seeds each cluster.

    Parameters
    ----------
    positions:
        (P, 3) probe-center positions of minimized poses.
    energies:
        P pose energies (lower = better).
    radius:
        Membership radius in Angstrom (FTMap uses ~4 A).
    max_clusters:
        Optional cap; clustering stops once reached.

    Returns clusters ordered by seed energy (best first).  Every pose
    belongs to exactly one cluster.
    """
    positions = np.asarray(positions, dtype=float)
    energies = np.asarray(energies, dtype=float)
    if positions.ndim != 2 or positions.shape[1] != 3:
        raise ValueError(f"positions must be (P, 3), got {positions.shape}")
    if len(energies) != len(positions):
        raise ValueError("positions/energies length mismatch")
    if radius <= 0:
        raise ValueError("radius must be positive")

    order = np.argsort(energies, kind="stable")
    unassigned = np.ones(len(positions), dtype=bool)
    clusters: List[Cluster] = []
    for seed in order:
        if not unassigned[seed]:
            continue
        if max_clusters is not None and len(clusters) >= max_clusters:
            break
        d = np.linalg.norm(positions - positions[seed], axis=1)
        members = np.nonzero(unassigned & (d <= radius))[0]
        unassigned[members] = False
        clusters.append(
            Cluster(
                center=positions[seed].copy(),
                member_indices=[int(i) for i in members],
                energies=[float(energies[i]) for i in members],
            )
        )
    return clusters
