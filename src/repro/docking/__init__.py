"""PIPER rigid docking core.

Implements the exhaustive 6-D rigid docking of Sec. II.A / III:

* :mod:`repro.docking.fft` — the production FFT correlation engine
  (O(N^3 log N) per rotation per channel),
* :mod:`repro.docking.batched` — the batched multi-rotation FFT path
  (staged zero-padded forward transforms, fused channel reduction),
* :mod:`repro.docking.direct` — direct (spatial-domain) correlation, the
  algorithm the paper maps to the GPU, including multi-rotation batching,
* :mod:`repro.docking.scoring` — weighted channel summation (Eq. 2),
* :mod:`repro.docking.filtering` — region-exclusion top-pose selection
  (Fig. 5),
* :mod:`repro.docking.piper` — the rotation-loop driver that retains the
  top 4 poses per rotation (500 rotations -> 2000 conformations),
* :mod:`repro.docking.selection` — cost-model backend auto-selection,
* :mod:`repro.docking.engine` — the :class:`DockingEngine` facade every
  scenario (docking, mapping, benchmarks) goes through.

Convention: pose **energy**, lower is better, everywhere.
"""

from repro.docking.correlation import CorrelationEngine, correlate_channels
from repro.docking.fft import FFTCorrelationEngine
from repro.docking.batched import BatchedFFTCorrelationEngine
from repro.docking.direct import DirectCorrelationEngine
from repro.docking.scoring import combine_channel_scores
from repro.docking.filtering import filter_top_poses, FilteredPose
from repro.docking.piper import PiperConfig, DockedPose, PiperDocker
from repro.docking.selection import BackendDecision, select_backend
from repro.docking.engine import DockingEngine, DockingRun

__all__ = [
    "CorrelationEngine",
    "correlate_channels",
    "FFTCorrelationEngine",
    "BatchedFFTCorrelationEngine",
    "DirectCorrelationEngine",
    "combine_channel_scores",
    "filter_top_poses",
    "FilteredPose",
    "PiperConfig",
    "DockedPose",
    "PiperDocker",
    "BackendDecision",
    "select_backend",
    "DockingEngine",
    "DockingRun",
]
