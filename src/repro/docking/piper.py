"""PIPER driver: the exhaustive rotation loop of FTMap's rigid-docking phase.

Per rotation (Sec. II.A / Fig. 2b):

1. rotate the probe and re-grid it on the host (*rotation and grid
   assignment* — stays on the host in the paper's GPU port too),
2. correlate all channels against the receptor grids (*FFT correlations* /
   direct correlation on the GPU),
3. combine weighted channel scores (*accumulation*),
4. filter the 4 best, region-separated translations (*scoring and
   filtering*).

FTMap runs 500 rotations and retains 4 poses each -> 2000 conformations
for the minimization phase.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.constants import (
    DEFAULT_PROBE_GRID,
    DEFAULT_PROTEIN_GRID,
    FILTER_EXCLUSION_RADIUS,
    FTMAP_NUM_ROTATIONS,
    MIN_DESOLVATION_TERMS,
    POSES_PER_ROTATION,
)
from repro.docking.batched import BatchedFFTCorrelationEngine
from repro.docking.correlation import CorrelationEngine
from repro.docking.direct import DirectCorrelationEngine
from repro.docking.fft import FFTCorrelationEngine
from repro.docking.filtering import filter_top_poses
from repro.docking.selection import select_backend
from repro.geometry.sampling import rotation_set
from repro.geometry.transforms import RigidTransform, centered
from repro.grids.energyfunctions import EnergyGrids, protein_grids_cached
from repro.grids.gridding import GridSpec
from repro.grids.rotation import ligand_grid_spec, rotate_and_grid_ligand
from repro.structure.molecule import Molecule
from repro.util.parallel import RotationExecutor, chunked

__all__ = ["PiperConfig", "DockedPose", "PiperDocker", "ENGINE_NAMES"]

#: Engine names accepted by :attr:`PiperConfig.engine`.
ENGINE_NAMES = ("direct", "fft", "batched-fft", "auto")


@dataclass(frozen=True)
class PiperConfig:
    """Configuration of one PIPER run.

    Defaults follow the paper: 500 rotations, 4 poses/rotation, 128^3
    receptor grid, 4^3 probe grid, 4 desolvation terms (the minimum of the
    4..18 range), direct correlation engine.

    ``engine`` may also be ``"batched-fft"`` (multi-rotation vectorized FFT
    path) or ``"auto"`` (cost-model backend selection per problem size, see
    :mod:`repro.docking.selection`).  ``batch_size`` caps how many rotations
    are gridded and scored per batched pass (``None`` = engine default);
    ``fft_workers`` feeds the FFT engines' thread fan-out.
    """

    num_rotations: int = FTMAP_NUM_ROTATIONS
    poses_per_rotation: int = POSES_PER_ROTATION
    receptor_grid: int = DEFAULT_PROTEIN_GRID
    probe_grid: int = DEFAULT_PROBE_GRID
    grid_spacing: float = 1.0
    n_desolvation_terms: int = MIN_DESOLVATION_TERMS
    exclusion_radius: int = FILTER_EXCLUSION_RADIUS
    engine: str = "direct"  # see ENGINE_NAMES
    rotation_scheme: str = "super-fibonacci"
    desolvation_seed: int = 2010
    batch_size: Optional[int] = None
    fft_workers: int = 1

    def __post_init__(self) -> None:
        if self.num_rotations < 1:
            raise ValueError("need at least one rotation")
        if self.poses_per_rotation < 1:
            raise ValueError("need at least one pose per rotation")
        if self.engine not in ENGINE_NAMES:
            raise ValueError(f"unknown engine {self.engine!r}")
        if self.batch_size is not None and self.batch_size < 1:
            raise ValueError("batch_size must be >= 1")


@dataclass(frozen=True)
class DockedPose:
    """One retained pose: rotation + voxel translation + world transform."""

    rotation_index: int
    rotation: np.ndarray
    translation: tuple            # voxel offsets (a, b, c)
    score: float
    transform: RigidTransform     # maps centered probe coords to world space

    def __lt__(self, other: "DockedPose") -> bool:
        return self.score < other.score


class PiperDocker:
    """Rigid-docking driver: grids the receptor once, loops over rotations.

    Parameters
    ----------
    receptor:
        Protein molecule.
    probe:
        Small-molecule probe; must fit the configured probe grid.
    config:
        :class:`PiperConfig`.
    engine:
        Optional explicit :class:`CorrelationEngine` (overrides
        ``config.engine``).
    cache:
        Optional :class:`~repro.cache.manager.CacheManager`.  When enabled,
        the receptor grid build is served content-addressed (structurally
        equal receptors reuse the grids across dockers and probes) and the
        FFT engines route their receptor-spectra caching through the same
        manager (so a disk tier shares spectra across processes).
    """

    def __init__(
        self,
        receptor: Molecule,
        probe: Molecule,
        config: PiperConfig | None = None,
        engine: Optional[CorrelationEngine] = None,
        cache=None,
    ) -> None:
        self.receptor = receptor
        self.probe = probe
        self.config = config or PiperConfig()
        self.cache = cache
        cfg = self.config

        self.receptor_spec = GridSpec.centered_on(
            receptor, cfg.receptor_grid, cfg.grid_spacing
        )
        self.probe_spec = ligand_grid_spec(probe, cfg.probe_grid, cfg.grid_spacing)
        self.receptor_grids = protein_grids_cached(
            receptor,
            self.receptor_spec,
            n_desolvation_terms=cfg.n_desolvation_terms,
            desolvation_seed=cfg.desolvation_seed,
            cache=cache,
        )
        self.rotations = rotation_set(cfg.num_rotations, cfg.rotation_scheme)
        if engine is not None:
            self.engine: CorrelationEngine = engine
        else:
            self.engine = self._build_engine(cfg.engine)

    def _build_engine(self, name: str) -> CorrelationEngine:
        if name == "auto":
            decision = select_backend(
                self.config.receptor_grid,
                self.config.probe_grid,
                self.receptor_grids.n_channels,
                num_rotations=len(self.rotations),
                batch_size=self.config.batch_size,
            )
            name = decision.backend
        # Route spectra through the artifact cache only when one is active;
        # otherwise engines fall back to the shared in-process spectra
        # manager (spectra reuse across rotations is never off).
        spectra = self.cache if self.cache is not None and self.cache.enabled else None
        if name == "fft":
            return FFTCorrelationEngine(
                workers=self.config.fft_workers, spectra_cache=spectra
            )
        if name == "batched-fft":
            return BatchedFFTCorrelationEngine(
                workers=self.config.fft_workers, spectra_cache=spectra
            )
        return DirectCorrelationEngine()

    # -- single rotation ------------------------------------------------------

    def grid_rotation(self, rotation_index: int) -> EnergyGrids:
        """Host-side step 1: rotate the probe and re-grid it."""
        cfg = self.config
        return rotate_and_grid_ligand(
            self.probe,
            self.rotations[rotation_index],
            self.probe_spec,
            n_desolvation_terms=cfg.n_desolvation_terms,
            desolvation_seed=cfg.desolvation_seed,
        )

    def score_rotation(self, rotation_index: int) -> np.ndarray:
        """Weighted pose-energy grid for one rotation (steps 1-3)."""
        lig = self.grid_rotation(rotation_index)
        return self.engine.correlate(self.receptor_grids, lig)

    def poses_for_rotation(self, rotation_index: int) -> List[DockedPose]:
        """Top poses for one rotation (steps 1-4)."""
        cfg = self.config
        scores = self.score_rotation(rotation_index)
        filtered = filter_top_poses(
            scores, cfg.poses_per_rotation, cfg.exclusion_radius
        )
        return [self._to_docked(rotation_index, f) for f in filtered]

    def _to_docked(self, rotation_index: int, f) -> DockedPose:
        # World transform: probe voxel d maps to receptor voxel a + d, so a
        # centered, rotated probe atom x lands at
        #   X = x + (receptor_origin + a * h - probe_origin).
        h = self.config.grid_spacing
        a = np.asarray(f.translation, dtype=float)
        t = (
            np.asarray(self.receptor_spec.origin)
            + a * h
            - np.asarray(self.probe_spec.origin)
        )
        return DockedPose(
            rotation_index=rotation_index,
            rotation=self.rotations[rotation_index],
            translation=f.translation,
            score=f.score,
            transform=RigidTransform(self.rotations[rotation_index], t),
        )

    # -- full run -----------------------------------------------------------------

    def default_batch_size(self) -> int:
        """Rotations per batched pass: configured, else the engine's cap.

        Engines without a vectorized batch path keep a batch of 1 — their
        base-class ``correlate_batch`` is a per-rotation loop, so batching
        would only change memory footprint, not arithmetic.
        """
        if self.config.batch_size is not None:
            return self.config.batch_size
        if isinstance(self.engine, BatchedFFTCorrelationEngine):
            from repro.docking.batched import DEFAULT_FFT_BATCH

            return max(1, min(DEFAULT_FFT_BATCH, self.engine.max_batch(self.receptor_grids)))
        return 1

    def run(
        self,
        rotation_indices: Sequence[int] | None = None,
        batch_size: int | None = None,
        executor: RotationExecutor | None = None,
    ) -> List[DockedPose]:
        """Dock over all (or selected) rotations; poses sorted by energy.

        Rotations are processed in batches: each batch is gridded on the
        host (fanned out over ``executor`` when given), scored in one
        ``correlate_batch`` call, and filtered per rotation.  A batch size
        of 1 reproduces the classic per-rotation loop exactly.
        """
        indices = list(
            range(len(self.rotations)) if rotation_indices is None else rotation_indices
        )
        bs = batch_size if batch_size is not None else self.default_batch_size()
        if bs < 1:
            raise ValueError("batch_size must be >= 1")
        exe = executor or RotationExecutor("serial")
        cfg = self.config

        poses: List[DockedPose] = []
        for chunk in chunked(indices, bs):
            grids = exe.map(self.grid_rotation, chunk)
            score_stack = self.engine.correlate_batch(self.receptor_grids, grids)
            for ri, scores in zip(chunk, score_stack):
                filtered = filter_top_poses(
                    scores, cfg.poses_per_rotation, cfg.exclusion_radius
                )
                poses.extend(self._to_docked(ri, f) for f in filtered)
        poses.sort()
        return poses

    def docked_probe_coords(self, pose: DockedPose) -> np.ndarray:
        """World-space probe coordinates for a docked pose."""
        return pose.transform.apply(centered(self.probe.coords))
