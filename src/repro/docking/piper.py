"""PIPER driver: the exhaustive rotation loop of FTMap's rigid-docking phase.

Per rotation (Sec. II.A / Fig. 2b):

1. rotate the probe and re-grid it on the host (*rotation and grid
   assignment* — stays on the host in the paper's GPU port too),
2. correlate all channels against the receptor grids (*FFT correlations* /
   direct correlation on the GPU),
3. combine weighted channel scores (*accumulation*),
4. filter the 4 best, region-separated translations (*scoring and
   filtering*).

FTMap runs 500 rotations and retains 4 poses each -> 2000 conformations
for the minimization phase.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from repro.constants import (
    DEFAULT_PROBE_GRID,
    DEFAULT_PROTEIN_GRID,
    FILTER_EXCLUSION_RADIUS,
    FTMAP_NUM_ROTATIONS,
    MIN_DESOLVATION_TERMS,
    POSES_PER_ROTATION,
)
from repro.docking.correlation import CorrelationEngine
from repro.docking.direct import DirectCorrelationEngine
from repro.docking.fft import FFTCorrelationEngine
from repro.docking.filtering import filter_top_poses
from repro.geometry.sampling import rotation_set
from repro.geometry.transforms import RigidTransform, centered
from repro.grids.energyfunctions import protein_grids
from repro.grids.gridding import GridSpec
from repro.grids.rotation import ligand_grid_spec, rotate_and_grid_ligand
from repro.structure.molecule import Molecule

__all__ = ["PiperConfig", "DockedPose", "PiperDocker"]


@dataclass(frozen=True)
class PiperConfig:
    """Configuration of one PIPER run.

    Defaults follow the paper: 500 rotations, 4 poses/rotation, 128^3
    receptor grid, 4^3 probe grid, 4 desolvation terms (the minimum of the
    4..18 range), direct correlation engine.
    """

    num_rotations: int = FTMAP_NUM_ROTATIONS
    poses_per_rotation: int = POSES_PER_ROTATION
    receptor_grid: int = DEFAULT_PROTEIN_GRID
    probe_grid: int = DEFAULT_PROBE_GRID
    grid_spacing: float = 1.0
    n_desolvation_terms: int = MIN_DESOLVATION_TERMS
    exclusion_radius: int = FILTER_EXCLUSION_RADIUS
    engine: str = "direct"  # "direct" | "fft"
    rotation_scheme: str = "super-fibonacci"
    desolvation_seed: int = 2010

    def __post_init__(self) -> None:
        if self.num_rotations < 1:
            raise ValueError("need at least one rotation")
        if self.poses_per_rotation < 1:
            raise ValueError("need at least one pose per rotation")
        if self.engine not in ("direct", "fft"):
            raise ValueError(f"unknown engine {self.engine!r}")


@dataclass(frozen=True)
class DockedPose:
    """One retained pose: rotation + voxel translation + world transform."""

    rotation_index: int
    rotation: np.ndarray
    translation: tuple            # voxel offsets (a, b, c)
    score: float
    transform: RigidTransform     # maps centered probe coords to world space

    def __lt__(self, other: "DockedPose") -> bool:
        return self.score < other.score


class PiperDocker:
    """Rigid-docking driver: grids the receptor once, loops over rotations.

    Parameters
    ----------
    receptor:
        Protein molecule.
    probe:
        Small-molecule probe; must fit the configured probe grid.
    config:
        :class:`PiperConfig`.
    engine:
        Optional explicit :class:`CorrelationEngine` (overrides
        ``config.engine``).
    """

    def __init__(
        self,
        receptor: Molecule,
        probe: Molecule,
        config: PiperConfig | None = None,
        engine: Optional[CorrelationEngine] = None,
    ) -> None:
        self.receptor = receptor
        self.probe = probe
        self.config = config or PiperConfig()
        cfg = self.config

        self.receptor_spec = GridSpec.centered_on(
            receptor, cfg.receptor_grid, cfg.grid_spacing
        )
        self.probe_spec = ligand_grid_spec(probe, cfg.probe_grid, cfg.grid_spacing)
        self.receptor_grids = protein_grids(
            receptor,
            self.receptor_spec,
            n_desolvation_terms=cfg.n_desolvation_terms,
            desolvation_seed=cfg.desolvation_seed,
        )
        if engine is not None:
            self.engine: CorrelationEngine = engine
        elif cfg.engine == "fft":
            self.engine = FFTCorrelationEngine()
        else:
            self.engine = DirectCorrelationEngine()
        self.rotations = rotation_set(cfg.num_rotations, cfg.rotation_scheme)

    # -- single rotation ------------------------------------------------------

    def score_rotation(self, rotation_index: int) -> np.ndarray:
        """Weighted pose-energy grid for one rotation (steps 1-3)."""
        cfg = self.config
        lig = rotate_and_grid_ligand(
            self.probe,
            self.rotations[rotation_index],
            self.probe_spec,
            n_desolvation_terms=cfg.n_desolvation_terms,
            desolvation_seed=cfg.desolvation_seed,
        )
        return self.engine.correlate(self.receptor_grids, lig)

    def poses_for_rotation(self, rotation_index: int) -> List[DockedPose]:
        """Top poses for one rotation (steps 1-4)."""
        cfg = self.config
        scores = self.score_rotation(rotation_index)
        filtered = filter_top_poses(
            scores, cfg.poses_per_rotation, cfg.exclusion_radius
        )
        return [self._to_docked(rotation_index, f) for f in filtered]

    def _to_docked(self, rotation_index: int, f) -> DockedPose:
        # World transform: probe voxel d maps to receptor voxel a + d, so a
        # centered, rotated probe atom x lands at
        #   X = x + (receptor_origin + a * h - probe_origin).
        h = self.config.grid_spacing
        a = np.asarray(f.translation, dtype=float)
        t = (
            np.asarray(self.receptor_spec.origin)
            + a * h
            - np.asarray(self.probe_spec.origin)
        )
        return DockedPose(
            rotation_index=rotation_index,
            rotation=self.rotations[rotation_index],
            translation=f.translation,
            score=f.score,
            transform=RigidTransform(self.rotations[rotation_index], t),
        )

    # -- full run -----------------------------------------------------------------

    def run(self, rotation_indices: Sequence[int] | None = None) -> List[DockedPose]:
        """Dock over all (or selected) rotations; poses sorted by energy."""
        indices = (
            range(len(self.rotations)) if rotation_indices is None else rotation_indices
        )
        poses: List[DockedPose] = []
        for ri in indices:
            poses.extend(self.poses_for_rotation(ri))
        poses.sort()
        return poses

    def docked_probe_coords(self, pose: DockedPose) -> np.ndarray:
        """World-space probe coordinates for a docked pose."""
        return pose.transform.apply(centered(self.probe.coords))
