"""Pose scoring: weighted combination of channel correlations (Eq. 2).

``E = E_shape + w2 * E_elec + w3 * E_desol``.  The channel weights live on
the receptor :class:`EnergyGrids` (clash penalty, contact reward, w2, w3 and
desolvation eigenvalue signs); this module combines per-channel correlation
grids and exposes the decomposition used by the profiling figures.
"""

from __future__ import annotations

from typing import Dict, Sequence

import numpy as np

__all__ = ["combine_channel_scores", "score_decomposition"]


def combine_channel_scores(
    channel_corrs: np.ndarray, weights: Sequence[float]
) -> np.ndarray:
    """Weighted sum of per-channel correlation grids.

    Parameters
    ----------
    channel_corrs:
        (C, T, T, T) unweighted correlation grids.
    weights:
        C per-channel weights (receptor weights x ligand weights).

    Returns
    -------
    (T, T, T) pose-energy grid (lower = better).
    """
    corrs = np.asarray(channel_corrs, dtype=float)
    w = np.asarray(weights, dtype=float)
    if corrs.ndim != 4:
        raise ValueError(f"expected (C, T, T, T), got {corrs.shape}")
    if w.shape != (corrs.shape[0],):
        raise ValueError(
            f"got {w.shape[0] if w.ndim else 0} weights for {corrs.shape[0]} channels"
        )
    return np.einsum("c,cijk->ijk", w, corrs)


def score_decomposition(
    channel_corrs: np.ndarray,
    weights: Sequence[float],
    labels: Sequence[str],
    translation: tuple,
) -> Dict[str, float]:
    """Per-channel-group energy contributions at one translation.

    Groups channels by prefix (shape_*, elec_*, desolvation_*) and reports
    the weighted contribution of each group plus the total — the terms of
    Eq. (2) for a single pose.
    """
    corrs = np.asarray(channel_corrs, dtype=float)
    w = np.asarray(weights, dtype=float)
    a, b, c = translation
    groups: Dict[str, float] = {"shape": 0.0, "elec": 0.0, "desolvation": 0.0}
    for ci, label in enumerate(labels):
        val = float(w[ci] * corrs[ci, a, b, c])
        if label.startswith("shape"):
            groups["shape"] += val
        elif label.startswith("elec"):
            groups["elec"] += val
        else:
            groups["desolvation"] += val
    groups["total"] = groups["shape"] + groups["elec"] + groups["desolvation"]
    return groups
