"""Top-pose filtering with region exclusion (Fig. 5).

"Filtering is performed by selecting the best score and then excluding its
neighbors while selecting the next best score.  Such exclusion is done to
avoid selecting multiple best scores from the same region."  (Sec. III.B)

This module provides the serial reference implementation; the GPU version
(``repro.gpu.scoring_kernel``) reproduces the single-multiprocessor
distribution of Fig. 6 and must agree with this one exactly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.constants import FILTER_EXCLUSION_RADIUS

__all__ = ["FilteredPose", "filter_top_poses", "exclusion_mask_size"]


@dataclass(frozen=True)
class FilteredPose:
    """One retained translation: voxel index and its pose energy."""

    translation: Tuple[int, int, int]
    score: float


def filter_top_poses(
    score_grid: np.ndarray,
    k: int,
    exclusion_radius: int = FILTER_EXCLUSION_RADIUS,
) -> List[FilteredPose]:
    """Select the ``k`` best (lowest-energy) poses with region exclusion.

    After each selection, every voxel within Chebyshev distance
    ``exclusion_radius`` of the selected voxel is excluded from later
    selections — the cube marked "for exclusion" in Fig. 5.  The exclusion
    state is the length-T^3 flag array the paper stores in GPU global memory
    ("an array of length N^3 ... for constant time lookup").

    Returns fewer than ``k`` poses only if exclusion exhausts the grid.
    """
    if k < 0:
        raise ValueError("k must be non-negative")
    grid = np.asarray(score_grid, dtype=float)
    if grid.ndim != 3:
        raise ValueError(f"expected a 3-D score grid, got shape {grid.shape}")
    t = grid.shape
    excluded = np.zeros(t, dtype=bool)
    poses: List[FilteredPose] = []
    work = grid.copy()

    for _ in range(k):
        work[excluded] = np.inf
        flat_idx = int(np.argmin(work))
        best = float(work.reshape(-1)[flat_idx])
        if not np.isfinite(best):
            break  # everything excluded
        a, b, c = np.unravel_index(flat_idx, t)
        poses.append(FilteredPose(translation=(int(a), int(b), int(c)), score=best))
        r = exclusion_radius
        excluded[
            max(0, a - r) : a + r + 1,
            max(0, b - r) : b + r + 1,
            max(0, c - r) : c + r + 1,
        ] = True
    return poses


def exclusion_mask_size(grid_edge: int) -> int:
    """Bytes of the exclusion flag array for an edge-``grid_edge`` result grid.

    One byte per cell; for N = 128 this is 2 MiB — too large for the 16 KB
    shared memory, which is why the paper keeps it in global memory.
    """
    return grid_edge**3
