"""Batched multi-rotation FFT correlation.

The paper's central restructuring (Sec. III.A) is to keep the hardware busy
across rotations instead of paying the per-rotation pipeline cost one
rotation at a time.  This module applies the same idea to the FFT path:

* **Rotation stacking** — the rotated ligand grids of a whole batch are
  stacked into one (B, C, m1, m2, m3) array and transformed together, so
  the B x C forward transforms run as a single vectorized sweep (and fan
  out over ``workers`` threads on multicore hosts).
* **Staged zero-padded forward FFTs** — a padded ligand transform only has
  m^3 non-zero inputs.  Transforming axis-by-axis and letting each 1-D pass
  zero-pad internally (``fft(x, n=N)``) does ~``m*m*N + m*N*N + N^3`` points
  of work instead of the naive ``3 * N^3``: nearly a 3x flop reduction of
  the dominant forward transforms when ``m << N``.
* **Fused frequency-domain reduction** — the receptor spectra are
  conjugated, transposed into the staged layout and cached once; the
  weighted channel sum is then a single einsum contraction per batch over
  contiguous arrays, avoiding the per-rotation C-channel temporaries of
  the serial engine.
* **Single-precision compute (default)** — the paper's C1060 runs the
  correlations in fp32; so does this path.  It halves the memory traffic
  of the batch (the bottleneck on the host too) at ~1e-7 relative error.
  Pass ``precision="double"`` for results that match the serial
  :class:`~repro.docking.fft.FFTCorrelationEngine` to fp64 round-off.

Top poses are identical to the serial engines in either precision on the
test systems.  Grids may be non-cubic — all shape logic reads the channel
arrays, not ``spec.n``.
"""

from __future__ import annotations

import os
from typing import Optional, Sequence, Tuple

import numpy as np
from scipy import fft as sp_fft

from repro.cache.manager import CacheManager
from repro.docking.correlation import (
    CorrelationEngine,
    SpectraCache,
    valid_translation_shape,
)
from repro.grids.energyfunctions import EnergyGrids

__all__ = [
    "BatchedFFTCorrelationEngine",
    "stack_rotation_grids",
    "fft_batch_limit",
    "DEFAULT_FFT_BATCH",
    "DEFAULT_FFT_MEMORY_BUDGET",
]

#: Default rotation batch when nothing smarter is known.
DEFAULT_FFT_BATCH = 16

#: Working-set budget for one batched pass (bytes).  Bounds the stacked
#: spectra so paper-scale grids (N=128, 22 channels) keep batches modest
#: instead of exhausting host memory.
DEFAULT_FFT_MEMORY_BUDGET = 1024 * 1024 * 1024


def fft_batch_limit(
    receptor_shape: Sequence[int],
    n_channels: int,
    budget_bytes: int = DEFAULT_FFT_MEMORY_BUDGET,
    complex_itemsize: int = 8,
) -> int:
    """Largest rotation batch whose stacked spectra fit ``budget_bytes``.

    The working set per rotation is the (C, N1, N2, N3/2+1) half-spectrum
    of the staged forward output plus ~half that again for the stage
    temporaries and the combined spectrum.  Always allows at least one
    rotation.
    """
    n1, n2, n3 = (int(v) for v in receptor_shape)
    if n1 < 1 or n2 < 1 or n3 < 1 or n_channels < 1:
        raise ValueError("grid shape and channel count must be positive")
    spectra = n_channels * n1 * n2 * (n3 // 2 + 1) * complex_itemsize
    per_rotation = spectra + spectra // 2
    return max(1, int(budget_bytes // per_rotation))


def stack_rotation_grids(
    ligand_rotations: Sequence[EnergyGrids], dtype=np.float64
) -> np.ndarray:
    """Stack a batch of rotation grids into one (B, C, m1, m2, m3) array."""
    if not ligand_rotations:
        raise ValueError("empty rotation batch")
    base = ligand_rotations[0].channels.shape
    for lg in ligand_rotations[1:]:
        if lg.channels.shape != base:
            raise ValueError("all batched rotations must share grid geometry")
    return np.stack([lg.channels for lg in ligand_rotations]).astype(dtype)


class BatchedFFTCorrelationEngine(CorrelationEngine):
    """FFT correlation over a whole batch of rotations per call.

    Parameters
    ----------
    workers:
        FFT worker threads (scipy ``workers=``); defaults to the host core
        count — batching is what makes the thread fan-out effective, since
        a single rotation's C transforms rarely saturate the cores.
    precision:
        ``"single"`` (default, the GPU's arithmetic) or ``"double"``
        (bit-faithful to the serial FFT engine's fp64 pipeline).
    memory_budget_bytes:
        Cap on the stacked-spectra working set; :meth:`max_batch` derives
        the largest admissible batch from it.
    spectra_cache:
        Optional :class:`~repro.cache.manager.CacheManager` backing the
        receptor-spectra cache; defaults to the shared in-process spectra
        manager.
    """

    name = "batched-fft"

    def __init__(
        self,
        workers: Optional[int] = None,
        precision: str = "single",
        memory_budget_bytes: int = DEFAULT_FFT_MEMORY_BUDGET,
        spectra_cache: Optional[CacheManager] = None,
    ) -> None:
        if precision not in ("single", "double"):
            raise ValueError(f"unknown precision {precision!r}")
        self.workers = workers if workers is not None else (os.cpu_count() or 1)
        self.precision = precision
        self.memory_budget_bytes = memory_budget_bytes
        self._real_dtype = np.float32 if precision == "single" else np.float64
        self._complex_itemsize = 8 if precision == "single" else 16
        # Content-addressed: keyed by grid content + the staged conjugated
        # layout's precision, shared across engine instances.
        self._receptor_cache = SpectraCache(
            f"batched-{precision}", cache=spectra_cache
        )

    # -- capacity ---------------------------------------------------------------

    def max_batch(self, receptor: EnergyGrids) -> int:
        """Largest batch for this receptor under the memory budget."""
        return fft_batch_limit(
            receptor.channels.shape[1:],
            receptor.n_channels,
            self.memory_budget_bytes,
            self._complex_itemsize,
        )

    # -- single rotation (CorrelationEngine interface) --------------------------

    def correlate(self, receptor: EnergyGrids, ligand: EnergyGrids) -> np.ndarray:
        return self.correlate_batch(receptor, [ligand])[0]

    # -- batched path -----------------------------------------------------------

    def correlate_batch(
        self, receptor: EnergyGrids, ligand_rotations: Sequence[EnergyGrids]
    ) -> np.ndarray:
        """Weighted pose-energy grids for a batch, shape (B, T1, T2, T3).

        The whole pipeline runs in the staged ``[fz, y, x]`` layout so every
        FFT pass and the channel contraction see contiguous memory; a single
        transpose-and-slice at the end restores ``[x, y, z]`` order.
        """
        self._check_batch(receptor, ligand_rotations)
        n1, n2, n3 = receptor.channels.shape[1:]
        t1, t2, t3 = valid_translation_shape(
            (n1, n2, n3), ligand_rotations[0].channels.shape[1:]
        )

        rec_conj = self._receptor_spectra(receptor)
        weights = (receptor.weights * ligand_rotations[0].weights).astype(
            self._real_dtype
        )
        for lg in ligand_rotations[1:]:
            if not np.array_equal(lg.weights, ligand_rotations[0].weights):
                raise ValueError("all batched rotations must share channel weights")

        stack = stack_rotation_grids(ligand_rotations, dtype=self._real_dtype)
        lig_spec = self._staged_forward(stack, (n1, n2, n3))  # (B,C,fz,y,x)

        # Sum_c w_c * R_hat_c * conj(L_hat_c) == conj(Sum_c w_c conj(R_hat_c)
        # L_hat_c): contract against the cached conjugated spectra and flip
        # once, so the batch needs a single reduction and no C-channel
        # temporaries.
        combined = np.einsum("c,cijk,bcijk->bijk", weights, rec_conj, lig_spec)
        np.conj(combined, out=combined)
        corr = sp_fft.irfftn(
            combined, s=(n1, n2, n3), axes=(3, 2, 1), workers=self.workers
        )  # (B, z, y, x)
        return np.ascontiguousarray(
            corr.transpose(0, 3, 2, 1)[:, :t1, :t2, :t3]
        )

    def _receptor_spectra(self, receptor: EnergyGrids) -> np.ndarray:
        """Conjugated receptor spectra in staged (C, fz, y, x) layout, cached."""
        spectra = self._receptor_cache.get(receptor)
        if spectra is None:
            spectra = np.conj(
                sp_fft.rfftn(
                    receptor.channels.astype(self._real_dtype),
                    axes=(1, 2, 3),
                    workers=self.workers,
                )
            )
            spectra = np.ascontiguousarray(spectra.transpose(0, 3, 2, 1))
            self._receptor_cache.put(receptor, spectra)
        return spectra

    def _staged_forward(
        self, stack: np.ndarray, shape: Tuple[int, int, int]
    ) -> np.ndarray:
        """Zero-padded forward spectra of the stacked batch.

        Pads one axis per pass (each 1-D FFT zero-pads internally via
        ``n=``), keeping the transformed axis contiguous between passes.
        Returns the (B, C, N3/2+1, N2, N1) staged-layout spectra, equal (up
        to round-off order) to ``rfftn`` of the fully padded stack.
        """
        n1, n2, n3 = shape
        s1 = sp_fft.rfft(stack, n=n3, axis=4, workers=self.workers)
        s1 = np.ascontiguousarray(np.moveaxis(s1, 3, 4))  # (B,C,m1,fz,m2)
        s2 = sp_fft.fft(s1, n=n2, axis=4, workers=self.workers)
        s2 = np.ascontiguousarray(np.moveaxis(s2, 2, 4))  # (B,C,fz,n2,m1)
        return sp_fft.fft(s2, n=n1, axis=4, workers=self.workers)

    def clear_cache(self) -> None:
        """Drop the cached staged spectra of this engine's precision.

        The backing store is shared (content-addressed), so this clears
        that variant for *every* engine on the same manager — and the
        on-disk namespace too when a disk-backed manager is injected.
        """
        self._receptor_cache.clear()
