"""The single docking entry point: backend selection + batched execution.

Every scenario in the package — plain docking, FTMap binding-site mapping,
ablation benchmarks — funnels through :class:`DockingEngine`.  The facade

1. resolves a backend (``direct`` / ``fft`` / ``batched-fft`` / ``gpu-sim``
   / ``auto``) via the cost-model selection layer
   (:mod:`repro.docking.selection`),
2. builds the matching execution path — a :class:`PiperDocker` with the
   chosen correlation engine, or the virtual-GPU
   :class:`~repro.gpu.docking_pipeline.GpuPiperDocker` for ``gpu-sim``,
3. runs rotations through the batched loop, optionally fanning host-side
   gridding out over a :class:`~repro.util.parallel.RotationExecutor`.

All backends produce the same poses (tested); they differ in wall-clock
and, for ``gpu-sim``, in the predicted-device-time ledger attached to the
result.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.docking.piper import DockedPose, PiperConfig, PiperDocker
from repro.obs.metrics import registry
from repro.docking.selection import CPU_BACKENDS, BackendDecision, select_backend
from repro.structure.molecule import Molecule
from repro.util.parallel import RotationExecutor

__all__ = ["DockingEngine", "DockingRun", "BACKEND_NAMES"]

#: Backends the facade can execute.
BACKEND_NAMES = CPU_BACKENDS + ("gpu-sim", "auto")


@dataclass
class DockingRun:
    """Poses plus the provenance of one facade run."""

    poses: List[DockedPose]
    backend: str
    batch_size: int
    decision: BackendDecision
    predicted_device_time_s: Optional[float] = None   # gpu-sim only


class DockingEngine:
    """Facade over the PIPER rotation loop with auto-selected backends.

    Parameters
    ----------
    receptor, probe:
        The molecules to dock.
    config:
        :class:`PiperConfig`; its ``engine`` field is the default backend.
    backend:
        Override: one of :data:`BACKEND_NAMES`.  ``"auto"`` picks the
        cheapest CPU backend from the cost models; ``"gpu-sim"`` routes
        through the virtual-device pipeline.
    workers:
        Host-side gridding fan-out (thread executor) for batched passes.
    device:
        Virtual device for ``gpu-sim`` (defaults to the paper's C1060).
    cache:
        Optional :class:`~repro.cache.manager.CacheManager` threaded into
        the :class:`PiperDocker` (receptor grid build + spectra caching).
    """

    def __init__(
        self,
        receptor: Molecule,
        probe: Molecule,
        config: PiperConfig | None = None,
        backend: str | None = None,
        batch_size: int | None = None,
        workers: int | None = None,
        device=None,
        cache=None,
    ) -> None:
        self.config = config or PiperConfig()
        requested = backend if backend is not None else self.config.engine
        if requested not in BACKEND_NAMES:
            raise ValueError(
                f"unknown backend {requested!r}; expected one of {BACKEND_NAMES}"
            )
        # Built with a placeholder engine: the real one is resolved below,
        # after the receptor grids (channel count) exist for the selector.
        from repro.docking.direct import DirectCorrelationEngine

        self.docker = PiperDocker(
            receptor, probe, self.config, engine=DirectCorrelationEngine(),
            cache=cache,
        )
        self.decision = select_backend(
            self.config.receptor_grid,
            self.config.probe_grid,
            self.docker.receptor_grids.n_channels,
            num_rotations=self.config.num_rotations,
            batch_size=batch_size if batch_size is not None else self.config.batch_size,
            include_gpu=requested == "gpu-sim",
            device_spec=device.spec if device is not None else None,
        )
        self.backend = requested if requested != "auto" else self.decision.backend
        self._executor = (
            RotationExecutor("thread", workers) if workers and workers > 1 else None
        )
        self._device = device
        if self.backend != "gpu-sim":
            self.docker.engine = self.docker._build_engine(self.backend)
        # Batch size follows the *resolved engine*, not the selector's
        # winner: an explicitly requested batched backend must batch even
        # when the cost model would have picked something else.
        if batch_size is not None:
            self.batch_size = batch_size
        elif self.config.batch_size is not None:
            self.batch_size = self.config.batch_size
        elif self.backend == "gpu-sim":
            self.batch_size = self.decision.batch_size
        else:
            self.batch_size = self.docker.default_batch_size()
            if self._executor is not None and self.batch_size == 1:
                # A gridding fan-out needs multi-rotation chunks to bite:
                # widen the chunk for the loop-batch engines (direct/fft
                # default to 1), keeping numerics identical.  The batched
                # engine's own size is memory-budgeted — never widen it.
                self.batch_size = 2 * self._executor.workers

    # -- execution ---------------------------------------------------------------

    def run(self, rotation_indices: Sequence[int] | None = None) -> List[DockedPose]:
        """Dock; returns the energy-sorted pose list."""
        return self.run_detailed(rotation_indices).poses

    def run_detailed(
        self, rotation_indices: Sequence[int] | None = None
    ) -> DockingRun:
        """Dock and report backend provenance (and GPU time ledger)."""
        t_start = time.perf_counter()
        if self.backend == "gpu-sim":
            from repro.cuda.device import Device
            from repro.gpu.docking_pipeline import GpuPiperDocker

            gpu = GpuPiperDocker(
                self.docker.receptor,
                self.docker.probe,
                self.config,
                device=self._device or Device(),
                serial=self.docker,
            )
            res = gpu.run(rotation_indices)
            run = DockingRun(
                poses=res.poses,
                backend=self.backend,
                batch_size=res.batch_size,
                decision=self.decision,
                predicted_device_time_s=res.predicted_device_time_s,
            )
        else:
            poses = self.docker.run(
                rotation_indices, batch_size=self.batch_size, executor=self._executor
            )
            run = DockingRun(
                poses=poses,
                backend=self.backend,
                batch_size=self.batch_size,
                decision=self.decision,
            )
        n_rotations = (
            len(rotation_indices)
            if rotation_indices is not None
            else self.config.num_rotations
        )
        reg = registry()
        reg.counter(
            "repro_dock_runs_total", ("backend",),
            help="Docking runs executed, by backend.",
        ).inc(backend=self.backend)
        reg.counter(
            "repro_dock_rotations_total", ("backend",),
            help="Rotations docked, by backend.",
        ).inc(n_rotations, backend=self.backend)
        batch = run.batch_size or 1
        reg.counter(
            "repro_dock_batches_total", ("backend",),
            help="Correlation batches (FFT or direct chunks) executed.",
        ).inc(-(-n_rotations // batch), backend=self.backend)
        reg.histogram(
            "repro_dock_run_seconds", ("backend",),
            help="Wall seconds per docking run.",
        ).observe(time.perf_counter() - t_start, backend=self.backend)
        return run

    # -- conveniences -------------------------------------------------------------

    @property
    def rotations(self):
        return self.docker.rotations

    def docked_probe_coords(self, pose: DockedPose):
        return self.docker.docked_probe_coords(pose)
