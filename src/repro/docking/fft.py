"""FFT correlation engine — PIPER's production algorithm.

Each channel requires a forward FFT of the (padded) ligand grid, a complex
modulation with the receptor's precomputed spectrum, and an inverse FFT
("Direct correlation on a GPU replaces the steps of forward FFT, modulation,
and inverse FFT", Sec. III.A).  The receptor spectra are cached across
rotations, matching PIPER, which transfers/prepares the protein grid once.

Complexity per rotation: C channels x O(N^3 log N).
"""

from __future__ import annotations

import numpy as np
from scipy import fft as sp_fft

from typing import Optional

from repro.cache.manager import CacheManager
from repro.docking.correlation import (
    CorrelationEngine,
    SpectraCache,
    valid_translation_shape,
)
from repro.grids.energyfunctions import EnergyGrids

__all__ = ["FFTCorrelationEngine"]


class FFTCorrelationEngine(CorrelationEngine):
    """Cross-correlation via real FFTs with receptor-spectrum caching.

    With ``R`` the receptor channel and ``L`` the zero-padded ligand channel,
    the pose score ``corr(a) = sum_d L(d) R(a + d) = sum_i R(i) L(i - a)``
    equals ``irfftn(rfftn(R) * conj(rfftn(L)))`` (conjugation on the ligand
    spectrum).  Restricting to the valid cube ``a in [0, n - m]^3`` discards
    wrap-around terms, so circular equals linear correlation there (ligand
    support is only m^3).
    """

    name = "fft"

    def __init__(
        self, workers: int = 1, spectra_cache: Optional[CacheManager] = None
    ) -> None:
        #: Number of FFT worker threads (scipy.fft ``workers=``); the
        #: multicore comparison of Sec. V.A uses >1.
        self.workers = workers
        #: Content-addressed spectra cache: structurally equal receptors
        #: hit across engine instances (and across processes when a
        #: disk-backed manager is injected).
        self._receptor_cache = SpectraCache("fft-f64", cache=spectra_cache)

    def correlate(self, receptor: EnergyGrids, ligand: EnergyGrids) -> np.ndarray:
        self._check(receptor, ligand)
        shape = receptor.channels.shape[1:]
        mshape = ligand.channels.shape[1:]
        t1, t2, t3 = valid_translation_shape(shape, mshape)

        spectra = self._receptor_cache.get(receptor)
        if spectra is None:
            spectra = sp_fft.rfftn(
                receptor.channels.astype(np.float64),
                axes=(1, 2, 3),
                workers=self.workers,
            )
            self._receptor_cache.put(receptor, spectra)

        padded = np.zeros((ligand.n_channels, *shape), dtype=np.float64)
        padded[:, : mshape[0], : mshape[1], : mshape[2]] = ligand.channels
        lig_spec = np.conj(
            sp_fft.rfftn(padded, axes=(1, 2, 3), workers=self.workers)
        )

        weights = receptor.weights * ligand.weights
        # Sum channels in the frequency domain: one inverse FFT instead of C.
        combined = np.einsum("c,cijk->ijk", weights, spectra * lig_spec)
        corr = sp_fft.irfftn(combined, s=shape, workers=self.workers)
        return np.ascontiguousarray(corr[:t1, :t2, :t3])

    def correlate_per_channel(
        self, receptor: EnergyGrids, ligand: EnergyGrids
    ) -> np.ndarray:
        """Unweighted per-channel correlations, shape (C, T, T, T).

        Used by tests and the profiling harness; the production path sums in
        the frequency domain (:meth:`correlate`).
        """
        self._check(receptor, ligand)
        shape = receptor.channels.shape[1:]
        mshape = ligand.channels.shape[1:]
        t1, t2, t3 = valid_translation_shape(shape, mshape)
        padded = np.zeros((ligand.n_channels, *shape), dtype=np.float64)
        padded[:, : mshape[0], : mshape[1], : mshape[2]] = ligand.channels
        rec_spec = sp_fft.rfftn(receptor.channels.astype(np.float64), axes=(1, 2, 3))
        lig_spec = np.conj(sp_fft.rfftn(padded, axes=(1, 2, 3)))
        corr = sp_fft.irfftn(rec_spec * lig_spec, s=shape, axes=(1, 2, 3))
        return np.ascontiguousarray(corr[:, :t1, :t2, :t3])

    def clear_cache(self) -> None:
        """Drop all cached fp64 FFT spectra.

        The backing store is shared (content-addressed), so this clears
        the ``fft-f64`` spectra of *every* engine on the same manager —
        process-wide with the default manager — not just this instance's.
        """
        self._receptor_cache.clear()
