"""Correlation engine interface and shared helpers.

The pose score of Eq. (1) is, per channel ``p``:

    corr_p(a, b, c) = sum_{i,j,k} R_p(i, j, k) * L_p(i + a, j + b, k + c)

with the ligand grid (edge ``m``) much smaller than the receptor grid (edge
``n``).  A translation ``(a, b, c)`` is *valid* when the ligand grid lies
fully inside the receptor grid, i.e. ``0 <= a, b, c <= n - m``.  Engines
return the full weighted score grid over valid translations.
"""

from __future__ import annotations

import weakref
from abc import ABC, abstractmethod
from typing import Sequence, Tuple

import numpy as np

from repro.grids.energyfunctions import EnergyGrids

__all__ = [
    "CorrelationEngine",
    "ReceptorSpectraCache",
    "correlate_channels",
    "valid_translations",
    "valid_translation_shape",
]


class ReceptorSpectraCache:
    """Small bounded cache of per-receptor precomputed arrays.

    Entries are validated through a weak reference to the receptor object,
    so a recycled ``id()`` (receptor freed, new one allocated at the same
    address) can never return another receptor's spectra.  The cache keeps
    at most ``max_entries`` receptors (FIFO eviction) — PIPER reuses one
    protein across all rotations, so a handful of entries covers every
    real workload while bounding memory.
    """

    def __init__(self, max_entries: int = 4) -> None:
        if max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        self.max_entries = max_entries
        self._entries: dict = {}   # id(receptor) -> (weakref, value)

    def get(self, receptor: EnergyGrids):
        entry = self._entries.get(id(receptor))
        if entry is None:
            return None
        ref, value = entry
        if ref() is not receptor:   # address reuse or freed receptor
            del self._entries[id(receptor)]
            return None
        return value

    def put(self, receptor: EnergyGrids, value) -> None:
        self._prune()
        while len(self._entries) >= self.max_entries:
            self._entries.pop(next(iter(self._entries)))
        self._entries[id(receptor)] = (weakref.ref(receptor), value)

    def _prune(self) -> None:
        dead = [k for k, (ref, _) in self._entries.items() if ref() is None]
        for k in dead:
            del self._entries[k]

    def clear(self) -> None:
        self._entries.clear()

    def __len__(self) -> int:
        self._prune()
        return len(self._entries)

    # Engines holding a cache must survive pickling (process executors fork
    # workers and ship bound methods); weakrefs don't pickle, and a cache
    # never needs to — workers simply start cold.
    def __getstate__(self):
        return {"max_entries": self.max_entries}

    def __setstate__(self, state) -> None:
        self.max_entries = state["max_entries"]
        self._entries = {}


def valid_translations(n: int, m: int) -> int:
    """Edge of the valid-translation cube: ``n - m + 1``."""
    if m > n:
        raise ValueError(f"ligand grid ({m}) larger than receptor grid ({n})")
    return n - m + 1


def valid_translation_shape(
    receptor_shape: Sequence[int], ligand_shape: Sequence[int]
) -> Tuple[int, int, int]:
    """Per-axis valid-translation extents ``n_i - m_i + 1``.

    The correlation algebra is separable per axis, so non-cubic grids are
    supported: each axis contributes its own valid range independently.
    """
    if len(receptor_shape) != 3 or len(ligand_shape) != 3:
        raise ValueError("grid shapes must be 3-D")
    return tuple(
        valid_translations(int(n), int(m))
        for n, m in zip(receptor_shape, ligand_shape)
    )


class CorrelationEngine(ABC):
    """Computes weighted multi-channel correlation score grids.

    Subclasses implement :meth:`correlate`, mapping a receptor
    :class:`EnergyGrids` and a ligand :class:`EnergyGrids` (same channel
    count) to a (T, T, T) float array of pose energies over valid
    translations, where ``T = n - m + 1``.
    """

    name: str = "abstract"

    @abstractmethod
    def correlate(self, receptor: EnergyGrids, ligand: EnergyGrids) -> np.ndarray:
        """Weighted pose-energy grid over valid translations."""

    def correlate_batch(
        self, receptor: EnergyGrids, ligand_rotations: Sequence[EnergyGrids]
    ) -> np.ndarray:
        """Score a batch of rotations, returning a (B, T1, T2, T3) stack.

        The base implementation loops :meth:`correlate` per rotation, so
        every engine exposes the batch API with identical numerics; the
        batched-FFT engine overrides this with a vectorized path.
        """
        self._check_batch(receptor, ligand_rotations)
        return np.stack(
            [self.correlate(receptor, lg) for lg in ligand_rotations]
        )

    def _check(self, receptor: EnergyGrids, ligand: EnergyGrids) -> None:
        if receptor.n_channels != ligand.n_channels:
            raise ValueError(
                f"channel mismatch: receptor {receptor.n_channels} vs "
                f"ligand {ligand.n_channels}"
            )
        rec_shape = receptor.channels.shape[1:]
        lig_shape = ligand.channels.shape[1:]
        if any(m > n for n, m in zip(rec_shape, lig_shape)):
            raise ValueError("ligand grid larger than receptor grid")

    def _check_batch(
        self, receptor: EnergyGrids, ligand_rotations: Sequence[EnergyGrids]
    ) -> None:
        if not ligand_rotations:
            raise ValueError("empty rotation batch")
        base = ligand_rotations[0]
        self._check(receptor, base)
        for lg in ligand_rotations[1:]:
            if (
                lg.channels.shape != base.channels.shape
                or lg.n_channels != base.n_channels
            ):
                raise ValueError("all batched rotations must share grid geometry")


def correlate_channels(
    receptor: EnergyGrids,
    ligand: EnergyGrids,
    engine: "CorrelationEngine",
) -> np.ndarray:
    """Convenience wrapper: validate then delegate to ``engine``."""
    engine._check(receptor, ligand)
    return engine.correlate(receptor, ligand)
