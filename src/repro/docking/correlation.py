"""Correlation engine interface and shared helpers.

The pose score of Eq. (1) is, per channel ``p``:

    corr_p(a, b, c) = sum_{i,j,k} R_p(i, j, k) * L_p(i + a, j + b, k + c)

with the ligand grid (edge ``m``) much smaller than the receptor grid (edge
``n``).  A translation ``(a, b, c)`` is *valid* when the ligand grid lies
fully inside the receptor grid, i.e. ``0 <= a, b, c <= n - m``.  Engines
return the full weighted score grid over valid translations.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Optional, Sequence, Tuple

import numpy as np

from repro.cache.keys import compose_key, grids_token
from repro.cache.manager import CacheManager, spectra_cache
from repro.grids.energyfunctions import EnergyGrids

__all__ = [
    "CorrelationEngine",
    "SpectraCache",
    "correlate_channels",
    "valid_translations",
    "valid_translation_shape",
]


class SpectraCache:
    """Content-addressed receptor-spectra cache for the FFT engines.

    Replaces the former ``id()``-keyed weakref cache: keys derive from the
    receptor grid *content* (:func:`repro.cache.keys.grids_token`, memoized
    per object), so structurally equal receptors hit across engine
    instances and object lifetimes, and a recycled ``id()`` can never
    alias another receptor's spectra — the failure mode the weakref scheme
    existed to defend against.

    ``variant`` separates incompatible spectra layouts (per-engine
    precision and memory order) within the shared store.  Entries live in
    the process-wide spectra manager
    (:func:`repro.cache.manager.spectra_cache`, an always-on bounded
    memory tier) unless an explicit :class:`CacheManager` is injected —
    e.g. a disk-backed artifact cache, which then shares spectra across
    processes too.
    """

    def __init__(self, variant: str, cache: Optional[CacheManager] = None) -> None:
        self.variant = variant
        self._cache = cache

    @property
    def manager(self) -> CacheManager:
        return self._cache if self._cache is not None else spectra_cache()

    def _key(self, receptor: EnergyGrids) -> str:
        return compose_key(f"spectra-{self.variant}", [grids_token(receptor)])

    def get(self, receptor: EnergyGrids):
        return self.manager.get(self._key(receptor))

    def put(self, receptor: EnergyGrids, value: np.ndarray) -> None:
        self.manager.put(
            self._key(receptor), value, codec="npz", nbytes=int(value.nbytes)
        )

    def clear(self) -> None:
        """Drop this variant's entries (other engines' spectra survive)."""
        self.manager.clear(namespace=f"spectra-{self.variant}")

    # Engines holding a cache must survive pickling (process executors fork
    # workers and ship bound methods).  An injected manager already pickles
    # as configuration-only; the default manager is re-resolved per process.
    def __getstate__(self):
        return {"variant": self.variant, "cache": self._cache}

    def __setstate__(self, state) -> None:
        self.variant = state["variant"]
        self._cache = state["cache"]


def valid_translations(n: int, m: int) -> int:
    """Edge of the valid-translation cube: ``n - m + 1``."""
    if m > n:
        raise ValueError(f"ligand grid ({m}) larger than receptor grid ({n})")
    return n - m + 1


def valid_translation_shape(
    receptor_shape: Sequence[int], ligand_shape: Sequence[int]
) -> Tuple[int, int, int]:
    """Per-axis valid-translation extents ``n_i - m_i + 1``.

    The correlation algebra is separable per axis, so non-cubic grids are
    supported: each axis contributes its own valid range independently.
    """
    if len(receptor_shape) != 3 or len(ligand_shape) != 3:
        raise ValueError("grid shapes must be 3-D")
    return tuple(
        valid_translations(int(n), int(m))
        for n, m in zip(receptor_shape, ligand_shape)
    )


class CorrelationEngine(ABC):
    """Computes weighted multi-channel correlation score grids.

    Subclasses implement :meth:`correlate`, mapping a receptor
    :class:`EnergyGrids` and a ligand :class:`EnergyGrids` (same channel
    count) to a (T, T, T) float array of pose energies over valid
    translations, where ``T = n - m + 1``.
    """

    name: str = "abstract"

    @abstractmethod
    def correlate(self, receptor: EnergyGrids, ligand: EnergyGrids) -> np.ndarray:
        """Weighted pose-energy grid over valid translations."""

    def correlate_batch(
        self, receptor: EnergyGrids, ligand_rotations: Sequence[EnergyGrids]
    ) -> np.ndarray:
        """Score a batch of rotations, returning a (B, T1, T2, T3) stack.

        The base implementation loops :meth:`correlate` per rotation, so
        every engine exposes the batch API with identical numerics; the
        batched-FFT engine overrides this with a vectorized path.
        """
        self._check_batch(receptor, ligand_rotations)
        return np.stack(
            [self.correlate(receptor, lg) for lg in ligand_rotations]
        )

    def _check(self, receptor: EnergyGrids, ligand: EnergyGrids) -> None:
        if receptor.n_channels != ligand.n_channels:
            raise ValueError(
                f"channel mismatch: receptor {receptor.n_channels} vs "
                f"ligand {ligand.n_channels}"
            )
        rec_shape = receptor.channels.shape[1:]
        lig_shape = ligand.channels.shape[1:]
        if any(m > n for n, m in zip(rec_shape, lig_shape)):
            raise ValueError("ligand grid larger than receptor grid")

    def _check_batch(
        self, receptor: EnergyGrids, ligand_rotations: Sequence[EnergyGrids]
    ) -> None:
        if not ligand_rotations:
            raise ValueError("empty rotation batch")
        base = ligand_rotations[0]
        self._check(receptor, base)
        for lg in ligand_rotations[1:]:
            if (
                lg.channels.shape != base.channels.shape
                or lg.n_channels != base.n_channels
            ):
                raise ValueError("all batched rotations must share grid geometry")


def correlate_channels(
    receptor: EnergyGrids,
    ligand: EnergyGrids,
    engine: "CorrelationEngine",
) -> np.ndarray:
    """Convenience wrapper: validate then delegate to ``engine``."""
    engine._check(receptor, ligand)
    return engine.correlate(receptor, ligand)
