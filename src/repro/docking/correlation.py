"""Correlation engine interface and shared helpers.

The pose score of Eq. (1) is, per channel ``p``:

    corr_p(a, b, c) = sum_{i,j,k} R_p(i, j, k) * L_p(i + a, j + b, k + c)

with the ligand grid (edge ``m``) much smaller than the receptor grid (edge
``n``).  A translation ``(a, b, c)`` is *valid* when the ligand grid lies
fully inside the receptor grid, i.e. ``0 <= a, b, c <= n - m``.  Engines
return the full weighted score grid over valid translations.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from repro.grids.energyfunctions import EnergyGrids

__all__ = ["CorrelationEngine", "correlate_channels", "valid_translations"]


def valid_translations(n: int, m: int) -> int:
    """Edge of the valid-translation cube: ``n - m + 1``."""
    if m > n:
        raise ValueError(f"ligand grid ({m}) larger than receptor grid ({n})")
    return n - m + 1


class CorrelationEngine(ABC):
    """Computes weighted multi-channel correlation score grids.

    Subclasses implement :meth:`correlate`, mapping a receptor
    :class:`EnergyGrids` and a ligand :class:`EnergyGrids` (same channel
    count) to a (T, T, T) float array of pose energies over valid
    translations, where ``T = n - m + 1``.
    """

    name: str = "abstract"

    @abstractmethod
    def correlate(self, receptor: EnergyGrids, ligand: EnergyGrids) -> np.ndarray:
        """Weighted pose-energy grid over valid translations."""

    def _check(self, receptor: EnergyGrids, ligand: EnergyGrids) -> None:
        if receptor.n_channels != ligand.n_channels:
            raise ValueError(
                f"channel mismatch: receptor {receptor.n_channels} vs "
                f"ligand {ligand.n_channels}"
            )
        if ligand.spec.n > receptor.spec.n:
            raise ValueError("ligand grid larger than receptor grid")


def correlate_channels(
    receptor: EnergyGrids,
    ligand: EnergyGrids,
    engine: "CorrelationEngine",
) -> np.ndarray:
    """Convenience wrapper: validate then delegate to ``engine``."""
    engine._check(receptor, ligand)
    return engine.correlate(receptor, ligand)
