"""Direct (spatial-domain) correlation engine.

This is the algorithm the paper maps onto the GPU (Sec. III.A): translate
the small ligand grid over the receptor grid and accumulate voxel-voxel
products.  For a ligand grid of edge ``m`` the inner loop touches only the
ligand's m^3 voxels, and — crucially — *all channels and multiple rotations
can share a single pass over the receptor grid*, which is why direct beats
FFT for the tiny FTMap probes.

The vectorized implementation iterates over the ligand's (at most m^3,
typically sparse) non-zero voxels and accumulates shifted receptor windows:
work is O(nnz(L) * T^3) per channel, identical to the GPU kernel's
operation count, with NumPy providing the data parallelism that CUDA
threads provide in the paper.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.docking.correlation import CorrelationEngine, valid_translation_shape
from repro.grids.energyfunctions import EnergyGrids

__all__ = ["DirectCorrelationEngine", "direct_correlate_batch"]


class DirectCorrelationEngine(CorrelationEngine):
    """Spatial-domain correlation over valid translations.

    Parameters
    ----------
    skip_zero_voxels:
        If True (default), only non-zero ligand voxels contribute terms —
        the data-sparsity the paper exploits by packing probe grids into
        constant memory.  Setting False forces dense iteration (useful for
        cost-model validation, where the GPU kernel also iterates densely).
    """

    name = "direct"

    def __init__(self, skip_zero_voxels: bool = True) -> None:
        self.skip_zero_voxels = skip_zero_voxels

    def correlate(self, receptor: EnergyGrids, ligand: EnergyGrids) -> np.ndarray:
        self._check(receptor, ligand)
        tshape = valid_translation_shape(
            receptor.channels.shape[1:], ligand.channels.shape[1:]
        )
        weights = receptor.weights * ligand.weights
        out = np.zeros(tshape, dtype=np.float64)
        for c in range(receptor.n_channels):
            w = weights[c]
            if w == 0.0:
                continue
            out += w * self._correlate_one(
                receptor.channels[c], ligand.channels[c], tshape
            )
        return out

    def correlate_per_channel(
        self, receptor: EnergyGrids, ligand: EnergyGrids
    ) -> np.ndarray:
        """Unweighted per-channel correlations, shape (C, T, T, T)."""
        self._check(receptor, ligand)
        tshape = valid_translation_shape(
            receptor.channels.shape[1:], ligand.channels.shape[1:]
        )
        return np.stack(
            [
                self._correlate_one(receptor.channels[c], ligand.channels[c], tshape)
                for c in range(receptor.n_channels)
            ]
        )

    def _correlate_one(
        self, rec: np.ndarray, lig: np.ndarray, tshape
    ) -> np.ndarray:
        """corr(a) = sum_d L(d) * R(a + d) for a in [0, t1) x [0, t2) x [0, t3)."""
        rec = rec.astype(np.float64)
        t1, t2, t3 = tshape
        out = np.zeros((t1, t2, t3), dtype=np.float64)
        if self.skip_zero_voxels:
            nz = np.argwhere(lig != 0)
            vals = lig[lig != 0].astype(np.float64)
        else:
            nz = np.argwhere(np.ones_like(lig, dtype=bool))
            vals = lig.reshape(-1).astype(np.float64)
        for (dx, dy, dz), v in zip(nz, vals):
            if v == 0.0 and self.skip_zero_voxels:
                continue
            out += v * rec[dx : dx + t1, dy : dy + t2, dz : dz + t3]
        return out


def direct_correlate_batch(
    receptor: EnergyGrids,
    ligand_rotations: Sequence[EnergyGrids],
    engine: DirectCorrelationEngine | None = None,
) -> List[np.ndarray]:
    """Score several rotations in one conceptual pass over the receptor grid.

    Mirrors the paper's multi-rotation batching: "storing the voxel grids for
    multiple rotations in the constant memory ... enables the correlation
    inner loop to compute multiple scores in each iteration" (Sec. III.A).
    Numerically the result equals per-rotation correlation; the *benefit* is
    modeled by the GPU cost model (each receptor voxel fetched once is reused
    by all batched rotations).

    Returns one (T, T, T) weighted score grid per rotation.
    """
    eng = engine or DirectCorrelationEngine()
    if not ligand_rotations:
        return []
    eng._check_batch(receptor, ligand_rotations)
    return [eng.correlate(receptor, lg) for lg in ligand_rotations]
