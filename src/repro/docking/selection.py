"""Backend auto-selection for the docking correlation hot path.

Given a problem size — receptor edge ``n``, ligand edge ``m``, channel
count, rotation count — this layer predicts the per-rotation correlation
cost of every backend and picks the cheapest:

* ``direct`` / ``fft`` / ``batched-fft`` from the serial CPU model
  (:class:`repro.perf.cpumodel.CpuModel`) — the same primitives the paper's
  Sec. III crossover argument uses ("if the ligand grid is smaller than a
  certain size, direct correlation can perform better than FFT"),
* ``gpu-sim`` from the analytic GPU cost model
  (:class:`repro.cuda.costmodel.CostModel`) applied to the batched
  direct-correlation kernel launch, included only when a device spec is
  supplied — the virtual device predicts time but executes on the host, so
  it must be opted into.

Host constants and the default device spec come from the shared topology
layer (:mod:`repro.exec.topology`), the same source the minimization
selector reads — one set of machine constants, no per-subsystem copies.

The decision carries every backend's prediction so callers (benchmarks,
reports) can show the full table, not just the winner.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.docking.batched import DEFAULT_FFT_BATCH, fft_batch_limit
from repro.exec.topology import default_device_spec, host_model
from repro.perf.cpumodel import CpuModel

__all__ = ["BackendDecision", "predict_backend_times", "select_backend", "CPU_BACKENDS"]

#: Backends that execute real host arithmetic (auto-selectable everywhere).
CPU_BACKENDS = ("direct", "fft", "batched-fft")


@dataclass(frozen=True)
class BackendDecision:
    """Outcome of backend selection for one problem size."""

    backend: str
    batch_size: int
    predictions: Dict[str, float]   # backend -> predicted s/rotation

    @property
    def predicted_s(self) -> float:
        return self.predictions[self.backend]


def predict_backend_times(
    n: int,
    m: int,
    channels: int,
    num_rotations: int = 1,
    batch_size: Optional[int] = None,
    cpu: Optional[CpuModel] = None,
    device_spec=None,
) -> Dict[str, float]:
    """Predicted per-rotation correlation seconds for every backend.

    ``gpu-sim`` appears only when ``device_spec`` is given; its prediction
    is the cost-model kernel time of the constant-memory-batched direct
    kernel plus the per-rotation probe upload.
    """
    cpu = cpu or host_model()
    batch = _resolve_batch(n, channels, num_rotations, batch_size)
    times = {
        "direct": cpu.direct_correlation_s(n, m, channels),
        "fft": cpu.fft_correlation_s(n, channels),
        "batched-fft": cpu.batched_fft_correlation_s(n, m, channels, batch),
    }
    if device_spec is not None:
        times["gpu-sim"] = _gpu_time_per_rotation(n, m, channels, device_spec)
    return times


def select_backend(
    n: int,
    m: int,
    channels: int,
    num_rotations: int = 1,
    batch_size: Optional[int] = None,
    include_gpu: bool = False,
    cpu: Optional[CpuModel] = None,
    device_spec=None,
) -> BackendDecision:
    """Pick the cheapest backend for a problem size.

    The GPU simulator is considered only with ``include_gpu=True`` (it
    predicts device time while computing on the host, so auto-picking it
    must be an explicit choice).  A single rotation never selects the
    batched path — there is nothing to batch.
    """
    if include_gpu and device_spec is None:
        device_spec = default_device_spec()
    times = predict_backend_times(
        n, m, channels, num_rotations, batch_size, cpu, device_spec
    )
    candidates = dict(times)
    if not include_gpu:
        candidates.pop("gpu-sim", None)
    if num_rotations <= 1:
        candidates.pop("batched-fft", None)
    backend = min(candidates, key=candidates.get)
    batch = (
        _resolve_batch(n, channels, num_rotations, batch_size)
        if backend in ("batched-fft", "gpu-sim")
        else 1
    )
    return BackendDecision(backend=backend, batch_size=batch, predictions=times)


def _resolve_batch(
    n: int, channels: int, num_rotations: int, batch_size: Optional[int]
) -> int:
    if batch_size is not None:
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        return batch_size
    limit = fft_batch_limit((n, n, n), channels)
    return max(1, min(DEFAULT_FFT_BATCH, limit, num_rotations))


def _gpu_time_per_rotation(n: int, m: int, channels: int, device_spec) -> float:
    """Cost-model time of the batched direct kernel, per rotation."""
    from repro.cuda.costmodel import CostModel
    from repro.docking.correlation import valid_translations
    from repro.gpu.batching import max_batch_rotations
    from repro.gpu.correlation_kernels import correlation_launch_sizes

    batch = max(1, max_batch_rotations(m, channels, device_spec))
    t = valid_translations(n, m)
    launch = correlation_launch_sizes((t, t, t), channels, m, batch=batch)
    cost = CostModel(device_spec)
    kernel_s = cost.kernel_time(launch) / batch
    upload_s = cost.transfer_time(channels * m**3 * 4)
    return kernel_s + upload_s
