"""PIPER energy-function grid channels.

The pose score (Eq. 2) is ``E = E_shape + w2 * E_elec + w3 * E_desol`` where

* **shape complementarity** is a weighted sum of two correlation components:
  a core clash penalty (probe overlapping protein-occupied voxels) and an
  attractive *halo* reward — PIPER's attractive shape layer.  The halo
  channel stores, on each *empty* voxel, the local burial density (count of
  protein-occupied voxels within a small box), so a probe nestled in a
  concave pocket — surrounded by wall on several sides — out-scores the
  same probe on a convex surface patch,
* **electrostatics** is a weighted sum of two components: the receptor
  Coulomb potential correlated with ligand charge, plus a screened
  (Yukawa) short-range component,
* **desolvation** is a sum of 4..18 pairwise-potential terms.  PIPER obtains
  these by eigendecomposition of a symmetric atom-type contact potential
  ``P = sum_k lambda_k u_k u_k^T`` so that the pairwise sum factorizes into
  ``K`` independent correlations — exactly the structure we reproduce here.

Each correlation channel ``p`` contributes ``w_p * sum_ijk R_p * L_p`` to the
pose energy (Eq. 1); **lower energy = better pose** throughout this package.

Receptor potential grids are computed by FFT convolution of the deposited
charge grid with the appropriate radial kernel (O(N^3 log N)), which stands
in for PIPER's grid preparation step.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np
from scipy import fft as sp_fft

from repro.constants import (
    DEFAULT_DESOLVATION_WEIGHT,
    DEFAULT_ELEC_WEIGHT,
    MAX_DESOLVATION_TERMS,
    MIN_DESOLVATION_TERMS,
)
from repro.grids.gridding import GridSpec, voxelize_molecule
from repro.structure.molecule import Molecule

__all__ = [
    "EnergyGrids",
    "CHANNELS",
    "protein_grids",
    "protein_grids_cached",
    "ligand_grids",
    "num_channels",
    "desolvation_eigenterms",
]

#: Clash penalty per probe voxel overlapping a protein-occupied voxel.
CORE_CLASH_PENALTY = 10.0

#: Reward per unit of probe-voxel burial (halo channel is a burial count).
SURFACE_CONTACT_REWARD = -0.1

#: Chebyshev radius (voxels) of the burial-count box around each empty voxel.
HALO_THICKNESS = 2

#: Debye-like screening length for the short-range electrostatic channel (A).
SCREENING_LENGTH = 3.0


def num_channels(n_desolvation_terms: int) -> int:
    """Total correlation channels: 2 shape + 2 elec + K desolvation."""
    _check_terms(n_desolvation_terms)
    return 4 + n_desolvation_terms


def _check_terms(k: int) -> None:
    if not (MIN_DESOLVATION_TERMS <= k <= MAX_DESOLVATION_TERMS):
        raise ValueError(
            f"desolvation terms must be in [{MIN_DESOLVATION_TERMS}, "
            f"{MAX_DESOLVATION_TERMS}], got {k}"
        )


#: Human-readable channel group names in storage order.
CHANNELS = ("shape_core", "shape_halo", "elec_coulomb", "elec_screened", "desolvation_*")


@dataclass
class EnergyGrids:
    """Multi-channel voxel grids for one molecule.

    Attributes
    ----------
    spec:
        Grid geometry.
    channels:
        (C, n, n, n) float32 array; channel order is shape_core,
        shape_halo, elec_coulomb, elec_screened, then K desolvation terms.
    weights:
        (C,) per-channel weights ``w_p`` applied when summing correlations
        into the pose energy.  By convention the receptor carries the
        physical weights and the ligand weights are all 1, so the product
        is applied exactly once.
    labels:
        Channel labels for reporting.
    """

    spec: GridSpec
    channels: np.ndarray
    weights: np.ndarray
    labels: List[str]

    def __post_init__(self) -> None:
        self.channels = np.ascontiguousarray(self.channels, dtype=np.float32)
        self.weights = np.asarray(self.weights, dtype=float)
        if self.channels.ndim != 4:
            raise ValueError("channels must be (C, n, n, n)")
        c = self.channels.shape[0]
        if self.weights.shape != (c,) or len(self.labels) != c:
            raise ValueError("weights/labels must match channel count")

    @property
    def n_channels(self) -> int:
        return self.channels.shape[0]


def _radial_kernel(n: int, spacing: float, kind: str) -> np.ndarray:
    """Periodic radial kernel on an n^3 grid (min-image distances).

    ``kind`` is ``"coulomb"`` (1/r) or ``"yukawa"`` (exp(-r/lambda)/r); the
    r=0 singularity is replaced by the value at half a voxel spacing.
    """
    ax = np.arange(n, dtype=float)
    ax = np.minimum(ax, n - ax) * spacing  # min-image distance per axis
    dx = ax[:, None, None]
    dy = ax[None, :, None]
    dz = ax[None, None, :]
    r = np.sqrt(dx * dx + dy * dy + dz * dz)
    r0 = spacing / 2.0
    r_safe = np.where(r < r0, r0, r)
    if kind == "coulomb":
        k = 1.0 / r_safe
    elif kind == "yukawa":
        k = np.exp(-r_safe / SCREENING_LENGTH) / r_safe
    else:
        raise ValueError(f"unknown kernel {kind!r}")
    return k


def _fft_convolve(grid: np.ndarray, kernel: np.ndarray) -> np.ndarray:
    """Circular convolution of two equal-shape real grids via FFT."""
    return sp_fft.irfftn(
        sp_fft.rfftn(grid) * sp_fft.rfftn(kernel), s=grid.shape
    )


def desolvation_eigenterms(
    type_names: Sequence[str], n_terms: int, seed: int = 2010
):
    """Per-atom weights for each desolvation eigen-term.

    Builds a deterministic symmetric atom-type contact potential ``P`` over
    the *global* force-field type table (so receptor and ligand factorize
    against the same eigenvectors), eigendecomposes it, and returns

    * ``weights``: (K, N) array ``w[k, a] = sqrt(|lambda_k|) *
      eigvec_k[type(a)]``,
    * ``signs``: (K,) eigenvalue signs.

    The pairwise desolvation energy ``sum_ab P[t_a, t_b]`` then equals
    ``sum_k sign_k * (receptor corr_k) * (ligand corr_k)`` — the
    factorization PIPER exploits to turn a pairwise potential into K grid
    correlations.  The sign of each eigenvalue is folded into the *receptor*
    channel weight by :func:`protein_grids`; weights carry magnitudes only.
    """
    _check_terms(n_terms)
    from repro.structure.forcefield import DEFAULT_ATOM_TYPES

    universe = sorted(DEFAULT_ATOM_TYPES)
    extra = sorted(set(type_names) - set(universe))
    universe = universe + extra  # tolerate user-registered types
    t_index = {t: i for i, t in enumerate(universe)}
    m = len(universe)
    rng = np.random.default_rng(seed)
    raw = rng.normal(size=(m, m))
    pot = 0.5 * (raw + raw.T)  # symmetric contact potential
    eigvals, eigvecs = np.linalg.eigh(pot)
    # Keep the K largest-magnitude terms (PIPER keeps the leading terms).
    order = np.argsort(-np.abs(eigvals))[: min(n_terms, m)]
    weights = np.zeros((n_terms, len(type_names)))
    signs = np.ones(n_terms)
    atom_type_idx = np.array([t_index[t] for t in type_names])
    for slot, k in enumerate(order):
        scale = np.sqrt(abs(eigvals[k]))
        weights[slot] = scale * eigvecs[atom_type_idx, k]
        signs[slot] = np.sign(eigvals[k]) if eigvals[k] != 0 else 1.0
    # Unused slots (if fewer types than requested terms) stay zero, sign +1.
    return weights, signs


def _halo_mask(occupied: np.ndarray, thickness: int) -> np.ndarray:
    """Empty voxels within ``thickness`` face-steps of an occupied voxel."""
    grown = occupied.copy()
    for _ in range(thickness):
        padded = np.pad(grown, 1, mode="constant", constant_values=False)
        grown = (
            padded[1:-1, 1:-1, 1:-1]
            | padded[:-2, 1:-1, 1:-1]
            | padded[2:, 1:-1, 1:-1]
            | padded[1:-1, :-2, 1:-1]
            | padded[1:-1, 2:, 1:-1]
            | padded[1:-1, 1:-1, :-2]
            | padded[1:-1, 1:-1, 2:]
        )
    return grown & ~occupied


def _burial_density(occupied: np.ndarray, radius: int) -> np.ndarray:
    """Per-voxel count of occupied voxels within a Chebyshev ``radius`` box.

    Computed by FFT convolution with a (2r+1)^3 box kernel; grids are padded
    in practice (molecule centered), so the circular wrap is inert.
    """
    n = occupied.shape[0]
    kernel = np.zeros(occupied.shape)
    idx = np.arange(-radius, radius + 1) % n
    kernel[np.ix_(idx, idx, idx)] = 1.0
    counts = _fft_convolve(occupied.astype(float), kernel)
    return np.maximum(counts, 0.0)  # clip FFT ringing


def protein_grids(
    protein: Molecule,
    spec: GridSpec,
    n_desolvation_terms: int = MIN_DESOLVATION_TERMS,
    elec_weight: float = DEFAULT_ELEC_WEIGHT,
    desolvation_weight: float = DEFAULT_DESOLVATION_WEIGHT,
    desolvation_seed: int = 2010,
) -> EnergyGrids:
    """Build the receptor-side channel grids ``R_p``.

    The receptor carries the channel weights (clash penalty, contact reward,
    w2, w3 and the desolvation eigenvalue signs) so that ligand channels can
    be pure geometry/charge and weights apply exactly once per channel.
    """
    from repro.grids.gridding import voxelize_spheres

    occupied = voxelize_spheres(protein, spec)  # vdW-sphere fill
    core = occupied                       # any overlap with an atom clashes
    # Burial density on empty voxels: high inside pockets, low on convex
    # surface, zero in open solvent.
    halo = _burial_density(occupied, HALO_THICKNESS) * (~occupied)
    # Desolvation deposits on surface-proximal atoms: the occupied shell
    # within 2 voxel-steps of solvent.
    surface = _halo_mask(~occupied, 2)

    charge_grid = voxelize_molecule(protein, spec, weights=protein.charges)
    coulomb = _fft_convolve(charge_grid, _radial_kernel(spec.n, spec.spacing, "coulomb"))
    screened = _fft_convolve(charge_grid, _radial_kernel(spec.n, spec.spacing, "yukawa"))

    desol_w, desol_signs = desolvation_eigenterms(
        protein.type_names, n_desolvation_terms, seed=desolvation_seed
    )
    # Desolvation contact is short-ranged: deposit eigen-weights only on the
    # surface shell by masking the deposited grid.
    shell = surface.astype(float)

    chans = [core.astype(np.float32), halo.astype(np.float32),
             coulomb.astype(np.float32), screened.astype(np.float32)]
    for k in range(n_desolvation_terms):
        g = voxelize_molecule(protein, spec, weights=desol_w[k]) * shell
        chans.append(g.astype(np.float32))

    weights = np.concatenate(
        [
            [CORE_CLASH_PENALTY, SURFACE_CONTACT_REWARD, elec_weight, elec_weight * 0.5],
            desolvation_weight * desol_signs,
        ]
    )
    labels = ["shape_core", "shape_halo", "elec_coulomb", "elec_screened"] + [
        f"desolvation_{k}" for k in range(n_desolvation_terms)
    ]
    return EnergyGrids(spec=spec, channels=np.stack(chans), weights=weights, labels=labels)


def protein_grids_cached(
    protein: Molecule,
    spec: GridSpec,
    n_desolvation_terms: int = MIN_DESOLVATION_TERMS,
    elec_weight: float = DEFAULT_ELEC_WEIGHT,
    desolvation_weight: float = DEFAULT_DESOLVATION_WEIGHT,
    desolvation_seed: int = 2010,
    cache=None,
) -> EnergyGrids:
    """:func:`protein_grids` behind the content-addressed artifact cache.

    The receptor grid build (vdW-sphere fill, burial density, two FFT
    potential convolutions, K desolvation deposits) is the most expensive
    per-receptor artifact in the pipeline and depends only on the receptor
    content and the grid/workload parameters hashed here — so a repeat
    mapping, another probe of the same run, or a sweep variant that keeps
    the receptor fixed reuses it as an O(lookup).

    ``cache`` is a :class:`repro.cache.manager.CacheManager` (or ``None`` /
    policy ``off``, which computes exactly like :func:`protein_grids`).
    Cached grids are shared objects and must be treated as immutable.
    """
    if cache is None or not cache.enabled:
        return protein_grids(
            protein,
            spec,
            n_desolvation_terms=n_desolvation_terms,
            elec_weight=elec_weight,
            desolvation_weight=desolvation_weight,
            desolvation_seed=desolvation_seed,
        )
    from repro.cache.keys import compose_key, mapping_token, molecule_token

    key = compose_key(
        "receptor-grids",
        [
            molecule_token(protein),
            spec.cache_token(),
            mapping_token(
                n_desolvation_terms=n_desolvation_terms,
                elec_weight=float(elec_weight),
                desolvation_weight=float(desolvation_weight),
                desolvation_seed=desolvation_seed,
            ),
        ],
    )
    return cache.get_or_compute(
        key,
        lambda: protein_grids(
            protein,
            spec,
            n_desolvation_terms=n_desolvation_terms,
            elec_weight=elec_weight,
            desolvation_weight=desolvation_weight,
            desolvation_seed=desolvation_seed,
        ),
        codec="pickle",
    )


def ligand_grids(
    ligand: Molecule,
    spec: GridSpec,
    n_desolvation_terms: int = MIN_DESOLVATION_TERMS,
    desolvation_seed: int = 2010,
) -> EnergyGrids:
    """Build the ligand-side channel grids ``L_p`` on a (small) probe grid.

    Channel semantics mirror :func:`protein_grids`: occupancy correlates with
    the receptor core channel (clash) *and* the surface channel (contact);
    charge correlates with both potential channels; desolvation eigen-weights
    deposit per-term.  Ligand weights are all 1 (receptor carries physics).
    """
    occupancy = (voxelize_molecule(ligand, spec) > 0).astype(np.float32)
    charge = voxelize_molecule(ligand, spec, weights=ligand.charges).astype(np.float32)
    desol_w, _ = desolvation_eigenterms(
        ligand.type_names, n_desolvation_terms, seed=desolvation_seed
    )
    chans = [occupancy, occupancy, charge, charge]
    for k in range(n_desolvation_terms):
        chans.append(
            voxelize_molecule(ligand, spec, weights=desol_w[k]).astype(np.float32)
        )
    labels = ["shape_core", "shape_halo", "elec_coulomb", "elec_screened"] + [
        f"desolvation_{k}" for k in range(n_desolvation_terms)
    ]
    return EnergyGrids(
        spec=spec,
        channels=np.stack(chans),
        weights=np.ones(len(chans)),
        labels=labels,
    )
