"""Per-rotation ligand re-gridding.

For every rotation of the exhaustive search, PIPER rotates the ligand *in
atom space* on the host and re-deposits it onto a fresh small grid ("The
ligand grid, however, is rotated on the host and remapped", Sec. III.A).
Rotating atoms rather than resampling voxels avoids interpolation loss on
the tiny probe grids.
"""

from __future__ import annotations

import numpy as np

from repro.geometry.transforms import apply_rotation, centered
from repro.grids.energyfunctions import EnergyGrids, ligand_grids
from repro.grids.gridding import GridSpec
from repro.structure.molecule import Molecule

__all__ = ["rotate_and_grid_ligand", "ligand_grid_spec"]


def ligand_grid_spec(ligand: Molecule, n: int, spacing: float = 1.0) -> GridSpec:
    """Probe grid centered on the origin (ligand is centered before gridding).

    Raises if the centered ligand cannot fit inside the grid, mirroring the
    paper's observation that FTMap probes always fit within 4^3 voxels.
    """
    from repro.geometry.transforms import bounding_radius

    half_extent = (n - 1) * spacing / 2.0
    # Allow one voxel of slack: nearest-voxel deposit snaps edge atoms in.
    if bounding_radius(ligand.coords) > half_extent + spacing:
        raise ValueError(
            f"ligand of radius {bounding_radius(ligand.coords):.2f} A does not "
            f"fit a {n}^3 grid at {spacing} A spacing"
        )
    return GridSpec(n=n, spacing=spacing, origin=(-half_extent,) * 3)


def rotate_and_grid_ligand(
    ligand: Molecule,
    rotation: np.ndarray,
    spec: GridSpec,
    n_desolvation_terms: int = 4,
    desolvation_seed: int = 2010,
) -> EnergyGrids:
    """Rotate the (centered) ligand by ``rotation`` and voxelize it.

    Returns the full multi-channel :class:`EnergyGrids` for this rotation.
    """
    rotated = apply_rotation(centered(ligand.coords), rotation)
    mol = ligand.with_coords(rotated)
    return ligand_grids(
        mol,
        spec,
        n_desolvation_terms=n_desolvation_terms,
        desolvation_seed=desolvation_seed,
    )
