"""Grid substrate for PIPER rigid docking.

PIPER "maps the surface and other properties of the two interacting proteins
onto 3D grids" (Sec. II.A).  This package voxelizes molecules into
multi-channel grids — 2 shape-complementarity channels, 2 electrostatic
channels, and 4..18 desolvation pairwise-potential channels, up to 22 total —
and supports re-gridding the rotated ligand for every rotation of the
exhaustive search.
"""

from repro.grids.gridding import GridSpec, voxelize_molecule, surface_layer_mask
from repro.grids.energyfunctions import (
    EnergyGrids,
    CHANNELS,
    protein_grids,
    ligand_grids,
    num_channels,
)
from repro.grids.rotation import rotate_and_grid_ligand

__all__ = [
    "GridSpec",
    "voxelize_molecule",
    "surface_layer_mask",
    "EnergyGrids",
    "CHANNELS",
    "protein_grids",
    "ligand_grids",
    "num_channels",
    "rotate_and_grid_ligand",
]
