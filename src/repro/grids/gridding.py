"""Voxelization of molecules onto regular 3-D grids.

Grid conventions: a :class:`GridSpec` has an edge length ``n`` (voxels per
axis), voxel ``spacing`` in Angstrom, and a world-space ``origin`` (the
center of voxel (0,0,0)).  A molecule voxelizes by nearest-voxel (or
trilinear) deposition of per-atom weights.  The correlation algebra in
``repro.docking`` is agnostic to what the channels mean; this module provides
the shared geometric plumbing.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.structure.molecule import Molecule

__all__ = ["GridSpec", "voxelize_molecule", "surface_layer_mask"]


@dataclass(frozen=True)
class GridSpec:
    """Geometry of a cubic voxel grid.

    Parameters
    ----------
    n:
        Voxels per axis (grid is n x n x n).  The paper uses 128 for the
        protein/result grid and <= 4 for probe grids.
    spacing:
        Voxel edge in Angstrom (PIPER convention ~0.8-1.2 A; default 1.0).
    origin:
        World coordinates of the center of voxel (0, 0, 0).
    """

    n: int
    spacing: float = 1.0
    origin: tuple = (0.0, 0.0, 0.0)

    def __post_init__(self) -> None:
        if self.n < 1:
            raise ValueError("grid edge must be >= 1")
        if self.spacing <= 0:
            raise ValueError("spacing must be positive")
        object.__setattr__(self, "origin", tuple(float(v) for v in self.origin))
        if len(self.origin) != 3:
            raise ValueError("origin must have 3 components")

    @property
    def shape(self) -> tuple:
        return (self.n, self.n, self.n)

    @property
    def extent(self) -> float:
        """Physical edge length in Angstrom."""
        return self.n * self.spacing

    def cache_token(self) -> str:
        """Exact content token for artifact-cache keys.

        Floats are rendered in hex so two specs produce the same token iff
        they describe bit-identical geometry (no decimal rounding).
        """
        from repro.cache.keys import grid_spec_token

        return grid_spec_token(self)

    @classmethod
    def centered_on(cls, molecule: Molecule, n: int, spacing: float = 1.0) -> "GridSpec":
        """Grid of edge ``n`` centered on the molecule's geometric center."""
        c = molecule.center()
        half = (n - 1) * spacing / 2.0
        return cls(n=n, spacing=spacing, origin=(c[0] - half, c[1] - half, c[2] - half))

    def world_to_voxel(self, coords: np.ndarray) -> np.ndarray:
        """Continuous voxel coordinates of world-space points."""
        return (np.asarray(coords, dtype=float) - np.asarray(self.origin)) / self.spacing

    def voxel_to_world(self, ijk: np.ndarray) -> np.ndarray:
        """World coordinates of (possibly fractional) voxel indices."""
        return np.asarray(ijk, dtype=float) * self.spacing + np.asarray(self.origin)

    def contains(self, coords: np.ndarray) -> np.ndarray:
        """Boolean mask of points whose nearest voxel lies inside the grid."""
        v = np.rint(self.world_to_voxel(coords))
        return np.all((v >= 0) & (v <= self.n - 1), axis=-1)


def voxelize_molecule(
    molecule: Molecule,
    spec: GridSpec,
    weights: np.ndarray | None = None,
    mode: str = "nearest",
) -> np.ndarray:
    """Deposit per-atom ``weights`` onto a grid.

    Parameters
    ----------
    molecule:
        Source of coordinates.
    spec:
        Target grid geometry.
    weights:
        Per-atom scalar weights; defaults to 1 per atom (occupancy).
    mode:
        ``"nearest"`` snaps each atom to its closest voxel;
        ``"trilinear"`` splats each weight over the 8 surrounding voxels.

    Atoms falling outside the grid are silently dropped (PIPER clamps its
    grids around the molecules, so this only trims pathological inputs).
    """
    coords = molecule.coords
    if weights is None:
        weights = np.ones(len(coords))
    weights = np.asarray(weights, dtype=float)
    if weights.shape != (len(coords),):
        raise ValueError(f"weights must be ({len(coords)},), got {weights.shape}")

    grid = np.zeros(spec.shape, dtype=float)
    v = spec.world_to_voxel(coords)

    if mode == "nearest":
        idx = np.rint(v).astype(np.intp)
        inside = np.all((idx >= 0) & (idx <= spec.n - 1), axis=1)
        idx = idx[inside]
        np.add.at(grid, (idx[:, 0], idx[:, 1], idx[:, 2]), weights[inside])
        return grid

    if mode == "trilinear":
        base = np.floor(v).astype(np.intp)
        frac = v - base
        for dx in (0, 1):
            for dy in (0, 1):
                for dz in (0, 1):
                    w = (
                        (frac[:, 0] if dx else 1 - frac[:, 0])
                        * (frac[:, 1] if dy else 1 - frac[:, 1])
                        * (frac[:, 2] if dz else 1 - frac[:, 2])
                    )
                    ijk = base + np.array([dx, dy, dz])
                    inside = np.all((ijk >= 0) & (ijk <= spec.n - 1), axis=1)
                    sel = ijk[inside]
                    np.add.at(
                        grid,
                        (sel[:, 0], sel[:, 1], sel[:, 2]),
                        weights[inside] * w[inside],
                    )
        return grid

    raise ValueError(f"unknown deposition mode {mode!r}")


def voxelize_spheres(
    molecule: Molecule,
    spec: GridSpec,
    radii: np.ndarray | None = None,
) -> np.ndarray:
    """Boolean occupancy grid with atoms as vdW spheres (PIPER-style).

    A voxel is occupied when its center lies within ``radii[a]`` of atom
    ``a``'s center.  Defaults to the molecule's LJ ``rm`` half-radii, which
    fills the protein interior — essential for the shape channels: with
    point deposits the interior would be riddled with phantom cavities.
    """
    coords = molecule.coords
    if radii is None:
        radii = molecule.rm
    radii = np.asarray(radii, dtype=float)
    if radii.shape != (len(coords),):
        raise ValueError(f"radii must be ({len(coords)},), got {radii.shape}")

    grid = np.zeros(spec.shape, dtype=bool)
    v = spec.world_to_voxel(coords)
    max_r_vox = int(np.ceil(radii.max() / spec.spacing)) if len(coords) else 0
    # Precompute the offset stencil once for the largest radius; filter per
    # atom by true distance.
    rng_off = np.arange(-max_r_vox, max_r_vox + 1)
    offsets = np.array(
        [(i, j, k) for i in rng_off for j in rng_off for k in rng_off]
    )
    if len(coords) == 0:
        return grid
    base = np.rint(v).astype(np.intp)
    for a in range(len(coords)):
        cand = base[a] + offsets
        world = spec.voxel_to_world(cand)
        d = np.linalg.norm(world - coords[a], axis=1)
        sel = cand[d <= radii[a]]
        inside = np.all((sel >= 0) & (sel <= spec.n - 1), axis=1)
        sel = sel[inside]
        grid[sel[:, 0], sel[:, 1], sel[:, 2]] = True
    return grid


def surface_layer_mask(occupancy: np.ndarray) -> np.ndarray:
    """Boolean mask of surface voxels: occupied voxels adjacent to empty space.

    PIPER's shape channels distinguish the protein *core* (clash penalty)
    from a thin *surface* layer (attractive contact reward).  A voxel is
    surface if it is occupied and at least one of its 6 face neighbors is
    empty.
    """
    occ = occupancy > 0
    padded = np.pad(occ, 1, mode="constant", constant_values=False)
    core = padded[1:-1, 1:-1, 1:-1]
    has_empty_neighbor = (
        ~padded[:-2, 1:-1, 1:-1]
        | ~padded[2:, 1:-1, 1:-1]
        | ~padded[1:-1, :-2, 1:-1]
        | ~padded[1:-1, 2:, 1:-1]
        | ~padded[1:-1, 1:-1, :-2]
        | ~padded[1:-1, 1:-1, 2:]
    )
    return core & has_empty_neighbor
