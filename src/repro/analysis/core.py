"""Checker framework: findings, suppressions, source loading, the run loop.

A :class:`Checker` owns one rule id and inspects one parsed module at a
time.  The framework parses each file once into a :class:`SourceModule`
(AST + raw lines + the per-line suppression map), hands it to every
checker, and filters the merged findings through ``# repro:
ignore[RULE-ID]`` comments, so rules never deal with comments or I/O.

Suppression grammar (anywhere in a line's trailing comment)::

    x = 1  # repro: ignore[REPRO-LOCK] registry swap is test-only
    y = 2  # repro: ignore[REPRO-DET, REPRO-DTYPE] fixture noise

The ignore applies to findings *on that physical line*.  A bare
``# repro: ignore`` (no rule list) suppresses every rule on the line —
legal, but rule-scoped ignores are the reviewable form and what this
repo uses.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

__all__ = [
    "SEVERITIES",
    "Finding",
    "SourceModule",
    "Checker",
    "analyze_source",
    "analyze_file",
    "analyze_paths",
    "iter_python_files",
]

#: Finding severities, most severe first.  ``error`` findings are the
#: ones CI fails on; ``warning`` is reserved for advisory rules.
SEVERITIES = ("error", "warning")

#: ``# repro: ignore`` / ``# repro: ignore[RULE-A, RULE-B] free text``
_SUPPRESS_RE = re.compile(
    r"#\s*repro:\s*ignore(?:\[(?P<rules>[A-Z0-9\-,\s]*)\])?"
)


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at one source location.

    Ordered by (file, line, rule_id) so reports and baselines are stable
    across runs regardless of rule execution order.
    """

    file: str
    line: int
    rule_id: str
    severity: str = field(default="error", compare=False)
    message: str = field(default="", compare=False)

    def key(self) -> str:
        """Identity used by the baseline: location + rule, not message.

        Message text may be refined without invalidating a baseline; a
        finding that *moves* (edits above it) is treated as new — the
        price of line-keyed baselines, and the nudge to actually fix it.
        """
        return f"{self.file}:{self.line}:{self.rule_id}"

    def to_dict(self) -> Dict[str, object]:
        return {
            "file": self.file,
            "line": self.line,
            "rule_id": self.rule_id,
            "severity": self.severity,
            "message": self.message,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "Finding":
        return cls(
            file=str(data["file"]),
            line=int(data["line"]),  # type: ignore[call-overload]
            rule_id=str(data["rule_id"]),
            severity=str(data.get("severity", "error")),
            message=str(data.get("message", "")),
        )

    def render(self) -> str:
        return f"{self.file}:{self.line}: {self.rule_id} [{self.severity}] {self.message}"


@dataclass
class SourceModule:
    """One parsed file: everything a checker may need, computed once."""

    path: str               # repo-relative, forward slashes (baseline key)
    source: str
    tree: ast.Module
    lines: List[str]
    #: line number -> set of suppressed rule ids ("*" = all rules)
    suppressions: Dict[int, Set[str]]

    @classmethod
    def parse(cls, path: str, source: str) -> "SourceModule":
        tree = ast.parse(source, filename=path)
        lines = source.splitlines()
        return cls(
            path=path,
            source=source,
            tree=tree,
            lines=lines,
            suppressions=_collect_suppressions(lines),
        )

    def suppressed(self, line: int, rule_id: str) -> bool:
        rules = self.suppressions.get(line)
        if rules is None:
            return False
        return "*" in rules or rule_id in rules


def _collect_suppressions(lines: Sequence[str]) -> Dict[int, Set[str]]:
    out: Dict[int, Set[str]] = {}
    for lineno, text in enumerate(lines, start=1):
        if "#" not in text or "repro" not in text:
            continue
        match = _SUPPRESS_RE.search(text)
        if match is None:
            continue
        listed = match.group("rules")
        if listed is None:
            out[lineno] = {"*"}
        else:
            rules = {part.strip() for part in listed.split(",") if part.strip()}
            out[lineno] = rules or {"*"}
    return out


class Checker:
    """Base class of one rule.

    Subclasses set :attr:`rule_id` / :attr:`description` and implement
    :meth:`check`, yielding findings for one module.  The base provides
    :meth:`finding` so every rule stamps its id/severity consistently,
    and :meth:`run` which applies the module's line suppressions.
    """

    rule_id: str = ""
    description: str = ""
    severity: str = "error"

    def check(self, module: SourceModule) -> Iterable[Finding]:
        raise NotImplementedError

    def finding(self, module: SourceModule, node: ast.AST, message: str) -> Finding:
        return Finding(
            file=module.path,
            line=getattr(node, "lineno", 0),
            rule_id=self.rule_id,
            severity=self.severity,
            message=message,
        )

    def run(self, module: SourceModule) -> List[Finding]:
        return [
            f for f in self.check(module)
            if not module.suppressed(f.line, f.rule_id)
        ]


def analyze_source(
    path: str, source: str, checkers: Sequence[Checker]
) -> List[Finding]:
    """Run ``checkers`` over one in-memory file; returns sorted findings.

    A file that does not parse yields a single ``REPRO-PARSE`` error
    finding instead of crashing the run (CI still fails on it).
    """
    try:
        module = SourceModule.parse(path, source)
    except SyntaxError as exc:
        return [
            Finding(
                file=path,
                line=exc.lineno or 0,
                rule_id="REPRO-PARSE",
                severity="error",
                message=f"file does not parse: {exc.msg}",
            )
        ]
    findings: List[Finding] = []
    for checker in checkers:
        findings.extend(checker.run(module))
    return sorted(findings)


def analyze_file(
    path: Path, root: Path, checkers: Sequence[Checker]
) -> List[Finding]:
    rel = path.relative_to(root).as_posix()
    source = path.read_text(encoding="utf-8")
    return analyze_source(rel, source, checkers)


def iter_python_files(paths: Iterable[Path]) -> List[Path]:
    """Expand files/directories into a sorted, de-duplicated .py list."""
    out: Set[Path] = set()
    for path in paths:
        if path.is_dir():
            out.update(p for p in path.rglob("*.py") if "__pycache__" not in p.parts)
        elif path.suffix == ".py":
            out.add(path)
    return sorted(out)


def analyze_paths(
    paths: Iterable[Path],
    root: Path,
    checkers: Sequence[Checker],
    *,
    errors: Optional[List[Tuple[str, str]]] = None,
) -> List[Finding]:
    """Analyze every ``.py`` under ``paths``; findings sorted repo-wide.

    Unreadable files are recorded into ``errors`` (path, reason) when a
    list is supplied, else raised.
    """
    findings: List[Finding] = []
    for path in iter_python_files(paths):
        try:
            findings.extend(analyze_file(path, root, checkers))
        except OSError as exc:
            if errors is None:
                raise
            errors.append((str(path), str(exc)))
    return sorted(findings)
