"""REPRO-FORK: never create worker processes while holding a lock.

Forking (or spawning) with a lock held is a classic deadlock factory:
``fork`` clones the *holding* state of every lock in the child but not
the thread that would release it, and even spawn-based pools inherit a
serialization point — a pool constructed or fed while the parent holds a
lock couples worker scheduling to that lock's critical section.  The
repo's process machinery (:class:`repro.workers.pool.ProcessWorkerPool`,
:func:`repro.util.parallel.parallel_map`) is deliberately structured to
start and feed workers *outside* every lock; this rule pins that
discipline down.

Flagged inside any ``with <lock>:`` block (a ``self`` attribute the
enclosing class assigned a ``threading.Lock``/``RLock``/``Condition``,
or a local/module name bound to one):

* ``os.fork`` / ``os.forkpty`` calls,
* process-pool and process construction — ``multiprocessing.Process``,
  ``ProcessPoolExecutor``, a context's ``.Pool``, the repo's
  ``ProcessWorkerPool`` / ``parallel_map`` / ``multicore_dock_rotations``,
* ``.submit(...)`` on a local bound to a process pool in the same
  function (thread pools are fine — submitting to a
  ``ThreadPoolExecutor`` under a lock is an ordinary pattern here).

Nested function bodies are *not* treated as lock-held: a closure defined
under a lock runs whenever it is called, not where it is defined.
"""

from __future__ import annotations

import ast
from typing import Iterable, List, Optional, Set

from repro.analysis.core import Checker, Finding, SourceModule
from repro.analysis.rules.common import FunctionNode, dotted_name
from repro.analysis.rules.locking import _LOCK_FACTORIES, _lock_attributes

__all__ = ["ForkDisciplineRule"]

#: Final dotted-path segments that mean "this call starts a process".
_SPAWN_SEGMENTS = {
    "fork",
    "forkpty",
    "posix_spawn",
    "posix_spawnp",
    "Process",
    "ProcessPoolExecutor",
    "Pool",
    "ProcessWorkerPool",
    "parallel_map",
    "multicore_dock_rotations",
}

#: Constructors whose result makes a local "a process pool" (its
#: ``.submit`` then dispatches to worker processes).
_POOL_CONSTRUCTORS = {"ProcessPoolExecutor", "ProcessWorkerPool", "Pool"}


def _is_spawn_call(call: ast.Call) -> Optional[str]:
    name = dotted_name(call.func)
    if name is None:
        return None
    if name.rsplit(".", 1)[-1] in _SPAWN_SEGMENTS:
        return name
    return None


def _lock_names(tree: ast.AST) -> Set[str]:
    """Plain names (locals/globals) bound to a lock factory anywhere."""
    out: Set[str] = set()
    for node in ast.walk(tree):
        if not isinstance(node, ast.Assign):
            continue
        value = node.value
        if not (
            isinstance(value, ast.Call)
            and dotted_name(value.func) in _LOCK_FACTORIES
        ):
            continue
        for target in node.targets:
            if isinstance(target, ast.Name):
                out.add(target.id)
    return out


def _pool_locals(fn: ast.AST) -> Set[str]:
    """Names bound to a process-pool constructor within ``fn``."""
    out: Set[str] = set()
    for node in ast.walk(fn):
        if not isinstance(node, ast.Assign):
            continue
        value = node.value
        if not isinstance(value, ast.Call):
            continue
        name = dotted_name(value.func)
        if name is None or name.rsplit(".", 1)[-1] not in _POOL_CONSTRUCTORS:
            continue
        for target in node.targets:
            if isinstance(target, ast.Name):
                out.add(target.id)
    return out


def _is_lock_guard(
    item: ast.withitem, lock_attrs: Set[str], lock_names: Set[str]
) -> bool:
    expr = item.context_expr
    if (
        isinstance(expr, ast.Attribute)
        and isinstance(expr.value, ast.Name)
        and expr.value.id == "self"
        and expr.attr in lock_attrs
    ):
        return True
    return isinstance(expr, ast.Name) and expr.id in lock_names


class ForkDisciplineRule(Checker):
    rule_id = "REPRO-FORK"
    description = (
        "worker processes must not be created (os.fork, process pools, "
        "process-pool .submit) while holding a lock"
    )

    def check(self, module: SourceModule) -> Iterable[Finding]:
        lock_names = _lock_names(module.tree)
        yield from self._visit(
            module, module.tree, set(), lock_names, set(), False
        )

    def _visit(
        self,
        module: SourceModule,
        node: ast.AST,
        lock_attrs: Set[str],
        lock_names: Set[str],
        pool_locals: Set[str],
        guarded: bool,
    ) -> Iterable[Finding]:
        if isinstance(node, ast.ClassDef):
            attrs = _lock_attributes(node)
            for child in ast.iter_child_nodes(node):
                yield from self._visit(
                    module, child, attrs, lock_names, pool_locals, False
                )
            return
        if isinstance(node, FunctionNode):
            # A nested def's body is not lock-held at definition time.
            pools = _pool_locals(node)
            for child in ast.iter_child_nodes(node):
                yield from self._visit(
                    module, child, lock_attrs, lock_names, pools, False
                )
            return
        if isinstance(node, (ast.With, ast.AsyncWith)):
            inner = guarded or any(
                _is_lock_guard(item, lock_attrs, lock_names)
                for item in node.items
            )
            for item in node.items:
                yield from self._visit(
                    module, item, lock_attrs, lock_names, pool_locals, guarded
                )
            for stmt in node.body:
                yield from self._visit(
                    module, stmt, lock_attrs, lock_names, pool_locals, inner
                )
            return
        if guarded and isinstance(node, ast.Call):
            yield from self._check_call(module, node, pool_locals)
        for child in ast.iter_child_nodes(node):
            yield from self._visit(
                module, child, lock_attrs, lock_names, pool_locals, guarded
            )

    def _check_call(
        self, module: SourceModule, call: ast.Call, pool_locals: Set[str]
    ) -> Iterable[Finding]:
        spawn = _is_spawn_call(call)
        if spawn is not None:
            yield self.finding(
                module,
                call,
                f"`{spawn}(...)` called while holding a lock — start worker "
                "processes outside every critical section",
            )
            return
        func = call.func
        if (
            isinstance(func, ast.Attribute)
            and func.attr == "submit"
            and isinstance(func.value, ast.Name)
            and func.value.id in pool_locals
        ):
            yield self.finding(
                module,
                call,
                f"`{func.value.id}.submit(...)` dispatches to a process pool "
                "while holding a lock — hand work to workers outside the "
                "critical section",
            )
