"""REPRO-SCHEMA: wire documents are versioned on the way out and in.

Every public ``to_dict`` in the serving packages (``api/``,
``gateway/``, ``obs/``) is a wire shape someone will deserialize on the
far side of an upgrade; it must stamp ``schema_version`` (directly, or
via a ``SCHEMA_VERSION`` constant in the document it builds).  Every
``from_dict`` must validate the version *before* interpreting fields —
in this repo by calling ``check_schema_version`` (or consulting the
supported-versions constant) — so an unsupported document dies as a
typed 400, not as a puzzling ``KeyError`` three fields in.

Nested document *fragments* (sub-dicts embedded in a stamped parent,
e.g. per-tenant counter blocks inside ``/v1/stats``) are intentionally
exempt — mark them ``# repro: ignore[REPRO-SCHEMA]`` on the ``def``
line with the parent that stamps them.  Trivial bodies (``return
None``, ``pass``, a bare ``raise``) are exempt automatically: sentinels
like a null-span's ``to_dict`` produce no document to version.
"""

from __future__ import annotations

import ast
from typing import Iterable, Union

from repro.analysis.core import Checker, Finding, SourceModule
from repro.analysis.rules.common import dotted_name, in_any_dir

__all__ = ["WireSchemaRule"]

_WIRE_DIRS = ("api", "gateway", "obs")

#: Name fragments that count as "references the schema version".
_VERSION_NAMES = ("SCHEMA_VERSION", "SUPPORTED_SCHEMA_VERSIONS")

#: Validators a from_dict may delegate to.
_VALIDATORS = ("check_schema_version", "check_trace")

_FunctionDef = Union[ast.FunctionDef, ast.AsyncFunctionDef]


def _is_trivial(func: _FunctionDef) -> bool:
    """Docstring-stripped body is only pass/return-None/raise/ellipsis."""
    body = list(func.body)
    if (
        body
        and isinstance(body[0], ast.Expr)
        and isinstance(body[0].value, ast.Constant)
        and isinstance(body[0].value.value, str)
    ):
        body = body[1:]
    for stmt in body:
        if isinstance(stmt, ast.Pass):
            continue
        if isinstance(stmt, ast.Raise):
            continue
        if isinstance(stmt, ast.Return) and (
            stmt.value is None
            or (isinstance(stmt.value, ast.Constant) and stmt.value.value is None)
        ):
            continue
        if (
            isinstance(stmt, ast.Expr)
            and isinstance(stmt.value, ast.Constant)
            and stmt.value.value is Ellipsis
        ):
            continue
        return False
    return True


def _mentions_version(func: _FunctionDef) -> bool:
    for node in ast.walk(func):
        if isinstance(node, ast.Name) and any(
            v in node.id for v in _VERSION_NAMES
        ):
            return True
        if isinstance(node, ast.Attribute) and any(
            v in node.attr for v in _VERSION_NAMES
        ):
            return True
        if isinstance(node, ast.Constant) and node.value == "schema_version":
            return True
    return False


def _calls_validator(func: _FunctionDef) -> bool:
    for node in ast.walk(func):
        if isinstance(node, ast.Call):
            name = dotted_name(node.func)
            if name is not None and name.split(".")[-1] in _VALIDATORS:
                return True
    return False


class WireSchemaRule(Checker):
    rule_id = "REPRO-SCHEMA"
    description = (
        "public to_dict in api/gateway/obs must stamp schema_version; "
        "from_dict must validate it before reading fields"
    )

    def check(self, module: SourceModule) -> Iterable[Finding]:
        if not in_any_dir(module.path, _WIRE_DIRS):
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ClassDef) or node.name.startswith("_"):
                continue
            for stmt in node.body:
                if not isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    continue
                if stmt.name == "to_dict" and not _is_trivial(stmt):
                    if not _mentions_version(stmt):
                        yield self.finding(
                            module,
                            stmt,
                            f"{node.name}.to_dict builds a wire document "
                            "without stamping schema_version — future readers "
                            "cannot tell which dialect they hold",
                        )
                elif stmt.name == "from_dict" and not _is_trivial(stmt):
                    if not (_calls_validator(stmt) or _mentions_version(stmt)):
                        yield self.finding(
                            module,
                            stmt,
                            f"{node.name}.from_dict interprets a wire document "
                            "without validating schema_version first — call "
                            "check_schema_version(data, ...) before reading fields",
                        )
