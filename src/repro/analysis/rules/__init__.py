"""Rule registry: the invariants this repo checks on every file.

======================  =======================================================
Rule id                 Invariant protected
======================  =======================================================
``REPRO-LOCK``          Threaded classes guard their shared private state with
                        the lock they allocate (``with self._lock:``).
``REPRO-FORK``          Worker processes are never created — ``os.fork``,
                        process pools, process-pool ``.submit`` — while a lock
                        is held.
``REPRO-DET``           Seeded RNG everywhere; no wall clocks or hash-ordered
                        reductions in numeric code — the bitwise replay story.
``REPRO-DTYPE``         fp32-capable kernels never silently promote to fp64 —
                        the fp32/fp64 numerics-family separation.
``REPRO-SCHEMA``        Wire documents stamp and validate ``schema_version``.
``REPRO-ERR``           Serving layers raise the typed error taxonomy.
======================  =======================================================
"""

from typing import Dict, List

from repro.analysis.core import Checker
from repro.analysis.rules.determinism import DeterminismRule
from repro.analysis.rules.dtype import DtypePreservationRule
from repro.analysis.rules.errors import ErrorTaxonomyRule
from repro.analysis.rules.forking import ForkDisciplineRule
from repro.analysis.rules.locking import LockDisciplineRule
from repro.analysis.rules.schema import WireSchemaRule

__all__ = ["ALL_RULES", "default_checkers", "rule_table"]

#: Rule classes in report order.
ALL_RULES = (
    LockDisciplineRule,
    ForkDisciplineRule,
    DeterminismRule,
    DtypePreservationRule,
    WireSchemaRule,
    ErrorTaxonomyRule,
)


def default_checkers() -> List[Checker]:
    """Fresh instances of every registered rule."""
    return [cls() for cls in ALL_RULES]


def rule_table() -> Dict[str, str]:
    """rule id -> one-line description (the ``--list-rules`` view)."""
    return {cls.rule_id: cls.description for cls in ALL_RULES}
