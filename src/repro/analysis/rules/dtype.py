"""REPRO-DTYPE: fp32-capable kernels never silently promote to fp64.

The engines run two numerics families — fp64 "double" (the bitwise
serial reference) and fp32 "single" (the paper's GPU production
precision) — and a kernel is *fp32-capable* exactly when its dtype is a
parameter (a ``dtype`` argument/local, or ``self.dtype``).  Inside such
a function, three constructs silently pull computation back to fp64 on
the fp32 path, which both wrecks the families' separation (a "single"
run that partially computes in double is neither) and doubles memory
traffic on the hot path:

* dtype-less array allocation — ``np.zeros(n)``, ``np.empty(...)``,
  ``np.asarray(x)`` default to float64; pass ``dtype=dtype`` (or the
  source array's dtype) explicitly,
* hard-coded ``np.float64`` — bypasses the dtype parameter the function
  advertises (a *deliberate* fp64 accumulator in an fp32 kernel is a
  real pattern — mark it ``# repro: ignore[REPRO-DTYPE]`` with why),
* ``dtype=float`` / ``dtype="float64"`` — bare-Python-float spellings
  of the same promotion.

Scoped to ``minimize/`` and ``docking/``, the two kernel packages with
fp32 production paths.  Functions without a dtype binding are assumed
single-family (fp64-only reference code) and exempt.
"""

from __future__ import annotations

import ast
from typing import Iterable, Union

from repro.analysis.core import Checker, Finding, SourceModule
from repro.analysis.rules.common import FunctionNode, dotted_name, in_any_dir

__all__ = ["DtypePreservationRule"]

_KERNEL_DIRS = ("minimize", "docking")

#: numpy constructors that default to float64 without a dtype= keyword.
#: (np.arange is deliberately absent: with integer arguments it yields an
#: integer index array, not an fp64 promotion.)
_DEFAULT_F64_ALLOCS = {
    "np.zeros", "np.empty", "np.ones", "np.full",
    "np.asarray", "np.array", "np.linspace",
    "numpy.zeros", "numpy.empty", "numpy.ones", "numpy.full",
    "numpy.asarray", "numpy.array", "numpy.linspace",
}

_FunctionDef = Union[ast.FunctionDef, ast.AsyncFunctionDef]


def _own_scope(func: _FunctionDef) -> Iterable[ast.AST]:
    """Nodes of ``func``'s body, not descending into nested functions
    (those are fp32-capable, or not, on their own)."""
    stack = list(ast.iter_child_nodes(func))
    while stack:
        node = stack.pop()
        yield node
        if not isinstance(node, FunctionNode):
            stack.extend(ast.iter_child_nodes(node))


def _binds_dtype(func: _FunctionDef) -> bool:
    """True when the function parameterizes its dtype (fp32-capable)."""
    args = func.args
    for arg in (
        list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs)
    ):
        if arg.arg in ("dtype", "precision"):
            return True
    for node in _own_scope(func):
        if isinstance(node, ast.Name) and node.id == "dtype" and isinstance(
            node.ctx, ast.Store
        ):
            return True
        if (
            isinstance(node, ast.Attribute)
            and node.attr in ("dtype", "_dtype")
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"
        ):
            return True
    return False


def _is_float64_expr(node: ast.AST) -> bool:
    name = dotted_name(node)
    if name in ("np.float64", "numpy.float64", "float"):
        return True
    return isinstance(node, ast.Constant) and node.value in ("float64", "f8", "d")


class DtypePreservationRule(Checker):
    rule_id = "REPRO-DTYPE"
    description = (
        "in dtype-parameterized kernels under minimize/ and docking/: no "
        "dtype-less numpy allocations, no hard-coded np.float64/float promotion"
    )

    def check(self, module: SourceModule) -> Iterable[Finding]:
        if not in_any_dir(module.path, _KERNEL_DIRS):
            return
        for node in ast.walk(module.tree):
            if isinstance(node, FunctionNode) and _binds_dtype(node):
                yield from self._check_function(module, node)

    def _check_function(
        self, module: SourceModule, func: _FunctionDef
    ) -> Iterable[Finding]:
        for node in _own_scope(func):
            if not isinstance(node, ast.Call):
                continue
            name = dotted_name(node.func)
            if name in _DEFAULT_F64_ALLOCS:
                dtype_kw = next(
                    (kw for kw in node.keywords if kw.arg == "dtype"), None
                )
                if dtype_kw is None:
                    yield self.finding(
                        module,
                        node,
                        f"dtype-less {name}(...) in dtype-parameterized kernel "
                        f"{func.name}() defaults to float64 — pass "
                        "dtype= explicitly to preserve the fp32 path",
                    )
                elif _is_float64_expr(dtype_kw.value):
                    yield self.finding(
                        module,
                        node,
                        f"{name}(..., dtype=float64) hard-pins fp64 inside "
                        f"dtype-parameterized kernel {func.name}() — thread "
                        "the dtype parameter through instead",
                    )
            elif name in ("np.float64", "numpy.float64"):
                yield self.finding(
                    module,
                    node,
                    f"np.float64(...) scalar construction inside "
                    f"dtype-parameterized kernel {func.name}() promotes the "
                    "fp32 path — use the kernel dtype",
                )
            elif (
                isinstance(node.func, ast.Attribute)
                and node.func.attr == "astype"
                and node.args
                and _is_float64_expr(node.args[0])
            ):
                yield self.finding(
                    module,
                    node,
                    f".astype(float64) inside dtype-parameterized kernel "
                    f"{func.name}() promotes the fp32 path — cast to the "
                    "kernel dtype",
                )
