"""REPRO-LOCK: shared mutable state in lock-owning classes stays guarded.

A class that allocates a ``threading.Lock``/``RLock``/``Condition`` on
``self`` has declared "my private state is shared across threads".  From
that point on, every write to *other* private attributes (``self._x = …``
or ``self._x += …``) outside a ``with self.<lock>:`` block is a data
race waiting for a scheduler to expose it — exactly the class of bug a
runtime test only catches when the interleaving cooperates.

Conventions the rule understands (and that this repo codifies):

* ``__init__``/``__new__``/``__post_init__``/``__set_name__`` are
  construction — no other thread can hold the object yet — and exempt.
* Methods whose name ends in ``_locked`` are documented
  called-with-lock-held helpers and exempt (the *callers* are checked).
* Attributes holding the lock objects themselves are exempt, as is
  rebinding them (done only in construction anyway).
* Reads are not flagged: lock-free reads of monotonic counters are a
  documented pattern here; the rule is about lost updates.

Deliberately-unguarded writes (e.g. a single-writer flag) carry a
``# repro: ignore[REPRO-LOCK]`` with the reasoning, which turns every
exemption into a reviewed, greppable decision.
"""

from __future__ import annotations

import ast
from typing import Iterable, List, Set, Tuple

from repro.analysis.core import Checker, Finding, SourceModule
from repro.analysis.rules.common import dotted_name, iter_methods

__all__ = ["LockDisciplineRule"]

#: Constructor calls whose result makes an attribute "a lock".
_LOCK_FACTORIES = {
    "threading.Lock",
    "threading.RLock",
    "threading.Condition",
    "Lock",
    "RLock",
    "Condition",
}

#: Methods that run before the object can be shared between threads.
_CONSTRUCTION_METHODS = {"__init__", "__new__", "__post_init__", "__set_name__"}


def _lock_attributes(cls: ast.ClassDef) -> Set[str]:
    """Names of ``self`` attributes assigned a lock factory anywhere."""
    out: Set[str] = set()
    for node in ast.walk(cls):
        if not isinstance(node, ast.Assign):
            continue
        value = node.value
        if not (isinstance(value, ast.Call) and dotted_name(value.func) in _LOCK_FACTORIES):
            continue
        for target in node.targets:
            if (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
            ):
                out.add(target.attr)
    return out


def _is_self_lock_guard(item: ast.withitem, lock_attrs: Set[str]) -> bool:
    expr = item.context_expr
    return (
        isinstance(expr, ast.Attribute)
        and isinstance(expr.value, ast.Name)
        and expr.value.id == "self"
        and expr.attr in lock_attrs
    )


def _private_self_writes(
    method: ast.AST, lock_attrs: Set[str]
) -> Iterable[Tuple[ast.Attribute, bool]]:
    """(target, guarded) for each ``self._x`` write in ``method``.

    ``guarded`` is True when the write sits lexically inside a
    ``with self.<lock>:`` block.  Nested functions are traversed too —
    closures handed to other threads get no free pass.
    """

    def visit(node: ast.AST, guarded: bool) -> Iterable[Tuple[ast.Attribute, bool]]:
        if isinstance(node, (ast.With, ast.AsyncWith)):
            inner = guarded or any(
                _is_self_lock_guard(item, lock_attrs) for item in node.items
            )
            for item in node.items:
                yield from visit(item, guarded)
            for stmt in node.body:
                yield from visit(stmt, inner)
            return
        targets: List[ast.expr] = []
        if isinstance(node, ast.Assign):
            targets = list(node.targets)
        elif isinstance(node, ast.AugAssign):
            targets = [node.target]
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets = [node.target]
        for target in targets:
            if (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
                and target.attr.startswith("_")
                and not target.attr.startswith("__")
                and target.attr not in lock_attrs
            ):
                yield target, guarded
        for child in ast.iter_child_nodes(node):
            yield from visit(child, guarded)

    yield from visit(method, False)


class LockDisciplineRule(Checker):
    rule_id = "REPRO-LOCK"
    description = (
        "private attribute writes in lock-owning classes must happen "
        "inside `with self.<lock>:` (construction and `*_locked` helpers exempt)"
    )

    def check(self, module: SourceModule) -> Iterable[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            lock_attrs = _lock_attributes(node)
            if not lock_attrs:
                continue
            for method in iter_methods(node):
                if method.name in _CONSTRUCTION_METHODS:
                    continue
                if method.name.endswith("_locked"):
                    continue
                for target, guarded in _private_self_writes(method, lock_attrs):
                    if guarded:
                        continue
                    yield self.finding(
                        module,
                        target,
                        f"{node.name}.{method.name} writes self.{target.attr} "
                        f"outside `with self.{sorted(lock_attrs)[0]}:` — "
                        "unguarded shared-state mutation in a lock-owning class",
                    )
