"""REPRO-ERR: the serving layers speak the typed error taxonomy.

``repro.api.errors`` gives every caller-observable failure a stable wire
code, a canonical HTTP status, and a builtin-compatible base class.  A
bare ``raise ValueError(...)`` inside ``api/`` or ``gateway/`` bypasses
all three: the gateway can only ship it as an opaque 500
``internal_error``, clients cannot rebuild a typed exception from it,
and the message becomes the only machine-readable surface.

The rule flags ``raise`` of builtin exception constructors (and bare
builtin classes) in those two packages.  Allowed as-is:

* re-raise (``raise`` with no exception),
* ``NotImplementedError`` (abstract-method convention, not a wire error),
* ``AssertionError``/``StopIteration`` and friends (control flow),
* anything else by name — including the taxonomy's own classes, which
  *subclass* these builtins (``InvalidRequestError`` is a ``ValueError``)
  precisely so legacy ``except`` sites keep working.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.analysis.core import Checker, Finding, SourceModule
from repro.analysis.rules.common import dotted_name, in_any_dir

__all__ = ["ErrorTaxonomyRule"]

_SERVING_DIRS = ("api", "gateway")

#: Builtins that must travel as their typed taxonomy equivalents.
_BARE_BUILTINS = {
    "Exception",
    "ValueError",
    "TypeError",
    "KeyError",
    "IndexError",
    "LookupError",
    "RuntimeError",
    "TimeoutError",
    "OSError",
    "IOError",
    "ArithmeticError",
    "ZeroDivisionError",
    "AttributeError",
}


class ErrorTaxonomyRule(Checker):
    rule_id = "REPRO-ERR"
    description = (
        "raises in api/ and gateway/ use the repro.api.errors taxonomy, "
        "not bare builtin exceptions"
    )

    def check(self, module: SourceModule) -> Iterable[Finding]:
        if not in_any_dir(module.path, _SERVING_DIRS):
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Raise) or node.exc is None:
                continue
            exc = node.exc
            if isinstance(exc, ast.Call):
                name = dotted_name(exc.func)
            else:
                name = dotted_name(exc)
            if name in _BARE_BUILTINS:
                yield self.finding(
                    module,
                    node,
                    f"raise {name}(...) in a serving package — raise the "
                    "repro.api.errors equivalent (it still subclasses "
                    f"{name}, so existing handlers keep catching it) so the "
                    "gateway ships a typed code instead of an opaque 500",
                )
