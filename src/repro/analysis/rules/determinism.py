"""REPRO-DET: numeric code stays seeded, monotonic, and fixed-order.

Three classes of nondeterminism this repo's bitwise guarantees cannot
survive:

1. **Legacy RNG** (repo-wide): ``random.random()``-style module-level
   calls and ``np.random.<fn>()`` legacy global-state draws.  Every
   random stream here flows from an explicitly seeded
   ``np.random.default_rng(seed)`` or ``random.Random(seed)`` instance;
   global-state draws are invisible coupling between call sites and
   break replay.
2. **Wall clocks in numeric paths** (``docking/``, ``minimize/``,
   ``grids/``, ``geometry/``): ``time.time()`` / ``datetime.now()``
   readings feeding numeric code make runs time-dependent; timing is
   measured with ``time.perf_counter()`` and kept out of the numbers.
3. **Unordered iteration feeding reductions** (same numeric dirs):
   summing over a ``set`` (or accumulating ``+=`` while iterating one)
   executes floating-point addition in hash order, which breaks the
   fixed ``reduction_order`` guarantee that makes shard counts
   bitwise-invisible.  Sort first (``sorted(...)``) or keep a list.
"""

from __future__ import annotations

import ast
from typing import Iterable, Optional

from repro.analysis.core import Checker, Finding, SourceModule
from repro.analysis.rules.common import NUMERIC_DIRS, dotted_name, in_any_dir

__all__ = ["DeterminismRule"]

#: random-module draws that consume the hidden global state.
_LEGACY_RANDOM = {
    "random", "randint", "randrange", "uniform", "choice", "choices",
    "shuffle", "sample", "gauss", "normalvariate", "betavariate",
    "expovariate", "seed", "getrandbits", "vonmisesvariate", "triangular",
}

#: numpy.random attributes that are fine to touch (seeded constructors
#: and types); every other ``np.random.<x>(...)`` call is a legacy draw.
_NP_RANDOM_OK = {
    "default_rng", "Generator", "SeedSequence", "BitGenerator",
    "PCG64", "PCG64DXSM", "Philox", "MT19937", "SFC64",
}

#: Wall-clock reads banned in numeric code (perf_counter/monotonic ok).
_WALL_CLOCKS = {
    "time.time", "time.time_ns", "time.clock",
    "datetime.now", "datetime.utcnow", "datetime.today",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.date.today", "date.today",
}

#: Reduction entry points whose argument order is the addition order.
_REDUCERS = {"sum", "math.fsum", "fsum", "np.sum", "numpy.sum", "np.prod", "numpy.prod"}


def _set_expr(node: ast.AST) -> Optional[str]:
    """A human name for ``node`` when it produces a set, else None."""
    if isinstance(node, ast.Set):
        return "a set literal"
    if isinstance(node, ast.SetComp):
        return "a set comprehension"
    if isinstance(node, ast.Call):
        name = dotted_name(node.func)
        if name in ("set", "frozenset"):
            return f"{name}(...)"
    return None


def _accumulates(loop: ast.For) -> bool:
    """True when the loop body arithmetic-accumulates (``+=``/``*=``)."""
    for node in ast.walk(loop):
        if isinstance(node, ast.AugAssign) and isinstance(
            node.op, (ast.Add, ast.Mult, ast.Sub)
        ):
            return True
    return False


class DeterminismRule(Checker):
    rule_id = "REPRO-DET"
    description = (
        "no legacy global-state RNG anywhere; no wall clocks or "
        "set-ordered reductions in numeric code (docking/minimize/grids/geometry)"
    )

    def check(self, module: SourceModule) -> Iterable[Finding]:
        numeric = in_any_dir(module.path, NUMERIC_DIRS)
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Call):
                name = dotted_name(node.func)
                if name is None:
                    continue
                yield from self._check_rng(module, node, name)
                if numeric:
                    yield from self._check_clock(module, node, name)
                    yield from self._check_reducer(module, node, name)
            elif numeric and isinstance(node, ast.For):
                reason = _set_expr(node.iter)
                if reason is not None and _accumulates(node):
                    yield self.finding(
                        module,
                        node,
                        f"loop over {reason} accumulates arithmetic in hash "
                        "order — breaks the fixed reduction_order guarantee; "
                        "iterate a sorted(...) or a list instead",
                    )

    def _check_rng(
        self, module: SourceModule, node: ast.Call, name: str
    ) -> Iterable[Finding]:
        parts = name.split(".")
        if parts[0] == "random" and len(parts) == 2 and parts[1] in _LEGACY_RANDOM:
            yield self.finding(
                module,
                node,
                f"legacy global-state RNG call {name}() — use an explicitly "
                "seeded random.Random(seed) or np.random.default_rng(seed)",
            )
        elif (
            parts[0] in ("np", "numpy")
            and len(parts) >= 3
            and parts[1] == "random"
            and parts[2] not in _NP_RANDOM_OK
        ):
            yield self.finding(
                module,
                node,
                f"legacy numpy global-state RNG call {name}() — use "
                "np.random.default_rng(seed)",
            )

    def _check_clock(
        self, module: SourceModule, node: ast.Call, name: str
    ) -> Iterable[Finding]:
        if name in _WALL_CLOCKS:
            yield self.finding(
                module,
                node,
                f"wall-clock read {name}() in numeric code — runs become "
                "time-dependent; use time.perf_counter() for timing and keep "
                "clocks out of numeric paths",
            )

    def _check_reducer(
        self, module: SourceModule, node: ast.Call, name: str
    ) -> Iterable[Finding]:
        if name not in _REDUCERS or not node.args:
            return
        arg = node.args[0]
        reason = _set_expr(arg)
        if reason is None and isinstance(arg, (ast.GeneratorExp, ast.ListComp)):
            for gen in arg.generators:
                reason = _set_expr(gen.iter)
                if reason is not None:
                    break
        if reason is not None:
            yield self.finding(
                module,
                node,
                f"{name}() over {reason} adds floats in hash order — breaks "
                "the fixed reduction_order guarantee; sort the operands first",
            )
