"""Shared AST helpers for the rule modules."""

from __future__ import annotations

import ast
from typing import Iterator, Optional, Tuple

__all__ = [
    "NUMERIC_DIRS",
    "FunctionNode",
    "dotted_name",
    "in_any_dir",
    "iter_methods",
]

#: Both function statement forms, for isinstance checks.
FunctionNode = (ast.FunctionDef, ast.AsyncFunctionDef)

#: Package directories whose code computes the paper's numbers; the
#: determinism and dtype rules scope themselves to these.
NUMERIC_DIRS = ("docking", "minimize", "grids", "geometry")


def dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for Name/Attribute chains, else None.

    Resolution is purely syntactic — ``np.random.random`` is returned
    verbatim whether or not ``np`` is numpy — which is the right level
    for style rules: aliases beyond the conventional ones are rare and a
    rename to dodge the checker would not survive review.
    """
    parts = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def in_any_dir(path: str, dirs: Tuple[str, ...]) -> bool:
    """True when repo-relative ``path`` lives under any of ``dirs``.

    Matches path *segments* (``src/repro/docking/fft.py`` is in
    ``docking``; ``src/repro/mapping/docking_report.py`` is not).
    """
    segments = path.split("/")[:-1]  # directories only
    return any(d in segments for d in dirs)


def iter_methods(cls: ast.ClassDef) -> "Iterator[ast.FunctionDef | ast.AsyncFunctionDef]":
    """Direct methods of a class (sync and async), in source order."""
    for stmt in cls.body:
        if isinstance(stmt, FunctionNode):
            yield stmt
