"""Static repo-invariant analysis: AST rules for the reproduction's guarantees.

The reproduction's headline promises — bitwise-identical fixed-order
reductions across shard counts, seeded RNG everywhere, fp32/fp64
numerics-family separation, versioned wire schemas, a typed error
taxonomy — are runtime-tested, but runtime tests only see the paths they
exercise.  This package checks the invariants *statically*, on every
file, on every PR:

* :data:`~repro.analysis.rules.ALL_RULES` — the rule set
  (``REPRO-LOCK``, ``REPRO-DET``, ``REPRO-DTYPE``, ``REPRO-SCHEMA``,
  ``REPRO-ERR``), each a :class:`~repro.analysis.core.Checker` walking a
  parsed module.
* ``python -m repro.analysis`` — the CLI (text or JSON findings,
  non-zero exit on any non-baselined finding).
* ``# repro: ignore[RULE-ID]`` — per-line suppression, for findings that
  are *intentionally* exempt (the comment doubles as the audit trail).
* ``baseline.json`` — pre-existing findings recorded at adoption time;
  baselined findings do not fail CI, new ones do.

The analyzer is stdlib-only (``ast`` + ``tokenize``) and runs on its own
source like any other package.
"""

from repro.analysis.baseline import Baseline, load_baseline, write_baseline
from repro.analysis.core import (
    Checker,
    Finding,
    SourceModule,
    analyze_file,
    analyze_paths,
    analyze_source,
)
from repro.analysis.rules import ALL_RULES, rule_table

__all__ = [
    "ALL_RULES",
    "Baseline",
    "Checker",
    "Finding",
    "SourceModule",
    "analyze_file",
    "analyze_paths",
    "analyze_source",
    "load_baseline",
    "rule_table",
    "write_baseline",
]
