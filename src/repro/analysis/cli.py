"""``python -m repro.analysis`` — run the invariant rules over the repo.

Exit status is the contract CI builds on:

* ``0`` — no findings beyond the baseline,
* ``1`` — at least one new finding (or an unreadable/unparsable file),
* ``2`` — usage error (bad paths, unreadable baseline).

Typical invocations::

    python -m repro.analysis                          # src/ against no baseline
    python -m repro.analysis --baseline baseline.json # the CI gate
    python -m repro.analysis --format json --output findings.json
    python -m repro.analysis --write-baseline baseline.json  # (re)adopt
    python -m repro.analysis --list-rules
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional, Sequence, Tuple

from repro.analysis.baseline import Baseline, load_baseline, write_baseline
from repro.analysis.core import Finding, analyze_paths, iter_python_files
from repro.analysis.rules import default_checkers, rule_table

__all__ = ["main", "run"]


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="AST-based repo-invariant analyzer (lock discipline, "
        "determinism, dtype preservation, wire schemas, error taxonomy).",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to analyze (default: src)",
    )
    parser.add_argument(
        "--root",
        default=".",
        help="repo root findings are reported relative to (default: cwd)",
    )
    parser.add_argument(
        "--baseline",
        metavar="FILE",
        help="JSON baseline; findings recorded there pass, new ones fail",
    )
    parser.add_argument(
        "--write-baseline",
        metavar="FILE",
        help="write the current findings as FILE and exit 0 (adoption mode)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="findings report format (default: text)",
    )
    parser.add_argument(
        "--output",
        metavar="FILE",
        help="also write the full JSON findings report to FILE "
        "(CI artifact; independent of --format)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule table and exit",
    )
    return parser


def _render_text(
    new: Sequence[Finding],
    baselined: int,
    stale: Sequence[Finding],
    checked: Sequence[str],
) -> str:
    lines: List[str] = [f.render() for f in new]
    summary = (
        f"{len(new)} finding(s) in {len(checked)} file(s)"
        if new
        else f"clean: 0 findings in {len(checked)} file(s)"
    )
    if baselined:
        summary += f" ({baselined} baselined finding(s) suppressed)"
    lines.append(summary)
    for finding in stale:
        lines.append(
            f"stale baseline entry (fixed or moved — regenerate): {finding.key()}"
        )
    return "\n".join(lines)


def _report_dict(
    new: Sequence[Finding],
    baselined: int,
    stale: Sequence[Finding],
    checked: Sequence[str],
) -> dict:
    return {
        "findings": [f.to_dict() for f in new],
        "baselined": baselined,
        "stale_baseline_entries": [f.key() for f in stale],
        "files_checked": len(checked),
        "rules": rule_table(),
    }


def run(argv: Optional[Sequence[str]] = None) -> Tuple[int, str]:
    """Parse, analyze, format.  Returns (exit_status, report_text)."""
    args = _build_parser().parse_args(argv)

    if args.list_rules:
        table = rule_table()
        width = max(len(rid) for rid in table)
        text = "\n".join(f"{rid.ljust(width)}  {desc}" for rid, desc in table.items())
        return 0, text

    root = Path(args.root).resolve()
    targets = [Path(p) if Path(p).is_absolute() else root / p for p in args.paths]
    missing = [str(t) for t in targets if not t.exists()]
    if missing:
        return 2, f"no such path(s): {', '.join(missing)}"

    read_errors: List[Tuple[str, str]] = []
    findings = analyze_paths(targets, root, default_checkers(), errors=read_errors)
    checked = sorted(
        p.relative_to(root).as_posix() for p in iter_python_files(targets)
    )

    if args.write_baseline:
        write_baseline(root / args.write_baseline, findings)
        return 0, (
            f"wrote {len(findings)} finding(s) to {args.write_baseline} "
            f"from {len(checked)} file(s)"
        )

    baseline = Baseline()
    if args.baseline:
        try:
            baseline = load_baseline(root / args.baseline)
        except (OSError, ValueError, KeyError, json.JSONDecodeError) as exc:
            return 2, f"cannot read baseline {args.baseline}: {exc}"

    new = baseline.new_findings(findings)
    stale = baseline.stale_entries(findings)
    baselined = len(findings) - len(new)

    if args.output:
        report = _report_dict(new, baselined, stale, checked)
        out_path = Path(args.output)
        if not out_path.is_absolute():
            out_path = root / out_path
        out_path.write_text(
            json.dumps(report, indent=2, sort_keys=True) + "\n", encoding="utf-8"
        )

    if args.format == "json":
        text = json.dumps(
            _report_dict(new, baselined, stale, checked), indent=2, sort_keys=True
        )
    else:
        text = _render_text(new, baselined, stale, checked)
    if read_errors:
        text += "\n" + "\n".join(f"unreadable: {p}: {err}" for p, err in read_errors)

    status = 1 if (new or read_errors) else 0
    return status, text


def main(argv: Optional[Sequence[str]] = None) -> int:
    status, text = run(argv)
    stream = sys.stdout if status in (0, 1) else sys.stderr
    print(text, file=stream)
    return status
