"""Finding baselines: adopt a tool without stopping the line.

A baseline records the findings that existed when a rule was adopted (or
deliberately kept — e.g. a lock-free fast path with a documented memory
model).  CI compares the current run against it: **baselined findings
pass, anything new fails**, so the floor never rises silently.  Findings
that disappear are reported as stale entries — regenerate the baseline
to ratchet it down.

The file format is versioned JSON, sorted and newline-terminated so
diffs are reviewable::

    {
      "baseline_version": 1,
      "findings": [
        {"file": "src/...", "line": 10, "rule_id": "REPRO-LOCK", ...},
        ...
      ]
    }

This repo's policy (see README) is to *fix* what the rules surface and
baseline only the irreducible remainder; the shipped ``baseline.json``
is empty, which keeps the diff gate equal to the full gate.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Sequence, Set

from repro.analysis.core import Finding

__all__ = ["BASELINE_VERSION", "Baseline", "load_baseline", "write_baseline"]

BASELINE_VERSION = 1


@dataclass
class Baseline:
    """The accepted-findings set and the diff operation against it."""

    findings: List[Finding] = field(default_factory=list)

    def keys(self) -> Set[str]:
        return {f.key() for f in self.findings}

    def new_findings(self, current: Sequence[Finding]) -> List[Finding]:
        """Findings in ``current`` that the baseline does not cover."""
        accepted = self.keys()
        return [f for f in current if f.key() not in accepted]

    def stale_entries(self, current: Sequence[Finding]) -> List[Finding]:
        """Baseline entries whose finding no longer occurs (fixed/moved)."""
        live = {f.key() for f in current}
        return [f for f in self.findings if f.key() not in live]

    def to_dict(self) -> Dict[str, object]:
        return {
            "baseline_version": BASELINE_VERSION,
            "findings": [f.to_dict() for f in sorted(self.findings)],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "Baseline":
        if not isinstance(data, dict):
            raise ValueError(
                f"baseline must be a JSON object, got {type(data).__name__}"
            )
        version = data.get("baseline_version")
        if version != BASELINE_VERSION:
            raise ValueError(
                f"unsupported baseline_version {version!r} "
                f"(this build reads version {BASELINE_VERSION})"
            )
        raw = data.get("findings", [])
        if not isinstance(raw, list):
            raise ValueError("baseline 'findings' must be a list")
        return cls(findings=[Finding.from_dict(item) for item in raw])


def load_baseline(path: Path) -> Baseline:
    with open(path, encoding="utf-8") as fh:
        return Baseline.from_dict(json.load(fh))


def write_baseline(path: Path, findings: Sequence[Finding]) -> None:
    baseline = Baseline(findings=list(findings))
    path.write_text(
        json.dumps(baseline.to_dict(), indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )
