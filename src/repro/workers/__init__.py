"""Process-backed stage workers: GIL-independent dock/minimize overlap.

The thread-staged probe pipeline (:class:`repro.util.parallel.
PipelineExecutor`) only truly overlaps dock and minimize when numpy
happens to release the GIL.  This package makes the overlap
process-real: a small fork/spawn-backed worker pool
(:class:`~repro.workers.pool.ProcessWorkerPool`) executes the stage
functions in separate worker processes, and the bulk pose/ensemble
payloads ship between processes through named
``multiprocessing.shared_memory`` segments managed by a leased arena
(:class:`~repro.workers.shm.ShmArena`) — zero-copy numpy views in the
workers, deterministic unlink in the parent on completion, cancellation
or worker death.

:meth:`repro.api.FTMapService` wires this in as ``streaming="process"``
(auto-selected on multi-CPU hosts for multi-probe requests); the
scheduling changes, the values never do — process-streamed results are
bitwise-identical to the sequential stage loop at fp64.
"""

from repro.workers.pool import ProcessWorkerPool, WorkerFuture, worker_stats
from repro.workers.shm import ArrayBundle, ShmArena, shm_bytes_in_use

__all__ = [
    "ProcessWorkerPool",
    "WorkerFuture",
    "worker_stats",
    "ArrayBundle",
    "ShmArena",
    "shm_bytes_in_use",
]
