"""Shared-memory array shipping: named segments behind a leased arena.

One :class:`ArrayBundle` describes a set of numpy arrays packed into a
single named ``multiprocessing.shared_memory`` segment — the bundle is a
small picklable document (segment name, per-array dtype/shape/offset)
that crosses process boundaries over a pipe while the bytes themselves
never move.  Workers :func:`pack_arrays` their stage outputs into a
segment whose *name the parent assigned up front*, and readers map
zero-copy views with :func:`map_arrays`.

The parent side holds an :class:`ShmArena`: every segment name is
reserved through it *before* the producing task is dispatched, so there
is exactly one place that knows which segments a request owns and the
arena can unlink them deterministically — on completion (after the
consumer copied what it keeps), on cancellation (the producer may never
have created the segment; a missing name is not an error), and on worker
death (the name was reserved parent-side, so a SIGKILLed producer leaks
nothing the arena cannot find).  ``repro_shm_bytes_in_use`` tracks the
live parent-side footprint.
"""

from __future__ import annotations

import os
import threading
from dataclasses import dataclass, field
from multiprocessing import shared_memory
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.obs.metrics import registry

__all__ = [
    "ArraySpec",
    "ArrayBundle",
    "pack_arrays",
    "map_arrays",
    "ShmArena",
    "shm_bytes_in_use",
]

#: Byte alignment of each array inside a segment (cache-line friendly,
#: and every float64 view stays naturally aligned).
_ALIGN = 64


def _untrack(seg: shared_memory.SharedMemory) -> None:
    """Cancel the resource tracker's claim on ``seg``.

    On CPython ≤3.12 *every* ``SharedMemory`` constructor — attach as
    well as create — registers the segment with the calling process's
    resource tracker (bpo-39959), and workers forked before the parent's
    tracker started get trackers of their own; those would "clean up"
    (warn about) names the arena already unlinked.  Segment lifetime
    here is owned by exactly one place — the reserving
    :class:`ShmArena` — so every other construction cancels its
    registration immediately and cleanup stays deterministic.
    """
    try:
        from multiprocessing import resource_tracker

        resource_tracker.unregister(seg._name, "shared_memory")
    except Exception:  # pragma: no cover - tracker internals moved
        pass

_BYTES_LOCK = threading.Lock()
_BYTES_IN_USE = 0


def _gauge():
    return registry().gauge(
        "repro_shm_bytes_in_use",
        help="Bytes of live shared-memory segments leased by worker arenas.",
    )


def _account(delta: int) -> None:
    global _BYTES_IN_USE
    with _BYTES_LOCK:
        _BYTES_IN_USE = max(0, _BYTES_IN_USE + delta)
        _gauge().set(float(_BYTES_IN_USE))


def shm_bytes_in_use() -> int:
    """Parent-side bytes currently leased across all live arenas."""
    with _BYTES_LOCK:
        return _BYTES_IN_USE


@dataclass(frozen=True)
class ArraySpec:
    """Location of one array inside a segment."""

    key: str
    dtype: str
    shape: Tuple[int, ...]
    offset: int


@dataclass(frozen=True)
class ArrayBundle:
    """Picklable description of arrays packed into one named segment."""

    segment: str
    nbytes: int
    arrays: Tuple[ArraySpec, ...] = field(default_factory=tuple)


def _layout(arrays: Dict[str, np.ndarray]) -> Tuple[List[ArraySpec], int]:
    specs: List[ArraySpec] = []
    offset = 0
    for key, arr in arrays.items():
        arr = np.ascontiguousarray(arr)
        offset = (offset + _ALIGN - 1) // _ALIGN * _ALIGN
        specs.append(ArraySpec(key, arr.dtype.str, tuple(arr.shape), offset))
        offset += arr.nbytes
    return specs, offset


def pack_arrays(name: str, arrays: Dict[str, np.ndarray]) -> ArrayBundle:
    """Copy ``arrays`` into a newly created segment called ``name``.

    Returns the bundle; the creator's handle is closed immediately (the
    mapping is only needed for the copy) and the segment stays alive
    under its name until some process unlinks it — by protocol, the
    arena that reserved the name.  An all-empty array set packs to a
    metadata-only bundle with no segment at all (``shared_memory``
    refuses zero-byte segments, and there is nothing to ship).
    """
    specs, total = _layout(arrays)
    if total == 0:
        return ArrayBundle(segment="", nbytes=0, arrays=tuple(specs))
    seg = shared_memory.SharedMemory(name=name, create=True, size=total)
    _untrack(seg)
    try:
        for spec in specs:
            arr = np.ascontiguousarray(arrays[spec.key])
            if arr.nbytes == 0:
                continue
            view = np.ndarray(
                spec.shape, dtype=np.dtype(spec.dtype),
                buffer=seg.buf, offset=spec.offset,
            )
            view[...] = arr
    finally:
        seg.close()
    return ArrayBundle(segment=name, nbytes=total, arrays=tuple(specs))


def map_arrays(
    bundle: ArrayBundle, copy: bool = False
) -> Tuple[Dict[str, np.ndarray], Optional[shared_memory.SharedMemory]]:
    """Arrays of ``bundle``: zero-copy read-only views, or copies.

    With ``copy=False`` the returned handle *must* be kept referenced for
    as long as the views are used and ``close()``\\ d afterwards; with
    ``copy=True`` the handle is already closed and ``None`` is returned.
    """
    if not bundle.segment:
        return {
            spec.key: np.empty(spec.shape, dtype=np.dtype(spec.dtype))
            for spec in bundle.arrays
        }, None
    seg = shared_memory.SharedMemory(name=bundle.segment, create=False)
    _untrack(seg)
    out: Dict[str, np.ndarray] = {}
    for spec in bundle.arrays:
        view = np.ndarray(
            spec.shape, dtype=np.dtype(spec.dtype),
            buffer=seg.buf, offset=spec.offset,
        )
        if copy:
            out[spec.key] = view.copy()
        else:
            view.flags.writeable = False
            out[spec.key] = view
    if copy:
        seg.close()
        return out, None
    return out, seg


class ShmArena:
    """Parent-side lease manager for one request's segments.

    Names are reserved *before* the producing worker task is dispatched
    (:meth:`reserve`), sized when the producer reports back
    (:meth:`lease`), and unlinked exactly once — :meth:`release` per
    bundle on the normal path, :meth:`release_all` on cancellation,
    failure or worker death.  Unlinking a name whose segment was never
    created (the producer died first) is a no-op by design.
    """

    def __init__(self, prefix: str) -> None:
        # Segment names are a shared OS namespace: scope them by pid so
        # two services on one host can never collide.
        self.prefix = f"{prefix}-{os.getpid()}"
        self._lock = threading.Lock()
        self._leases: Dict[str, int] = {}
        self._released = False

    def reserve(self, tag: str) -> str:
        """Reserve (and return) the segment name for ``tag``."""
        name = f"{self.prefix}-{tag}"
        with self._lock:
            if self._released:
                raise RuntimeError("arena already released")
            self._leases.setdefault(name, 0)
        return name

    def lease(self, bundle: ArrayBundle) -> None:
        """Record the realized size of a reserved segment."""
        if not bundle.segment:
            return
        with self._lock:
            prev = self._leases.get(bundle.segment, 0)
            self._leases[bundle.segment] = bundle.nbytes
        if bundle.nbytes != prev:
            _account(bundle.nbytes - prev)

    def read(self, bundle: ArrayBundle) -> Dict[str, np.ndarray]:
        """Materialize a bundle's arrays as parent-owned copies."""
        arrays, _ = map_arrays(bundle, copy=True)
        return arrays

    def release(self, bundle: Optional[ArrayBundle]) -> None:
        """Unlink one bundle's segment (idempotent, missing-name safe)."""
        if bundle is None or not bundle.segment:
            return
        self._unlink(bundle.segment)

    def release_all(self) -> None:
        """Unlink every leased segment; the arena is dead afterwards."""
        with self._lock:
            names = list(self._leases)
            self._released = True
        for name in names:
            self._unlink(name)

    def _unlink(self, name: str) -> None:
        with self._lock:
            nbytes = self._leases.pop(name, None)
        if nbytes is None:
            return
        if nbytes:
            _account(-nbytes)
        try:
            seg = shared_memory.SharedMemory(name=name, create=False)
        except FileNotFoundError:
            return
        # No _untrack here: this attach's registration is cancelled by
        # ``unlink()`` itself — the one stock register/unregister pair
        # that is already balanced.
        try:
            seg.close()
            seg.unlink()
        except FileNotFoundError:  # lost a (benign) unlink race
            pass

    @property
    def bytes_in_use(self) -> int:
        with self._lock:
            return sum(self._leases.values())

    def __len__(self) -> int:
        with self._lock:
            return len(self._leases)
