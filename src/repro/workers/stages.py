"""Worker-process bodies of the dock and minimize pipeline stages.

These run inside :class:`~repro.workers.pool.ProcessWorkerPool` workers
and call the *same* stage functions the sequential and thread-pipelined
paths call (:func:`repro.mapping.ftmap.dock_probe` /
:func:`minimize_poses` / :func:`cluster_probe`), at the same fp64
numerics — which is what makes ``streaming="process"`` bitwise-identical
to ``"sequential"``.  Only the transport differs:

* pose ensembles and minimized conformation stacks ship through named
  shared-memory segments (:mod:`repro.workers.shm`) whose names the
  parent reserved up front; workers read them as zero-copy views,
* everything small (backends, cluster summaries, per-pose scalars,
  measured span times) rides the task pipe as regular pickles,
* span context crosses the process boundary serialized: the parent
  passes its stage span id, the worker measures ``perf_counter`` start/
  end (``CLOCK_MONOTONIC`` — one clock for every process on the host)
  and the parent stitches the execution span back into the request
  trace post hoc via :meth:`repro.obs.trace.Tracer.add_span`.

The per-request context (receptor, config, cache manager) installs once
per worker via :func:`init_stage_worker`; the manager pickles as
configuration-only, so workers start with empty memory tiers but share
a configured disk tier — including its single-flight lockfiles.
"""

from __future__ import annotations

import time
from dataclasses import replace
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.docking.piper import DockedPose
from repro.geometry.transforms import RigidTransform
from repro.mapping import ftmap as _ftmap
from repro.workers.shm import ArrayBundle, map_arrays, pack_arrays

__all__ = [
    "init_stage_worker",
    "dock_stage_task",
    "minimize_stage_task",
    "pack_poses",
    "unpack_poses",
]

#: (receptor, config, cache manager) — installed once per worker.
_STAGE_CTX = None

_EMPTY_COORDS = np.empty((0, 3))


def init_stage_worker(receptor, config, cache=None) -> None:
    global _STAGE_CTX
    _STAGE_CTX = (receptor, config, cache)


# -- pose ensemble packing ----------------------------------------------------------


def pose_arrays(poses: Sequence[DockedPose]) -> Dict[str, np.ndarray]:
    """Flatten a pose list into the arrays that ship through shm."""
    n = len(poses)
    return {
        "rotation_indices": np.array(
            [p.rotation_index for p in poses], dtype=np.int64
        ),
        "rotations": (
            np.stack([np.asarray(p.rotation, dtype=np.float64) for p in poses])
            if n else np.empty((0, 3, 3))
        ),
        "voxel_offsets": np.array(
            [tuple(p.translation) for p in poses], dtype=np.int64
        ).reshape(n, 3),
        "scores": np.array([p.score for p in poses], dtype=np.float64),
        "world_rotations": (
            np.stack([p.transform.rotation for p in poses])
            if n else np.empty((0, 3, 3))
        ),
        "world_translations": (
            np.stack([p.transform.translation for p in poses])
            if n else np.empty((0, 3))
        ),
    }


def poses_from_arrays(arrays: Dict[str, np.ndarray]) -> List[DockedPose]:
    """Rebuild the pose list (bitwise: all fp64 fields round-trip exact)."""
    out: List[DockedPose] = []
    for k in range(len(arrays["scores"])):
        out.append(
            DockedPose(
                rotation_index=int(arrays["rotation_indices"][k]),
                rotation=np.array(arrays["rotations"][k]),
                translation=tuple(
                    int(v) for v in arrays["voxel_offsets"][k]
                ),
                score=float(arrays["scores"][k]),
                transform=RigidTransform(
                    np.array(arrays["world_rotations"][k]),
                    np.array(arrays["world_translations"][k]),
                ),
            )
        )
    return out


def pack_poses(segment: str, poses: Sequence[DockedPose]) -> ArrayBundle:
    return pack_arrays(segment, pose_arrays(poses))


def unpack_poses(bundle: Optional[ArrayBundle]) -> List[DockedPose]:
    if bundle is None:
        return []
    arrays, seg = map_arrays(bundle)
    try:
        return poses_from_arrays(arrays)
    finally:
        if seg is not None:
            seg.close()


# -- stage tasks --------------------------------------------------------------------


def dock_stage_task(
    name: str, probe, out_segment: str, parent_span_id: str = ""
) -> dict:
    """Dock one probe; poses ship back through ``out_segment``."""
    receptor, cfg, manager = _STAGE_CTX
    t0 = time.perf_counter()
    run = _ftmap.dock_probe(receptor, probe, cfg, cache=manager)
    t1 = time.perf_counter()
    bundle = pack_poses(out_segment, run.poses)
    return {
        "probe": name,
        "poses": bundle,
        "n_poses": len(run.poses),
        # The run's provenance without its bulk payload.
        "run_meta": replace(run, poses=[]),
        "spans": [("dock-exec", t0, t1, parent_span_id)],
    }


def minimize_stage_task(
    name: str,
    probe,
    poses_bundle: Optional[ArrayBundle],
    out_segment: str,
    parent_span_id: str = "",
) -> dict:
    """Minimize + cluster one probe's docked ensemble.

    Reads the pose ensemble as zero-copy views over the dock stage's
    segment, refines, and ships the minimized coordinate stack, centers
    and energies back through ``out_segment``.
    """
    receptor, cfg, manager = _STAGE_CTX
    arrays, seg = (
        map_arrays(poses_bundle)
        if poses_bundle is not None and poses_bundle.segment
        else ({}, None)
    )
    try:
        poses = (
            poses_from_arrays(arrays) if arrays else unpack_poses(poses_bundle)
        )
        t0 = time.perf_counter()
        stage = _ftmap.minimize_poses(receptor, probe, poses, cfg, cache=manager)
        t1 = time.perf_counter()
        clusters = _ftmap.cluster_probe(stage.centers, stage.energies, cfg)
        t2 = time.perf_counter()
    finally:
        if seg is not None:
            seg.close()
    coords = (
        np.stack([r.coords for r in stage.results])
        if stage.results else np.empty((0, 0, 3))
    )
    bundle = pack_arrays(
        out_segment,
        {
            "coords": coords,
            "centers": np.asarray(stage.centers, dtype=np.float64),
            "energies": np.asarray(stage.energies, dtype=np.float64),
        },
    )
    # Results travel coords-less over the pipe; the parent re-attaches
    # the stacks from shared memory.
    results_lite = [replace(r, coords=_EMPTY_COORDS) for r in stage.results]
    return {
        "probe": name,
        "ensemble": bundle,
        "results_lite": results_lite,
        "clusters": clusters,
        "backend": stage.backend,
        "devices": stage.devices,
        "shard_sizes": tuple(stage.shard_sizes),
        "reduction_order": tuple(stage.reduction_order),
        "cached": stage.cached,
        "spans": [
            ("minimize-exec", t0, t1, parent_span_id),
            ("cluster-exec", t1, t2, parent_span_id),
        ],
    }


def rebuild_minimize_results(results_lite, coords: np.ndarray):
    """Re-attach shared-memory coordinate stacks to the shipped results."""
    return [
        replace(lite, coords=np.array(coords[k]))
        for k, lite in enumerate(results_lite)
    ]
