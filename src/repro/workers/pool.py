"""A small fork/spawn-backed worker pool for pipeline stage tasks.

Unlike :func:`repro.util.parallel.parallel_map` (one barriered fan-out
per call), this pool is *resident*: workers start once per request, are
fed stage tasks over per-worker pipes, and results stream back as each
finishes — which is what lets probe ``k+1`` dock in one process while
probe ``k`` minimizes in another, GIL-independently.

Design points:

* **per-worker duplex pipes** — the parent's collector thread waits on
  every worker's pipe *and* its process sentinel in one
  ``multiprocessing.connection.wait`` call, so a worker that dies
  mid-task (OOM-kill, segfault, ``SIGKILL``) is detected immediately:
  its in-flight task fails with a typed
  :class:`~repro.api.errors.JobFailedError`, and the pool refills to its
  configured size so queued tasks still run.
* **fork-without-locks discipline** — worker processes are always
  started outside the pool lock (a lock held across a fork is cloned
  *locked* into the child; rule REPRO-FORK enforces this repo-wide).
* **daemonic workers** — nested process fan-out inside a stage (e.g. a
  ``multiprocess`` minimize backend) degrades to its serial fallback
  instead of forking grandchildren, mirroring the legacy fork path.

``repro_worker_pool_size`` / ``repro_worker_busy`` gauges and
:func:`worker_stats` (the ``/v1/stats`` ``workers`` section) aggregate
over every live pool in the process.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import threading
import time
import weakref
from collections import deque
from multiprocessing.connection import wait as _conn_wait
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.api.errors import JobFailedError
from repro.obs.logging import log_event
from repro.obs.metrics import registry
from repro.workers import shm as _shm

__all__ = ["ProcessWorkerPool", "WorkerFuture", "worker_stats"]

_POOLS: "weakref.WeakSet[ProcessWorkerPool]" = weakref.WeakSet()
_STATS_LOCK = threading.Lock()
_TASKS_TOTAL = 0
_RESTARTS_TOTAL = 0


def _update_gauges() -> None:
    size = busy = 0
    for pool in list(_POOLS):
        p_size, p_busy = pool._occupancy()
        size += p_size
        busy += p_busy
    reg = registry()
    reg.gauge(
        "repro_worker_pool_size", help="Live stage-worker processes."
    ).set(float(size))
    reg.gauge(
        "repro_worker_busy", help="Stage-worker processes executing a task."
    ).set(float(busy))


def worker_stats() -> Dict[str, int]:
    """Aggregate worker-pool occupancy for ``/v1/stats``."""
    pools = list(_POOLS)
    size = busy = 0
    for pool in pools:
        p_size, p_busy = pool._occupancy()
        size += p_size
        busy += p_busy
    with _STATS_LOCK:
        tasks, restarts = _TASKS_TOTAL, _RESTARTS_TOTAL
    return {
        "pools": len(pools),
        "pool_size": size,
        "busy": busy,
        "shm_bytes_in_use": _shm.shm_bytes_in_use(),
        "stage_tasks_total": tasks,
        "worker_restarts_total": restarts,
    }


def _count_task() -> None:
    global _TASKS_TOTAL
    with _STATS_LOCK:
        _TASKS_TOTAL += 1


def _count_restart() -> None:
    global _RESTARTS_TOTAL
    with _STATS_LOCK:
        _RESTARTS_TOTAL += 1


class WorkerFuture:
    """Result slot of one submitted task."""

    def __init__(self, task_id: int, label: str) -> None:
        self.task_id = task_id
        self.label = label
        self._event = threading.Event()
        self._value: Any = None
        self._error: Optional[BaseException] = None

    def done(self) -> bool:
        return self._event.is_set()

    def result(self, timeout: Optional[float] = None) -> Any:
        if not self._event.wait(timeout):
            raise TimeoutError(f"task {self.label!r} did not complete in time")
        if self._error is not None:
            raise self._error
        return self._value

    def exception(self, timeout: Optional[float] = None) -> Optional[BaseException]:
        if not self._event.wait(timeout):
            raise TimeoutError(f"task {self.label!r} did not complete in time")
        return self._error

    def _resolve(self, value: Any = None, error: Optional[BaseException] = None) -> None:
        self._value, self._error = value, error
        self._event.set()


class _Worker:
    def __init__(self, proc: mp.process.BaseProcess, conn) -> None:
        self.proc = proc
        self.conn = conn
        self.task: Optional[Tuple[WorkerFuture, Callable, tuple]] = None


def _worker_main(conn, initializer, initargs) -> None:
    """Child process loop: init once, then serve tasks until EOF/None."""
    if initializer is not None:
        initializer(*initargs)
    while True:
        try:
            msg = conn.recv()
        except (EOFError, OSError):
            break
        if msg is None:
            break
        task_id, fn, args, kwargs = msg
        try:
            value = fn(*args, **kwargs)
            reply = (task_id, "ok", value)
        except BaseException as exc:  # ship the failure, keep serving
            reply = (task_id, "error", exc)
        try:
            conn.send(reply)
        except Exception:
            # An unpicklable value/exception must not kill the worker
            # silently: degrade to a described error.
            conn.send((task_id, "error", RuntimeError(
                f"task result not transferable: {reply[2]!r}"
            )))
    conn.close()


class ProcessWorkerPool:
    """``n_workers`` resident processes executing submitted stage tasks.

    ``initializer(*initargs)`` runs once in each worker before it serves
    tasks (the per-request context: receptor, config, cache manager —
    everything tasks would otherwise re-ship per call).  Submitted
    functions and arguments must be picklable module-level callables;
    results return through :class:`WorkerFuture`.

    ``start_method``: ``"fork"`` where available (cheap, inherits warmed
    imports), else ``"spawn"``; pass explicitly to override.
    """

    def __init__(
        self,
        n_workers: int,
        initializer: Optional[Callable] = None,
        initargs: tuple = (),
        start_method: Optional[str] = None,
        name: str = "workers",
    ) -> None:
        if n_workers < 1:
            raise ValueError(f"n_workers must be >= 1, got {n_workers}")
        if start_method is None:
            methods = mp.get_all_start_methods()
            start_method = "fork" if "fork" in methods else "spawn"
        self.name = name
        self.n_workers = int(n_workers)
        self._ctx = mp.get_context(start_method)
        self._initializer = initializer
        self._initargs = initargs
        self._lock = threading.Lock()
        self._workers: List[_Worker] = []
        self._queue: "deque[Tuple[WorkerFuture, Callable, tuple, dict]]" = deque()
        self._task_counter = 0
        self._closed = False
        self._wake_r, self._wake_w = os.pipe()
        # Workers fork before the collector thread exists and outside any
        # lock: the children inherit a single-threaded, lock-free world.
        workers = [self._start_worker() for _ in range(self.n_workers)]
        self._workers.extend(workers)
        self._collector = threading.Thread(
            target=self._collect, name=f"{name}-collector", daemon=True
        )
        self._collector.start()
        _POOLS.add(self)
        _update_gauges()

    # -- lifecycle ---------------------------------------------------------------

    def __enter__(self) -> "ProcessWorkerPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close(cancel=exc_info[0] is not None)

    def _start_worker(self) -> _Worker:
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        proc = self._ctx.Process(
            target=_worker_main,
            args=(child_conn, self._initializer, self._initargs),
            name=f"{self.name}-worker",
            daemon=True,
        )
        proc.start()
        child_conn.close()
        return _Worker(proc, parent_conn)

    def close(self, cancel: bool = False, timeout: float = 10.0) -> None:
        """Stop the pool.

        ``cancel=False`` lets in-flight tasks finish first; ``cancel=True``
        terminates workers immediately and fails queued/in-flight futures
        (the cancellation/failure path — callers then release the arena,
        which unlinks whatever segments the dead tasks had leased).
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
            queued = list(self._queue)
            self._queue.clear()
        for future, _, _, _ in queued:
            future._resolve(error=JobFailedError(
                f"worker pool {self.name!r} closed before task "
                f"{future.label!r} ran"
            ))
        if not cancel:
            deadline = time.monotonic() + timeout
            while time.monotonic() < deadline:
                with self._lock:
                    if all(w.task is None for w in self._workers):
                        break
                time.sleep(0.01)
        with self._lock:
            workers, self._workers = self._workers, []
        for worker in workers:
            if cancel and worker.proc.is_alive():
                worker.proc.terminate()
            else:
                try:
                    worker.conn.send(None)
                except (OSError, BrokenPipeError):
                    pass
        self._wake()
        for worker in workers:
            worker.proc.join(timeout)
            if worker.proc.is_alive():
                worker.proc.kill()
                worker.proc.join(timeout)
            worker.conn.close()
            if worker.task is not None:
                future = worker.task[0]
                if not future.done():
                    future._resolve(error=JobFailedError(
                        f"worker pool {self.name!r} cancelled task "
                        f"{future.label!r}"
                    ))
        self._collector.join(timeout)
        try:
            os.close(self._wake_r)
            os.close(self._wake_w)
        except OSError:
            pass
        _POOLS.discard(self)
        _update_gauges()

    # -- submission --------------------------------------------------------------

    def submit(
        self, fn: Callable, *args, label: str = "", **kwargs
    ) -> WorkerFuture:
        """Queue ``fn(*args, **kwargs)`` on the next idle worker."""
        with self._lock:
            if self._closed:
                raise JobFailedError(f"worker pool {self.name!r} is closed")
            self._task_counter += 1
            future = WorkerFuture(self._task_counter, label or repr(fn))
            self._queue.append((future, fn, args, kwargs))
        _count_task()
        self._dispatch()
        return future

    def _dispatch(self) -> None:
        sends = []
        with self._lock:
            for worker in self._workers:
                if not self._queue:
                    break
                if worker.task is None and worker.proc.is_alive():
                    item = self._queue.popleft()
                    worker.task = (item[0], item[1], item[2])
                    sends.append((worker, item))
        for worker, (future, fn, args, kwargs) in sends:
            try:
                worker.conn.send((future.task_id, fn, args, kwargs))
            except (OSError, BrokenPipeError, TypeError) as exc:
                with self._lock:
                    worker.task = None
                future._resolve(error=JobFailedError(
                    f"could not dispatch task {future.label!r}: {exc}"
                ))
        if sends:
            self._wake()
            _update_gauges()

    def _wake(self) -> None:
        try:
            os.write(self._wake_w, b"x")
        except OSError:
            pass

    # -- collection --------------------------------------------------------------

    def _collect(self) -> None:
        while True:
            with self._lock:
                if self._closed:
                    break
                workers = list(self._workers)
            waitables: List[Any] = [self._wake_r]
            for worker in workers:
                waitables.append(worker.conn)
                waitables.append(worker.proc.sentinel)
            ready = _conn_wait(waitables, timeout=0.5)
            if self._drain_wakeups(ready):
                continue
            for worker in workers:
                if worker.conn in ready:
                    self._on_message(worker)
                elif worker.proc.sentinel in ready:
                    self._on_death(worker)

    def _drain_wakeups(self, ready) -> bool:
        if self._wake_r in ready:
            try:
                os.read(self._wake_r, 4096)
            except OSError:
                pass
            return len(ready) == 1
        return False

    def _on_message(self, worker: _Worker) -> None:
        try:
            task_id, status, payload = worker.conn.recv()
        except (EOFError, OSError):
            self._on_death(worker)
            return
        with self._lock:
            task, worker.task = worker.task, None
        if task is not None and task[0].task_id == task_id:
            if status == "ok":
                task[0]._resolve(value=payload)
            else:
                task[0]._resolve(error=payload)
        _update_gauges()
        self._dispatch()

    def _on_death(self, worker: _Worker) -> None:
        """A worker process died: fail its task, refill the pool."""
        with self._lock:
            if worker not in self._workers:
                return
            self._workers.remove(worker)
            task, worker.task = worker.task, None
        exitcode = worker.proc.exitcode
        worker.conn.close()
        log_event(
            "worker.died",
            pool=self.name,
            exitcode=exitcode,
            task=task[0].label if task else None,
        )
        if task is not None:
            task[0]._resolve(error=JobFailedError(
                f"worker process died (exit code {exitcode}) while running "
                f"task {task[0].label!r}"
            ))
        # Refill outside the lock (REPRO-FORK: never fork under a lock).
        replacement = None
        with self._lock:
            needs_refill = not self._closed
        if needs_refill:
            replacement = self._start_worker()
            _count_restart()
        with self._lock:
            if replacement is not None:
                if self._closed:
                    needs_refill = False
                else:
                    self._workers.append(replacement)
        if replacement is not None and not needs_refill:
            # Lost the race with close(): retire the fresh worker.
            try:
                replacement.conn.send(None)
            except (OSError, BrokenPipeError):
                pass
            replacement.proc.join(5.0)
        _update_gauges()
        self._dispatch()

    # -- introspection -----------------------------------------------------------

    def _occupancy(self) -> Tuple[int, int]:
        with self._lock:
            if self._closed:
                return 0, 0
            return (
                len(self._workers),
                sum(1 for w in self._workers if w.task is not None),
            )

    @property
    def closed(self) -> bool:
        with self._lock:
            return self._closed

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        size, busy = self._occupancy()
        return f"ProcessWorkerPool(name={self.name!r}, size={size}, busy={busy})"
