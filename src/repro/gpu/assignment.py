"""The static work-assignment table of Fig. 11.

"The static mapping scheme groups together all the pairs in a list having
the same first atom and maps the entire group onto the threads in the same
thread block.  More than one group of pairs can be mapped onto a particular
thread block, provided there are enough threads ... If the current thread
block does not have enough threads left ... it is mapped onto the next
available thread block.  Unused spaces on the thread blocks are claimed by
other smaller pair-groups."

The table has one row per thread: (pair id, atom1, atom2, master flag,
pairs-in-group).  Master threads later execute the accumulation round,
summing their group's contiguous shared-memory slice.

The table is generated on the host and transferred once; it is only rebuilt
when the neighbor list updates ("this happens only a few times per 1000
minimization iterations; thus the transfer time is negligible").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.gpu.minimize_common import DEFAULT_BLOCK_THREADS
from repro.minimize.pairslist import DirectionalPairsList, group_boundaries

__all__ = ["AssignmentTable", "build_assignment_table", "execute_grouped_accumulation"]


@dataclass
class AssignmentTable:
    """Fig. 11 structure in structure-of-arrays form.

    Row ``t`` describes thread ``t``: which pair it processes and whether it
    is its group's master.  ``block_of_row`` records the thread block each
    row landed in (bin-packing result); rows within one group are guaranteed
    to share a block and be contiguous.
    """

    pair_id: np.ndarray       # (R,) index into the source pairs-list
    atom1: np.ndarray         # (R,)
    atom2: np.ndarray         # (R,)
    master: np.ndarray        # (R,) bool: first thread of its group
    group_size: np.ndarray    # (R,) pairs in this thread's group
    block_of_row: np.ndarray  # (R,) thread-block id
    threads_per_block: int

    @property
    def n_rows(self) -> int:
        return len(self.pair_id)

    @property
    def n_blocks(self) -> int:
        return int(self.block_of_row.max()) + 1 if self.n_rows else 0

    def nbytes(self) -> int:
        """Size of the table in GPU global memory (5 fields x 4 B)."""
        return self.n_rows * 5 * 4

    def validate(self) -> None:
        """Check the Fig. 11 invariants (used by property tests)."""
        if self.n_rows == 0:
            return
        masters = np.nonzero(self.master)[0]
        if len(masters) == 0 or masters[0] != int(np.nonzero(self.master)[0][0]):
            raise AssertionError("first row of each group must be a master")
        for m in masters:
            size = int(self.group_size[m])
            rows = slice(m, m + size)
            if not np.all(self.atom1[rows] == self.atom1[m]):
                raise AssertionError("group rows must share their first atom")
            if not np.all(self.block_of_row[rows] == self.block_of_row[m]):
                raise AssertionError("group split across thread blocks")
            if np.any(self.master[m + 1 : m + size]):
                raise AssertionError("non-leading row flagged master")


def build_assignment_table(
    pairs: DirectionalPairsList,
    threads_per_block: int = DEFAULT_BLOCK_THREADS,
) -> AssignmentTable:
    """Bin-pack pair-groups into thread blocks (first-fit-decreasing).

    Groups larger than a block are split into block-sized chunks, each chunk
    with its own master (the accumulation then needs one extra global add
    per extra chunk — counted by the caller).  Remaining groups are packed
    largest-first, and smaller groups claim leftover thread slots.
    """
    starts, sizes = group_boundaries(pairs.first)
    order = np.argsort(-sizes, kind="stable")  # largest groups first

    # Chunk oversized groups.
    chunks: List[Tuple[int, int]] = []  # (start_row_in_pairs, size)
    for g in order:
        s, size = int(starts[g]), int(sizes[g])
        while size > threads_per_block:
            chunks.append((s, threads_per_block))
            s += threads_per_block
            size -= threads_per_block
        if size:
            chunks.append((s, size))

    # First-fit packing into blocks.
    block_free: List[int] = []
    placement: List[Tuple[int, int, int]] = []  # (block, start, size)
    for s, size in chunks:
        placed = False
        for b, free in enumerate(block_free):
            if free >= size:
                placement.append((b, s, size))
                block_free[b] = free - size
                placed = True
                break
        if not placed:
            block_free.append(threads_per_block - size)
            placement.append((len(block_free) - 1, s, size))

    # Emit rows block by block so groups are contiguous within their block.
    placement.sort(key=lambda p: (p[0], p[1]))
    rows_pair: List[int] = []
    rows_master: List[bool] = []
    rows_gsize: List[int] = []
    rows_block: List[int] = []
    for b, s, size in placement:
        for k in range(size):
            rows_pair.append(s + k)
            rows_master.append(k == 0)
            rows_gsize.append(size)
            rows_block.append(b)

    pid = np.array(rows_pair, dtype=np.intp)
    return AssignmentTable(
        pair_id=pid,
        atom1=pairs.first[pid],
        atom2=pairs.second[pid],
        master=np.array(rows_master, dtype=bool),
        group_size=np.array(rows_gsize, dtype=np.intp),
        block_of_row=np.array(rows_block, dtype=np.intp),
        threads_per_block=threads_per_block,
    )


def execute_grouped_accumulation(
    table: AssignmentTable, pair_energies: np.ndarray, n_atoms: int
) -> np.ndarray:
    """Numerically execute the Fig. 11 accumulation round.

    Each thread "stores" its pair's energy at its row index (the shared-
    memory slot == local thread id); each master sums its group's contiguous
    slice and adds it to its atom's global-memory total.  Must equal the
    flat pairs-list accumulation exactly — the correctness invariant the
    whole scheme rests on (property-tested).
    """
    out = np.zeros(n_atoms)
    if table.n_rows == 0:
        return out
    shared = pair_energies[table.pair_id]  # each thread's computed energy
    masters = np.nonzero(table.master)[0]
    for m in masters:
        size = int(table.group_size[m])
        out[int(table.atom1[m])] += float(shared[m : m + size].sum())
    return out
