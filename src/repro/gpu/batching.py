"""Multi-rotation batching in constant memory (Sec. III.A).

"The small probe grids, in fact, allow us to perform a further optimization:
storing the voxel grids for multiple rotations in the constant memory.  This
enables the correlation inner loop to compute multiple scores in each
iteration. ... For 4^3-sized probe grids, we can perform 8 rotations in each
pass, achieving a speedup of 2.7x over direct correlation performed one
rotation at a time."

The batch size is bounded by the 64 KB constant memory: a batch of B
rotations stores B x C x m^3 floats.  For m=4, C=22 that caps B at 8 — the
paper's number falls straight out of the capacity limit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from repro.cuda.device import Device, DeviceSpec, TESLA_C1060
from repro.cuda.memory import TransferDirection
from repro.docking.direct import DirectCorrelationEngine
from repro.gpu.correlation_kernels import DistributionScheme, correlation_launch
from repro.grids.energyfunctions import EnergyGrids

__all__ = ["max_batch_rotations", "gpu_batched_correlation", "BatchedCorrelationResult"]


def max_batch_rotations(
    probe_grid_edge: int,
    n_channels: int,
    spec: DeviceSpec = TESLA_C1060,
    bytes_per_voxel: int = 4,
) -> int:
    """Largest rotation batch whose probe grids fit in constant memory.

    >>> max_batch_rotations(4, 22)   # the paper's configuration
    8
    """
    if probe_grid_edge < 1 or n_channels < 1:
        raise ValueError("grid edge and channel count must be positive")
    per_rotation = probe_grid_edge**3 * n_channels * bytes_per_voxel
    if per_rotation > spec.constant_mem:
        return 0
    b = spec.constant_mem // per_rotation
    # Batches are powers of two in the kernel's unrolled inner loop.
    p = 1
    while p * 2 <= b:
        p *= 2
    return p


@dataclass
class BatchedCorrelationResult:
    """Per-rotation score grids plus timing for one batched pass."""

    scores: List[np.ndarray]
    predicted_kernel_time_s: float
    predicted_upload_time_s: float

    @property
    def total_time_s(self) -> float:
        return self.predicted_kernel_time_s + self.predicted_upload_time_s

    @property
    def per_rotation_time_s(self) -> float:
        return self.total_time_s / max(1, len(self.scores))


def gpu_batched_correlation(
    device: Device,
    receptor: EnergyGrids,
    ligand_rotations: Sequence[EnergyGrids],
    scheme: DistributionScheme = DistributionScheme.PENCILS,
) -> BatchedCorrelationResult:
    """Correlate a batch of rotations in one conceptual pass.

    Raises ``MemoryError`` (via the device's constant-memory check) if the
    batch exceeds capacity — the same failure a real ``cudaMemcpyToSymbol``
    overflow would produce.
    """
    if not ligand_rotations:
        raise ValueError("empty rotation batch")
    base = ligand_rotations[0]
    batch = len(ligand_rotations)
    limit = max_batch_rotations(base.spec.n, base.n_channels, device.spec)
    if batch > max(limit, 0) and limit > 0:
        raise MemoryError(
            f"batch of {batch} rotations needs "
            f"{batch * base.spec.n ** 3 * base.n_channels * 4} B constant memory; "
            f"limit allows {limit}"
        )
    if limit == 0:
        raise MemoryError(
            f"a single {base.spec.n}^3 x {base.n_channels}-channel probe grid "
            "does not fit constant memory"
        )

    # Upload: the batched probe grids go to constant memory every pass.
    upload_bytes = batch * base.spec.n**3 * base.n_channels * 4
    t_upload = device.transfer(
        upload_bytes, TransferDirection.H2D, label=f"probe grids x{batch}"
    )

    engine = DirectCorrelationEngine(skip_zero_voxels=False)
    scores = [engine.correlate(receptor, lg) for lg in ligand_rotations]

    launch = correlation_launch(receptor, base, scheme, batch=batch)
    t_kernel = device.launch(launch)
    return BatchedCorrelationResult(
        scores=scores,
        predicted_kernel_time_s=t_kernel,
        predicted_upload_time_s=t_upload,
    )
