"""The assembled GPU FTMap pipeline: timing roll-ups for both phases.

Mirrors the structure of the paper's results section: per-rotation docking
breakdown (Table 1 rows), per-iteration minimization kernels (Table 2 rows),
and the whole-probe roll-up (Sec. V.C: 435 min -> 33 min).

Two modes:

* **model mode** (used by all benchmarks) — times computed from problem
  sizes via kernel-launch records, no numerics; runs at N = 128 instantly.
* **numeric mode** — the same kernels executed for real on small grids via
  :mod:`repro.gpu.batching` / :mod:`repro.gpu.scoring_kernel`, used by
  integration tests to pin the model to the actual algorithms.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.constants import (
    CONFORMATIONS_PER_PROBE,
    DEFAULT_PROBE_GRID,
    DEFAULT_PROTEIN_GRID,
    FTMAP_NUM_ROTATIONS,
    MAX_CORRELATION_TERMS,
    MAX_DESOLVATION_TERMS,
    POSES_PER_ROTATION,
    TYPICAL_COMPLEX_ATOMS,
    TYPICAL_PAIR_COUNT,
)
from repro.cuda.device import Device
from repro.cuda.kernel import KernelLaunch
from repro.cuda.memory import TransferDirection
from repro.gpu.batching import max_batch_rotations
from repro.gpu.correlation_kernels import DistributionScheme, correlation_launch_sizes
from repro.gpu.minimize_common import (
    FORCE_UPDATE_OPS,
    PAIRWISE_VDW_OPS,
    SELF_ENERGY_OPS,
    energy_kernel_launch,
)
from repro.gpu.minimize_kernels import HOST_MOVE_S
from repro.gpu.scoring_kernel import scoring_filter_launch
from repro.perf.cpumodel import CpuModel

__all__ = ["DockingPhaseTimes", "MinimizationPhaseTimes", "GpuFTMapPipeline"]

#: Paper workload: iterations per minimized conformation.  Derived from
#: Sec. V.B: 2000 conformations in ~400 serial minutes at ~10.4 ms/iteration
#: -> ~1150 iterations each.
ITERATIONS_PER_CONFORMATION = 1150


@dataclass
class DockingPhaseTimes:
    """Per-rotation docking breakdown (seconds), Table 1 structure."""

    rotation_grid_s: float
    correlation_s: float
    accumulation_s: float
    scoring_filtering_s: float
    upload_s: float = 0.0

    @property
    def total_per_rotation_s(self) -> float:
        return (
            self.rotation_grid_s
            + self.correlation_s
            + self.accumulation_s
            + self.scoring_filtering_s
            + self.upload_s
        )

    def phase_total_s(self, rotations: int) -> float:
        return self.total_per_rotation_s * rotations

    def as_dict(self) -> Dict[str, float]:
        return {
            "rotation_grid": self.rotation_grid_s,
            "correlation": self.correlation_s,
            "accumulation": self.accumulation_s,
            "scoring_filtering": self.scoring_filtering_s,
            "upload": self.upload_s,
        }


@dataclass
class MinimizationPhaseTimes:
    """Per-iteration minimization breakdown (seconds), Table 2 structure."""

    self_energies_s: float
    pairwise_vdw_s: float
    force_updates_s: float
    host_s: float

    @property
    def total_per_iteration_s(self) -> float:
        return (
            self.self_energies_s + self.pairwise_vdw_s + self.force_updates_s + self.host_s
        )

    def phase_total_s(self, conformations: int, iterations: int) -> float:
        return self.total_per_iteration_s * conformations * iterations


class GpuFTMapPipeline:
    """Model-mode GPU FTMap: predicts phase times from problem sizes.

    Parameters mirror the paper's workload defaults (N = 128, m = 4, 22
    correlation channels, 500 rotations, 4 poses/rotation, 2000
    conformations of ~1150 iterations over ~10k pairs / 2200 atoms).
    """

    def __init__(
        self,
        device: Device | None = None,
        receptor_grid: int = DEFAULT_PROTEIN_GRID,
        probe_grid: int = DEFAULT_PROBE_GRID,
        channels: int = MAX_CORRELATION_TERMS,
        desolvation_terms: int = MAX_DESOLVATION_TERMS,
        rotations: int = FTMAP_NUM_ROTATIONS,
        poses_per_rotation: int = POSES_PER_ROTATION,
        pairs: int = TYPICAL_PAIR_COUNT,
        atoms: int = TYPICAL_COMPLEX_ATOMS,
        conformations: int = CONFORMATIONS_PER_PROBE,
        iterations: int = ITERATIONS_PER_CONFORMATION,
    ) -> None:
        self.device = device or Device()
        self.cpu = CpuModel()
        self.n = receptor_grid
        self.m = probe_grid
        self.channels = channels
        self.desolvation_terms = desolvation_terms
        self.rotations = rotations
        self.k = poses_per_rotation
        self.pairs = pairs
        self.atoms = atoms
        self.conformations = conformations
        self.iterations = iterations

    # -- docking ---------------------------------------------------------------

    @property
    def result_edge(self) -> int:
        return self.n - self.m + 1

    def docking_times(
        self,
        batch: int | None = None,
        scheme: DistributionScheme = DistributionScheme.PENCILS,
    ) -> DockingPhaseTimes:
        """Per-rotation GPU docking breakdown at a given rotation batch size.

        ``batch=None`` uses the constant-memory-limited maximum (8 for the
        paper's 4^3 x 22-channel probes).
        """
        t = self.result_edge
        shape = (t, t, t)
        if batch is None:
            batch = max(1, max_batch_rotations(self.m, self.channels, self.device.spec))

        corr = correlation_launch_sizes(shape, self.channels, self.m, scheme, batch)
        t_corr = self.device.launch(corr) / batch

        upload_bytes = batch * self.m**3 * self.channels * 4
        t_upload = (
            self.device.transfer(upload_bytes, TransferDirection.H2D, "probe grids")
            / batch
        )

        t3 = t**3
        accum = KernelLaunch(
            name="accumulate_desolvation",
            num_blocks=max(1, t3 // 256),
            threads_per_block=256,
            flops=float(t3) * self.desolvation_terms,
            global_bytes_coalesced=float(t3) * (self.desolvation_terms + 1) * 4.0,
        )
        t_accum = self.device.launch(accum)

        filt = scoring_filter_launch(t3, 3, self.k, exclusion_radius=3)
        t_filter = self.device.launch(filt)
        t_filter += self.device.transfer(self.k * 16, TransferDirection.D2H, "poses")

        return DockingPhaseTimes(
            rotation_grid_s=self.cpu.rotation_grid_s(),   # stays on the host
            correlation_s=t_corr,
            accumulation_s=t_accum,
            scoring_filtering_s=t_filter,
            upload_s=t_upload,
        )

    def serial_docking_times(self, engine: str = "fft") -> DockingPhaseTimes:
        """Matching serial breakdown from the CPU model."""
        corr = (
            self.cpu.fft_correlation_s(self.n, self.channels)
            if engine == "fft"
            else self.cpu.direct_correlation_s(self.n, self.m, self.channels)
        )
        return DockingPhaseTimes(
            rotation_grid_s=self.cpu.rotation_grid_s(),
            correlation_s=corr,
            accumulation_s=self.cpu.accumulation_s(self.n, self.m, self.desolvation_terms),
            scoring_filtering_s=self.cpu.scoring_filtering_s(self.n, self.m, self.k),
        )

    # -- minimization -------------------------------------------------------------

    def minimization_times(self) -> MinimizationPhaseTimes:
        """Per-iteration GPU kernel times (scheme C), Table 2 structure."""
        p = self.pairs

        def launch_pair(name, profile):
            total = 0.0
            for direction in ("fwd", "rev"):
                total += self.device.launch(
                    energy_kernel_launch(f"{name}[{direction}]", profile, p, self.atoms)
                )
            return total

        return MinimizationPhaseTimes(
            self_energies_s=launch_pair("self_energy", SELF_ENERGY_OPS),
            pairwise_vdw_s=launch_pair("pairwise_vdw", PAIRWISE_VDW_OPS),
            force_updates_s=launch_pair("force_update", FORCE_UPDATE_OPS),
            host_s=HOST_MOVE_S + self.cpu.spec.bonded_ms * 1e-3,
        )

    def serial_minimization_times(self) -> MinimizationPhaseTimes:
        return MinimizationPhaseTimes(
            self_energies_s=self.cpu.self_energies_s(self.pairs),
            pairwise_vdw_s=self.cpu.pairwise_s(self.pairs) + self.cpu.vdw_s(self.pairs),
            force_updates_s=self.cpu.force_updates_s(self.atoms),
            host_s=(self.cpu.spec.host_move_ms + self.cpu.spec.bonded_ms) * 1e-3,
        )

    # -- whole-probe roll-up ----------------------------------------------------------

    def probe_mapping_time_s(self, gpu: bool = True) -> Dict[str, float]:
        """Docking + minimization totals for mapping one probe (seconds)."""
        if gpu:
            dock = self.docking_times().phase_total_s(self.rotations)
            mini = self.minimization_times().phase_total_s(
                self.conformations, self.iterations
            )
        else:
            dock = self.serial_docking_times().phase_total_s(self.rotations)
            mini = self.serial_minimization_times().phase_total_s(
                self.conformations, self.iterations
            )
        return {"docking": dock, "minimization": mini, "total": dock + mini}
