"""GPU implementations of FTMap's algorithms on the virtual CUDA device.

Each module pairs a *numeric execution* (NumPy, bit-identical in structure
to the serial reference — tested against it) with *performance accounting*
(a :class:`~repro.cuda.kernel.KernelLaunch` describing what the CUDA kernel
does on the Tesla C1060).  Modules:

* :mod:`correlation_kernels` — direct correlation with the two
  work-distribution schemes of Fig. 4,
* :mod:`batching` — multi-rotation batching in constant memory (Sec. III.A);
  the paper's "8 rotations per pass" emerges from the 64 KB capacity limit,
* :mod:`scoring_kernel` — single-multiprocessor scoring + filtering
  (Figs. 5-6),
* :mod:`assignment` — the static work-assignment table of Fig. 11,
* :mod:`minimize_kernels` — the three minimization mappings of Sec. IV:
  (A) neighbor-list per-SM mapping (Fig. 8), (B) flat pairs-list with host
  accumulation (Fig. 9), (C) split pairs-lists + assignment tables
  (Figs. 10-11),
* :mod:`pipeline` — the assembled GPU FTMap (docking + minimization).
"""

from repro.gpu.correlation_kernels import (
    DistributionScheme,
    gpu_direct_correlation,
    correlation_launch,
)
from repro.gpu.batching import max_batch_rotations, gpu_batched_correlation
from repro.gpu.scoring_kernel import gpu_score_and_filter
from repro.gpu.assignment import AssignmentTable, build_assignment_table
from repro.gpu.minimize_kernels import (
    GpuMinimizationScheme,
    GpuMinimizationEngine,
)
from repro.gpu.pipeline import GpuFTMapPipeline, DockingPhaseTimes, MinimizationPhaseTimes
from repro.gpu.docking_pipeline import GpuPiperDocker, GpuDockingRun

__all__ = [
    "DistributionScheme",
    "gpu_direct_correlation",
    "correlation_launch",
    "max_batch_rotations",
    "gpu_batched_correlation",
    "gpu_score_and_filter",
    "AssignmentTable",
    "build_assignment_table",
    "GpuMinimizationScheme",
    "GpuMinimizationEngine",
    "GpuFTMapPipeline",
    "GpuPiperDocker",
    "GpuDockingRun",
    "DockingPhaseTimes",
    "MinimizationPhaseTimes",
]
