"""Scoring and filtering on the GPU (Figs. 5-6, Sec. III.B).

The kernel distributes the T^3 result-grid points over the M threads of a
*single* thread block (one multiprocessor): each thread computes weighted
scores for its T^3/M subset, keeps its local best in shared memory, and a
master thread (thread 0) gathers the per-thread bests, selects the global
best, and flags the exclusion neighborhood in a global-memory byte array.
This repeats k times (k = poses per rotation).

"Though this is a heavy under-utilization of the available GPU computation
power, it simplifies the process of assembling these scores ... distribution
across multiple multiprocessors would incur large communication overhead."
The cost model charges the whole kernel at 1/30 occupancy, which is exactly
why this step's speedup (Table 1: 6.67x) is modest next to correlation's
267x.

Numerics delegate to the serial reference ``filter_top_poses`` (tested
equal); on-GPU filtering also means only k poses cross PCIe instead of the
whole T^3 grid — quantified by :func:`d2h_savings_bytes`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.constants import FILTER_EXCLUSION_RADIUS
from repro.cuda.device import Device
from repro.cuda.kernel import KernelLaunch
from repro.cuda.memory import TransferDirection
from repro.docking.filtering import FilteredPose, filter_top_poses

__all__ = ["gpu_score_and_filter", "GpuFilterResult", "scoring_filter_launch", "d2h_savings_bytes"]

#: Threads in the single scoring/filtering block.
FILTER_BLOCK_THREADS = 512


def scoring_filter_launch(
    result_points: int,
    n_score_terms: int,
    k: int,
    exclusion_radius: int,
    name: str = "score_and_filter",
) -> KernelLaunch:
    """Launch record for the single-SM scoring + filtering kernel.

    Traffic per selection pass: read the score grid (4 B/point) plus the
    exclusion byte array (1 B/point); the scoring pass additionally reads
    the ``n_score_terms`` component grids once.  Master-thread gathers are
    modeled through ``serial_fraction`` (k gathers of M partial results).
    """
    t3 = float(result_points)
    scoring_reads = t3 * n_score_terms * 4.0 + t3 * 4.0  # components + store
    filter_reads = k * (t3 * 4.0 + t3 * 1.0)             # score + exclusion flags
    exclusion_writes = k * float((2 * exclusion_radius + 1) ** 3)
    compute = t3 * (2.0 * n_score_terms) + k * t3 * 2.0  # weighted sum + compare
    master_ops = k * FILTER_BLOCK_THREADS * 2.0
    serial_fraction = master_ops / max(compute + master_ops, 1.0)
    return KernelLaunch(
        name=name,
        num_blocks=1,                      # the whole point: one SM
        threads_per_block=FILTER_BLOCK_THREADS,
        flops=compute + master_ops,
        global_bytes_coalesced=scoring_reads + filter_reads + exclusion_writes,
        shared_accesses=k * FILTER_BLOCK_THREADS * 2.0,
        shared_bytes_per_block=FILTER_BLOCK_THREADS * 8,
        serial_fraction=serial_fraction,
    )


@dataclass
class GpuFilterResult:
    """Filtered poses plus timing and transfer bookkeeping."""

    poses: List[FilteredPose]
    predicted_kernel_time_s: float
    predicted_d2h_time_s: float
    d2h_bytes_saved: int


def d2h_savings_bytes(result_points: int, k: int) -> int:
    """Bytes *not* transferred thanks to on-GPU filtering.

    Without it the full T^3 float grid crosses PCIe; with it, k poses of
    (3 ints + 1 float) = 16 B each do.
    """
    return int(result_points) * 4 - k * 16


def gpu_score_and_filter(
    device: Device,
    score_grid: np.ndarray,
    k: int,
    n_score_terms: int = 3,
    exclusion_radius: int = FILTER_EXCLUSION_RADIUS,
) -> GpuFilterResult:
    """Score + filter one rotation's result grid on the virtual GPU."""
    poses = filter_top_poses(score_grid, k, exclusion_radius)
    t3 = int(np.prod(score_grid.shape))
    launch = scoring_filter_launch(t3, n_score_terms, k, exclusion_radius)
    t_kernel = device.launch(launch)
    t_d2h = device.transfer(k * 16, TransferDirection.D2H, label="filtered poses")
    return GpuFilterResult(
        poses=poses,
        predicted_kernel_time_s=t_kernel,
        predicted_d2h_time_s=t_d2h,
        d2h_bytes_saved=d2h_savings_bytes(t3, k),
    )
