"""Shared constants and op-count profiles for the GPU minimization kernels.

Per-pair instruction budgets for the three energy kernels of Sec. IV
(counted from the formulas of Eqs. 5-8: arithmetic as 1-cycle ops, exp/
sqrt/div/pow as SFU ops).  These feed the cost model; the numeric results
come from the vectorized reference implementations.

:func:`energy_kernel_launch` is the one place the per-pair profiles turn
into a :class:`~repro.cuda.kernel.KernelLaunch`: the scheme-C kernel
simulation (:mod:`repro.gpu.minimize_kernels`), the whole-pipeline roll-up
(:mod:`repro.gpu.pipeline`), and the minimization backend selector
(:mod:`repro.minimize.selection`) all build their launches here, so their
predictions cannot drift apart.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cuda.kernel import KernelLaunch

__all__ = [
    "DEFAULT_BLOCK_THREADS",
    "KernelOpProfile",
    "SELF_ENERGY_OPS",
    "PAIRWISE_VDW_OPS",
    "FORCE_UPDATE_OPS",
    "energy_kernel_launch",
    "scheme_c_iteration_s",
]

#: Threads per block used by the minimization kernels.
DEFAULT_BLOCK_THREADS = 256


@dataclass(frozen=True)
class KernelOpProfile:
    """Instruction/traffic budget for one pair (or atom) of kernel work."""

    flops: float          # simple ALU ops
    sfu_ops: float        # exp/sqrt/div/pow
    table_bytes: float    # assignment-table row read (coalesced)
    gathers: float        # uncoalesced global reads (random second atoms)
    shared_accesses: float


#: Kernel (a): self energies + gradients (Eq. 6 both directions of a pair:
#: distance, Gaussian, volume tail, and their r-derivatives).
SELF_ENERGY_OPS = KernelOpProfile(
    flops=48.0, sfu_ops=4.0, table_bytes=20.0, gathers=1.0, shared_accesses=3.0
)

#: Kernel (b): GB pairwise (Eq. 7) + vdW (Eq. 8) + gradients.
PAIRWISE_VDW_OPS = KernelOpProfile(
    flops=64.0, sfu_ops=5.0, table_bytes=20.0, gathers=1.0, shared_accesses=3.0
)

#: Kernel (c): force updates — gather per-pair gradient contributions into
#: per-atom force vectors (3 components).
FORCE_UPDATE_OPS = KernelOpProfile(
    flops=9.0, sfu_ops=0.0, table_bytes=8.0, gathers=0.5, shared_accesses=3.0
)


def energy_kernel_launch(
    name: str,
    profile: KernelOpProfile,
    rows: int,
    n_atoms: int,
    block_threads: int = DEFAULT_BLOCK_THREADS,
) -> KernelLaunch:
    """Launch record for one pairs-list pass of a scheme-C energy kernel.

    ``rows`` is the pairs-list length processed in this pass (one direction
    of the split lists).  Coalesced traffic is the assignment-table row plus
    the 12-byte coordinate read per pair and one per-atom output stream.
    """
    blocks = max(1, -(-rows // block_threads))
    return KernelLaunch(
        name=name,
        num_blocks=blocks,
        threads_per_block=block_threads,
        flops=rows * profile.flops,
        sfu_ops=rows * profile.sfu_ops,
        global_bytes_coalesced=rows * (profile.table_bytes + 12.0) + n_atoms * 4.0,
        global_uncoalesced_accesses=rows * profile.gathers,
        shared_accesses=rows * profile.shared_accesses,
        shared_bytes_per_block=block_threads * 4,
    )


def scheme_c_iteration_s(
    n_pairs: int, n_atoms: int, device_spec, include_host: bool = True
) -> float:
    """Cost-model time of one scheme-C minimization iteration on a device.

    Six kernel passes — forward + reverse pairs-list direction of each of
    the three energy kernels — plus, with ``include_host``, the host-side
    optimization move.  This is the single per-iteration predictor behind
    the minimization backend selector, the multi-device shard timings and
    the shard-scaling tables, so their numbers cannot drift apart.
    """
    from repro.cuda.costmodel import CostModel

    cost = CostModel(device_spec)
    total = 0.0
    for name, profile in (
        ("self_energy", SELF_ENERGY_OPS),
        ("pairwise_vdw", PAIRWISE_VDW_OPS),
        ("force_update", FORCE_UPDATE_OPS),
    ):
        launch = energy_kernel_launch(name, profile, n_pairs, n_atoms)
        total += 2.0 * cost.kernel_time(launch)   # forward + reverse lists
    if include_host:
        from repro.gpu.minimize_kernels import HOST_MOVE_S

        total += HOST_MOVE_S
    return total
