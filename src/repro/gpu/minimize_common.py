"""Shared constants and op-count profiles for the GPU minimization kernels.

Per-pair instruction budgets for the three energy kernels of Sec. IV
(counted from the formulas of Eqs. 5-8: arithmetic as 1-cycle ops, exp/
sqrt/div/pow as SFU ops).  These feed the cost model; the numeric results
come from the vectorized reference implementations.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "DEFAULT_BLOCK_THREADS",
    "KernelOpProfile",
    "SELF_ENERGY_OPS",
    "PAIRWISE_VDW_OPS",
    "FORCE_UPDATE_OPS",
]

#: Threads per block used by the minimization kernels.
DEFAULT_BLOCK_THREADS = 256


@dataclass(frozen=True)
class KernelOpProfile:
    """Instruction/traffic budget for one pair (or atom) of kernel work."""

    flops: float          # simple ALU ops
    sfu_ops: float        # exp/sqrt/div/pow
    table_bytes: float    # assignment-table row read (coalesced)
    gathers: float        # uncoalesced global reads (random second atoms)
    shared_accesses: float


#: Kernel (a): self energies + gradients (Eq. 6 both directions of a pair:
#: distance, Gaussian, volume tail, and their r-derivatives).
SELF_ENERGY_OPS = KernelOpProfile(
    flops=48.0, sfu_ops=4.0, table_bytes=20.0, gathers=1.0, shared_accesses=3.0
)

#: Kernel (b): GB pairwise (Eq. 7) + vdW (Eq. 8) + gradients.
PAIRWISE_VDW_OPS = KernelOpProfile(
    flops=64.0, sfu_ops=5.0, table_bytes=20.0, gathers=1.0, shared_accesses=3.0
)

#: Kernel (c): force updates — gather per-pair gradient contributions into
#: per-atom force vectors (3 components).
FORCE_UPDATE_OPS = KernelOpProfile(
    flops=9.0, sfu_ops=0.0, table_bytes=8.0, gathers=0.5, shared_accesses=3.0
)
