"""End-to-end GPU rigid docking: the paper's accelerated PIPER, executed.

Wraps :class:`~repro.docking.piper.PiperDocker`'s workload in the GPU path:
rotations are gridded on the host, batched into constant memory
(:mod:`repro.gpu.batching`), correlated by the direct-correlation kernel,
and filtered on a single SM (:mod:`repro.gpu.scoring_kernel`) — with the
virtual device accounting time for every kernel and transfer.  Poses are
tested identical to the serial ``PiperDocker.run``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.docking.piper import DockedPose, PiperConfig, PiperDocker
from repro.cuda.device import Device
from repro.gpu.batching import gpu_batched_correlation, max_batch_rotations
from repro.gpu.scoring_kernel import gpu_score_and_filter
from repro.structure.molecule import Molecule
from repro.util.parallel import chunked

__all__ = ["GpuDockingRun", "GpuPiperDocker"]


@dataclass
class GpuDockingRun:
    """Poses plus the device-time ledger of one GPU docking run."""

    poses: List[DockedPose]
    predicted_device_time_s: float
    batches: int
    batch_size: int


class GpuPiperDocker:
    """GPU-path PIPER: identical poses, accounted device time.

    Reuses the serial :class:`PiperDocker` for receptor gridding, rotation
    sets and pose/world-transform bookkeeping; only the per-rotation inner
    loop (correlate + score + filter) runs through the GPU modules.
    """

    def __init__(
        self,
        receptor: Molecule,
        probe: Molecule,
        config: PiperConfig | None = None,
        device: Device | None = None,
        serial: Optional[PiperDocker] = None,
    ) -> None:
        # The DockingEngine facade shares its PiperDocker (receptor grids are
        # expensive to rebuild); standalone use constructs a fresh one.
        self.serial = serial or PiperDocker(receptor, probe, config)
        self.device = device or Device()
        cfg = self.serial.config
        limit = max_batch_rotations(
            cfg.probe_grid,
            self.serial.receptor_grids.n_channels,
            self.device.spec,
        )
        if limit < 1:
            raise MemoryError(
                "probe grids do not fit constant memory; direct correlation "
                "on this device requires a smaller probe grid"
            )
        # An explicit configured batch may shrink below the constant-memory
        # cap (never exceed it — the device would reject the upload).
        configured = self.serial.config.batch_size
        self.batch_size = min(limit, configured) if configured else limit

    def run(self, rotation_indices: Sequence[int] | None = None) -> GpuDockingRun:
        """Dock all (or selected) rotations through the GPU path."""
        cfg = self.serial.config
        indices = list(
            range(len(self.serial.rotations))
            if rotation_indices is None
            else rotation_indices
        )
        t_total = 0.0
        poses: List[DockedPose] = []
        n_batches = 0

        for batch_idx in chunked(indices, self.batch_size):
            grids = [self.serial.grid_rotation(ri) for ri in batch_idx]
            corr = gpu_batched_correlation(
                self.device, self.serial.receptor_grids, grids
            )
            t_total += corr.total_time_s
            n_batches += 1
            for ri, scores in zip(batch_idx, corr.scores):
                filt = gpu_score_and_filter(
                    self.device,
                    scores,
                    k=cfg.poses_per_rotation,
                    exclusion_radius=cfg.exclusion_radius,
                )
                t_total += filt.predicted_kernel_time_s + filt.predicted_d2h_time_s
                poses.extend(self.serial._to_docked(ri, f) for f in filt.poses)

        poses.sort()
        return GpuDockingRun(
            poses=poses,
            predicted_device_time_s=t_total,
            batches=n_batches,
            batch_size=self.batch_size,
        )
