"""Direct-correlation GPU kernels with the Fig. 4 work distributions.

The result grid (one correlation score per translation) is distributed over
a 2-D array of thread blocks, each with a 3-D array of threads:

* **Scheme 1** ("pencils"): each block owns an (bx, by) tile of the result
  plane and iterates over *all* z-planes.  Block count = tiles in the xy
  plane.
* **Scheme 2** ("planes"): blocks own whole 2-D planes; each block computes
  a larger share of its plane but only for its assigned planes.  Block
  count = number of z-planes.

"Both distributions result in similar runtimes, though one or the other can
have better performance for various non-cubic grids" — for cubic grids both
schemes launch enough blocks to fill 30 SMs; a flat grid (few z-planes)
starves scheme 2, a skinny grid (small xy extent) starves scheme 1.  The
cost model reproduces this through occupancy.

Numerics delegate to the serial-reference
:class:`~repro.docking.direct.DirectCorrelationEngine` (tested equal); the
kernel-launch record carries the C1060 operation counts.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.cuda.device import Device
from repro.cuda.kernel import KernelLaunch
from repro.docking.correlation import valid_translations
from repro.docking.direct import DirectCorrelationEngine
from repro.grids.energyfunctions import EnergyGrids

__all__ = [
    "DistributionScheme",
    "correlation_launch",
    "gpu_direct_correlation",
    "WARP_WINDOW_REUSE",
]

#: Effective reuse of a fetched protein voxel within a half-warp: adjacent
#: threads correlate overlapping m^3 windows, so a coalesced 64 B transaction
#: serves ~4 threads' reads on average (GT200 half-warp coalescing over the
#: contiguous x-runs of the window).  Calibration constant; see DESIGN.md.
WARP_WINDOW_REUSE = 4.0

#: Default thread-block tiling (threads per block = bx * by * bz).
BLOCK_TILE = (8, 8, 4)


class DistributionScheme(enum.Enum):
    """The two Fig. 4 work distributions."""

    PENCILS = "scheme1-pencils"   # block tiles the xy plane, loops all z
    PLANES = "scheme2-planes"     # block owns whole z-planes


def _result_shape(receptor: EnergyGrids, ligand: EnergyGrids) -> Tuple[int, int, int]:
    t = valid_translations(receptor.spec.n, ligand.spec.n)
    return (t, t, t)


def _block_geometry(
    scheme: DistributionScheme, result_shape: Tuple[int, int, int]
) -> Tuple[int, int]:
    """(num_blocks, threads_per_block) for a result grid under a scheme."""
    tx, ty, tz = result_shape
    bx, by, bz = BLOCK_TILE
    if scheme is DistributionScheme.PENCILS:
        num_blocks = math.ceil(tx / bx) * math.ceil(ty / by)
        threads = bx * by * bz
    else:  # PLANES: one block per (group of) z-planes
        num_blocks = tz
        threads = bx * by * bz
    return max(1, num_blocks), threads


def correlation_launch_sizes(
    result_shape: Tuple[int, int, int],
    n_channels: int,
    probe_edge: int,
    scheme: DistributionScheme = DistributionScheme.PENCILS,
    batch: int = 1,
    name: str | None = None,
) -> KernelLaunch:
    """Launch record for a direct-correlation pass, from problem sizes.

    Operation counts (per batch of ``batch`` rotations):

    * MAC instructions: T^3 x C x m^3 per rotation (the CUDA kernel iterates
      the dense probe grid held in constant memory),
    * global traffic: every MAC reads one protein voxel (4 B); the fetch is
      amortized over the ``batch`` rotations resident in constant memory and
      over :data:`WARP_WINDOW_REUSE` threads of a half-warp,
    * result stores: T^3 x 4 B per rotation (weighted sum accumulated in
      registers, one float out),
    * constant bytes: the batched probe grids.
    """
    t3 = result_shape[0] * result_shape[1] * result_shape[2]
    c = n_channels
    m3 = probe_edge**3
    num_blocks, threads = _block_geometry(scheme, result_shape)

    macs = float(t3) * c * m3 * batch
    fetch_bytes = float(t3) * c * m3 * 4.0 / WARP_WINDOW_REUSE  # shared by batch
    store_bytes = float(t3) * 4.0 * batch
    return KernelLaunch(
        name=name or f"direct_corr[{scheme.value},B={batch}]",
        num_blocks=num_blocks,
        threads_per_block=threads,
        flops=macs,                      # MAD = one issued instruction
        global_bytes_coalesced=fetch_bytes + store_bytes,
        constant_bytes=c * m3 * 4 * batch,
    )


def correlation_launch(
    receptor: EnergyGrids,
    ligand: EnergyGrids,
    scheme: DistributionScheme = DistributionScheme.PENCILS,
    batch: int = 1,
    result_shape: Tuple[int, int, int] | None = None,
    name: str | None = None,
) -> KernelLaunch:
    """Launch record for a direct-correlation pass over concrete grids."""
    shape = result_shape or _result_shape(receptor, ligand)
    return correlation_launch_sizes(
        shape, receptor.n_channels, ligand.spec.n, scheme, batch, name
    )


@dataclass
class GpuCorrelationResult:
    """Numeric scores plus the predicted kernel time."""

    scores: np.ndarray
    launch: KernelLaunch
    predicted_time_s: float


def gpu_direct_correlation(
    device: Device,
    receptor: EnergyGrids,
    ligand: EnergyGrids,
    scheme: DistributionScheme = DistributionScheme.PENCILS,
) -> GpuCorrelationResult:
    """Run one rotation's direct correlation "on the GPU".

    Numerics are exact (delegated to the serial-reference engine); the
    device records the launch and predicts its time.
    """
    engine = DirectCorrelationEngine(skip_zero_voxels=False)
    scores = engine.correlate(receptor, ligand)
    launch = correlation_launch(receptor, ligand, scheme, batch=1)
    t = device.launch(launch)
    return GpuCorrelationResult(scores=scores, launch=launch, predicted_time_s=t)
