"""GPU energy-minimization kernels: the three mappings of Sec. IV.

* **Scheme A — neighbor-list mapping (Fig. 8).**  One "first" atom per
  multiprocessor per round; two shared-memory energy arrays (first-atom
  partials + a full-length second-atom array) per SM; after each round the
  second-atom arrays are copied to global memory and merged.  A global sync
  (= kernel relaunch) separates rounds, so the per-iteration cost is
  dominated by ceil(n_firsts / 30) launches — "poor performance and is not
  preferred".

* **Scheme B — flat pairs-list (Fig. 9).**  Pairs distribute evenly over
  threads; each thread writes the pair's two partial energies to global
  memory.  Accumulation is serial ("actually faster on the host"), so both
  energy arrays cross PCIe every iteration and the host gathers them —
  "a speedup of around 3x over the original serial code".

* **Scheme C — split pairs-lists + assignment tables (Figs. 10-11).**  The
  forward/reverse lists group pairs by first atom; the static assignment
  table packs groups into thread blocks; partial energies accumulate in
  shared memory by per-group master threads.  Each energy kernel runs twice
  (forward then reverse: "we repeat this process with the assignment table
  corresponding to the reverse pairs-list").  This is the production scheme
  behind Table 2.

Numeric execution routes the per-pair energies through each scheme's actual
accumulation structure and is tested equal to the serial reference.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from repro.cuda.device import Device
from repro.cuda.kernel import KernelLaunch
from repro.cuda.memory import TransferDirection
from repro.gpu.assignment import AssignmentTable, build_assignment_table, execute_grouped_accumulation
from repro.gpu.minimize_common import (
    DEFAULT_BLOCK_THREADS,
    FORCE_UPDATE_OPS,
    PAIRWISE_VDW_OPS,
    SELF_ENERGY_OPS,
    KernelOpProfile,
    energy_kernel_launch,
)
from repro.minimize.ace import ace_self_energies, born_radii_from_self_energies, gb_pairwise_energy
from repro.minimize.energy import EnergyModel
from repro.minimize.pairslist import PairsList, SplitPairsLists, split_pairs
from repro.minimize.vdw import vdw_energy

__all__ = ["GpuMinimizationScheme", "GpuMinimizationEngine", "IterationTiming"]

#: Host-side serial cost of one random-access gather-add (scheme B host
#: accumulation), seconds.  Era-typical cache-miss-bound accumulate.
HOST_GATHER_ADD_S = 25e-9

#: Host-side per-iteration cost of the steps left on the host in all
#: schemes: bonded terms, the optimization move, and coordinate updates
#: (Sec. IV: "Two computations - the optimization move and the atom-
#: coordinate updates, are left on the host").  Seconds.
HOST_MOVE_S = 0.25e-3


class GpuMinimizationScheme(enum.Enum):
    NEIGHBOR_LIST = "A-neighbor-list"      # Fig. 8
    FLAT_PAIRS = "B-flat-pairs"            # Fig. 9
    SPLIT_ASSIGNMENT = "C-split-assignment"  # Figs. 10-11


@dataclass
class IterationTiming:
    """Predicted per-iteration time decomposition (seconds)."""

    kernels: Dict[str, float] = field(default_factory=dict)
    transfers_s: float = 0.0
    host_s: float = 0.0

    @property
    def kernel_total_s(self) -> float:
        return sum(self.kernels.values())

    @property
    def total_s(self) -> float:
        return self.kernel_total_s + self.transfers_s + self.host_s


class GpuMinimizationEngine:
    """One minimization scheme bound to a complex's pair structure.

    Parameters
    ----------
    device:
        Virtual CUDA device (records launches/transfers).
    model:
        Serial-reference :class:`EnergyModel` providing the molecule, the
        neighbor list, and ground-truth numerics.
    scheme:
        Which of the three Sec. IV mappings to simulate.
    """

    def __init__(
        self,
        device: Device,
        model: EnergyModel,
        scheme: GpuMinimizationScheme = GpuMinimizationScheme.SPLIT_ASSIGNMENT,
    ) -> None:
        self.device = device
        self.model = model
        self.scheme = scheme
        mol = model.molecule
        self.n_atoms = mol.n_atoms
        pair_i, pair_j = model.active_pairs()
        self.pair_i = pair_i
        self.pair_j = pair_j
        self.n_pairs = len(pair_i)

        # Scheme-specific one-time setup + upload.
        self.split: Optional[SplitPairsLists] = None
        self.table_fwd: Optional[AssignmentTable] = None
        self.table_rev: Optional[AssignmentTable] = None
        if scheme is GpuMinimizationScheme.SPLIT_ASSIGNMENT:
            self._build_tables()
            upload = self.table_fwd.nbytes() + self.table_rev.nbytes()
            device.transfer(upload, TransferDirection.H2D, label="assignment tables")
        elif scheme is GpuMinimizationScheme.FLAT_PAIRS:
            upload = self.n_pairs * 2 * 4  # atom index columns
            device.transfer(upload, TransferDirection.H2D, label="flat pairs-list")
        else:
            upload = (self.n_atoms + 1 + self.n_pairs) * 4  # CSR neighbor list
            device.transfer(upload, TransferDirection.H2D, label="neighbor list")
        self.table_rebuilds = 0

    # ------------------------------------------------------------------ setup

    def _build_tables(self) -> None:
        from repro.minimize.neighborlist import NeighborList

        nlist = NeighborList(
            n_atoms=self.n_atoms,
            offsets=_csr_offsets(self.pair_i, self.n_atoms),
            indices=self.pair_j,
            cutoff=self.model.list_cutoff,
        )
        self.split = split_pairs(nlist)
        self.table_fwd = build_assignment_table(self.split.forward)
        self.table_rev = build_assignment_table(self.split.reverse)
        self.table_fwd.validate()
        self.table_rev.validate()

    def refresh_after_list_update(self) -> None:
        """Regenerate and re-upload tables after a neighbor-list rebuild.

        "There is no further data transfer per iteration, unless the
        neighbor list is updated, in which case we regenerate the assignment
        tables and transfer them to the GPU."
        """
        self.pair_i, self.pair_j = self.model.active_pairs()
        self.n_pairs = len(self.pair_i)
        if self.scheme is GpuMinimizationScheme.SPLIT_ASSIGNMENT:
            self._build_tables()
            upload = self.table_fwd.nbytes() + self.table_rev.nbytes()
            self.device.transfer(upload, TransferDirection.H2D, label="assignment tables (rebuild)")
        self.table_rebuilds += 1

    # ------------------------------------------------------- numeric execution

    def per_atom_nonbonded(self, coords: np.ndarray) -> np.ndarray:
        """Per-atom non-bonded energies via this scheme's accumulation path.

        Must equal ``EnergyModel.evaluate(coords).per_atom_nonbonded`` —
        the restructuring changes *where* partial energies accumulate, never
        *what* they sum to.
        """
        m = self.model.molecule
        i, j = self.pair_i, self.pair_j
        self_res = ace_self_energies(
            coords, m.charges, m.born_radii, m.volumes, i, j, per_pair=True
        )
        alphas = born_radii_from_self_energies(
            self_res.self_energies, m.charges, m.born_radii
        )
        _, _, _, gb_pair = gb_pairwise_energy(
            coords, m.charges, alphas, i, j, per_pair=True
        )
        _, _, _, vdw_pair = vdw_energy(
            coords, m.eps, m.rm, i, j, self.model.nonbonded_cutoff, per_pair=True
        )
        born_const = (m.charges**2) / (
            2.0 * _solvent_dielectric() * m.born_radii
        )

        e_fwd = self_res.pair_terms_forward + 0.5 * gb_pair + 0.5 * vdw_pair
        e_rev = self_res.pair_terms_reverse + 0.5 * gb_pair + 0.5 * vdw_pair

        if self.scheme is GpuMinimizationScheme.SPLIT_ASSIGNMENT:
            # Forward list is pair-order; reverse list is a permutation of it.
            out = born_const.copy()
            out += execute_grouped_accumulation(self.table_fwd, e_fwd, self.n_atoms)
            # Reverse table's pair ids index the reverse list, whose k-th row
            # is the permuted original pair; map energies accordingly.
            perm = np.lexsort((i, j))
            out += execute_grouped_accumulation(self.table_rev, e_rev[perm], self.n_atoms)
            return out
        if self.scheme is GpuMinimizationScheme.FLAT_PAIRS:
            plist = PairsList(atom1=i, atom2=j, energy1=e_fwd, energy2=e_rev)
            return born_const + plist.accumulate_serial(self.n_atoms)
        # Scheme A: per-first-atom rounds; first-atom partials accumulate in
        # the first array, second-atom partials in the (merged) second array.
        out = born_const.copy()
        np.add.at(out, i, e_fwd)
        np.add.at(out, j, e_rev)
        return out

    # ------------------------------------------------------------- timing

    def iteration_timing(self) -> IterationTiming:
        """Record one iteration's launches/transfers; return the breakdown."""
        if self.scheme is GpuMinimizationScheme.SPLIT_ASSIGNMENT:
            return self._iteration_scheme_c()
        if self.scheme is GpuMinimizationScheme.FLAT_PAIRS:
            return self._iteration_scheme_b()
        return self._iteration_scheme_a()

    # -- scheme C ------------------------------------------------------------

    def _energy_kernel_launch(
        self, name: str, profile: KernelOpProfile, rows: int
    ) -> KernelLaunch:
        return energy_kernel_launch(name, profile, rows, self.n_atoms)

    def _iteration_scheme_c(self) -> IterationTiming:
        timing = IterationTiming(host_s=HOST_MOVE_S)
        p = self.n_pairs
        for direction in ("fwd", "rev"):
            t = self.device.launch(
                self._energy_kernel_launch(f"self_energy[{direction}]", SELF_ENERGY_OPS, p)
            )
            timing.kernels[f"self_energy[{direction}]"] = t
        for direction in ("fwd", "rev"):
            t = self.device.launch(
                self._energy_kernel_launch(
                    f"pairwise_vdw[{direction}]", PAIRWISE_VDW_OPS, p
                )
            )
            timing.kernels[f"pairwise_vdw[{direction}]"] = t
        for direction in ("fwd", "rev"):
            t = self.device.launch(
                self._energy_kernel_launch(
                    f"force_update[{direction}]", FORCE_UPDATE_OPS, p
                )
            )
            timing.kernels[f"force_update[{direction}]"] = t
        return timing

    # -- scheme B --------------------------------------------------------------

    def _iteration_scheme_b(self) -> IterationTiming:
        timing = IterationTiming(host_s=HOST_MOVE_S)
        p = self.n_pairs
        for name, profile in (
            ("self_energy[flat]", SELF_ENERGY_OPS),
            ("pairwise_vdw[flat]", PAIRWISE_VDW_OPS),
            ("force_update[flat]", FORCE_UPDATE_OPS),
        ):
            # Flat list: both atoms' partials computed by the same thread;
            # atom2 reads are gathers, both energy columns stream out.
            blocks = max(1, -(-p // DEFAULT_BLOCK_THREADS))
            launch = KernelLaunch(
                name=name,
                num_blocks=blocks,
                threads_per_block=DEFAULT_BLOCK_THREADS,
                flops=p * profile.flops * 1.6,     # both directions in one pass
                sfu_ops=p * profile.sfu_ops * 1.6,
                global_bytes_coalesced=p * (profile.table_bytes + 12.0 + 8.0),
                global_uncoalesced_accesses=p * profile.gathers,
            )
            timing.kernels[name] = self.device.launch(launch)
            # Two energy (or 6 force-component) arrays cross PCIe ...
            d2h_bytes = p * 2 * 4 if "force" not in name else p * 6 * 4
            timing.transfers_s += self.device.transfer(
                d2h_bytes, TransferDirection.D2H, label=f"{name} partials"
            )
            # ... and the host accumulates them serially.
            entries = p * 2 if "force" not in name else p * 6
            timing.host_s += entries * HOST_GATHER_ADD_S
        return timing

    # -- scheme A ---------------------------------------------------------------

    def _iteration_scheme_a(self) -> IterationTiming:
        timing = IterationTiming(host_s=HOST_MOVE_S)
        n_firsts = int(len(np.unique(self.pair_i)))
        sms = self.device.spec.num_sms
        rounds = max(1, -(-n_firsts // sms))
        seconds_per_round = self.n_pairs / max(rounds, 1)
        for name, profile in (
            ("self_energy[nlist]", SELF_ENERGY_OPS),
            ("pairwise_vdw[nlist]", PAIRWISE_VDW_OPS),
            ("force_update[nlist]", FORCE_UPDATE_OPS),
        ):
            term_total = 0.0
            for _ in range(rounds):
                # One first atom per SM; a full-length second-atom energy
                # array per SM is flushed to global memory and merged each
                # round ("transferring multiple large second atom arrays
                # from shared to global memory incurs high data transfer
                # cost per iteration").
                flush_bytes = sms * self.n_atoms * 4.0
                launch = KernelLaunch(
                    name=f"{name}/round",
                    num_blocks=sms,
                    threads_per_block=DEFAULT_BLOCK_THREADS,
                    flops=seconds_per_round * profile.flops,
                    sfu_ops=seconds_per_round * profile.sfu_ops,
                    global_bytes_coalesced=flush_bytes * 2.0,  # flush + merge read
                    global_uncoalesced_accesses=seconds_per_round * profile.gathers,
                    shared_accesses=seconds_per_round * profile.shared_accesses,
                    shared_bytes_per_block=min(
                        self.n_atoms * 4, self.device.spec.shared_mem_per_sm
                    ),
                )
                term_total += self.device.launch(launch)
            timing.kernels[name] = term_total
        return timing

    # -- Table 2 helper ---------------------------------------------------------

    def kernel_time_summary(self) -> Dict[str, float]:
        """Per-kernel-family time of one iteration (for Table 2), seconds."""
        timing = self.iteration_timing()
        out: Dict[str, float] = {"self_energy": 0.0, "pairwise_vdw": 0.0, "force_update": 0.0}
        for name, t in timing.kernels.items():
            for fam in out:
                if name.startswith(fam):
                    out[fam] += t
        return out


def _csr_offsets(sorted_first: np.ndarray, n_atoms: int) -> np.ndarray:
    counts = np.bincount(sorted_first, minlength=n_atoms)
    return np.concatenate([[0], np.cumsum(counts)]).astype(np.intp)


def _solvent_dielectric() -> float:
    from repro.constants import SOLVENT_DIELECTRIC

    return SOLVENT_DIELECTRIC
