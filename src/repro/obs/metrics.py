"""Process-wide metrics: counters, gauges, bounded-memory histograms.

The registry is the aggregate view the tracer cannot give: where a trace
explains one request, the registry accumulates *every* request —
per-tenant admission counts, stage-latency percentiles, cache hit
ratios, shard makespans — in bounded memory, and renders the whole state
as Prometheus text exposition for the gateway's ``GET /v1/metrics``.

Design points:

* **Labeled instruments.**  ``counter("x", ("tenant",))`` is one
  instrument; each distinct label-value tuple is one *series* (its own
  atomic cell).  Series materialize on first touch and live for the
  registry's lifetime — normal Prometheus client behaviour.
* **Bounded histograms.**  :class:`Histogram` keeps a fixed-capacity
  uniform sample (Vitter's reservoir algorithm R) plus exact
  count/sum/min/max, so a histogram that has seen ten million
  observations still holds ~1k floats.  While the stream fits in the
  reservoir the sample *is* the stream and quantiles are exact
  (numpy-style linear interpolation); past capacity they are unbiased
  estimates.  The reservoir's RNG is seeded from the series identity,
  never the wall clock, so instrumented runs stay reproducible.
* **Kill switch.**  :func:`set_metrics_enabled` turns every record call
  into a single flag check — the fully-disabled mode the overhead gate
  measures.  Metrics default to *on*: they are pure counters at run
  boundaries and bitwise-invisible to numerics.

Everything is stdlib-only and thread-safe (one lock per series, one for
the registry's instrument tables).
"""

from __future__ import annotations

import math
import random
import threading
import zlib
from typing import Any, Dict, Iterable, List, Sequence, Tuple, Type, TypeVar

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "registry",
    "set_metrics_enabled",
    "render_prometheus",
]

#: Default reservoir capacity.  Large enough that every test and every
#: realistic per-process stage stream stays in the exact-quantile regime.
RESERVOIR_CAPACITY = 1024

LabelValues = Tuple[str, ...]

_InstrumentT = TypeVar("_InstrumentT", bound="_Instrument")


def _format_value(value: float) -> str:
    """Prometheus-style float rendering: integers without the '.0'."""
    if value != value:  # NaN
        return "NaN"
    if value in (math.inf, -math.inf):
        return "+Inf" if value > 0 else "-Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _label_str(names: Sequence[str], values: LabelValues, extra: str = "") -> str:
    parts = [f'{n}="{_escape_label(str(v))}"' for n, v in zip(names, values)]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


class _Instrument:
    """Shared shell: a named, labeled family of series."""

    kind = ""

    def __init__(self, reg: "MetricsRegistry", name: str, help: str,
                 labelnames: Tuple[str, ...]) -> None:
        self._registry = reg
        self.name = name
        self.help = help
        self.labelnames = labelnames
        # Cells are _CounterCell / _HistogramCell per subclass; Any keeps
        # the shared accessors usable on either without a cast.
        self._series: Dict[LabelValues, Any] = {}
        self._lock = threading.Lock()

    def _resolve(self, labels: Dict[str, str]) -> LabelValues:
        if set(labels) != set(self.labelnames):
            raise ValueError(
                f"metric {self.name!r} takes labels {self.labelnames}, "
                f"got {tuple(sorted(labels))}"
            )
        return tuple(str(labels[n]) for n in self.labelnames)

    def _cell(self, values: LabelValues) -> Any:
        cell = self._series.get(values)
        if cell is None:
            with self._lock:
                cell = self._series.setdefault(values, self._new_cell(values))
        return cell

    def _new_cell(self, values: LabelValues) -> Any:  # pragma: no cover - abstract
        raise NotImplementedError

    def series(self) -> List[Tuple[LabelValues, Any]]:
        with self._lock:
            return sorted(self._series.items())


class _CounterCell:
    __slots__ = ("value", "lock")

    def __init__(self) -> None:
        self.value = 0.0
        self.lock = threading.Lock()


class Counter(_Instrument):
    """Monotonically increasing count (events, bytes, shed requests)."""

    kind = "counter"

    def inc(self, amount: float = 1.0, **labels) -> None:
        if not self._registry.enabled:
            return
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease (inc {amount})")
        cell = self._cell(self._resolve(labels))
        with cell.lock:
            cell.value += amount

    def value(self, **labels) -> float:
        cell = self._cell(self._resolve(labels))
        with cell.lock:
            return cell.value

    def _new_cell(self, values: LabelValues) -> _CounterCell:
        return _CounterCell()


class Gauge(_Instrument):
    """Point-in-time level (queue depth, jobs running)."""

    kind = "gauge"

    def set(self, value: float, **labels) -> None:
        if not self._registry.enabled:
            return
        cell = self._cell(self._resolve(labels))
        with cell.lock:
            cell.value = float(value)

    def inc(self, amount: float = 1.0, **labels) -> None:
        if not self._registry.enabled:
            return
        cell = self._cell(self._resolve(labels))
        with cell.lock:
            cell.value += amount

    def dec(self, amount: float = 1.0, **labels) -> None:
        self.inc(-amount, **labels)

    def value(self, **labels) -> float:
        cell = self._cell(self._resolve(labels))
        with cell.lock:
            return cell.value

    def _new_cell(self, values: LabelValues) -> _CounterCell:
        return _CounterCell()


class _HistogramCell:
    __slots__ = ("count", "sum", "min", "max", "sample", "rng", "lock", "_capacity")

    def __init__(self, capacity: int, seed: int) -> None:
        self.count = 0
        self.sum = 0.0
        self.min = math.inf
        self.max = -math.inf
        self.sample: List[float] = []
        # Deterministic per-series stream: reproducible reservoirs, and
        # no global random-module state is touched.
        self.rng = random.Random(seed)
        self.lock = threading.Lock()
        self._capacity = capacity

    def observe(self, value: float) -> None:
        with self.lock:
            self.count += 1
            self.sum += value
            if value < self.min:
                self.min = value
            if value > self.max:
                self.max = value
            if len(self.sample) < self._capacity:
                self.sample.append(value)
            else:
                # Algorithm R: keep each of the n observations with
                # probability capacity/n — a uniform sample of the stream.
                j = self.rng.randrange(self.count)
                if j < self._capacity:
                    self.sample[j] = value

    def quantile(self, q: float) -> float:
        with self.lock:
            if not self.sample:
                return math.nan
            data = sorted(self.sample)
        # numpy's default "linear" interpolation, so the accuracy test
        # can compare against np.percentile directly.
        pos = q * (len(data) - 1)
        lo = int(math.floor(pos))
        hi = int(math.ceil(pos))
        if lo == hi:
            return data[lo]
        frac = pos - lo
        return data[lo] * (1.0 - frac) + data[hi] * frac


class Histogram(_Instrument):
    """Streaming distribution with exact count/sum and sampled quantiles."""

    kind = "histogram"

    #: Quantiles rendered in exposition and snapshots.
    QUANTILES = (0.5, 0.95, 0.99)

    def __init__(self, reg: "MetricsRegistry", name: str, help: str,
                 labelnames: Tuple[str, ...],
                 capacity: int = RESERVOIR_CAPACITY) -> None:
        super().__init__(reg, name, help, labelnames)
        self.capacity = capacity

    def observe(self, value: float, **labels) -> None:
        if not self._registry.enabled:
            return
        self._cell(self._resolve(labels)).observe(float(value))

    def quantile(self, q: float, **labels) -> float:
        return self._cell(self._resolve(labels)).quantile(q)

    def count(self, **labels) -> int:
        cell = self._cell(self._resolve(labels))
        with cell.lock:
            return cell.count

    def sum(self, **labels) -> float:
        cell = self._cell(self._resolve(labels))
        with cell.lock:
            return cell.sum

    def _new_cell(self, values: LabelValues) -> _HistogramCell:
        # Seed from the series identity so reservoirs are reproducible
        # run to run for the same label set.
        seed = zlib.crc32("\x1f".join((self.name,) + values).encode())
        return _HistogramCell(self.capacity, seed)


class MetricsRegistry:
    """Named instruments, memoized by name, rendered as one exposition.

    Instrument constructors are idempotent: two call sites asking for
    ``counter("repro_cache_lookups_total", ...)`` share the instrument
    (conflicting label names raise).  Call-time lookup through
    :func:`registry` is the intended pattern — module-level instrument
    bindings would detach when tests swap the registry.
    """

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._instruments: Dict[str, _Instrument] = {}
        self._lock = threading.Lock()

    # -- instrument constructors -------------------------------------------------

    def _get(self, cls: Type[_InstrumentT], name: str, labelnames: Iterable[str],
             help: str, **kwargs: Any) -> _InstrumentT:
        names = tuple(labelnames)
        with self._lock:
            inst = self._instruments.get(name)
            if inst is None:
                inst = cls(self, name, help, names, **kwargs)
                self._instruments[name] = inst
                return inst
        if not isinstance(inst, cls) or inst.labelnames != names:
            raise ValueError(
                f"metric {name!r} already registered as {inst.kind} "
                f"with labels {inst.labelnames}"
            )
        return inst

    def counter(self, name: str, labelnames: Iterable[str] = (),
                help: str = "") -> Counter:
        return self._get(Counter, name, labelnames, help)

    def gauge(self, name: str, labelnames: Iterable[str] = (),
              help: str = "") -> Gauge:
        return self._get(Gauge, name, labelnames, help)

    def histogram(self, name: str, labelnames: Iterable[str] = (),
                  help: str = "", capacity: int = RESERVOIR_CAPACITY) -> Histogram:
        return self._get(Histogram, name, labelnames, help, capacity=capacity)

    # -- views -------------------------------------------------------------------

    def instruments(self) -> List[_Instrument]:
        with self._lock:
            return sorted(self._instruments.values(), key=lambda i: i.name)

    def snapshot(self) -> Dict[str, object]:
        """JSON-ready dump of every series (the `/v1/stats` shape)."""
        out: Dict[str, object] = {}
        for inst in self.instruments():
            series_out: Dict[str, object] = {}
            for values, cell in inst.series():
                key = ",".join(f"{n}={v}" for n, v in zip(inst.labelnames, values)) or ""
                if isinstance(inst, Histogram):
                    with cell.lock:
                        count, total = cell.count, cell.sum
                    series_out[key] = {
                        "count": count,
                        "sum": total,
                        **{
                            f"p{int(q * 100)}": cell.quantile(q)
                            for q in Histogram.QUANTILES
                        },
                    }
                else:
                    with cell.lock:
                        series_out[key] = cell.value
            out[inst.name] = {"type": inst.kind, "series": series_out}
        return out

    def render(self) -> str:
        return render_prometheus(self)

    def reset(self) -> None:
        """Drop every instrument (test isolation)."""
        with self._lock:
            self._instruments.clear()


def render_prometheus(reg: MetricsRegistry) -> str:
    """Prometheus text exposition (format version 0.0.4) of a registry.

    Histograms render as the ``summary`` type — precomputed quantiles
    plus ``_sum``/``_count`` — which is the honest mapping for a
    reservoir (no fixed buckets to publish).
    """
    lines: List[str] = []
    for inst in reg.instruments():
        if inst.help:
            lines.append(f"# HELP {inst.name} {inst.help}")
        prom_type = "summary" if inst.kind == "histogram" else inst.kind
        lines.append(f"# TYPE {inst.name} {prom_type}")
        for values, cell in inst.series():
            if isinstance(inst, Histogram):
                with cell.lock:
                    count, total = cell.count, cell.sum
                for q in Histogram.QUANTILES:
                    labels = _label_str(inst.labelnames, values,
                                        extra=f'quantile="{q}"')
                    lines.append(
                        f"{inst.name}{labels} {_format_value(cell.quantile(q))}"
                    )
                base = _label_str(inst.labelnames, values)
                lines.append(f"{inst.name}_sum{base} {_format_value(total)}")
                lines.append(f"{inst.name}_count{base} {count}")
            else:
                with cell.lock:
                    value = cell.value
                labels = _label_str(inst.labelnames, values)
                lines.append(f"{inst.name}{labels} {_format_value(value)}")
    return "\n".join(lines) + "\n"


_REGISTRY = MetricsRegistry(enabled=True)


def registry() -> MetricsRegistry:
    """The process-wide registry.  Look instruments up at call time."""
    return _REGISTRY


def set_metrics_enabled(enabled: bool) -> bool:
    """Flip the global record switch; returns the previous state."""
    prev = _REGISTRY.enabled
    _REGISTRY.enabled = bool(enabled)
    return prev
