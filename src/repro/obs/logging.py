"""Structured logging with trace/job/tenant correlation ids.

Two audiences, one module:

* :class:`StructuredLogger` / :func:`log_event` emit machine-parseable
  JSON lines from the service and gateway hot paths — each line carries
  whatever correlation ids the call site knows (``trace_id``,
  ``job_id``, ``tenant``) so a log stream joins against traces and
  gateway accounting.  Off until :func:`configure_logging` turns it on;
  a disabled :func:`log_event` is one flag check.
* :class:`RunLogger` is the human-facing timestamped section/step logger
  the examples and benchmark harnesses always used, folded in from
  ``repro.util.runlog`` (which remains as a deprecation shim) so the
  whole repo shares one logging home.
"""

from __future__ import annotations

import json
import sys
import threading
import time
from typing import Dict, List, Optional, TextIO

__all__ = [
    "StructuredLogger",
    "configure_logging",
    "log_event",
    "RunLogger",
]


class StructuredLogger:
    """JSON-lines event logger.

    Each event is one line: ``{"t_s": <monotonic>, "event": <name>,
    ...fields}``.  ``t_s`` is ``time.perf_counter()`` — monotonic, for
    intra-process ordering and deltas, not wall-clock correlation.
    Thread-safe; keeps the emitted records in memory so tests and
    harnesses can assert on what was logged.
    """

    def __init__(self, stream: Optional[TextIO] = None, enabled: bool = True) -> None:
        self.stream = stream if stream is not None else sys.stderr
        self.enabled = enabled
        self.records: List[Dict[str, object]] = []
        self._lock = threading.Lock()

    def log(self, event: str, **fields) -> None:
        if not self.enabled:
            return
        record: Dict[str, object] = {"t_s": round(time.perf_counter(), 6),
                                     "event": event}
        # Drop empty correlation ids so lines stay scannable.
        record.update({k: v for k, v in fields.items() if v not in ("", None)})
        line = json.dumps(record, sort_keys=False, default=str)
        with self._lock:
            self.records.append(record)
            print(line, file=self.stream)


class _NullStructuredLogger(StructuredLogger):
    """Default state: logging off, one flag check per call."""

    def __init__(self) -> None:
        super().__init__(stream=sys.stderr, enabled=False)

    def log(self, event: str, **fields) -> None:
        return


_logger: StructuredLogger = _NullStructuredLogger()


def configure_logging(stream: Optional[TextIO] = None,
                      enabled: bool = True) -> StructuredLogger:
    """Install (and return) the process-wide structured logger.

    ``configure_logging(enabled=False)`` restores the silent default.
    """
    global _logger
    _logger = StructuredLogger(stream=stream, enabled=enabled) if enabled \
        else _NullStructuredLogger()
    return _logger


def log_event(event: str, **fields) -> None:
    """Emit one structured event through the process-wide logger.

    Call sites pass correlation ids explicitly
    (``log_event("job.finished", job_id=..., trace_id=..., tenant=...)``);
    empty ids are dropped from the line.
    """
    _logger.log(event, **fields)


class RunLogger:
    """Timestamped section/step logger for examples and benchmarks.

    Writes to a stream (stdout by default) and keeps an in-memory record
    so harnesses can archive what a run printed.
    """

    def __init__(self, stream: Optional[TextIO] = None, enabled: bool = True) -> None:
        self.stream = stream or sys.stdout
        self.enabled = enabled
        self.records: List[str] = []
        self._t0 = time.perf_counter()
        self._section_t0 = self._t0

    def _emit(self, text: str) -> None:
        self.records.append(text)
        if self.enabled:
            print(text, file=self.stream)

    def section(self, title: str) -> None:
        self._section_t0 = time.perf_counter()
        self._emit(f"\n== {title} ==")

    def step(self, message: str) -> None:
        dt = time.perf_counter() - self._t0
        self._emit(f"[{dt:8.2f}s] {message}")

    def done(self, message: str = "done") -> None:
        dt = time.perf_counter() - self._section_t0
        self._emit(f"   ... {message} ({dt:.2f}s)")
