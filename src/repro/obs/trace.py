"""Request tracing: monotonic spans, context propagation, chrome export.

One :class:`Tracer` is one trace — a request's complete timing story.
Spans are measured on ``time.perf_counter()`` (monotonic, never walks
backwards under NTP), are thread-safe to record from any worker, and
carry free-form attributes (backend decisions, cache hit/miss, shard
placement).  Context propagation is a :mod:`contextvars` variable: code
deep in the pipeline reads :func:`current_span` and annotates whatever
request is executing on its thread *without any plumbing through the
call chain* — and when no trace is active it gets :data:`NULL_SPAN`,
whose methods are empty one-liners, which is what makes disabled
instrumentation near-zero-cost.

The serialized form (:meth:`Tracer.to_dict`) is schema-versioned
(:data:`TRACE_SCHEMA_VERSION`), JSON-round-trippable, and convertible to
the Chrome trace-event format (:func:`chrome_trace`) so any trace can be
dropped into ``chrome://tracing`` / Perfetto and read as a flame chart.
Span times in the document are *relative to the trace origin* — two
serializations of one trace agree exactly, wherever the process clock
happened to start.
"""

from __future__ import annotations

import os
import threading
import time
from contextlib import contextmanager
from contextvars import ContextVar
from typing import Any, Dict, Iterator, List, Optional, Tuple, Union

__all__ = [
    "TRACE_SCHEMA_VERSION",
    "Span",
    "Tracer",
    "NullTracer",
    "TracerLike",
    "NULL_SPAN",
    "NULL_TRACER",
    "current_span",
    "current_tracer",
    "use_span",
    "check_trace",
    "chrome_trace",
    "stage_durations",
]

#: Version stamped into every serialized trace document.
TRACE_SCHEMA_VERSION = 1

#: Attribute value types that pass into the document untouched; anything
#: else is stringified so traces always JSON-serialize.
_JSON_SCALARS = (str, int, float, bool, type(None))


def _new_id() -> str:
    """64-bit random hex id (span and trace ids)."""
    return os.urandom(8).hex()


def _json_safe(value):
    return value if isinstance(value, _JSON_SCALARS) else str(value)


class Span:
    """One timed operation within a trace.

    Created through :meth:`Tracer.span` / :meth:`Tracer.start_span`;
    records itself on the owning tracer when ended (exactly once —
    repeat ``end()`` calls are ignored).
    """

    __slots__ = (
        "tracer", "name", "span_id", "parent_id",
        "start_s", "end_s", "attributes", "thread",
    )

    def __init__(self, tracer: "Tracer", name: str, parent_id: str = "") -> None:
        self.tracer = tracer
        self.name = name
        self.span_id = _new_id()
        self.parent_id = parent_id
        self.start_s = time.perf_counter()
        self.end_s: Optional[float] = None
        self.attributes: Dict[str, object] = {}
        self.thread = threading.current_thread().name

    @property
    def trace_id(self) -> str:
        return self.tracer.trace_id

    def set_attribute(self, key: str, value) -> None:
        self.attributes[key] = _json_safe(value)

    def set_attributes(self, **attributes) -> None:
        for key, value in attributes.items():
            self.attributes[key] = _json_safe(value)

    def end(self) -> None:
        if self.end_s is None:
            self.end_s = time.perf_counter()
            self.tracer._record(self)

    @property
    def duration_s(self) -> float:
        end = self.end_s if self.end_s is not None else time.perf_counter()
        return end - self.start_s

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Span({self.name!r}, id={self.span_id}, {self.duration_s:.6f}s)"


class _NullSpan:
    """The span of a disabled trace: every operation is a no-op."""

    __slots__ = ()
    name = ""
    span_id = ""
    parent_id = ""
    trace_id = ""
    start_s = 0.0
    end_s = 0.0
    duration_s = 0.0
    attributes: Dict[str, object] = {}

    def set_attribute(self, key: str, value) -> None:
        pass

    def set_attributes(self, **attributes) -> None:
        pass

    def end(self) -> None:
        pass

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return "NULL_SPAN"


NULL_SPAN = _NullSpan()

#: Ambient (tracer, span) of the executing context; None when no trace
#: is active.  Contextvars are per-thread snapshots, so worker threads
#: inherit whatever context they were handed (see
#: :class:`repro.util.parallel.PipelineExecutor`) without sharing
#: mutable state.
_CURRENT: ContextVar[Optional[Tuple["Tracer", "Span"]]] = ContextVar(
    "repro_obs_current_span", default=None
)


def current_span():
    """The span active on this context, else :data:`NULL_SPAN`."""
    current = _CURRENT.get()
    return current[1] if current is not None else NULL_SPAN


def current_tracer():
    """The tracer active on this context, else :data:`NULL_TRACER`."""
    current = _CURRENT.get()
    return current[0] if current is not None else NULL_TRACER


@contextmanager
def use_span(tracer, span) -> Iterator[None]:
    """Attach an existing (tracer, span) pair to the current context.

    For code that receives a span across a thread boundary and wants
    downstream :func:`current_span` reads to see it — the span is *not*
    ended on exit (its creator owns its lifetime).
    """
    token = _CURRENT.set((tracer, span))
    try:
        yield
    finally:
        _CURRENT.reset(token)


class Tracer:
    """One trace: an id, a monotonic origin, and its finished spans.

    Thread-safe — spans may start, annotate and end on any thread; the
    recorded list is ordered by start time at serialization.
    """

    enabled = True

    def __init__(self, trace_id: Optional[str] = None) -> None:
        self.trace_id = trace_id if trace_id else _new_id()
        self._t0 = time.perf_counter()
        self._spans: List[Span] = []
        self._lock = threading.Lock()

    # -- span creation -----------------------------------------------------------

    def start_span(self, name: str, parent=None, **attributes) -> Span:
        """Start a span (caller ends it).  ``parent`` may be a
        :class:`Span` or a span-id string; omitted, the ambient span of
        this context (if it belongs to this tracer) is the parent."""
        if parent is None:
            ambient = _CURRENT.get()
            parent_id = (
                ambient[1].span_id
                if ambient is not None and ambient[0] is self
                else ""
            )
        elif isinstance(parent, str):
            parent_id = parent
        else:
            parent_id = parent.span_id
        span = Span(self, name, parent_id=parent_id)
        if attributes:
            span.set_attributes(**attributes)
        return span

    @contextmanager
    def span(self, name: str, parent=None, **attributes) -> Iterator[Span]:
        """Timed block: starts a span, makes it ambient, ends it on exit.

        An escaping exception is recorded as an ``error`` attribute
        before re-raising, so failed stages stay visible in the trace.
        """
        s = self.start_span(name, parent=parent, **attributes)
        token = _CURRENT.set((self, s))
        try:
            yield s
        except BaseException as exc:
            s.set_attribute("error", f"{type(exc).__name__}: {exc}")
            raise
        finally:
            _CURRENT.reset(token)
            s.end()

    def add_span(
        self,
        name: str,
        start_s: float,
        end_s: float,
        parent=None,
        thread: Optional[str] = None,
        **attributes,
    ) -> Span:
        """Record a span from already-measured ``perf_counter`` times.

        The post-hoc path for work timed elsewhere (e.g. per-shard
        minimization wall clocks measured inside the multi-device
        engine): overlap in the trace is exactly the overlap that
        happened, without threading tracer plumbing through the engine.
        ``thread`` overrides the recorded thread label so such spans land
        on their own display row (e.g. one per device).
        """
        span = self.start_span(name, parent=parent, **attributes)
        span.start_s = float(start_s)
        span.end_s = float(end_s)
        if thread is not None:
            span.thread = thread
        self._record(span)
        return span

    def _record(self, span: Span) -> None:
        with self._lock:
            self._spans.append(span)

    # -- serialization -----------------------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        """Schema-versioned JSON-ready trace document.

        Span times are seconds relative to the trace origin, so the
        document is stable across serializations and process restarts.
        """
        with self._lock:
            spans = list(self._spans)
        spans.sort(key=lambda s: (s.start_s, s.span_id))
        return {
            "schema_version": TRACE_SCHEMA_VERSION,
            "trace_id": self.trace_id,
            "spans": [
                {
                    "name": s.name,
                    "span_id": s.span_id,
                    "parent_id": s.parent_id,
                    "start_s": s.start_s - self._t0,
                    "duration_s": (s.end_s if s.end_s is not None else s.start_s)
                    - s.start_s,
                    "thread": s.thread,
                    "attributes": dict(s.attributes),
                }
                for s in spans
            ],
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        with self._lock:
            n = len(self._spans)
        return f"Tracer({self.trace_id}, spans={n})"


class NullTracer:
    """The disabled tracer: same surface, every operation a no-op.

    This is the off-by-default guard — code paths call the tracing API
    unconditionally, and with tracing off each call is a constant-time
    no-op returning :data:`NULL_SPAN`.
    """

    enabled = False
    trace_id = ""

    def start_span(self, name: str, parent=None, **attributes):
        return NULL_SPAN

    @contextmanager
    def span(self, name: str, parent=None, **attributes) -> Iterator[_NullSpan]:
        yield NULL_SPAN

    def add_span(self, name, start_s, end_s, parent=None, thread=None, **attributes):
        return NULL_SPAN

    def to_dict(self) -> None:
        return None

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return "NULL_TRACER"


NULL_TRACER = NullTracer()

#: What code holding "a tracer" actually holds: the live recorder or the
#: disabled stand-in.  The two share the full surface (``enabled``,
#: ``trace_id``, ``span``/``start_span``/``add_span``, ``to_dict``), so
#: callers never branch on which one they have.
TracerLike = Union[Tracer, NullTracer]


# -- trace-document helpers ---------------------------------------------------------


def check_trace(trace: Dict[str, object]) -> Dict[str, object]:
    """Validate a serialized trace document; returns it unchanged.

    Raises :class:`ValueError` for a document this build cannot read —
    the version gate mirrors the wire-schema convention of
    :mod:`repro.api.schema`.
    """
    if not isinstance(trace, dict):
        raise ValueError(f"trace document must be a dict, got {type(trace).__name__}")
    version = trace.get("schema_version")
    if version != TRACE_SCHEMA_VERSION:
        raise ValueError(
            f"unsupported trace schema_version {version!r} "
            f"(this build reads {TRACE_SCHEMA_VERSION})"
        )
    spans = trace.get("spans")
    if not isinstance(trace.get("trace_id"), str) or not isinstance(spans, list):
        raise ValueError("trace document needs a trace_id and a span list")
    for span in spans:
        for field in ("name", "span_id", "parent_id", "start_s", "duration_s"):
            if field not in span:
                raise ValueError(f"trace span missing field {field!r}: {span}")
    return trace


def _span_list(trace: Dict[str, object]) -> List[Dict[str, Any]]:
    """Validate ``trace`` and return its span list, typed for iteration."""
    check_trace(trace)
    spans = trace["spans"]
    assert isinstance(spans, list)  # check_trace verified
    return spans


def chrome_trace(trace: Dict[str, object]) -> Dict[str, object]:
    """Convert a trace document to Chrome trace-event JSON.

    The result serializes directly to a file loadable in
    ``chrome://tracing`` or https://ui.perfetto.dev: one complete
    (``"ph": "X"``) event per span, timestamps in microseconds, one
    display row (``tid``) per recording thread so overlap reads as
    overlap.
    """
    tids: Dict[str, int] = {}
    events = []
    for span in _span_list(trace):
        thread = str(span.get("thread", ""))
        tid = tids.setdefault(thread, len(tids) + 1)
        args = dict(span.get("attributes") or {})
        args["span_id"] = span["span_id"]
        if span["parent_id"]:
            args["parent_id"] = span["parent_id"]
        events.append(
            {
                "name": span["name"],
                "cat": "repro",
                "ph": "X",
                "ts": float(span["start_s"]) * 1e6,
                "dur": float(span["duration_s"]) * 1e6,
                "pid": 1,
                "tid": tid,
                "args": args,
            }
        )
    events.extend(
        {
            "name": "thread_name",
            "ph": "M",
            "pid": 1,
            "tid": tid,
            "args": {"name": thread},
        }
        for thread, tid in tids.items()
    )
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {"trace_id": trace["trace_id"]},
    }


def stage_durations(trace: Dict[str, object]) -> Dict[str, float]:
    """Total seconds per span name — the per-stage latency breakdown.

    This is the serving-side analogue of the paper's Fig. 2/3 stage
    profiles: summing ``dock`` / ``minimize`` / ``cluster`` /
    ``consensus`` spans of one request answers "where did the time go"
    the same way the paper's per-phase timings justify what to put on
    the GPU.
    """
    totals: Dict[str, float] = {}
    for span in _span_list(trace):
        name = str(span["name"])
        totals[name] = totals.get(name, 0.0) + float(span["duration_s"])
    return totals
