"""Unified observability layer: tracing, metrics, structured logging.

The paper's argument is built on per-stage timing profiles (its Fig. 2/3
docking-vs-minimization breakdowns are what justify the GPU distribution
schemes); this package makes the same question — *where did this
request's time go?* — answerable for the serving stack in production.

Three zero-dependency pillars:

* :mod:`repro.obs.trace` — lightweight monotonic-clock spans with
  context propagation.  A request carries one :class:`Tracer` from
  gateway ingress through admission-queue wait, dispatch, every
  dock/minimize/cluster/consensus stage, down to per-shard minimization;
  traces attach to ``MapResult.trace`` and export as
  ``chrome://tracing`` JSON.  Off by default: the guarded
  :data:`NULL_TRACER` makes disabled instrumentation a handful of
  attribute reads per request, and instrumentation never touches
  numerics (bitwise-identical outputs either way — CI-gated).
* :mod:`repro.obs.metrics` — a process-wide :class:`MetricsRegistry`
  (counters, gauges, bounded-memory streaming histograms with
  p50/p95/p99) fed by the gateway (per-tenant request/shed/queue-depth/
  latency), the service (stage latencies, jobs by state), the cache
  (hits/misses/evictions/bytes by artifact kind) and the engines (poses
  minimized, pose iterations, FFT batches, shard makespans); exposed as
  Prometheus text at the gateway's ``GET /v1/metrics``.
* :mod:`repro.obs.logging` — structured JSON log lines with
  trace/job/tenant correlation ids (off unless configured), plus the
  :class:`RunLogger` examples/benchmarks always used (folded in from
  ``repro.util.runlog``, which remains as a deprecation shim).
"""

from repro.obs.logging import RunLogger, StructuredLogger, configure_logging, log_event
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    registry,
    set_metrics_enabled,
)

# Unambiguous alias for consumers outside the obs package (the top-level
# ``repro`` namespace re-exports it, where bare ``registry`` would read
# as anything).
metrics_registry = registry
from repro.obs.trace import (
    NULL_SPAN,
    NULL_TRACER,
    TRACE_SCHEMA_VERSION,
    Span,
    Tracer,
    check_trace,
    chrome_trace,
    current_span,
    current_tracer,
    stage_durations,
    use_span,
)

__all__ = [
    "TRACE_SCHEMA_VERSION",
    "Span",
    "Tracer",
    "NULL_SPAN",
    "NULL_TRACER",
    "current_span",
    "current_tracer",
    "use_span",
    "check_trace",
    "chrome_trace",
    "stage_durations",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "registry",
    "metrics_registry",
    "set_metrics_enabled",
    "StructuredLogger",
    "RunLogger",
    "configure_logging",
    "log_event",
]
