"""``python -m repro.cache`` dispatches to :mod:`repro.cache.cli`."""

import sys

from repro.cache.cli import main

if __name__ == "__main__":
    sys.exit(main())
