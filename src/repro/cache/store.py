"""Cache storage tiers: in-process LRU with a byte budget + on-disk store.

The memory tier holds live objects behind an LRU with a byte budget, so a
long sweep can keep its hot artifacts (receptor grids, spectra, dock
results) resident without growing unboundedly.  The disk tier persists
encoded payloads with atomic writes (``os.replace`` of a unique temp
file, safe under concurrent forked writers), versioned codecs and an
integrity checksum; *any* defect on read — truncation, bit corruption, a
stale format or codec version — degrades to a miss (and removes the bad
entry) instead of raising, so a damaged cache can only cost recompute
time, never correctness.
"""

from __future__ import annotations

import io
import json
import os
import pickle
import shutil
import tempfile
import threading
from collections import OrderedDict
from pathlib import Path
from typing import Optional, Tuple

import numpy as np

from repro.cache.keys import CACHE_FORMAT_VERSION, hash_parts

__all__ = [
    "MISS",
    "PickleCodec",
    "NpzCodec",
    "CODECS",
    "estimate_nbytes",
    "MemoryStore",
    "DiskStore",
]

#: Sentinel distinguishing "no entry" from a stored falsy value.
MISS = object()

#: Magic tag opening every disk entry's header line.
_MAGIC = "repro-cache"


# -- codecs -------------------------------------------------------------------------


class PickleCodec:
    """General object payloads (pose lists, EnergyGrids, dataclasses)."""

    name = "pickle"
    version = 1

    @staticmethod
    def encode(value) -> bytes:
        return pickle.dumps(value, protocol=4)

    @staticmethod
    def decode(payload: bytes):
        return pickle.loads(payload)


class NpzCodec:
    """Pure-array payloads: one ndarray or a flat dict of ndarrays.

    Refuses object arrays on both ends (``allow_pickle=False``), so an
    npz entry can never smuggle arbitrary pickled state.
    """

    name = "npz"
    version = 1

    _SINGLE = "__array__"

    @classmethod
    def encode(cls, value) -> bytes:
        if isinstance(value, np.ndarray):
            arrays = {cls._SINGLE: value}
        elif isinstance(value, dict):
            arrays = value
        else:
            raise TypeError(f"npz codec stores arrays, got {type(value).__name__}")
        buf = io.BytesIO()
        np.savez(buf, **arrays)
        return buf.getvalue()

    @classmethod
    def decode(cls, payload: bytes):
        with np.load(io.BytesIO(payload), allow_pickle=False) as data:
            if set(data.files) == {cls._SINGLE}:
                return data[cls._SINGLE]
            return {k: data[k] for k in data.files}


CODECS = {PickleCodec.name: PickleCodec, NpzCodec.name: NpzCodec}


def estimate_nbytes(value) -> int:
    """Approximate in-memory footprint of a cached value.

    Arrays report exactly; array containers sum their parts; anything else
    falls back to its pickled length (close enough for budget accounting).
    """
    if isinstance(value, np.ndarray):
        return int(value.nbytes)
    if isinstance(value, dict):
        return sum(estimate_nbytes(v) for v in value.values()) + 64 * len(value)
    if isinstance(value, (list, tuple)):
        return sum(estimate_nbytes(v) for v in value) + 16 * len(value)
    channels = getattr(value, "channels", None)
    if isinstance(channels, np.ndarray):  # EnergyGrids-shaped
        weights = getattr(value, "weights", None)
        extra = int(weights.nbytes) if isinstance(weights, np.ndarray) else 0
        return int(channels.nbytes) + extra + 256
    try:
        return len(pickle.dumps(value, protocol=4))
    except Exception:
        return 1024


# -- memory tier --------------------------------------------------------------------


class MemoryStore:
    """LRU mapping of key -> live object under a byte budget.

    Thread-safe; eviction pops least-recently-used entries until the
    budget holds.  A value larger than the whole budget is simply not
    stored (storing it would evict everything for a single entry).
    """

    def __init__(self, budget_bytes: int) -> None:
        if budget_bytes < 1:
            raise ValueError("memory budget must be >= 1 byte")
        self.budget_bytes = int(budget_bytes)
        self.evictions = 0
        self.total_bytes = 0
        self._entries: "OrderedDict[str, Tuple[object, int]]" = OrderedDict()
        self._lock = threading.RLock()

    def get(self, key: str):
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                return MISS
            self._entries.move_to_end(key)
            return entry[0]

    def put(self, key: str, value, nbytes: Optional[int] = None) -> None:
        size = int(nbytes) if nbytes is not None else estimate_nbytes(value)
        if size > self.budget_bytes:
            return
        with self._lock:
            old = self._entries.pop(key, None)
            if old is not None:
                self.total_bytes -= old[1]
            self._entries[key] = (value, size)
            self.total_bytes += size
            while self.total_bytes > self.budget_bytes:
                _, (_, dropped) = self._entries.popitem(last=False)
                self.total_bytes -= dropped
                self.evictions += 1

    def clear(self, prefix: Optional[str] = None) -> None:
        with self._lock:
            if prefix is None:
                self._entries.clear()
                self.total_bytes = 0
                return
            for key in [k for k in self._entries if k.startswith(prefix)]:
                _, size = self._entries.pop(key)
                self.total_bytes -= size

    def keys(self):
        with self._lock:
            return list(self._entries)

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)


# -- disk tier ----------------------------------------------------------------------


class DiskStore:
    """One file per entry under ``root``, written atomically.

    Entry layout: one JSON header line (magic, format + codec versions,
    payload SHA-256 and length) followed by the raw codec payload.  Reads
    re-verify length and checksum; any mismatch or decode failure counts
    as corruption, unlinks the entry and reads as a miss.  Writers encode
    to a unique temp file in the destination directory and ``os.replace``
    it into place, so two forked workers racing on the same key leave one
    complete entry, never an interleaved one.
    """

    def __init__(self, root) -> None:
        self.root = Path(root)
        self.corrupt_entries = 0

    def _path(self, key: str) -> Path:
        namespace, _, digest = key.rpartition("/")
        safe_ns = "".join(
            c if (c.isalnum() or c in "-_/.") else "_" for c in namespace
        ) or "default"
        return self.root / safe_ns / digest[:2] / f"{digest}.bin"

    def put(
        self, key: str, value, codec: str = "pickle",
        payload: Optional[bytes] = None,
    ) -> None:
        """Write one entry; ``payload`` skips re-encoding when the caller
        already serialized ``value`` (the manager encodes once and reuses
        the byte length for memory-tier accounting)."""
        enc = CODECS[codec]
        if payload is None:
            payload = enc.encode(value)
        header = json.dumps(
            {
                "magic": _MAGIC,
                "format": CACHE_FORMAT_VERSION,
                "codec": enc.name,
                "codec_version": enc.version,
                "sha256": hash_parts(payload),
                "nbytes": len(payload),
            }
        ).encode("ascii")
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as fh:
                fh.write(header + b"\n" + payload)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def get(self, key: str):
        path = self._path(key)
        try:
            with open(path, "rb") as fh:
                header_line = fh.readline()
                payload = fh.read()
        except OSError:
            return MISS
        try:
            header = json.loads(header_line)
            if header.get("magic") != _MAGIC:
                raise ValueError("bad magic")
            if header.get("format") != CACHE_FORMAT_VERSION:
                raise ValueError("stale format version")
            codec = CODECS[header["codec"]]
            if header.get("codec_version") != codec.version:
                raise ValueError("stale codec version")
            if header.get("nbytes") != len(payload):
                raise ValueError("truncated payload")
            if header.get("sha256") != hash_parts(payload):
                raise ValueError("checksum mismatch")
            return codec.decode(payload)
        except Exception:
            # Corrupt, truncated or outdated: drop the entry and recompute.
            self.corrupt_entries += 1
            try:
                os.unlink(path)
            except OSError:
                pass
            return MISS

    def clear(self, prefix: Optional[str] = None) -> None:
        if prefix is None:
            shutil.rmtree(self.root, ignore_errors=True)
            return
        # Prefixes are namespaces; their sanitized directory holds all keys.
        probe = self._path(prefix + "/x")
        shutil.rmtree(probe.parent.parent, ignore_errors=True)

    def __len__(self) -> int:
        if not self.root.exists():
            return 0
        return sum(1 for _ in self.root.rglob("*.bin"))
