"""Cache storage tiers: in-process LRU with a byte budget + on-disk store.

The memory tier holds live objects behind an LRU with a byte budget, so a
long sweep can keep its hot artifacts (receptor grids, spectra, dock
results) resident without growing unboundedly.  The disk tier persists
encoded payloads with atomic writes (``os.replace`` of a unique temp
file, safe under concurrent forked writers), versioned codecs and an
integrity checksum; *any* defect on read — truncation, bit corruption, a
stale format or codec version — degrades to a miss (and removes the bad
entry) instead of raising, so a damaged cache can only cost recompute
time, never correctness.

The disk tier is also the *fleet* coordination point: many processes —
stage workers, gateway replicas, whole services on one host — may share
one cache directory.  Per-key lockfiles (:meth:`DiskStore.try_lock`,
``O_CREAT | O_EXCL`` with stale-steal) give cross-process single-flight
to :meth:`CacheManager.get_or_compute`, and :meth:`DiskStore.sweep`
bounds the directory by age (TTL) and total bytes — concurrent sweeps
and writers are safe against each other because every removal tolerates
losing the race (``FileNotFoundError`` is a no-op) and every write is an
atomic replace.
"""

from __future__ import annotations

import io
import json
import os
import pickle
import shutil
import tempfile
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass
from pathlib import Path
from typing import List, Optional, Tuple

import numpy as np

from repro.cache.keys import CACHE_FORMAT_VERSION, hash_parts

__all__ = [
    "MISS",
    "PickleCodec",
    "NpzCodec",
    "CODECS",
    "estimate_nbytes",
    "MemoryStore",
    "DiskStore",
    "SweepStats",
]

#: Sentinel distinguishing "no entry" from a stored falsy value.
MISS = object()

#: Magic tag opening every disk entry's header line.
_MAGIC = "repro-cache"


# -- codecs -------------------------------------------------------------------------


class PickleCodec:
    """General object payloads (pose lists, EnergyGrids, dataclasses)."""

    name = "pickle"
    version = 1

    @staticmethod
    def encode(value) -> bytes:
        return pickle.dumps(value, protocol=4)

    @staticmethod
    def decode(payload: bytes):
        return pickle.loads(payload)


class NpzCodec:
    """Pure-array payloads: one ndarray or a flat dict of ndarrays.

    Refuses object arrays on both ends (``allow_pickle=False``), so an
    npz entry can never smuggle arbitrary pickled state.
    """

    name = "npz"
    version = 1

    _SINGLE = "__array__"

    @classmethod
    def encode(cls, value) -> bytes:
        if isinstance(value, np.ndarray):
            arrays = {cls._SINGLE: value}
        elif isinstance(value, dict):
            arrays = value
        else:
            raise TypeError(f"npz codec stores arrays, got {type(value).__name__}")
        buf = io.BytesIO()
        np.savez(buf, **arrays)
        return buf.getvalue()

    @classmethod
    def decode(cls, payload: bytes):
        with np.load(io.BytesIO(payload), allow_pickle=False) as data:
            if set(data.files) == {cls._SINGLE}:
                return data[cls._SINGLE]
            return {k: data[k] for k in data.files}


CODECS = {PickleCodec.name: PickleCodec, NpzCodec.name: NpzCodec}


def estimate_nbytes(value) -> int:
    """Approximate in-memory footprint of a cached value.

    Arrays report exactly; array containers sum their parts; anything else
    falls back to its pickled length (close enough for budget accounting).
    """
    if isinstance(value, np.ndarray):
        return int(value.nbytes)
    if isinstance(value, dict):
        return sum(estimate_nbytes(v) for v in value.values()) + 64 * len(value)
    if isinstance(value, (list, tuple)):
        return sum(estimate_nbytes(v) for v in value) + 16 * len(value)
    channels = getattr(value, "channels", None)
    if isinstance(channels, np.ndarray):  # EnergyGrids-shaped
        weights = getattr(value, "weights", None)
        extra = int(weights.nbytes) if isinstance(weights, np.ndarray) else 0
        return int(channels.nbytes) + extra + 256
    try:
        return len(pickle.dumps(value, protocol=4))
    except Exception:
        return 1024


# -- memory tier --------------------------------------------------------------------


class MemoryStore:
    """LRU mapping of key -> live object under a byte budget.

    Thread-safe; eviction pops least-recently-used entries until the
    budget holds.  A value larger than the whole budget is simply not
    stored (storing it would evict everything for a single entry).
    """

    def __init__(self, budget_bytes: int) -> None:
        if budget_bytes < 1:
            raise ValueError("memory budget must be >= 1 byte")
        self.budget_bytes = int(budget_bytes)
        self.evictions = 0
        self.total_bytes = 0
        self._entries: "OrderedDict[str, Tuple[object, int]]" = OrderedDict()
        self._lock = threading.RLock()

    def get(self, key: str):
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                return MISS
            self._entries.move_to_end(key)
            return entry[0]

    def put(self, key: str, value, nbytes: Optional[int] = None) -> None:
        size = int(nbytes) if nbytes is not None else estimate_nbytes(value)
        if size > self.budget_bytes:
            return
        with self._lock:
            old = self._entries.pop(key, None)
            if old is not None:
                self.total_bytes -= old[1]
            self._entries[key] = (value, size)
            self.total_bytes += size
            while self.total_bytes > self.budget_bytes:
                _, (_, dropped) = self._entries.popitem(last=False)
                self.total_bytes -= dropped
                self.evictions += 1

    def clear(self, prefix: Optional[str] = None) -> None:
        with self._lock:
            if prefix is None:
                self._entries.clear()
                self.total_bytes = 0
                return
            for key in [k for k in self._entries if k.startswith(prefix)]:
                _, size = self._entries.pop(key)
                self.total_bytes -= size

    def keys(self):
        with self._lock:
            return list(self._entries)

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)


# -- disk tier ----------------------------------------------------------------------


@dataclass
class SweepStats:
    """Outcome of one :meth:`DiskStore.sweep` pass."""

    scanned: int = 0
    removed: int = 0
    freed_bytes: int = 0
    remaining: int = 0
    remaining_bytes: int = 0
    removed_tmp: int = 0
    removed_locks: int = 0

    def to_dict(self) -> dict:
        return {
            "scanned": self.scanned,
            "removed": self.removed,
            "freed_bytes": self.freed_bytes,
            "remaining": self.remaining,
            "remaining_bytes": self.remaining_bytes,
            "removed_tmp": self.removed_tmp,
            "removed_locks": self.removed_locks,
        }


class DiskStore:
    """One file per entry under ``root``, written atomically.

    Entry layout: one JSON header line (magic, format + codec versions,
    payload SHA-256 and length) followed by the raw codec payload.  Reads
    re-verify length and checksum; any mismatch or decode failure counts
    as corruption, unlinks the entry and reads as a miss.  Writers encode
    to a unique temp file in the destination directory and ``os.replace``
    it into place, so two forked workers racing on the same key leave one
    complete entry, never an interleaved one.
    """

    def __init__(self, root) -> None:
        self.root = Path(root)
        self.corrupt_entries = 0

    def _path(self, key: str) -> Path:
        namespace, _, digest = key.rpartition("/")
        safe_ns = "".join(
            c if (c.isalnum() or c in "-_/.") else "_" for c in namespace
        ) or "default"
        return self.root / safe_ns / digest[:2] / f"{digest}.bin"

    def put(
        self, key: str, value, codec: str = "pickle",
        payload: Optional[bytes] = None,
    ) -> None:
        """Write one entry; ``payload`` skips re-encoding when the caller
        already serialized ``value`` (the manager encodes once and reuses
        the byte length for memory-tier accounting)."""
        enc = CODECS[codec]
        if payload is None:
            payload = enc.encode(value)
        header = json.dumps(
            {
                "magic": _MAGIC,
                "format": CACHE_FORMAT_VERSION,
                "codec": enc.name,
                "codec_version": enc.version,
                "sha256": hash_parts(payload),
                "nbytes": len(payload),
            }
        ).encode("ascii")
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as fh:
                fh.write(header + b"\n" + payload)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def get(self, key: str):
        path = self._path(key)
        try:
            with open(path, "rb") as fh:
                header_line = fh.readline()
                payload = fh.read()
        except OSError:
            return MISS
        try:
            header = json.loads(header_line)
            if header.get("magic") != _MAGIC:
                raise ValueError("bad magic")
            if header.get("format") != CACHE_FORMAT_VERSION:
                raise ValueError("stale format version")
            codec = CODECS[header["codec"]]
            if header.get("codec_version") != codec.version:
                raise ValueError("stale codec version")
            if header.get("nbytes") != len(payload):
                raise ValueError("truncated payload")
            if header.get("sha256") != hash_parts(payload):
                raise ValueError("checksum mismatch")
            return codec.decode(payload)
        except Exception:
            # Corrupt, truncated or outdated: drop the entry and recompute.
            self.corrupt_entries += 1
            try:
                os.unlink(path)
            except OSError:
                pass
            return MISS

    def clear(self, prefix: Optional[str] = None) -> None:
        if prefix is None:
            shutil.rmtree(self.root, ignore_errors=True)
            return
        # Prefixes are namespaces; their sanitized directory holds all keys.
        probe = self._path(prefix + "/x")
        shutil.rmtree(probe.parent.parent, ignore_errors=True)

    def __len__(self) -> int:
        if not self.root.exists():
            return 0
        return sum(1 for _ in self.root.rglob("*.bin"))

    # -- shared-directory coordination -------------------------------------------

    #: A lockfile older than this is presumed orphaned (its holder died)
    #: and may be stolen.  Generously above any real compute-and-put of
    #: the artifacts cached here; a stolen lock can only cost a duplicate
    #: computation, never correctness (writes stay atomic).
    LOCK_STALE_S = 300.0

    #: A ``*.tmp`` file older than this is an orphan of a crashed writer
    #: (live ones exist only for the duration of one encode + replace).
    TMP_STALE_S = 3600.0

    def _lock_path(self, key: str) -> Path:
        return self._path(key).with_suffix(".lock")

    def try_lock(self, key: str, stale_s: Optional[float] = None) -> bool:
        """Try to take the cross-process compute lock for ``key``.

        Non-blocking: ``O_CREAT | O_EXCL`` either creates the lockfile
        (lock acquired — caller must :meth:`unlock`) or fails because
        another process holds it.  A lockfile older than ``stale_s``
        (default :data:`LOCK_STALE_S`) is treated as orphaned by a dead
        holder and stolen.  This is advisory serialization for
        single-flight *efficiency*; correctness never depends on it —
        two computing processes still converge through atomic writes.
        """
        stale = self.LOCK_STALE_S if stale_s is None else float(stale_s)
        path = self._lock_path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        for attempt in range(2):
            try:
                fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
            except FileExistsError:
                try:
                    age = time.time() - path.stat().st_mtime
                except OSError:
                    continue  # holder just released: retry the create
                if attempt == 0 and age > stale:
                    try:  # steal the orphan, then retry the create
                        os.unlink(path)
                    except OSError:
                        pass
                    continue
                return False
            with os.fdopen(fd, "w") as fh:
                fh.write(str(os.getpid()))
            return True
        return False

    def unlock(self, key: str) -> None:
        """Release ``key``'s compute lock (idempotent, missing-file safe)."""
        try:
            os.unlink(self._lock_path(key))
        except OSError:
            pass

    # -- maintenance --------------------------------------------------------------

    def total_bytes(self) -> int:
        """Total payload bytes currently stored (entries only)."""
        total = 0
        for path in self._entries():
            try:
                total += path.stat().st_size
            except OSError:
                pass
        return total

    def _entries(self) -> List[Path]:
        if not self.root.exists():
            return []
        return list(self.root.rglob("*.bin"))

    def sweep(
        self,
        ttl_s: Optional[float] = None,
        max_bytes: Optional[int] = None,
        now: Optional[float] = None,
    ) -> SweepStats:
        """Evict by age and/or total size; returns what happened.

        Entries whose mtime is older than ``ttl_s`` are removed; if the
        survivors still exceed ``max_bytes``, the oldest are removed
        (LRU by mtime — reads do not touch mtime, so this is strictly
        write-age eviction) until the budget holds.  Orphaned writer
        temp files and stale lockfiles are cleaned up along the way.
        Safe under concurrent readers, writers and *other sweeps*: every
        stat/unlink tolerates the file vanishing first, and a concurrent
        put lands atomically either before or after the pass.
        """
        t_now = time.time() if now is None else float(now)
        stats = SweepStats()
        entries: List[Tuple[float, int, Path]] = []
        for path in self._entries():
            try:
                st = path.stat()
            except OSError:
                continue  # lost a race with a concurrent sweep/clear
            stats.scanned += 1
            entries.append((st.st_mtime, st.st_size, path))

        def remove(mtime: float, size: int, path: Path) -> None:
            try:
                os.unlink(path)
            except OSError:
                return  # another sweep got it first: not freed by us
            stats.removed += 1
            stats.freed_bytes += size

        survivors: List[Tuple[float, int, Path]] = []
        for mtime, size, path in entries:
            if ttl_s is not None and t_now - mtime > float(ttl_s):
                remove(mtime, size, path)
            else:
                survivors.append((mtime, size, path))
        if max_bytes is not None:
            survivors.sort()  # oldest first
            excess = sum(size for _, size, _ in survivors) - int(max_bytes)
            while excess > 0 and survivors:
                mtime, size, path = survivors.pop(0)
                remove(mtime, size, path)
                excess -= size
        stats.remaining = len(survivors)
        stats.remaining_bytes = sum(size for _, size, _ in survivors)
        if self.root.exists():
            for pattern, attr, horizon in (
                ("*.tmp", "removed_tmp", self.TMP_STALE_S),
                ("*.lock", "removed_locks", self.LOCK_STALE_S),
            ):
                for path in self.root.rglob(pattern):
                    try:
                        if t_now - path.stat().st_mtime <= horizon:
                            continue
                        os.unlink(path)
                    except OSError:
                        continue
                    setattr(stats, attr, getattr(stats, attr) + 1)
        return stats
