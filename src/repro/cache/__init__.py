"""Content-addressed artifact cache.

The FTMap pipeline rebuilds the same expensive artifacts on every run —
receptor energy grids, receptor FFT spectra, whole per-probe dock results
— even when the receptor and workload are identical.  This subsystem
makes repeat mappings and parameter sweeps near-free:

* :mod:`repro.cache.keys` — stable structural hashing of molecules, grid
  specs, energy grids, rotation sets and workload configs,
* :mod:`repro.cache.store` — the storage tiers: in-process LRU with a
  byte budget, and an on-disk store with atomic writes, versioned
  npz/pickle codecs, integrity checksums and corruption-tolerant reads,
* :mod:`repro.cache.manager` — the :class:`CacheManager` facade
  (policy ``off`` | ``memory`` | ``disk``) with hit/miss/eviction stats
  and per-key single-flight ``get_or_compute`` (threads coalesce on an
  in-process flight table, processes sharing a cache directory through
  the disk tier's lockfiles), resolved per process from the environment
  or from :class:`~repro.mapping.ftmap.FTMapConfig` cache fields,
* :mod:`repro.cache.cli` — ``python -m repro.cache prune`` maintenance
  for shared cache directories (TTL + byte-budget sweeps).

Integration seams: receptor grid builds
(:func:`repro.grids.energyfunctions.protein_grids_cached`), the FFT
engines' receptor-spectra path
(:class:`repro.docking.correlation.SpectraCache`) and per-probe dock
results (:func:`repro.mapping.ftmap.dock_probe`).  The repeat-mapping
workload lives in :mod:`repro.mapping.sweep`.
"""

from repro.cache.keys import (
    CACHE_FORMAT_VERSION,
    array_token,
    compose_key,
    grid_spec_token,
    grids_token,
    hash_parts,
    mapping_token,
    molecule_token,
    rotation_set_token,
)
from repro.cache.manager import (
    CACHE_POLICIES,
    DEFAULT_MEMORY_BUDGET,
    CacheManager,
    CacheStats,
    default_manager,
    reset_cache_registry,
    resolve_manager,
    spectra_cache,
)
from repro.cache.store import (
    CODECS,
    DiskStore,
    MemoryStore,
    NpzCodec,
    PickleCodec,
    SweepStats,
    estimate_nbytes,
)

__all__ = [
    "CACHE_FORMAT_VERSION",
    "CACHE_POLICIES",
    "DEFAULT_MEMORY_BUDGET",
    "CacheManager",
    "CacheStats",
    "MemoryStore",
    "DiskStore",
    "SweepStats",
    "PickleCodec",
    "NpzCodec",
    "CODECS",
    "estimate_nbytes",
    "hash_parts",
    "array_token",
    "molecule_token",
    "grid_spec_token",
    "grids_token",
    "rotation_set_token",
    "mapping_token",
    "compose_key",
    "resolve_manager",
    "default_manager",
    "spectra_cache",
    "reset_cache_registry",
]
