"""Stable content keys for cached artifacts.

A cache entry must never outlive the meaning of its key, so keys derive
from the *content* of the inputs — coordinates, per-atom parameters, grid
geometry, workload fields — never from object identity.  Structurally
equal receptors therefore hit across object lifetimes, engine instances
and (with the disk tier) across processes, and a recycled ``id()`` can
never alias another object's artifacts, which the old weakref spectra
cache had to defend against explicitly.

Every key embeds :data:`CACHE_FORMAT_VERSION`; bumping it invalidates all
previously stored artifacts at once — the escape hatch when a builder's
semantics change (new channel definitions, different eigenterm
construction, ...).

The helpers here are duck-typed on purpose: they read ``coords`` /
``channels`` / ``origin`` attributes instead of importing the structure
and grid modules, so :mod:`repro.cache` sits below every other package and
can be imported from anywhere without cycles.
"""

from __future__ import annotations

import hashlib
from typing import Iterable

import numpy as np

__all__ = [
    "CACHE_FORMAT_VERSION",
    "hash_parts",
    "array_token",
    "float_token",
    "molecule_token",
    "grid_spec_token",
    "grids_token",
    "rotation_set_token",
    "mapping_token",
    "compose_key",
]

#: Global artifact-format version.  Part of every key: bump to invalidate
#: every previously cached artifact after a semantic change.
CACHE_FORMAT_VERSION = 1

#: Attribute used to memoize a token on hashed objects, so hot paths (the
#: per-rotation spectra lookup) hash each grid object's bytes only once.
_MEMO_ATTR = "_repro_cache_token"


def _as_bytes(part) -> bytes:
    if isinstance(part, bytes):
        return part
    if isinstance(part, str):
        return part.encode("utf-8")
    if isinstance(part, float):
        return float(part).hex().encode("ascii")
    if part is None or isinstance(part, (bool, int)):
        return str(part).encode("ascii")
    # Arbitrary objects stringify with id()-dependent reprs — silently
    # accepting them would make keys unstable across processes.
    raise TypeError(f"cannot derive a stable key from {type(part).__name__}")


def hash_parts(*parts) -> str:
    """SHA-256 hex digest over length-delimited parts.

    Length delimiting keeps the digest injective over the part sequence
    (``("ab", "c")`` never collides with ``("a", "bc")``).
    """
    h = hashlib.sha256()
    for part in parts:
        b = _as_bytes(part)
        h.update(str(len(b)).encode("ascii"))
        h.update(b":")
        h.update(b)
    return h.hexdigest()


def array_token(arr: np.ndarray) -> bytes:
    """Canonical bytes of an array: dtype tag + shape + C-order payload."""
    a = np.ascontiguousarray(arr)
    head = f"{a.dtype.str}|{a.shape}|".encode("ascii")
    return head + a.tobytes()


def float_token(value: float) -> str:
    """Exact, platform-stable text form of a float (hex, no rounding)."""
    return float(value).hex()


def molecule_token(molecule) -> str:
    """Content token of a :class:`~repro.structure.molecule.Molecule`.

    Hashes everything the gridding and docking code reads off a molecule:
    coordinates, the resolved per-atom parameters (which fold in the force
    field), atom-type names (the desolvation eigenterms key off them) and
    the bonded topology.  The human-readable ``name`` and free-form
    ``meta`` are deliberately excluded — they never influence artifacts.

    Memoized on the instance like :func:`grids_token` (molecules flow
    through the pipeline as immutable value objects — mutation goes via
    ``with_coords`` copies, which start unmemoized), so sweeps re-keying
    the same receptor per variant hash its arrays only once.
    """
    memo = getattr(molecule, _MEMO_ATTR, None)
    if memo is not None:
        return memo
    topo = molecule.topology
    token = hash_parts(
        "molecule",
        array_token(molecule.coords),
        ";".join(molecule.type_names),
        array_token(molecule.charges),
        array_token(molecule.eps),
        array_token(molecule.rm),
        array_token(molecule.born_radii),
        array_token(molecule.volumes),
        array_token(molecule.masses),
        array_token(topo.bonds),
        array_token(topo.angles),
        array_token(topo.dihedrals),
        array_token(topo.impropers),
    )
    try:
        setattr(molecule, _MEMO_ATTR, token)
    except AttributeError:
        pass
    return token


def grid_spec_token(spec) -> str:
    """Token of a :class:`~repro.grids.gridding.GridSpec` (exact floats)."""
    origin = ",".join(float_token(v) for v in spec.origin)
    return f"gridspec:n={spec.n};h={float_token(spec.spacing)};o={origin}"


def grids_token(grids) -> str:
    """Content token of an :class:`~repro.grids.energyfunctions.EnergyGrids`.

    Memoized on the instance (grids are built once and treated as
    immutable), so the per-rotation spectra path pays the channel-array
    hash exactly once per object while staying content-addressed across
    distinct-but-equal objects.
    """
    memo = getattr(grids, _MEMO_ATTR, None)
    if memo is not None:
        return memo
    token = hash_parts(
        "energy-grids",
        grid_spec_token(grids.spec),
        array_token(grids.channels),
        array_token(grids.weights),
        ";".join(grids.labels),
    )
    try:
        setattr(grids, _MEMO_ATTR, token)
    except AttributeError:  # slotted/frozen lookalikes: just recompute later
        pass
    return token


def rotation_set_token(num_rotations: int, scheme: str) -> str:
    """Token of a docking rotation set.

    :func:`repro.geometry.sampling.rotation_set` is deterministic in
    ``(n, scheme)``, so the parameters fully identify the matrices; a
    change to the sampling algorithm itself is a
    :data:`CACHE_FORMAT_VERSION` bump.
    """
    return f"rotations:n={int(num_rotations)};scheme={scheme}"


def mapping_token(**fields) -> str:
    """Canonical ``k=v`` token over keyword fields (sorted, exact floats)."""
    items = []
    for k in sorted(fields):
        v = fields[k]
        if isinstance(v, float):
            v = float_token(v)
        elif isinstance(v, (tuple, list)):
            v = ",".join(str(x) for x in v)
        items.append(f"{k}={v}")
    return ";".join(items)


def compose_key(namespace: str, parts: Iterable) -> str:
    """Final store key: ``namespace/<sha256 over version + parts>``.

    The namespace stays readable (it becomes the on-disk subdirectory and
    supports prefix-clearing); the digest carries all content.
    """
    digest = hash_parts(f"v{CACHE_FORMAT_VERSION}", *parts)
    return f"{namespace}/{digest}"
