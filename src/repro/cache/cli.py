"""``python -m repro.cache`` — operate on a shared cache directory.

Fleet deployments point many services at one disk-cache directory; this
is the maintenance entrypoint their cron jobs call::

    python -m repro.cache prune --ttl 168 /var/cache/repro
    python -m repro.cache prune --max-bytes 50000000000 /var/cache/repro
    python -m repro.cache prune --ttl 24 --max-bytes 10000000 DIR

``prune`` runs one :meth:`~repro.cache.store.DiskStore.sweep` pass —
TTL eviction, then oldest-first eviction down to the byte budget, plus
orphaned temp-file/lockfile cleanup — and prints the sweep statistics
as JSON.  Concurrent prunes (and concurrent readers/writers) are safe:
every removal tolerates losing the race, and entry writes are atomic.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.cache.store import DiskStore

__all__ = ["main"]


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.cache",
        description="Maintenance commands for a repro disk-cache directory.",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    prune = sub.add_parser(
        "prune",
        help="evict entries by age and/or total size, clean orphaned "
        "temp files and stale lockfiles, print sweep stats as JSON",
    )
    prune.add_argument(
        "--ttl",
        type=float,
        metavar="HOURS",
        default=None,
        help="remove entries last written more than HOURS ago",
    )
    prune.add_argument(
        "--max-bytes",
        type=int,
        metavar="N",
        default=None,
        help="after TTL eviction, remove oldest entries until at most "
        "N payload bytes remain",
    )
    prune.add_argument("directory", help="cache directory to prune")
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = _build_parser()
    args = parser.parse_args(argv)
    if args.command == "prune":
        if args.ttl is None and args.max_bytes is None:
            parser.error("prune needs --ttl and/or --max-bytes")
        if args.ttl is not None and args.ttl < 0:
            parser.error("--ttl must be >= 0")
        if args.max_bytes is not None and args.max_bytes < 0:
            parser.error("--max-bytes must be >= 0")
        store = DiskStore(args.directory)
        stats = store.sweep(
            ttl_s=args.ttl * 3600.0 if args.ttl is not None else None,
            max_bytes=args.max_bytes,
        )
        print(json.dumps(stats.to_dict(), indent=2, sort_keys=True))
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
