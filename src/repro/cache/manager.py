"""The cache facade: policy, two-tier lookup, statistics.

One :class:`CacheManager` fronts both storage tiers behind a policy:

* ``"off"`` — every lookup bypasses storage entirely; callers compute as
  if the subsystem did not exist (bitwise-identical outputs, zero hashing
  overhead on the hot paths),
* ``"memory"`` — in-process LRU under a byte budget,
* ``"disk"`` — memory front + persistent on-disk store; disk hits are
  promoted into memory, and forked workers / separate processes share
  artifacts through the filesystem.

:meth:`CacheManager.get_or_compute` is *single-flight*: concurrent
misses on one key compute the value exactly once.  Threads coalesce on
an in-process flight table; with a disk tier, separate processes sharing
the directory coalesce through per-key lockfiles
(:meth:`~repro.cache.store.DiskStore.try_lock`) — the follower waits for
the leader's entry to land instead of duplicating the computation.
Waits surface as :attr:`CacheManager.singleflight_waits` and the
``repro_cache_singleflight_waits_total`` counter.

Managers are resolved through a small per-process registry
(:func:`resolve_manager`), so every caller that asks for the same
``(policy, directory, budget)`` gets the *same* instance — that is what
lets repeated :func:`~repro.mapping.ftmap.run_ftmap` calls and sweep runs
hit each other's artifacts without any explicit plumbing.  The
environment configures the default: ``REPRO_CACHE_POLICY`` (off | memory
| disk), ``REPRO_CACHE_DIR`` and ``REPRO_CACHE_MEMORY_BYTES``.

The receptor-spectra path of the FFT engines uses a dedicated always-on
memory manager (:func:`spectra_cache`): spectra reuse across rotations is
a core algorithmic property of PIPER, not an optional artifact cache, so
it stays active even when the artifact cache policy is ``off``.
"""

from __future__ import annotations

import os
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, replace
from typing import Callable, Dict, Iterator, Optional, Tuple

from repro.cache.store import CODECS, MISS, DiskStore, MemoryStore, estimate_nbytes
from repro.obs.metrics import registry

__all__ = [
    "CACHE_POLICIES",
    "DEFAULT_MEMORY_BUDGET",
    "DEFAULT_SPECTRA_BUDGET",
    "CacheStats",
    "CacheManager",
    "resolve_manager",
    "default_manager",
    "spectra_cache",
    "reset_cache_registry",
]

#: Policies a manager can run under.
CACHE_POLICIES = ("off", "memory", "disk")

#: Memory-tier byte budget when none is configured.  Sized like the
#: batched engine's working-set budget (1 GiB): a paper-scale receptor's
#: energy grids (~185 MB at 128^3 x 22 channels fp32) plus its spectra
#: (~190-375 MB) must fit together, or warm repeats would LRU-thrash at
#: exactly the scale the cache targets.
DEFAULT_MEMORY_BUDGET = 1024 * 1024 * 1024

#: Spectra-cache budget: one paper-scale receptor's fp64 spectra set is
#: ~375 MB (22 channels x 128^3 half-spectrum complex128), and the old
#: per-instance cache held up to 4 receptors — so the shared replacement
#: must comfortably hold a few or it would silently recompute spectra per
#: rotation at exactly the scale that matters.
DEFAULT_SPECTRA_BUDGET = 2 * 1024 * 1024 * 1024

_ENV_POLICY = "REPRO_CACHE_POLICY"
_ENV_DIR = "REPRO_CACHE_DIR"
_ENV_BUDGET = "REPRO_CACHE_MEMORY_BYTES"
_ENV_SPECTRA_BUDGET = "REPRO_SPECTRA_CACHE_BYTES"


@dataclass
class CacheStats:
    """Counters of one manager (or a delta between two snapshots)."""

    hits: int = 0
    misses: int = 0
    puts: int = 0
    evictions: int = 0
    memory_hits: int = 0
    disk_hits: int = 0
    corrupt_entries: int = 0
    disk_write_failures: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from cache (0.0 when idle)."""
        n = self.lookups
        return self.hits / n if n else 0.0

    def to_dict(self) -> dict:
        """JSON-ready counters (plus the derived lookups / hit rate)."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "puts": self.puts,
            "evictions": self.evictions,
            "memory_hits": self.memory_hits,
            "disk_hits": self.disk_hits,
            "corrupt_entries": self.corrupt_entries,
            "disk_write_failures": self.disk_write_failures,
            "lookups": self.lookups,
            "hit_rate": self.hit_rate,
        }

    def __sub__(self, other: "CacheStats") -> "CacheStats":
        return CacheStats(
            hits=self.hits - other.hits,
            misses=self.misses - other.misses,
            puts=self.puts - other.puts,
            evictions=self.evictions - other.evictions,
            memory_hits=self.memory_hits - other.memory_hits,
            disk_hits=self.disk_hits - other.disk_hits,
            corrupt_entries=self.corrupt_entries - other.corrupt_entries,
            disk_write_failures=self.disk_write_failures - other.disk_write_failures,
        )


class CacheManager:
    """Two-tier content-addressed artifact cache with hit/miss statistics.

    Values are cached as live objects in the memory tier and treated as
    immutable by convention; callers that hand a cached container to
    mutating code must copy it first (see
    :func:`repro.mapping.ftmap.dock_probe`).
    """

    def __init__(
        self,
        policy: str = "memory",
        memory_bytes: int = DEFAULT_MEMORY_BUDGET,
        directory: Optional[str] = None,
    ) -> None:
        if policy not in CACHE_POLICIES:
            raise ValueError(
                f"unknown cache policy {policy!r}; expected one of {CACHE_POLICIES}"
            )
        if policy == "disk" and not directory:
            raise ValueError("cache policy 'disk' requires a directory")
        self.policy = policy
        self.memory_bytes = int(memory_bytes)
        self.directory = str(directory) if directory else None
        self.stats = CacheStats()
        self.memory = MemoryStore(self.memory_bytes) if policy != "off" else None
        self.disk = DiskStore(self.directory) if policy == "disk" else None
        # Counter updates are atomic under one lock so concurrent requests
        # (service jobs, pipelined stages) never tear the statistics; the
        # thread-local scope stacks route per-request deltas (stats_scope).
        self._lock = threading.RLock()
        self._tlocal = threading.local()
        # Single-flight state: key -> Event of the in-process flight
        # currently computing it.  Followers (here and, via the disk
        # tier's lockfiles, in other processes) wait instead of
        # duplicating the computation.
        self.singleflight_waits = 0
        self._sf_mutex = threading.Lock()
        self._sf_inflight: Dict[str, threading.Event] = {}
        # Registered eagerly so the series is exported (at zero) before
        # the first contended miss ever happens.
        registry().counter(
            "repro_cache_singleflight_waits_total",
            help="get_or_compute calls that waited on another key flight "
            "(same-process thread or lockfile-coordinated process).",
        )

    # -- core operations ---------------------------------------------------------

    @property
    def enabled(self) -> bool:
        return self.policy != "off"

    def _record(self, **deltas: int) -> None:
        """Apply counter deltas to the global stats and every scope the
        current thread has attached (both under the manager lock)."""
        with self._lock:
            targets = [self.stats] + getattr(self._tlocal, "scopes", [])
            for stats in targets:
                for field, delta in deltas.items():
                    if delta:
                        setattr(stats, field, getattr(stats, field) + delta)
        if deltas.get("evictions"):
            registry().counter(
                "repro_cache_evictions_total",
                help="Memory-tier cache evictions.",
            ).inc(deltas["evictions"])

    def _store_counter_deltas(self) -> Dict[str, int]:
        """Eviction/corruption deltas since the counters were last synced.

        The stores keep running totals; attribution to the operation that
        triggered them happens here, under the lock, as increments — which
        is what lets request scopes see *their* evictions instead of a
        snapshot of someone else's.
        """
        deltas = {}
        if self.memory is not None:
            deltas["evictions"] = self.memory.evictions - self.stats.evictions
        if self.disk is not None:
            deltas["corrupt_entries"] = (
                self.disk.corrupt_entries - self.stats.corrupt_entries
            )
        return deltas

    def get(self, key: str):
        """Cached value for ``key`` or ``None`` (values must not be None)."""
        if not self.enabled:
            return None
        kind = key.split("/", 1)[0]
        value = self.memory.get(key)
        if value is not MISS:
            self._record(hits=1, memory_hits=1)
            self._count_lookup(kind, "hit")
            return value
        if self.disk is not None:
            value = self.disk.get(key)
            if value is not MISS:
                # Promote, so repeat lookups skip decode + checksum.
                self.memory.put(key, value, nbytes=estimate_nbytes(value))
                with self._lock:
                    self._record(
                        hits=1, disk_hits=1, **self._store_counter_deltas()
                    )
                self._count_lookup(kind, "hit")
                return value
            with self._lock:
                self._record(misses=1, **self._store_counter_deltas())
            self._count_lookup(kind, "miss")
            return None
        self._record(misses=1)
        self._count_lookup(kind, "miss")
        return None

    @staticmethod
    def _count_lookup(kind: str, outcome: str) -> None:
        registry().counter(
            "repro_cache_lookups_total", ("kind", "outcome"),
            help="Cache lookups by artifact kind (key namespace) and outcome.",
        ).inc(kind=kind, outcome=outcome)

    def put(
        self,
        key: str,
        value,
        codec: str = "pickle",
        nbytes: Optional[int] = None,
    ) -> None:
        if not self.enabled:
            return
        payload = None
        if self.disk is not None and nbytes is None:
            # Encode once: the disk payload doubles as the byte-budget
            # measurement, instead of pickling for estimate_nbytes and
            # again for the disk entry.
            payload = CODECS[codec].encode(value)
            nbytes = len(payload)
        self.memory.put(key, value, nbytes=nbytes)
        write_failures = 0
        if self.disk is not None:
            try:
                self.disk.put(key, value, codec=codec, payload=payload)
            except OSError:
                # A full or unwritable cache directory must never abort the
                # pipeline that just computed the value — the store degrades
                # to recompute on the next process, same as a corrupt read.
                write_failures = 1
        with self._lock:
            self._record(
                puts=1,
                disk_write_failures=write_failures,
                **self._store_counter_deltas(),
            )
        reg = registry()
        kind = key.split("/", 1)[0]
        reg.counter(
            "repro_cache_puts_total", ("kind",),
            help="Cache stores by artifact kind (key namespace).",
        ).inc(kind=kind)
        if nbytes:
            reg.counter(
                "repro_cache_stored_bytes_total", ("kind",),
                help="Bytes admitted to the cache by artifact kind.",
            ).inc(int(nbytes), kind=kind)

    def get_or_compute(
        self, key: str, compute: Callable[[], object], codec: str = "pickle"
    ):
        """Lookup, else compute and store — *single-flight* per key.

        With policy off: just compute.  Otherwise concurrent misses on
        one key run ``compute`` exactly once: the first caller (the
        flight leader) computes and stores, every other thread blocks on
        the flight and re-reads the landed entry.  A leader whose
        compute raises releases the flight — one waiter takes over the
        lead, so a failure never strands the key.  With a disk tier the
        leadership extends across processes through per-key lockfiles
        (see :meth:`_compute_flight`).
        """
        if not self.enabled:
            return compute()
        while True:
            value = self.get(key)
            if value is not None:
                return value
            with self._sf_mutex:
                gate = self._sf_inflight.get(key)
                leader = gate is None
                if leader:
                    gate = self._sf_inflight[key] = threading.Event()
            if not leader:
                self._note_singleflight_wait()
                gate.wait()
                continue  # flight landed (or failed): re-read, maybe lead
            try:
                return self._compute_flight(key, compute, codec)
            finally:
                with self._sf_mutex:
                    self._sf_inflight.pop(key, None)
                gate.set()

    def _compute_flight(
        self, key: str, compute: Callable[[], object], codec: str
    ):
        """Run one flight as this process's leader.

        Without a disk tier, that just means compute + put.  With one,
        the directory may be shared between processes (stage workers,
        gateway replicas, a second service on the host), so the leader
        first takes the key's lockfile; losing it means some other
        process is already computing — poll for its entry to land (or
        its lock to die) instead of duplicating the work.  The lock is
        advisory: any failure mode degrades to a duplicate computation
        converging through atomic writes, never to a wrong value.
        """
        disk = self.disk
        if disk is None:
            value = compute()
            self.put(key, value, codec=codec)
            return value
        while True:
            if disk.try_lock(key):
                try:
                    # Recheck under the lock: the previous holder may
                    # have landed the entry after our miss.
                    value = self.get(key)
                    if value is not None:
                        return value
                    value = compute()
                    self.put(key, value, codec=codec)
                    return value
                finally:
                    disk.unlock(key)
            self._note_singleflight_wait()
            lock_path = disk._lock_path(key)
            entry_path = disk._path(key)
            while True:
                time.sleep(0.005)
                if entry_path.exists():
                    value = self.get(key)
                    if value is not None:
                        return value
                    # Landed but unreadable (corrupt): take the lead.
                    break
                try:
                    age = time.time() - lock_path.stat().st_mtime
                except OSError:
                    break  # lock released without an entry: take the lead
                if age > disk.LOCK_STALE_S:
                    break  # orphaned lock: try_lock will steal it

    def _note_singleflight_wait(self) -> None:
        with self._lock:
            self.singleflight_waits += 1
        registry().counter(
            "repro_cache_singleflight_waits_total",
            help="get_or_compute calls that waited on another key flight "
            "(same-process thread or lockfile-coordinated process).",
        ).inc()

    # -- introspection -----------------------------------------------------------

    @contextmanager
    def stats_scope(
        self, scope: Optional[CacheStats] = None
    ) -> Iterator[CacheStats]:
        """Request-scoped statistics: a delta of *this* activity only.

        Yields a :class:`CacheStats` that accumulates every cache
        operation the current thread performs inside the ``with`` block.
        Global-snapshot subtraction breaks as soon as two requests overlap
        on one manager — each delta would include the other request's hits
        and misses — so per-request accounting attaches a scope instead,
        and operations increment the global counters *and* every scope
        attached to the executing thread.

        Work that fans out to helper threads (e.g. the stage-pipelined
        probe streams of :class:`repro.api.FTMapService`) passes the scope
        object explicitly: ``stats_scope(scope)`` attaches an existing
        scope to the current thread, so one request's scope can follow its
        work across its pipeline workers.  Scopes never cross process
        boundaries — forked probe workers keep their own managers.
        """
        s = scope if scope is not None else CacheStats()
        with self._lock:
            stack = getattr(self._tlocal, "scopes", None)
            if stack is None:
                stack = self._tlocal.scopes = []
            stack.append(s)
        try:
            yield s
        finally:
            with self._lock:
                # Detach by identity: list.remove compares by value, and
                # two idle scopes are equal dataclasses — removing the
                # wrong one would cross-attribute and then crash the
                # outer scope's own exit.
                for i in range(len(stack) - 1, -1, -1):
                    if stack[i] is s:
                        del stack[i]
                        break

    def snapshot(self) -> CacheStats:
        """Copy of the current counters (subtract two to get a delta)."""
        with self._lock:
            return replace(self.stats)

    def clear(self, namespace: Optional[str] = None) -> None:
        """Drop all entries, or only those under ``namespace``."""
        if self.memory is not None:
            self.memory.clear(None if namespace is None else namespace + "/")
        if self.disk is not None:
            self.disk.clear(namespace)

    def __len__(self) -> int:
        return len(self.memory) if self.memory is not None else 0

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"CacheManager(policy={self.policy!r}, entries={len(self)}, "
            f"hits={self.stats.hits}, misses={self.stats.misses})"
        )

    # Managers ride along when configs/engines cross process boundaries
    # (probe streaming forks, sweep workers).  Only the configuration
    # travels: workers rebuild empty tiers (and re-share through the disk
    # tier's directory when one is configured).
    def __getstate__(self):
        return {
            "policy": self.policy,
            "memory_bytes": self.memory_bytes,
            "directory": self.directory,
        }

    def __setstate__(self, state) -> None:
        self.__init__(
            policy=state["policy"],
            memory_bytes=state["memory_bytes"],
            directory=state["directory"],
        )


# -- resolution ---------------------------------------------------------------------

_REGISTRY: Dict[Tuple[str, Optional[str], int], CacheManager] = {}
_SPECTRA_MANAGER: Optional[CacheManager] = None


def resolve_manager(
    policy: str = "inherit",
    directory: Optional[str] = None,
    memory_bytes: Optional[int] = None,
) -> CacheManager:
    """Per-process memoized manager for a cache configuration.

    ``policy="inherit"`` reads the environment (default ``off``); explicit
    policies override it.  Equal configurations resolve to the same
    instance, so independent callers share tiers and statistics.
    """
    if policy == "inherit":
        policy = os.environ.get(_ENV_POLICY, "off")
        if directory is None:
            directory = os.environ.get(_ENV_DIR) or None
        if memory_bytes is None:
            env_budget = os.environ.get(_ENV_BUDGET)
            memory_bytes = int(env_budget) if env_budget else None
    if policy not in CACHE_POLICIES:
        raise ValueError(
            f"unknown cache policy {policy!r}; expected one of "
            f"{CACHE_POLICIES + ('inherit',)}"
        )
    if policy == "disk" and not directory:
        directory = os.path.join(os.getcwd(), ".repro-cache")
    budget = int(memory_bytes) if memory_bytes else DEFAULT_MEMORY_BUDGET
    directory = os.path.abspath(directory) if directory else None
    key = (policy, directory if policy == "disk" else None, budget)
    manager = _REGISTRY.get(key)
    if manager is None:
        manager = CacheManager(
            policy=policy,
            memory_bytes=budget,
            directory=directory if policy == "disk" else None,
        )
        _REGISTRY[key] = manager
    return manager


def default_manager() -> CacheManager:
    """The environment-configured artifact cache (policy ``off`` unless set)."""
    return resolve_manager("inherit")


def spectra_cache() -> CacheManager:
    """Shared in-process receptor-spectra cache (always on, bounded)."""
    global _SPECTRA_MANAGER
    if _SPECTRA_MANAGER is None:
        env_budget = os.environ.get(_ENV_SPECTRA_BUDGET)
        _SPECTRA_MANAGER = CacheManager(
            policy="memory",
            memory_bytes=int(env_budget) if env_budget else DEFAULT_SPECTRA_BUDGET,
        )
    return _SPECTRA_MANAGER


def reset_cache_registry() -> None:
    """Forget all memoized managers (test isolation helper)."""
    global _SPECTRA_MANAGER
    _REGISTRY.clear()
    _SPECTRA_MANAGER = None
