"""Molecular structure substrate.

FTMap consumes protein and probe structures with CHARMM-style atom typing:
partial charges, Lennard-Jones parameters (eps, rm), ACE Born radii and
solute volumes, and bonded topology.  The paper uses real PDB structures and
the CHARMM parameter files; we substitute an embedded CHARMM-like parameter
table, a deterministic synthetic protein builder at the paper's scale
(~2000 protein atoms, ~2200-atom complexes), and the standard 16-probe FTMap
library built from idealized geometries.  A minimal PDB reader/writer is
provided for users with real structure files.
"""

from repro.structure.forcefield import AtomType, ForceField, default_forcefield
from repro.structure.molecule import Molecule, BondedTopology
from repro.structure.probes import FTMAP_PROBE_NAMES, build_probe, probe_library
from repro.structure.builder import synthetic_protein, synthetic_complex
from repro.structure.pdbio import read_pdb, write_pdb

__all__ = [
    "AtomType",
    "ForceField",
    "default_forcefield",
    "Molecule",
    "BondedTopology",
    "FTMAP_PROBE_NAMES",
    "build_probe",
    "probe_library",
    "synthetic_protein",
    "synthetic_complex",
    "read_pdb",
    "write_pdb",
]
