"""Molecule container: coordinates, per-atom parameters, bonded topology.

This is the common currency between the gridding code (which voxelizes
molecules for PIPER) and the minimization code (which evaluates the CHARMM
potential over the complex).  Arrays are structure-of-arrays NumPy buffers so
energy kernels can vectorize without per-atom Python objects.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence

import numpy as np

from repro.geometry.transforms import center_of_coordinates
from repro.structure.forcefield import ForceField, default_forcefield

__all__ = ["BondedTopology", "Molecule"]


@dataclass
class BondedTopology:
    """Bonded term index lists.

    ``bonds`` is (B, 2), ``angles`` (A, 3), ``dihedrals`` (D, 4) and
    ``impropers`` (I, 4) arrays of atom indices.  Empty lists are stored as
    (0, k) int arrays so downstream code can vectorize unconditionally.
    """

    bonds: np.ndarray = field(default_factory=lambda: np.empty((0, 2), dtype=np.intp))
    angles: np.ndarray = field(default_factory=lambda: np.empty((0, 3), dtype=np.intp))
    dihedrals: np.ndarray = field(default_factory=lambda: np.empty((0, 4), dtype=np.intp))
    impropers: np.ndarray = field(default_factory=lambda: np.empty((0, 4), dtype=np.intp))

    def __post_init__(self) -> None:
        self.bonds = _as_index_array(self.bonds, 2, "bonds")
        self.angles = _as_index_array(self.angles, 3, "angles")
        self.dihedrals = _as_index_array(self.dihedrals, 4, "dihedrals")
        self.impropers = _as_index_array(self.impropers, 4, "impropers")

    def validate(self, n_atoms: int) -> None:
        """Raise if any index is out of range or a term repeats an atom."""
        for name, arr in (
            ("bonds", self.bonds),
            ("angles", self.angles),
            ("dihedrals", self.dihedrals),
            ("impropers", self.impropers),
        ):
            if arr.size == 0:
                continue
            if arr.min() < 0 or arr.max() >= n_atoms:
                raise ValueError(f"{name} index out of range [0, {n_atoms})")
            # every term must reference distinct atoms
            sorted_rows = np.sort(arr, axis=1)
            if np.any(sorted_rows[:, :-1] == sorted_rows[:, 1:]):
                raise ValueError(f"{name} contains a term with repeated atoms")

    def shifted(self, offset: int) -> "BondedTopology":
        """Topology with every atom index shifted by ``offset`` (for merges)."""
        return BondedTopology(
            bonds=self.bonds + offset if self.bonds.size else self.bonds.copy(),
            angles=self.angles + offset if self.angles.size else self.angles.copy(),
            dihedrals=self.dihedrals + offset if self.dihedrals.size else self.dihedrals.copy(),
            impropers=self.impropers + offset if self.impropers.size else self.impropers.copy(),
        )

    @staticmethod
    def merge(a: "BondedTopology", b: "BondedTopology", offset: int) -> "BondedTopology":
        """Concatenate two topologies, shifting ``b``'s indices by ``offset``."""
        bs = b.shifted(offset)
        return BondedTopology(
            bonds=np.concatenate([a.bonds, bs.bonds]),
            angles=np.concatenate([a.angles, bs.angles]),
            dihedrals=np.concatenate([a.dihedrals, bs.dihedrals]),
            impropers=np.concatenate([a.impropers, bs.impropers]),
        )


def _as_index_array(arr, width: int, name: str) -> np.ndarray:
    out = np.asarray(arr, dtype=np.intp)
    if out.size == 0:
        return out.reshape(0, width)
    if out.ndim != 2 or out.shape[1] != width:
        raise ValueError(f"{name} must have shape (*, {width}), got {out.shape}")
    return out


class Molecule:
    """A molecule (or complex) in structure-of-arrays form.

    Parameters
    ----------
    coords:
        (N, 3) float array of positions in Angstrom.
    type_names:
        Sequence of N force-field atom-type names.
    forcefield:
        Parameter table used to resolve per-atom charges/LJ/ACE values;
        defaults to :func:`repro.structure.forcefield.default_forcefield`.
    charges:
        Optional per-atom charge override; defaults to the type charges.
    topology:
        Bonded topology; defaults to no bonded terms (rigid-docking use).
    name:
        Human-readable label.
    """

    def __init__(
        self,
        coords: np.ndarray,
        type_names: Sequence[str],
        forcefield: ForceField | None = None,
        charges: np.ndarray | None = None,
        topology: BondedTopology | None = None,
        name: str = "molecule",
    ) -> None:
        coords = np.ascontiguousarray(coords, dtype=float)
        if coords.ndim != 2 or coords.shape[1] != 3:
            raise ValueError(f"coords must be (N, 3), got {coords.shape}")
        n = coords.shape[0]
        if len(type_names) != n:
            raise ValueError(f"{len(type_names)} type names for {n} atoms")
        ff = forcefield or default_forcefield()
        types = [ff.atom_type(t) for t in type_names]

        self.name = name
        self.forcefield = ff
        self.coords = coords
        self.type_names: List[str] = list(type_names)
        self.elements: List[str] = [t.element for t in types]
        if charges is None:
            self.charges = np.array([t.charge for t in types], dtype=float)
        else:
            self.charges = np.ascontiguousarray(charges, dtype=float)
            if self.charges.shape != (n,):
                raise ValueError(f"charges must be ({n},), got {self.charges.shape}")
        self.eps = np.array([t.eps for t in types], dtype=float)
        self.rm = np.array([t.rm for t in types], dtype=float)
        self.born_radii = np.array([t.born_radius for t in types], dtype=float)
        self.volumes = np.array([t.volume for t in types], dtype=float)
        self.masses = np.array([t.mass for t in types], dtype=float)
        self.topology = topology or BondedTopology()
        self.topology.validate(n)
        #: Free-form metadata (e.g. ``calibrate_bonded_equilibrium``,
        #: ``n_probe_atoms``); propagated through copies and merges.
        self.meta: dict = {}

    # -- basic protocol -------------------------------------------------------

    def __len__(self) -> int:
        return self.coords.shape[0]

    @property
    def n_atoms(self) -> int:
        return self.coords.shape[0]

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Molecule({self.name!r}, n_atoms={self.n_atoms})"

    # -- geometry --------------------------------------------------------------

    def center(self) -> np.ndarray:
        """Geometric center of the molecule."""
        return center_of_coordinates(self.coords)

    def total_charge(self) -> float:
        return float(self.charges.sum())

    def radius_of_gyration(self) -> float:
        c = self.coords - self.center()
        return float(np.sqrt((c**2).sum(axis=1).mean()))

    def with_coords(self, coords: np.ndarray) -> "Molecule":
        """Copy of this molecule with replaced coordinates (same topology)."""
        out = Molecule(
            coords=coords,
            type_names=self.type_names,
            forcefield=self.forcefield,
            charges=self.charges.copy(),
            topology=self.topology,
            name=self.name,
        )
        out.meta = dict(self.meta)
        return out

    def transformed(self, transform) -> "Molecule":
        """Copy with coordinates mapped through a RigidTransform-like object."""
        return self.with_coords(transform.apply(self.coords))

    # -- composition -------------------------------------------------------------

    def merged_with(self, other: "Molecule", name: str | None = None) -> "Molecule":
        """Concatenate two molecules into one complex.

        The receptor-ligand complex evaluated by minimization is just the
        union of the two atom sets with both topologies preserved.
        """
        if self.forcefield is not other.forcefield:
            # Parameters resolve identically only if the tables agree.
            for t in other.type_names:
                if not self.forcefield.has_type(t):
                    raise ValueError(
                        f"cannot merge: receptor force field lacks type {t!r}"
                    )
        coords = np.concatenate([self.coords, other.coords])
        type_names = self.type_names + other.type_names
        charges = np.concatenate([self.charges, other.charges])
        topo = BondedTopology.merge(self.topology, other.topology, offset=self.n_atoms)
        out = Molecule(
            coords=coords,
            type_names=type_names,
            forcefield=self.forcefield,
            charges=charges,
            topology=topo,
            name=name or f"{self.name}+{other.name}",
        )
        out.meta = {**self.meta, **other.meta}
        return out
