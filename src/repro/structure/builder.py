"""Synthetic protein generator.

The paper maps real proteins (~2000 atoms; protein-probe complexes of ~2200
atoms, Sec. V.B).  Lacking its PDB inputs, we generate deterministic
synthetic proteins: residues laid out along a self-avoiding serpentine
(boustrophedon) path through a compact box, each residue contributing a
4-atom backbone unit plus a cycled side-chain variant, CHARMM-typed, with
full bonded topology and a carved-out surface pocket so docking has a
well-defined "hotspot" to find.

The serpentine layout guarantees no steric clashes (nearest non-bonded
approach > 2 Angstrom) while keeping the molecule globular.  Bonded
equilibrium values (r0, theta0, psi0) are calibrated to the generated
geometry (``meta['calibrate_bonded_equilibrium']``), so minimization starts
near the bonded minimum and the interesting motion is non-bonded driven —
matching the paper's setting where minimization refines an already-plausible
docked structure with small motions.

The generator preserves everything the algorithms consume — atom counts,
spatial extent, charge distribution, bonded-term counts and neighbor-list
occupancy — which is what determines the compute structure (see DESIGN.md).
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.structure.forcefield import ForceField, default_forcefield
from repro.structure.molecule import BondedTopology, Molecule
from repro.structure.probes import build_probe

__all__ = ["synthetic_protein", "synthetic_complex", "pocket_center", "pocket_movable_mask"]

# Backbone repeating unit (N, CA, C, O): local frame has the chain running
# along +x, carbonyl O in the xy plane, side chain along +/-z.
_RESIDUE_TEMPLATE: List[Tuple[str, Tuple[float, float, float]]] = [
    ("N", (0.0, 0.0, 0.0)),
    ("CT", (1.46, 0.4, 0.0)),       # C-alpha
    ("C", (2.55, 1.1, 0.0)),
    ("O", (2.40, 2.33, 0.0)),
]

# Side-chain variants (attached to CA, extending along +z; a mirrored
# partner extends -z), cycled deterministically.  All variants reach a
# uniform tip height |z| in [2.3, 2.9] so adjacent layers interdigitate
# without either colliding or leaving open channels.
_SIDECHAINS: List[List[Tuple[str, Tuple[float, float, float]]]] = [
    [("CT", (1.46, -0.4, 1.35)), ("CT3", (1.46, 0.2, 2.65))],    # aliphatic
    [("CT", (1.46, -0.4, 1.35)), ("OH1", (1.46, 0.1, 2.65))],    # serine-like
    [("CT", (1.46, -0.4, 1.35)), ("CT3", (2.66, -0.9, 2.35)),
     ("CT3", (0.26, -0.9, 2.35))],                               # valine-like
    [("CT", (1.46, -0.4, 1.35)), ("C", (1.46, 0.1, 2.50)),
     ("OC", (2.46, 0.7, 2.85)), ("OC", (0.46, -0.1, 2.90))],     # aspartate-like
    [("CT", (1.46, -0.4, 1.35)), ("NH3", (1.46, 0.1, 2.70))],    # amine-like
    [("CT", (1.46, -0.4, 1.35)), ("S", (1.46, 0.2, 2.80))],      # cysteine-like
    [("CA", (1.46, -0.4, 1.40)), ("CA", (2.50, 0.0, 2.30)),
     ("CA", (0.40, -0.7, 2.30))],                                # phenyl-lite
    [("CT", (1.46, -0.4, 1.35)), ("O", (1.46, 0.15, 2.60))],     # carbonyl-like
]

#: Residue-to-residue step along a row (Angstrom); ~C-alpha virtual spacing.
_STEP_X = 3.8
#: Row spacing (Angstrom); a spacer atom at y ~ 3.6 seals the gap.
_ROW_Y = 6.0
#: Layer spacing (Angstrom); +/-z side-chain tips at ~2.3-2.9 interdigitate.
_LAYER_Z = 7.0


def _serpentine_dims(n_residues: int) -> Tuple[int, int, int]:
    """(cols, rows, layers) of a near-cubic physical box holding n residues."""
    k = (n_residues * _STEP_X * _ROW_Y * _LAYER_Z) ** (1.0 / 3.0)
    cols = max(2, int(np.ceil(k / _STEP_X)))
    rows = max(1, int(np.ceil(k / _ROW_Y)))
    layers = max(1, int(np.ceil(n_residues / (cols * rows))))
    return cols, rows, layers


def _residue_origin(i: int, cols: int, rows: int) -> Tuple[np.ndarray, int]:
    """Origin of residue ``i`` on the serpentine path and its z-parity.

    Rows alternate direction (boustrophedon) so consecutive residues remain
    adjacent even at row turns.
    """
    layer, rem = divmod(i, cols * rows)
    row, col = divmod(rem, cols)
    if row % 2 == 1:
        col = cols - 1 - col  # reverse direction on odd rows
    if layer % 2 == 1:
        row = rows - 1 - row  # reverse row order on odd layers
    origin = np.array([col * _STEP_X, row * _ROW_Y, layer * _LAYER_Z])
    z_parity = 1 if (col + row) % 2 == 0 else -1
    return origin, z_parity


def synthetic_protein(
    n_residues: int = 208,
    seed: int = 7,
    forcefield: ForceField | None = None,
    pocket_radius: float = 7.5,
) -> Molecule:
    """Generate a deterministic synthetic protein.

    Parameters
    ----------
    n_residues:
        Backbone length.  The default (208 residues, 4 backbone atoms, a spacer, and two
        cycled side chains each) yields ~2000 atoms, the paper's protein
        scale.
    seed:
        Controls coordinate jitter and the side-chain assignment phase so
        distinct seeds give distinct proteins.
    pocket_radius:
        Radius (Angstrom) of a near-surface spherical region emptied of
        side-chain atoms to create a concave binding pocket.

    Returns
    -------
    Molecule with full bonded topology (bonds, angles, backbone dihedrals,
    carbonyl impropers), geometry-calibrated bonded equilibria, and the
    pocket carved out.
    """
    if n_residues < 2:
        raise ValueError("need at least 2 residues")
    ff = forcefield or default_forcefield()
    rng = np.random.default_rng(seed)
    cols, rows, _ = _serpentine_dims(n_residues)

    coords: List[np.ndarray] = []
    types: List[str] = []
    bonds: List[Tuple[int, int]] = []
    angles: List[Tuple[int, int, int]] = []
    dihedrals: List[Tuple[int, int, int, int]] = []
    impropers: List[Tuple[int, int, int, int]] = []
    sidechain_atoms: List[int] = []

    prev_ca_index = -1
    prev_c_index = -1
    for res in range(n_residues):
        origin, _ = _residue_origin(res, cols, rows)
        jitter = rng.normal(scale=0.08, size=3)
        base = len(coords)
        for t, local in _RESIDUE_TEMPLATE:
            coords.append(origin + np.asarray(local) + jitter)
            types.append(t)
        n_i, ca_i, c_i, o_i = base, base + 1, base + 2, base + 3
        bonds += [(n_i, ca_i), (ca_i, c_i), (c_i, o_i)]
        angles += [(n_i, ca_i, c_i), (ca_i, c_i, o_i)]
        impropers.append((c_i, ca_i, o_i, n_i))
        # Carbonyl O is a leaf atom: carving it cannot break the chain.
        sidechain_atoms.append(o_i)
        if prev_c_index >= 0:
            bonds.append((prev_c_index, n_i))
            angles.append((prev_c_index, n_i, ca_i))
            dihedrals.append((prev_ca_index, prev_c_index, n_i, ca_i))
        prev_ca_index, prev_c_index = ca_i, c_i

        # A spacer pseudo-side-chain fills the inter-row gap so the packed
        # interior has no open channels a probe could thread (real proteins
        # are densely packed; only the carved pocket should admit probes).
        spacer_idx = len(coords)
        coords.append(origin + np.array([1.46, 3.6, 0.0]) + jitter)
        types.append("CT3")
        sidechain_atoms.append(spacer_idx)
        bonds.append((ca_i, spacer_idx))

        # Side chains extend both +z and -z to fill the inter-layer space.
        for direction, phase in ((1.0, 0), (-1.0, 3)):
            sc = _SIDECHAINS[(res + seed + phase) % len(_SIDECHAINS)]
            prev_idx = ca_i
            for k, (t, local) in enumerate(sc):
                idx = len(coords)
                local_arr = np.asarray(local) * np.array([1.0, 1.0, direction])
                coords.append(origin + local_arr + jitter)
                types.append(t)
                sidechain_atoms.append(idx)
                bonds.append((prev_idx, idx))
                if k == 0:
                    angles.append((n_i, ca_i, idx))
                # Carboxylate/gem-dimethyl branches hang off the same parent.
                if t not in ("OC", "CT3") or k == 0:
                    prev_idx = idx

    xyz = np.array(coords, dtype=float)
    xyz -= xyz.mean(axis=0)

    # Carve a pocket: remove side-chain atoms inside a sphere centered on
    # the +x face (just inside the surface, so roughly half the sphere
    # intersects the body and leaves a concave dent).  Backbone atoms are
    # kept so the chain stays connected.
    x_face = float(xyz[:, 0].max())
    pocket = np.array([x_face - 0.45 * pocket_radius, 0.0, 0.0])
    dist_to_pocket = np.linalg.norm(xyz - pocket, axis=1)
    sidechain_mask = np.zeros(len(xyz), dtype=bool)
    sidechain_mask[sidechain_atoms] = True
    keep = (dist_to_pocket > pocket_radius) | ~sidechain_mask

    old_to_new = -np.ones(len(xyz), dtype=np.intp)
    old_to_new[keep] = np.arange(int(keep.sum()))

    def _remap(terms: List[Tuple[int, ...]], width: int) -> np.ndarray:
        kept = [tuple(old_to_new[list(t)]) for t in terms if all(keep[i] for i in t)]
        if not kept:
            return np.empty((0, width), dtype=np.intp)
        return np.array(kept, dtype=np.intp)

    mol = Molecule(
        coords=xyz[keep],
        type_names=[t for t, k in zip(types, keep) if k],
        forcefield=ff,
        topology=BondedTopology(
            bonds=_remap(bonds, 2),
            angles=_remap(angles, 3),
            dihedrals=_remap(dihedrals, 4),
            impropers=_remap(impropers, 4),
        ),
        name=f"synthetic_protein_{n_residues}r_seed{seed}",
    )
    mol.meta["calibrate_bonded_equilibrium"] = True
    mol.meta["pocket_center"] = pocket.tolist()
    return mol


def pocket_center(protein: Molecule) -> np.ndarray:
    """Center of the carved pocket of a synthetic protein.

    Uses the position recorded at build time when available; otherwise the
    geometric construction (70% of the bounding radius along +x from the
    centroid).
    """
    stored = protein.meta.get("pocket_center")
    if stored is not None:
        return protein.center() + np.asarray(stored, dtype=float)
    c = protein.coords - protein.center()
    return protein.center() + np.array([float(c[:, 0].max()), 0.0, 0.0])


def pocket_movable_mask(
    complex_mol: Molecule,
    n_probe_atoms: int,
    flexible_radius: float = 8.2,
) -> np.ndarray:
    """Movable-atom mask for minimization: probe + nearby protein atoms.

    FTMap "models the flexibility in the side chains of the probes by
    allowing them to move freely" while the protein core stays rigid; in
    practice the probe and pocket-lining atoms move.  The probe is assumed
    to be the final ``n_probe_atoms`` of the complex (the
    :func:`synthetic_complex` / docking-pipeline convention).  Protein atoms
    within ``flexible_radius`` Angstrom of any probe atom are also freed.
    """
    n = complex_mol.n_atoms
    if not (0 < n_probe_atoms <= n):
        raise ValueError("n_probe_atoms out of range")
    mask = np.zeros(n, dtype=bool)
    mask[n - n_probe_atoms :] = True
    probe_xyz = complex_mol.coords[n - n_probe_atoms :]
    protein_xyz = complex_mol.coords[: n - n_probe_atoms]
    # Distance of each protein atom to its nearest probe atom.
    d = np.linalg.norm(protein_xyz[:, None, :] - probe_xyz[None, :, :], axis=2)
    near = d.min(axis=1) <= flexible_radius
    mask[: n - n_probe_atoms] = near
    return mask


def synthetic_complex(
    probe_name: str = "ethanol",
    n_residues: int = 229,
    seed: int = 7,
    forcefield: ForceField | None = None,
    separation: float = 1.5,
) -> Molecule:
    """Protein-probe complex at the paper's minimization scale (~2200 atoms,
    Sec. V.B: "the 2200 atoms in the complex").

    The probe is placed inside the carved pocket, offset by ``separation``
    Angstrom from the pocket center so minimization has somewhere to go.
    The returned molecule's ``meta['n_probe_atoms']`` records the probe size
    for movable-mask construction.
    """
    ff = forcefield or default_forcefield()
    protein = synthetic_protein(n_residues=n_residues, seed=seed, forcefield=ff)
    probe = build_probe(probe_name, forcefield=ff)
    target = pocket_center(protein) + np.array([separation, 0.0, 0.0])
    probe_moved = probe.with_coords(probe.coords - probe.center() + target)
    merged = protein.merged_with(probe_moved, name=f"{protein.name}+{probe_name}")
    merged.meta["n_probe_atoms"] = probe.n_atoms
    merged.meta["calibrate_bonded_equilibrium"] = True
    return merged
