"""Minimal PDB reader/writer.

FTMap's production pipeline reads protein structures from the PDB.  This
module supports the fixed-column ATOM/HETATM records needed to round-trip
coordinates and element symbols, with a heuristic mapping from PDB atom
names to our CHARMM-like type set.  It is intentionally small: enough for a
user with a real structure file to run the pipeline, not a full PDB parser.
"""

from __future__ import annotations

import io
from pathlib import Path
from typing import List, TextIO, Union

import numpy as np

from repro.structure.forcefield import ForceField, default_forcefield
from repro.structure.molecule import Molecule

__all__ = ["read_pdb", "write_pdb", "guess_type_name"]

# Map element (and name prefix hints) to a default CHARMM-like type.
_ELEMENT_DEFAULT_TYPE = {
    "C": "CT",
    "N": "NH1",
    "O": "O",
    "S": "S",
    "H": "HA",
}


def guess_type_name(atom_name: str, element: str) -> str:
    """Heuristic PDB-atom-name to force-field-type mapping.

    Recognizes backbone names (N, CA, C, O) and falls back to per-element
    defaults.  Unknown elements raise ``ValueError`` so silent mistyping
    cannot corrupt energies.
    """
    name = atom_name.strip().upper()
    element = element.strip().upper()
    if name == "CA":
        return "CT"
    if name == "C":
        return "C"
    if name == "N":
        return "NH1"
    if name == "O" or name == "OXT":
        return "O"
    if name.startswith("OH") or name.startswith("OG") or name.startswith("OS"):
        return "OH1"
    if name.startswith("NZ") or name.startswith("NH"):
        return "NH3"
    try:
        return _ELEMENT_DEFAULT_TYPE[element]
    except KeyError:
        raise ValueError(
            f"cannot type atom {atom_name!r} with element {element!r}"
        ) from None


def _parse_element(line: str, atom_name: str) -> str:
    elem = line[76:78].strip() if len(line) >= 78 else ""
    if elem:
        return elem.upper()
    # Fall back to the first alphabetic character of the atom name.
    for ch in atom_name.strip():
        if ch.isalpha():
            return ch.upper()
    raise ValueError(f"cannot infer element from PDB line: {line!r}")


def read_pdb(
    source: Union[str, Path, TextIO],
    forcefield: ForceField | None = None,
    name: str | None = None,
) -> Molecule:
    """Read ATOM/HETATM records from a PDB file or file-like object.

    Only coordinates and typing are extracted; bonded topology is left empty
    (rigid docking does not need it, and CONECT records are unreliable).
    """
    ff = forcefield or default_forcefield()
    close = False
    if isinstance(source, (str, Path)):
        fh: TextIO = open(source, "r", encoding="utf-8")
        close = True
        label = Path(source).stem
    else:
        fh = source
        label = "pdb_molecule"

    coords: List[List[float]] = []
    types: List[str] = []
    try:
        for line in fh:
            record = line[:6].strip()
            if record not in ("ATOM", "HETATM"):
                continue
            atom_name = line[12:16]
            x = float(line[30:38])
            y = float(line[38:46])
            z = float(line[46:54])
            element = _parse_element(line, atom_name)
            if element == "H":
                # United-atom convention: hydrogens folded into heavy atoms.
                continue
            coords.append([x, y, z])
            types.append(guess_type_name(atom_name, element))
    finally:
        if close:
            fh.close()

    if not coords:
        raise ValueError("no ATOM/HETATM records found")
    return Molecule(
        coords=np.array(coords, dtype=float),
        type_names=types,
        forcefield=ff,
        name=name or label,
    )


def write_pdb(molecule: Molecule, target: Union[str, Path, TextIO]) -> None:
    """Write a molecule as minimal ATOM records (one chain, one residue)."""
    close = False
    if isinstance(target, (str, Path)):
        fh: TextIO = open(target, "w", encoding="utf-8")
        close = True
    else:
        fh = target
    try:
        for i, (xyz, elem) in enumerate(zip(molecule.coords, molecule.elements), start=1):
            name_field = f"{elem:<3s}"[:4]
            fh.write(
                f"ATOM  {i:5d}  {name_field:<3s} MOL A   1    "
                f"{xyz[0]:8.3f}{xyz[1]:8.3f}{xyz[2]:8.3f}"
                f"{1.00:6.2f}{0.00:6.2f}          {elem:>2s}\n"
            )
        fh.write("END\n")
    finally:
        if close:
            fh.close()


def pdb_roundtrip_string(molecule: Molecule) -> str:
    """Serialize a molecule to a PDB-format string (testing convenience)."""
    buf = io.StringIO()
    write_pdb(molecule, buf)
    return buf.getvalue()
