"""CHARMM-like force-field parameter tables.

The paper's minimization evaluates the CHARMM potential (Brooks et al. 1983)
with ACE continuum electrostatics (Schaefer & Karplus 1996).  Per atom type we
carry:

* partial charge ``q`` (elementary charges),
* Lennard-Jones well depth ``eps`` (kcal/mol) and minimum-energy radius
  ``rm`` (Angstrom) combined by Eqs. (9)-(10),
* ACE Born radius (Angstrom) and solute volume ``V~`` (Angstrom^3) used by
  the self-energy Gaussian of Eq. (6),
* atomic mass (amu) for coordinate updates.

Values are physically plausible CHARMM-magnitude parameters; absolute
accuracy is not required to reproduce the paper's computational structure
(see DESIGN.md substitution table).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Mapping

__all__ = ["AtomType", "ForceField", "default_forcefield", "DEFAULT_ATOM_TYPES"]


@dataclass(frozen=True)
class AtomType:
    """Non-bonded and ACE parameters for one CHARMM-style atom type."""

    name: str
    element: str
    charge: float          # default partial charge, e
    eps: float             # LJ well depth, kcal/mol (positive magnitude)
    rm: float              # LJ r_min/2-style radius parameter, Angstrom
    born_radius: float     # ACE Born radius, Angstrom
    volume: float          # ACE solute volume V~, Angstrom^3
    mass: float            # amu

    def __post_init__(self) -> None:
        if self.eps < 0:
            raise ValueError(f"eps must be non-negative for {self.name}")
        if self.rm <= 0 or self.born_radius <= 0 or self.volume <= 0:
            raise ValueError(f"radii/volume must be positive for {self.name}")


# A compact CHARMM-like type set sufficient for proteins plus the small
# organic probes (carbon, nitrogen, oxygen, sulfur, hydrogen flavors).
DEFAULT_ATOM_TYPES: Dict[str, AtomType] = {
    t.name: t
    for t in [
        # name        elem  charge   eps     rm     born   vol    mass
        AtomType("C",    "C", 0.51, 0.110, 2.000, 1.90, 14.7, 12.011),   # carbonyl C
        AtomType("CA",   "C", 0.07, 0.070, 1.992, 1.90, 8.3, 12.011),    # aromatic C
        AtomType("CT",   "C", -0.18, 0.080, 2.060, 2.00, 22.5, 12.011),  # aliphatic C
        AtomType("CT3",  "C", -0.27, 0.078, 2.040, 2.00, 30.0, 12.011),  # methyl C
        AtomType("N",    "N", -0.47, 0.200, 1.850, 1.70, 4.4, 14.007),   # amide N
        AtomType("NH1",  "N", -0.47, 0.200, 1.850, 1.70, 4.4, 14.007),
        AtomType("NH3",  "N", -0.30, 0.200, 1.850, 1.70, 11.2, 14.007),  # ammonium N
        AtomType("O",    "O", -0.51, 0.120, 1.700, 1.60, 10.8, 15.999),  # carbonyl O
        AtomType("OH1",  "O", -0.66, 0.152, 1.770, 1.60, 21.6, 15.999),  # hydroxyl O
        AtomType("OC",   "O", -0.76, 0.120, 1.700, 1.60, 10.8, 15.999),  # carboxylate O
        AtomType("S",    "S", -0.09, 0.450, 2.000, 1.95, 36.0, 32.06),   # thioether S
        AtomType("H",    "H", 0.31, 0.046, 0.225, 1.20, 1.0, 1.008),     # polar H
        AtomType("HA",   "H", 0.09, 0.022, 1.320, 1.20, 1.0, 1.008),     # nonpolar H
        AtomType("HC",   "H", 0.33, 0.046, 0.225, 1.20, 1.0, 1.008),     # charged-group H
    ]
}


@dataclass(frozen=True)
class BondParam:
    """Harmonic bond parameters: E = kb * (r - r0)^2."""

    kb: float  # kcal/mol/A^2
    r0: float  # Angstrom


@dataclass(frozen=True)
class AngleParam:
    """Harmonic angle parameters: E = ka * (theta - theta0)^2."""

    ka: float      # kcal/mol/rad^2
    theta0: float  # radians


@dataclass(frozen=True)
class DihedralParam:
    """Cosine dihedral: E = kd * (1 + cos(n*phi - delta))."""

    kd: float
    n: int
    delta: float


# Generic CHARMM-magnitude bonded constants, shared as the ForceField
# defaults.  The param classes are frozen dataclasses, so one instance is
# safely shared by every force field built without overrides.
DEFAULT_BOND = BondParam(kb=300.0, r0=1.5)
DEFAULT_ANGLE = AngleParam(ka=50.0, theta0=1.911)  # ~109.5 deg
DEFAULT_DIHEDRAL = DihedralParam(kd=0.2, n=3, delta=0.0)
DEFAULT_IMPROPER = AngleParam(ka=40.0, theta0=0.0)


class ForceField:
    """Lookup table resolving atom-type names to parameters.

    Parameters
    ----------
    atom_types:
        Mapping of type name to :class:`AtomType`.
    bond_params, angle_params, dihedral_params:
        Optional overrides for the bonded terms; defaults are generic
        CHARMM-magnitude constants applied to every bond/angle/dihedral,
        keyed by frozensets of the participating element symbols.
    """

    def __init__(
        self,
        atom_types: Mapping[str, AtomType] | None = None,
        default_bond: BondParam = DEFAULT_BOND,
        default_angle: AngleParam = DEFAULT_ANGLE,
        default_dihedral: DihedralParam = DEFAULT_DIHEDRAL,
        default_improper: AngleParam = DEFAULT_IMPROPER,
    ) -> None:
        self._types: Dict[str, AtomType] = dict(atom_types or DEFAULT_ATOM_TYPES)
        self.default_bond = default_bond
        self.default_angle = default_angle
        self.default_dihedral = default_dihedral
        self.default_improper = default_improper

    # -- atom types ---------------------------------------------------------

    def atom_type(self, name: str) -> AtomType:
        try:
            return self._types[name]
        except KeyError:
            raise KeyError(
                f"unknown atom type {name!r}; known: {sorted(self._types)}"
            ) from None

    def has_type(self, name: str) -> bool:
        return name in self._types

    def type_names(self) -> Iterable[str]:
        return self._types.keys()

    def add_type(self, atom_type: AtomType) -> None:
        """Register an additional atom type (used by tests and extensions)."""
        self._types[atom_type.name] = atom_type

    # -- bonded parameters ---------------------------------------------------

    def bond_param(self, type_i: str, type_j: str) -> BondParam:
        """Harmonic bond constants for a bonded type pair.

        Element-aware equilibrium lengths keep synthetic structures at
        realistic geometry (C-H shorter than C-C, etc.).
        """
        ei = self.atom_type(type_i).element
        ej = self.atom_type(type_j).element
        pair = frozenset((ei, ej))
        r0_table = {
            frozenset(("C",)): 1.53,
            frozenset(("C", "N")): 1.47,
            frozenset(("C", "O")): 1.33,
            frozenset(("C", "S")): 1.81,
            frozenset(("C", "H")): 1.09,
            frozenset(("N", "H")): 1.01,
            frozenset(("O", "H")): 0.96,
            frozenset(("S", "H")): 1.34,
        }
        r0 = r0_table.get(pair, self.default_bond.r0)
        return BondParam(kb=self.default_bond.kb, r0=r0)

    def angle_param(self, type_i: str, type_j: str, type_k: str) -> AngleParam:
        return self.default_angle

    def dihedral_param(
        self, type_i: str, type_j: str, type_k: str, type_l: str
    ) -> DihedralParam:
        return self.default_dihedral

    def improper_param(
        self, type_i: str, type_j: str, type_k: str, type_l: str
    ) -> AngleParam:
        return self.default_improper


_DEFAULT_FF: ForceField | None = None


def default_forcefield() -> ForceField:
    """Shared default :class:`ForceField` instance (lazily constructed)."""
    global _DEFAULT_FF
    if _DEFAULT_FF is None:
        _DEFAULT_FF = ForceField()
    return _DEFAULT_FF
