"""The 16 FTMap small-molecule probe library.

FTMap maps a protein with 16 standard organic solvent probes (Brenke et al.
2009): ethanol, isopropanol, isobutanol, acetone, acetaldehyde, dimethyl
ether, cyclohexane, ethane, acetonitrile, urea, methylamine, phenol,
benzaldehyde, benzene, acetamide and N,N-dimethylformamide.  We build each
from idealized internal coordinates (tetrahedral carbons, standard bond
lengths) with CHARMM-like typing.  Probes are tiny — heavy-atom counts 2-8 —
which is exactly why the paper's 4^3 probe grids fit in GPU constant memory.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.structure.forcefield import ForceField, default_forcefield
from repro.structure.molecule import BondedTopology, Molecule

__all__ = ["FTMAP_PROBE_NAMES", "build_probe", "probe_library"]

#: Names of the 16 standard FTMap probes.
FTMAP_PROBE_NAMES: Tuple[str, ...] = (
    "ethanol",
    "isopropanol",
    "isobutanol",
    "acetone",
    "acetaldehyde",
    "dimethylether",
    "cyclohexane",
    "ethane",
    "acetonitrile",
    "urea",
    "methylamine",
    "phenol",
    "benzaldehyde",
    "benzene",
    "acetamide",
    "dimethylformamide",
)

# Idealized heavy-atom geometries: list of (type_name, xyz).  Hydrogens are
# modeled implicitly via united-atom-style types (CT3 methyl carbons etc.),
# matching the scale of FTMap's probe grids.  Bonds connect consecutive
# entries per the ``bonds`` index list.
_Spec = Tuple[List[Tuple[str, Tuple[float, float, float]]], List[Tuple[int, int]]]

_T = 1.53  # C-C bond
_CN = 1.47
_CO = 1.43
_C_DOUBLE_O = 1.22


def _chain(n: int, step: float = _T) -> List[Tuple[float, float, float]]:
    """Zig-zag carbon chain coordinates in the xy plane."""
    coords = []
    angle = np.deg2rad(111.0) / 2.0
    for i in range(n):
        x = i * step * np.cos(angle)
        y = (i % 2) * step * np.sin(angle)
        coords.append((float(x), float(y), 0.0))
    return coords


def _ring(n: int, bond: float = 1.40) -> List[Tuple[float, float, float]]:
    """Planar regular ring (benzene-like) coordinates."""
    r = bond / (2.0 * np.sin(np.pi / n))
    return [
        (float(r * np.cos(2 * np.pi * k / n)), float(r * np.sin(2 * np.pi * k / n)), 0.0)
        for k in range(n)
    ]


def _probe_specs() -> Dict[str, _Spec]:
    c2 = _chain(2)
    c3 = _chain(3)
    ring6 = _ring(6)
    specs: Dict[str, _Spec] = {}

    specs["ethane"] = (
        [("CT3", c2[0]), ("CT3", c2[1])],
        [(0, 1)],
    )
    specs["ethanol"] = (
        [("CT3", c3[0]), ("CT", c3[1]), ("OH1", c3[2])],
        [(0, 1), (1, 2)],
    )
    specs["methylamine"] = (
        [("CT3", c2[0]), ("NH3", c2[1])],
        [(0, 1)],
    )
    specs["dimethylether"] = (
        [("CT3", c3[0]), ("OH1", c3[1]), ("CT3", c3[2])],
        [(0, 1), (1, 2)],
    )
    specs["acetonitrile"] = (
        [("CT3", (0.0, 0.0, 0.0)), ("C", (1.46, 0.0, 0.0)), ("N", (2.62, 0.0, 0.0))],
        [(0, 1), (1, 2)],
    )
    specs["acetaldehyde"] = (
        [
            ("CT3", (0.0, 0.0, 0.0)),
            ("C", (1.50, 0.0, 0.0)),
            ("O", (2.10, 1.05, 0.0)),
        ],
        [(0, 1), (1, 2)],
    )
    specs["acetone"] = (
        [
            ("CT3", (-1.29, -0.79, 0.0)),
            ("C", (0.0, 0.0, 0.0)),
            ("O", (0.0, 1.22, 0.0)),
            ("CT3", (1.29, -0.79, 0.0)),
        ],
        [(0, 1), (1, 2), (1, 3)],
    )
    specs["isopropanol"] = (
        [
            ("CT3", (-1.26, -0.86, 0.0)),
            ("CT", (0.0, 0.0, 0.0)),
            ("CT3", (1.26, -0.86, 0.0)),
            ("OH1", (0.0, 0.95, 1.05)),
        ],
        [(0, 1), (1, 2), (1, 3)],
    )
    specs["isobutanol"] = (
        [
            ("CT3", (-1.26, -0.86, 0.0)),
            ("CT", (0.0, 0.0, 0.0)),
            ("CT3", (1.26, -0.86, 0.0)),
            ("CT", (0.0, 0.90, 1.20)),
            ("OH1", (1.10, 1.75, 1.30)),
        ],
        [(0, 1), (1, 2), (1, 3), (3, 4)],
    )
    specs["urea"] = (
        [
            ("NH1", (-1.16, -0.65, 0.0)),
            ("C", (0.0, 0.0, 0.0)),
            ("O", (0.0, 1.22, 0.0)),
            ("NH1", (1.16, -0.65, 0.0)),
        ],
        [(0, 1), (1, 2), (1, 3)],
    )
    specs["acetamide"] = (
        [
            ("CT3", (-1.30, -0.77, 0.0)),
            ("C", (0.0, 0.0, 0.0)),
            ("O", (0.0, 1.22, 0.0)),
            ("NH1", (1.18, -0.64, 0.0)),
        ],
        [(0, 1), (1, 2), (1, 3)],
    )
    specs["dimethylformamide"] = (
        [
            ("C", (0.0, 0.0, 0.0)),
            ("O", (0.0, 1.22, 0.0)),
            ("N", (1.18, -0.67, 0.0)),
            ("CT3", (2.45, 0.02, 0.0)),
            ("CT3", (1.22, -2.13, 0.0)),
        ],
        [(0, 1), (0, 2), (2, 3), (2, 4)],
    )
    specs["benzene"] = (
        [("CA", xyz) for xyz in ring6],
        [(k, (k + 1) % 6) for k in range(6)],
    )
    specs["phenol"] = (
        [("CA", xyz) for xyz in ring6] + [("OH1", (2.76, 0.0, 0.0))],
        [(k, (k + 1) % 6) for k in range(6)] + [(0, 6)],
    )
    specs["benzaldehyde"] = (
        [("CA", xyz) for xyz in ring6]
        + [("C", (2.88, 0.0, 0.0)), ("O", (3.52, 1.04, 0.0))],
        [(k, (k + 1) % 6) for k in range(6)] + [(0, 6), (6, 7)],
    )
    # Chair cyclohexane: alternate +-z puckering around a hexagon.
    chair = []
    r = 1.53 / (2.0 * np.sin(np.pi / 6))
    for k in range(6):
        chair.append(
            (
                float(r * np.cos(2 * np.pi * k / 6)),
                float(r * np.sin(2 * np.pi * k / 6)),
                0.25 if k % 2 == 0 else -0.25,
            )
        )
    specs["cyclohexane"] = (
        [("CT", xyz) for xyz in chair],
        [(k, (k + 1) % 6) for k in range(6)],
    )
    return specs


_SPECS: Dict[str, _Spec] | None = None


def _specs() -> Dict[str, _Spec]:
    global _SPECS
    if _SPECS is None:
        _SPECS = _probe_specs()
    return _SPECS


def _neutralize(charges: np.ndarray) -> np.ndarray:
    """Shift charges uniformly so the probe is net-neutral.

    Probe molecules are neutral solvents; using raw type charges would leave
    small net charges that skew the GB pairwise term.
    """
    if len(charges) == 0:
        return charges
    return charges - charges.mean()


def build_probe(name: str, forcefield: ForceField | None = None) -> Molecule:
    """Build one of the 16 FTMap probes by name.

    Raises ``KeyError`` for unknown names; see :data:`FTMAP_PROBE_NAMES`.
    """
    specs = _specs()
    if name not in specs:
        raise KeyError(f"unknown probe {name!r}; known: {sorted(specs)}")
    atoms, bonds = specs[name]
    ff = forcefield or default_forcefield()
    coords = np.array([xyz for _, xyz in atoms], dtype=float)
    type_names = [t for t, _ in atoms]
    raw_charges = np.array([ff.atom_type(t).charge for t in type_names])
    angles = _infer_angles(bonds, len(atoms))
    mol = Molecule(
        coords=coords - coords.mean(axis=0),
        type_names=type_names,
        forcefield=ff,
        charges=_neutralize(raw_charges),
        topology=BondedTopology(
            bonds=np.array(bonds, dtype=np.intp).reshape(-1, 2),
            angles=angles,
        ),
        name=name,
    )
    # Idealized geometries are the intended equilibrium (benzene is 120 deg,
    # not the generic 109.5): calibrate bonded minima to the built geometry.
    mol.meta["calibrate_bonded_equilibrium"] = True
    return mol


def _infer_angles(bonds: Sequence[Tuple[int, int]], n_atoms: int) -> np.ndarray:
    """Derive angle triples (i, j, k) from the bond list: i-j and j-k bonded."""
    adj: Dict[int, List[int]] = {i: [] for i in range(n_atoms)}
    for i, j in bonds:
        adj[i].append(j)
        adj[j].append(i)
    triples = []
    for j in range(n_atoms):
        nbrs = sorted(adj[j])
        for a_idx in range(len(nbrs)):
            for b_idx in range(a_idx + 1, len(nbrs)):
                triples.append((nbrs[a_idx], j, nbrs[b_idx]))
    if not triples:
        return np.empty((0, 3), dtype=np.intp)
    return np.array(triples, dtype=np.intp)


def probe_library(forcefield: ForceField | None = None) -> Dict[str, Molecule]:
    """Build the full 16-probe library keyed by probe name."""
    return {name: build_probe(name, forcefield) for name in FTMAP_PROBE_NAMES}
