"""Typed request/result surface of the mapping service.

A :class:`MapRequest` is everything one mapping needs: the receptor
(inline, or the content hash of one previously registered with the
service), the :class:`~repro.mapping.ftmap.FTMapConfig` workload, and
optional pre-built probes.  Requests that reference receptors by hash are
JSON-round-trippable (:meth:`MapRequest.to_dict`), which is the shape a
wire protocol will ship: upload the receptor once, then stream small
request documents against it.

A :class:`MapResult` wraps the mapping outcome
(:class:`~repro.mapping.ftmap.FTMapResult`) with serving provenance: the
request id, the receptor's content hash, how the request was scheduled,
its wall time and its request-scoped cache statistics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Union

from repro.api.errors import InvalidRequestError
from repro.api.schema import SCHEMA_VERSION, check_schema_version
from repro.cache.keys import molecule_token
from repro.cache.manager import CacheStats
from repro.mapping.consensus import ConsensusSite
from repro.mapping.ftmap import FTMapConfig, FTMapResult, ProbeResult
from repro.structure.molecule import Molecule

__all__ = ["STREAMING_MODES", "MapRequest", "MapResult", "receptor_fingerprint"]

#: How a request's probes may be scheduled: ``None`` (service default),
#: the sequential stage loop, the thread-staged pipeline, or the
#: process-staged pipeline (separate dock/minimize worker processes with
#: shared-memory pose shipping — GIL-independent overlap).
STREAMING_MODES = ("sequential", "pipeline", "process")


def receptor_fingerprint(receptor: Molecule) -> str:
    """Content hash a service registers/addresses a receptor under.

    Structurally equal molecules share a fingerprint (coordinates,
    parameters, topology — see :func:`repro.cache.keys.molecule_token`),
    which is exactly the property that lets concurrent requests against
    the same receptor share grids, spectra and dock results.
    """
    return molecule_token(receptor)


@dataclass
class MapRequest:
    """One unit of service work: map ``receptor`` under ``config``.

    ``receptor`` is a :class:`Molecule`, or the string fingerprint of a
    receptor previously passed to
    :meth:`~repro.api.service.FTMapService.register_receptor`.
    ``streaming`` overrides the service's scheduling mode for this request
    (``"sequential"`` | ``"pipeline"`` | ``"process"``; None = service
    default) — an explicit mode always wins over config-driven selection.
    ``tracing`` overrides ``config.tracing`` for this request (None =
    defer to the config): a client can ask for a trace without caring
    that traced and untraced configs hash to the same cache keys.
    """

    receptor: Union[Molecule, str]
    config: FTMapConfig = field(default_factory=FTMapConfig)
    probes: Optional[Dict[str, Molecule]] = None
    request_id: Optional[str] = None
    streaming: Optional[str] = None
    tracing: Optional[bool] = None

    def __post_init__(self) -> None:
        if self.streaming is not None and self.streaming not in STREAMING_MODES:
            raise InvalidRequestError(
                f"unknown streaming mode {self.streaming!r}; expected one of "
                f"{STREAMING_MODES} or None"
            )
        if self.tracing is not None and not isinstance(self.tracing, bool):
            raise InvalidRequestError(
                f"tracing must be True, False or None, got {self.tracing!r}"
            )
        if not isinstance(self.receptor, (Molecule, str)):
            raise InvalidRequestError(
                "receptor must be a Molecule or a registered receptor "
                f"fingerprint string, got {type(self.receptor).__name__}"
            )

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready form (wire shape): requires a by-hash receptor.

        Inline molecules and pre-built probes are process-local objects —
        serializable requests reference a registered receptor by
        fingerprint and name their probes through the config.
        """
        if isinstance(self.receptor, Molecule):
            raise InvalidRequestError(
                "only requests that reference a registered receptor by "
                "fingerprint serialize; call "
                "FTMapService.register_receptor(receptor) and build the "
                "request from the returned hash"
            )
        if self.probes is not None:
            raise InvalidRequestError(
                "requests with pre-built probe molecules do not serialize; "
                "name probes via config.probe_names instead"
            )
        return {
            "schema_version": SCHEMA_VERSION,
            "receptor": self.receptor,
            "config": self.config.to_dict(),
            "request_id": self.request_id,
            "streaming": self.streaming,
            "tracing": self.tracing,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "MapRequest":
        """Rebuild a request from :meth:`to_dict` output (re-validated).

        Accepts any supported ``schema_version`` (a missing field means
        version 1, the pre-versioning dialect); an unsupported version is
        rejected with :class:`~repro.api.errors.SchemaVersionError`
        before any field is interpreted.
        """
        check_schema_version(data, "MapRequest")
        known = {
            "schema_version", "receptor", "config", "request_id",
            "streaming", "tracing",
        }
        unknown = sorted(set(data) - known)
        if unknown:
            raise InvalidRequestError(f"unknown MapRequest field(s): {unknown}")
        if "receptor" not in data:
            raise InvalidRequestError("MapRequest needs a receptor fingerprint")
        config = data.get("config")
        try:
            cfg = (
                FTMapConfig.from_dict(config)
                if config is not None
                else FTMapConfig()
            )
        except (TypeError, ValueError) as exc:
            # FTMapConfig validation speaks bare ValueError/TypeError; at
            # the wire boundary every malformed document is a typed 400.
            raise InvalidRequestError(f"invalid MapRequest config: {exc}") from exc
        tracing = data.get("tracing")
        if tracing is not None and not isinstance(tracing, bool):
            raise InvalidRequestError(
                f"MapRequest.tracing must be a boolean or null, got {tracing!r}"
            )
        return cls(
            receptor=data["receptor"],
            config=cfg,
            request_id=data.get("request_id"),
            streaming=data.get("streaming"),
            tracing=tracing,
        )


@dataclass
class MapResult:
    """Mapping outcome plus serving provenance for one request."""

    request_id: str
    receptor_hash: str
    config: FTMapConfig
    result: FTMapResult
    wall_time_s: float
    #: Request-scoped cache delta (None with caching off): only this
    #: request's lookups, even when other requests overlap on the manager.
    cache_stats: Optional[CacheStats]
    #: How the probes were actually scheduled: ``"sequential"``,
    #: ``"pipeline"`` (thread stage-overlapped), or ``"process"``
    #: (worker-process stage-overlapped).
    streaming: str = "sequential"
    #: The request's serialized trace document (see
    #: :meth:`repro.obs.trace.Tracer.to_dict`), or None when tracing was
    #: off for this request.
    trace: Optional[Dict[str, object]] = None

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready wire form of the result (a *summary* document).

        Ships the ranked consensus sites, per-probe cluster summaries with
        the exact minimized centers/energies (Python floats survive a JSON
        round trip bitwise, so two runs agree on the wire iff they agree
        in memory — the property the gateway's identity tests assert),
        the serving provenance, and the request-scoped cache stats.  The
        bulk pose payloads stay process-local by design; clients that
        need them run in-process against :class:`FTMapService`.
        """
        return {
            "schema_version": SCHEMA_VERSION,
            "request_id": self.request_id,
            "receptor_hash": self.receptor_hash,
            "config": self.config.to_dict(),
            "wall_time_s": float(self.wall_time_s),
            "streaming": self.streaming,
            "cache_stats": (
                self.cache_stats.to_dict()
                if self.cache_stats is not None
                else None
            ),
            "trace": self.trace,
            "result": self.result.to_dict(),
        }

    @property
    def probe_results(self) -> Dict[str, ProbeResult]:
        return self.result.probe_results

    @property
    def minimize_provenance(self) -> Dict[str, Dict[str, object]]:
        """Where each probe's minimization actually ran.

        Per probe: the executing backend, the device count it was planned
        over, per-shard pose counts, the deterministic reduction order,
        and whether the stage was served from the artifact cache (in which
        case no shards ran at all) — the serving-side answer to "which
        hardware did this request use".
        """
        return {
            name: {
                "backend": pr.minimize_backend,
                "devices": pr.minimize_devices,
                "shard_sizes": list(pr.minimize_shard_sizes),
                "reduction_order": list(pr.minimize_reduction_order),
                "cached": pr.minimize_cached,
            }
            for name, pr in self.result.probe_results.items()
        }

    @property
    def sites(self) -> List[ConsensusSite]:
        return self.result.sites

    @property
    def top_site(self) -> Optional[ConsensusSite]:
        return self.result.top_site
