"""Public serving API: the session-scoped mapping service.

This package is the front door of the reproduction-as-a-system: every
caller — scripts, sweeps, benchmarks, a future HTTP layer — maps
receptors through one long-lived :class:`FTMapService` instead of
re-plumbing engines, cache policy and parallelism by hand.

Quickstart::

    from repro.api import FTMapService, MapRequest
    from repro import FTMapConfig, synthetic_protein

    with FTMapService() as service:
        receptor_id = service.register_receptor(synthetic_protein())
        job = service.submit(MapRequest(
            receptor=receptor_id,
            config=FTMapConfig(probe_names=("ethanol", "benzene")),
        ))
        result = job.result()          # MapResult: sites, stats, provenance
        print(result.top_site)
"""

from repro.api.errors import (
    ApiError,
    AuthenticationError,
    DuplicateRequestError,
    InvalidRequestError,
    JobCancelledError,
    JobFailedError,
    JobNotFoundError,
    JobTimeoutError,
    QuotaExceededError,
    SchemaVersionError,
    ServiceClosedError,
    UnknownReceptorError,
)
from repro.api.jobs import (
    JOB_CANCELLED,
    JOB_DONE,
    JOB_FAILED,
    JOB_QUEUED,
    JOB_RUNNING,
    JOB_STATUSES,
    JobCancelled,
    JobHandle,
    ProgressEvent,
)
from repro.api.requests import (
    STREAMING_MODES,
    MapRequest,
    MapResult,
    receptor_fingerprint,
)
from repro.api.schema import SCHEMA_VERSION, SUPPORTED_SCHEMA_VERSIONS
from repro.api.service import FTMapService

__all__ = [
    "FTMapService",
    "MapRequest",
    "MapResult",
    "JobHandle",
    "JobCancelled",
    "ProgressEvent",
    "receptor_fingerprint",
    "STREAMING_MODES",
    "SCHEMA_VERSION",
    "SUPPORTED_SCHEMA_VERSIONS",
    "ApiError",
    "InvalidRequestError",
    "SchemaVersionError",
    "UnknownReceptorError",
    "JobNotFoundError",
    "DuplicateRequestError",
    "ServiceClosedError",
    "JobTimeoutError",
    "JobFailedError",
    "JobCancelledError",
    "AuthenticationError",
    "QuotaExceededError",
    "JOB_QUEUED",
    "JOB_RUNNING",
    "JOB_DONE",
    "JOB_FAILED",
    "JOB_CANCELLED",
    "JOB_STATUSES",
]
