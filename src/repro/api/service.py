"""`FTMapService`: the single front door of the mapping system.

The paper's end state is a mapping *service* — one resident receptor
mapped against a stream of probe workloads as fast as the hardware
allows.  This module is that request→result API: a long-lived session
that owns the resolved docking/minimization engines (through the staged
pipeline functions), one shared content-addressed
:class:`~repro.cache.manager.CacheManager`, and a worker pool for
asynchronous jobs.

Three properties define the serving layer:

* **async probe streaming** — a multi-probe request is stage-pipelined:
  probe ``k+1`` docks while probe ``k`` minimizes and clusters, either
  on threads (:class:`~repro.util.parallel.PipelineExecutor`) or — the
  default on multi-CPU hosts — in separate worker *processes*
  (:mod:`repro.workers`), with pose ensembles shipped through shared
  memory so the overlap is GIL-independent.  Scheduling changes, values
  never do — both streamed results are bitwise-identical to the
  sequential stage loop (tested).
* **cache-aware serving** — receptors register once by content hash, and
  every artifact lookup is content-addressed, so concurrent requests
  against the same receptor share grids, spectra and whole dock results
  through the manager; a repeat request is served mapped-or-cached.
* **request-scoped accounting** — each result carries the cache delta of
  *its own* request (:meth:`CacheManager.stats_scope`), which stays
  correct when jobs overlap on the shared manager.

The job model is also the dispatch point for multi-device minimization
(``config.minimize_devices``): each shard surfaces as a
``"minimize-shard"`` :class:`ProgressEvent`, cancellation is checked at
shard and batch-chunk boundaries, and the result records shard/backend
provenance
(:attr:`MapResult.minimize_provenance`).  Warm requests skip the stage
entirely through the shard-invariant minimized-ensemble cache.

Every legacy entrypoint (:func:`repro.mapping.ftmap.run_ftmap`, the sweep
runner, examples, benchmarks) is a thin client of this service.
"""

from __future__ import annotations

import multiprocessing as mp
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import replace as _dc_replace
from typing import Callable, Dict, List, Optional, Tuple, Union

from repro.api.errors import (
    DuplicateRequestError,
    InvalidRequestError,
    JobNotFoundError,
    ServiceClosedError,
    UnknownReceptorError,
)
from repro.api.jobs import JobCancelled, JobHandle, ProgressEvent
from repro.api.requests import (
    STREAMING_MODES,
    MapRequest,
    MapResult,
    receptor_fingerprint,
)
from repro.cache.manager import CacheManager, CacheStats
from repro.mapping import ftmap as _ftmap
from repro.mapping.consensus import consensus_sites
from repro.mapping.ftmap import FTMapConfig, FTMapResult, ProbeResult
from repro.obs.logging import log_event
from repro.obs.metrics import registry
from repro.obs.trace import Tracer, TracerLike
from repro.structure.molecule import Molecule
from repro.structure.probes import build_probe
from repro.util.parallel import PipelineExecutor, usable_cpus

__all__ = ["FTMapService"]

#: Service-level scheduling defaults.
_SERVICE_STREAMING = ("auto",) + STREAMING_MODES


class FTMapService:
    """Session-scoped mapping service: submit requests, receive results.

    Parameters
    ----------
    config:
        Default :class:`FTMapConfig` for requests that do not carry one
        (also the source of the service's cache policy).
    cache:
        Explicit shared :class:`CacheManager` — when given, *every*
        request uses it, whatever its config's cache fields say (the
        legacy ``cache=`` override contract).  When omitted, the service
        resolves its default config's manager; requests whose config
        names an explicit cache policy then get their own manager, and
        everything else shares the service one — that sharing is what
        makes the service cache-aware.
    max_workers:
        Worker threads for asynchronous jobs (:meth:`submit`).  Synchronous
        :meth:`map` calls run in the caller's thread and do not consume a
        worker.
    streaming:
        Default probe scheduling: ``"auto"`` (process-stage the request
        on multi-CPU hosts, thread-pipeline it otherwise),
        ``"process"``, ``"pipeline"``, or ``"sequential"``.
    on_event:
        Optional callback invoked with every :class:`ProgressEvent`
        across all jobs (in addition to per-handle event logs).

    Use as a context manager (``with FTMapService() as service:``) or call
    :meth:`close` to release the worker pool.
    """

    def __init__(
        self,
        config: Optional[FTMapConfig] = None,
        cache: Optional[CacheManager] = None,
        max_workers: int = 2,
        streaming: str = "auto",
        on_event: Optional[Callable[[ProgressEvent], None]] = None,
    ) -> None:
        if max_workers < 1:
            raise InvalidRequestError(
                f"max_workers must be >= 1, got {max_workers}"
            )
        if streaming not in _SERVICE_STREAMING:
            raise InvalidRequestError(
                f"unknown streaming mode {streaming!r}; expected one of "
                f"{_SERVICE_STREAMING}"
            )
        self.default_config = config if config is not None else FTMapConfig()
        # An explicitly injected manager is pinned: every request uses it,
        # whatever its config says — the contract the legacy cache=
        # arguments of run_ftmap/run_sweep rely on (e.g. a sweep sharing
        # one manager across variants with differing cache fields).
        self._cache_pinned = cache is not None
        self.cache = (
            cache if cache is not None else self.default_config.cache_manager()
        )
        self.streaming = streaming
        self.max_workers = int(max_workers)
        self._on_event = on_event
        self._receptors: Dict[str, Molecule] = {}
        self._jobs: Dict[str, JobHandle] = {}
        self._executor: Optional[ThreadPoolExecutor] = None
        self._job_counter = 0
        self._lock = threading.Lock()
        self._closed = False

    # -- lifecycle ---------------------------------------------------------------

    def __enter__(self) -> "FTMapService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def close(self, wait: bool = True) -> None:
        """Shut the worker pool down; pending queued jobs are cancelled."""
        with self._lock:
            self._closed = True
            executor, self._executor = self._executor, None
            handles = list(self._jobs.values())
        for handle in handles:
            if not handle.done():
                handle.cancel()
        if executor is not None:
            executor.shutdown(wait=wait)

    # -- receptor registry -------------------------------------------------------

    def register_receptor(self, receptor: Molecule) -> str:
        """Register ``receptor`` and return its content fingerprint.

        Registration is idempotent: structurally equal molecules share a
        fingerprint, and requests may reference it instead of shipping the
        molecule — the "upload once, map many" half of the serving story.
        """
        fingerprint = receptor_fingerprint(receptor)
        with self._lock:
            self._receptors.setdefault(fingerprint, receptor)
        return fingerprint

    def registered_receptors(self) -> List[str]:
        """Fingerprints of every registered receptor (insertion order)."""
        with self._lock:
            return list(self._receptors)

    def _resolve_receptor(
        self, receptor: Union[Molecule, str]
    ) -> Tuple[Molecule, str]:
        if isinstance(receptor, Molecule):
            return receptor, self.register_receptor(receptor)
        with self._lock:
            molecule = self._receptors.get(receptor)
        if molecule is None:
            raise UnknownReceptorError(
                f"unknown receptor fingerprint {receptor!r}; call "
                "register_receptor(receptor) first"
            )
        return molecule, receptor

    # -- request execution -------------------------------------------------------

    def submit(self, request: MapRequest, tracer: Optional[Tracer] = None) -> JobHandle:
        """Queue a request on the worker pool; returns its job handle.

        The handle exposes ``poll()`` / ``result(timeout)`` / ``cancel()``
        and the per-stage progress events.  Jobs run concurrently up to
        ``max_workers``; requests against the same receptor share
        artifacts through the cache whichever order they land in.
        ``tracer`` carries an upstream trace into the job (the gateway
        passes the one that already holds its ingress/queue spans);
        without one, tracing follows the request/config flags.
        """
        with self._lock:
            if self._closed:
                raise ServiceClosedError("FTMapService is closed")
            self._job_counter += 1
            job_id = request.request_id or f"job-{self._job_counter}"
            if job_id in self._jobs:
                raise DuplicateRequestError(f"duplicate request_id {job_id!r}")
            executor = self._executor
            if executor is None:
                executor = self._executor = ThreadPoolExecutor(
                    max_workers=self.max_workers,
                    thread_name_prefix="ftmap-service",
                )
            handle = JobHandle(job_id, on_event=self._on_event)
            if tracer is not None:
                handle._set_tracer(tracer)
            self._jobs[job_id] = handle

            def task() -> None:
                handle._set_running()
                running = registry().gauge(
                    "repro_jobs_running", help="Jobs currently executing."
                )
                running.inc()
                try:
                    handle._check_cancelled()
                    result = self._execute(request, handle)
                except JobCancelled:
                    handle._finish("cancelled")
                except BaseException as exc:
                    handle._finish("failed", error=exc)
                else:
                    handle._finish("done", result=result)
                finally:
                    running.dec()

            # Scheduled under the lock: a concurrent close() either sees
            # this job registered (and cancels it) or blocks here until
            # the future exists — never a registered handle stuck
            # "queued" with no future after the executor shut down.
            handle._future = executor.submit(task)
        return handle

    def job(self, job_id: str) -> JobHandle:
        """Look a submitted job up by id.

        Raises :class:`~repro.api.errors.JobNotFoundError` (a
        :class:`KeyError` subclass) for an id no submitted job carries.
        """
        with self._lock:
            handle = self._jobs.get(job_id)
        if handle is None:
            raise JobNotFoundError(f"no job with id {job_id!r}")
        return handle

    def map(
        self,
        receptor: Union[Molecule, str],
        config: Optional[FTMapConfig] = None,
        probes: Optional[Dict[str, Molecule]] = None,
        streaming: Optional[str] = None,
    ) -> MapResult:
        """Synchronous sugar: execute one request in the calling thread.

        Equivalent to submitting ``MapRequest(receptor, config, probes)``
        and waiting, but without consuming a job worker — the right call
        for scripts, sweeps and tests.
        """
        request = MapRequest(
            receptor=receptor,
            config=config if config is not None else self.default_config,
            probes=probes,
            streaming=streaming,
        )
        handle = JobHandle("sync", on_event=self._on_event)
        return self._execute(request, handle)

    # -- internals ---------------------------------------------------------------

    def _request_manager(self, config: FTMapConfig) -> CacheManager:
        """The cache a request uses.

        An explicitly injected service manager wins unconditionally
        (legacy ``cache=`` override semantics); otherwise a request whose
        config names an explicit policy resolves its own manager, and
        ``"inherit"`` requests share the service default.
        """
        if self._cache_pinned or config.cache_policy == "inherit":
            return self.cache
        return config.cache_manager()

    def _execute(self, request: MapRequest, handle: JobHandle) -> MapResult:
        t0 = time.perf_counter()
        receptor, fingerprint = self._resolve_receptor(request.receptor)
        cfg = request.config
        tracer = handle._tracer
        if not tracer.enabled:
            # Request flag overrides config; neither set means no trace.
            wants_trace = (
                request.tracing
                if request.tracing is not None
                else cfg.tracing
            )
            if wants_trace:
                tracer = Tracer()
                handle._set_tracer(tracer)
        manager = self._request_manager(cfg)
        probe_set = request.probes or {
            name: build_probe(name) for name in cfg.probe_names
        }
        items = list(probe_set.items())
        mode = self._resolve_streaming(request, cfg, len(items))
        log_event(
            "request.started",
            job_id=handle.job_id,
            trace_id=tracer.trace_id,
            receptor=fingerprint,
            probes=len(items),
            streaming=mode,
        )

        with tracer.span(
            "map",
            request_id=handle.job_id,
            receptor=fingerprint,
            probes=len(items),
            streaming=mode,
        ) as root:
            if manager.enabled:
                with manager.stats_scope() as scope:
                    probe_results = self._run_probes(
                        receptor, items, cfg, manager, mode, handle, scope,
                        tracer, root,
                    )
                stats: Optional[CacheStats] = scope
            else:
                probe_results = self._run_probes(
                    receptor, items, cfg, manager, mode, handle, None,
                    tracer, root,
                )
                stats = None

            handle._check_cancelled()
            t_stage = time.perf_counter()
            with tracer.span("consensus", parent=root) as span:
                handle._emit(
                    "consensus", "", len(items), len(items),
                    span_id=span.span_id,
                )
                sites = consensus_sites(
                    {name: pr.clusters for name, pr in probe_results.items()},
                    radius=cfg.consensus_radius,
                )
            registry().histogram(
                "repro_stage_seconds", ("stage",),
                help="Wall seconds per pipeline stage.",
            ).observe(time.perf_counter() - t_stage, stage="consensus")
        ftmap_result = FTMapResult(
            probe_results=probe_results, sites=sites, cache_stats=stats
        )
        wall_s = time.perf_counter() - t0
        registry().histogram(
            "repro_request_seconds",
            help="End-to-end wall seconds per mapping request.",
        ).observe(wall_s)
        return MapResult(
            request_id=handle.job_id,
            receptor_hash=fingerprint,
            config=cfg,
            result=ftmap_result,
            wall_time_s=wall_s,
            cache_stats=stats,
            streaming=mode,
            trace=tracer.to_dict(),
        )

    @staticmethod
    def _process_streaming_available() -> bool:
        # Daemonic processes may not have children; everywhere else the
        # stage pool can run (fork preferred, spawn otherwise).
        return not mp.current_process().daemon

    def _resolve_streaming(
        self, request: MapRequest, cfg: FTMapConfig, n_items: int
    ) -> str:
        """Actual scheduling mode for a request.

        An explicit ``request.streaming`` always wins — a client that
        asked for ``"sequential"`` gets it even when the config names
        ``probe_workers`` (which used to silently force the legacy fork
        fan-out).  Without a request override, ``cfg.probe_workers > 1``
        opts into process streaming, then the service default applies;
        ``"auto"`` is the cost model: overlap is worth a worker pool only
        when there are ≥2 probes to pipeline *and* ≥2 CPUs to run them
        on, otherwise threads (one stage per probe in flight) or the
        plain sequential loop.
        """
        mode = request.streaming
        if mode is None:
            if (cfg.probe_workers or 1) > 1 and n_items > 1:
                mode = "process"
            else:
                mode = self.streaming
        if mode == "auto":
            if n_items > 1 and usable_cpus() >= 2:
                mode = "process"
            elif n_items > 1:
                mode = "pipeline"
            else:
                mode = "sequential"
        if mode == "process" and not self._process_streaming_available():
            mode = "pipeline"
        if n_items <= 1:
            mode = "sequential"
        return mode

    def _run_probes(
        self,
        receptor: Molecule,
        items: List[Tuple[str, Molecule]],
        cfg: FTMapConfig,
        manager: CacheManager,
        mode: str,
        handle: JobHandle,
        scope: Optional[CacheStats],
        tracer: TracerLike,
        root,
    ) -> Dict[str, ProbeResult]:
        total = len(items)
        stage_seconds = registry().histogram(
            "repro_stage_seconds", ("stage",),
            help="Wall seconds per pipeline stage.",
        )

        def in_scope(fn):
            # Pipeline stages run on their own threads; attaching the
            # request's scope there keeps per-request stats complete.
            if scope is None:
                return fn
            def wrapper(x):
                with manager.stats_scope(scope):
                    return fn(x)
            return wrapper

        # Stages resolve through the module at call time, so the
        # monkeypatch seam tests use on ftmap.dock_probe keeps working.
        # Stage spans parent on the request's root span *explicitly*:
        # in pipeline mode the stages run on pipeline-executor threads,
        # and the explicit parent keeps the trace connected without
        # relying on ambient context crossing the thread boundary.
        def stage_dock(task: Tuple[int, Tuple[str, Molecule]]):
            index, (name, probe) = task
            handle._check_cancelled()
            t_stage = time.perf_counter()
            with tracer.span("dock", parent=root, probe=name) as span:
                handle._emit("dock", name, index, total, span_id=span.span_id)
                run = _ftmap.dock_probe(receptor, probe, cfg, cache=manager)
            stage_seconds.observe(time.perf_counter() - t_stage, stage="dock")
            return index, name, probe, run

        def stage_refine(task) -> ProbeResult:
            index, name, probe, run = task
            handle._check_cancelled()
            t_stage = time.perf_counter()
            with tracer.span("minimize", parent=root, probe=name) as span:
                handle._emit(
                    "minimize", name, index, total, span_id=span.span_id
                )

                def on_shard(shard_index: int, num_shards: int) -> None:
                    # Per-shard dispatch events: a multi-device
                    # minimization surfaces each shard as it starts, so
                    # clients can render device-level progress within the
                    # stage.
                    handle._emit(
                        "minimize-shard", name, shard_index, num_shards,
                        span_id=span.span_id,
                    )

                # cancel_check reaches the engine's shard starts and the
                # batch-chunk boundaries inside each shard: a cancelled
                # job stops mid-stage, not just between stages.
                stage = _ftmap.minimize_poses(
                    receptor,
                    probe,
                    run.poses,
                    cfg,
                    cache=manager,
                    cancel_check=handle._check_cancelled,
                    on_shard=on_shard,
                )
            stage_seconds.observe(
                time.perf_counter() - t_stage, stage="minimize"
            )
            t_stage = time.perf_counter()
            with tracer.span("cluster", parent=root, probe=name) as span:
                handle._emit(
                    "cluster", name, index, total, span_id=span.span_id
                )
                clusters = _ftmap.cluster_probe(
                    stage.centers, stage.energies, cfg
                )
            stage_seconds.observe(time.perf_counter() - t_stage, stage="cluster")
            return ProbeResult(
                probe_name=name,
                docked_poses=run.poses,
                minimized=stage.results,
                minimized_centers=stage.centers,
                minimized_energies=stage.energies,
                clusters=clusters,
                docking_backend=run.backend,
                minimize_backend=stage.backend,
                minimize_devices=stage.devices,
                minimize_shard_sizes=stage.shard_sizes,
                minimize_reduction_order=stage.reduction_order,
                minimize_cached=stage.cached,
            )

        if mode == "process" and total > 1:
            results = self._run_probes_process(
                receptor, items, cfg, manager, handle, tracer, root,
                stage_seconds,
            )
        elif mode == "pipeline" and total > 1:
            executor = PipelineExecutor(
                [in_scope(stage_dock), in_scope(stage_refine)], mode="thread"
            )
            results = executor.map(list(enumerate(items)))
        else:
            results = [
                stage_refine(stage_dock(task)) for task in enumerate(items)
            ]
        return {pr.probe_name: pr for pr in results}

    def _run_probes_process(
        self,
        receptor: Molecule,
        items: List[Tuple[str, Molecule]],
        cfg: FTMapConfig,
        manager: CacheManager,
        handle: JobHandle,
        tracer: TracerLike,
        root,
        stage_seconds,
    ) -> List[ProbeResult]:
        """Process streaming: dock and minimize in separate worker processes.

        Two parent threads (the same order-preserving
        :class:`PipelineExecutor` the thread path uses) each drive one
        resident worker process, so probe ``k+1`` docks while probe ``k``
        minimizes *GIL-independently*.  Pose ensembles and minimized
        conformation stacks ship through shared-memory segments leased by
        an :class:`~repro.workers.shm.ShmArena` — names reserved before
        dispatch, unlinked deterministically on completion, cancellation,
        failure or worker death.  Cancellation stays cooperative at stage
        boundaries; worker execution spans are stitched back into the
        request trace from serialized span context (one monotonic clock
        per host).  The stage functions and fp64 numerics are exactly the
        sequential path's, so results are bitwise-identical.
        """
        # Imported lazily: repro.workers pulls repro.api.errors back in,
        # and this module is importable before the workers package.
        from repro.workers import ProcessWorkerPool, ShmArena
        from repro.workers import stages as _stages

        total = len(items)
        pool = ProcessWorkerPool(
            2,
            initializer=_stages.init_stage_worker,
            initargs=(receptor, cfg, manager),
            name=f"ftmap-{handle.job_id}",
        )
        arena = ShmArena(prefix=f"repro-{handle.job_id}")

        def record_spans(out: dict, fallback_parent) -> None:
            for span_name, t0, t1, parent_id in out.get("spans", ()):
                tracer.add_span(
                    span_name, t0, t1,
                    parent=parent_id or fallback_parent,
                    thread=f"{pool.name}-worker",
                    probe=out.get("probe", ""),
                )

        def stage_dock(task: Tuple[int, Tuple[str, Molecule]]):
            index, (name, probe) = task
            handle._check_cancelled()
            t_stage = time.perf_counter()
            with tracer.span("dock", parent=root, probe=name) as span:
                handle._emit("dock", name, index, total, span_id=span.span_id)
                segment = arena.reserve(f"d{index}")
                out = pool.submit(
                    _stages.dock_stage_task, name, probe, segment,
                    span.span_id, label=f"dock:{name}",
                ).result()
                bundle = out["poses"]
                arena.lease(bundle)
                record_spans(out, span)
                poses = _stages.unpack_poses(bundle)
                run = _dc_replace(out["run_meta"], poses=poses)
                span.set_attributes(backend=run.backend, poses=len(poses))
            stage_seconds.observe(time.perf_counter() - t_stage, stage="dock")
            return index, name, probe, run, bundle

        def stage_refine(task) -> ProbeResult:
            index, name, probe, run, bundle = task
            handle._check_cancelled()
            t_stage = time.perf_counter()
            with tracer.span("minimize", parent=root, probe=name) as span:
                handle._emit(
                    "minimize", name, index, total, span_id=span.span_id
                )
                segment = arena.reserve(f"m{index}")
                out = pool.submit(
                    _stages.minimize_stage_task, name, probe, bundle,
                    segment, span.span_id, label=f"minimize:{name}",
                ).result()
                ensemble = out["ensemble"]
                arena.lease(ensemble)
                record_spans(out, span)
                span.set_attributes(backend=out["backend"])
            stage_seconds.observe(
                time.perf_counter() - t_stage, stage="minimize"
            )
            t_stage = time.perf_counter()
            with tracer.span("cluster", parent=root, probe=name) as span:
                # Clustered in the worker alongside minimize (one shm
                # round trip); the event still marks the stage boundary.
                handle._emit(
                    "cluster", name, index, total, span_id=span.span_id
                )
                arrays = arena.read(ensemble)
                results = _stages.rebuild_minimize_results(
                    out["results_lite"], arrays["coords"]
                )
            stage_seconds.observe(time.perf_counter() - t_stage, stage="cluster")
            arena.release(ensemble)
            arena.release(bundle)
            return ProbeResult(
                probe_name=name,
                docked_poses=run.poses,
                minimized=results,
                minimized_centers=arrays["centers"],
                minimized_energies=arrays["energies"],
                clusters=out["clusters"],
                docking_backend=run.backend,
                minimize_backend=out["backend"],
                minimize_devices=out["devices"],
                minimize_shard_sizes=tuple(out["shard_sizes"]),
                minimize_reduction_order=tuple(out["reduction_order"]),
                minimize_cached=out["cached"],
            )

        try:
            executor = PipelineExecutor(
                [stage_dock, stage_refine], mode="thread"
            )
            results = executor.map(list(enumerate(items)))
        except BaseException:
            # Cancellation, a stage failure or a dead worker: stop the
            # pool hard and unlink every leased segment deterministically.
            pool.close(cancel=True)
            arena.release_all()
            raise
        pool.close()
        arena.release_all()
        return results
