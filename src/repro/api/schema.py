"""Wire-schema versioning of the serving API.

Every JSON document the API ships (``MapRequest`` / ``MapResult`` /
``ProgressEvent`` ``to_dict`` forms, and the gateway's HTTP envelopes)
carries a ``schema_version`` field so the wire shape can evolve without
ambiguity: a reader that does not understand a document's version rejects
it with a typed :class:`~repro.api.errors.SchemaVersionError` instead of
mis-parsing it.

Version history
---------------
1
    Initial wire shape: by-hash receptors, full ``FTMapConfig`` embedded
    in requests; results as summary documents (sites, per-probe
    cluster/provenance summaries, cache stats).
2
    Observability fields: ``MapRequest.tracing`` (per-request trace
    opt-in overriding ``config.tracing``), ``MapResult.trace`` (the
    serialized trace document, itself versioned by
    ``repro.obs.trace.TRACE_SCHEMA_VERSION``), and
    ``ProgressEvent.trace_id`` / ``span_id`` / ``elapsed_s`` correlation
    fields.  Version-1 documents (which simply lack these fields) are
    still read; writers emit 2.

Readers accept any version in :data:`SUPPORTED_SCHEMA_VERSIONS`; writers
always emit :data:`SCHEMA_VERSION` (the newest).  Documents *without* a
``schema_version`` field are accepted as version 1 — the pre-versioning
dialect emitted by older builds — so stored request documents keep
loading.
"""

from __future__ import annotations

from typing import Mapping

from repro.api.errors import InvalidRequestError, SchemaVersionError

__all__ = [
    "SCHEMA_VERSION",
    "SUPPORTED_SCHEMA_VERSIONS",
    "check_schema_version",
]

#: The wire-schema version this build writes.
SCHEMA_VERSION = 2

#: Versions this build can read.
SUPPORTED_SCHEMA_VERSIONS = (1, 2)


def check_schema_version(data: Mapping[str, object], document: str) -> int:
    """Validate ``data['schema_version']`` for a named document type.

    Returns the effective version (missing field = version 1, the
    pre-versioning dialect).  Raises :class:`SchemaVersionError` for a
    version this build cannot read and :class:`InvalidRequestError` for a
    malformed field.
    """
    version = data.get("schema_version", 1)
    if isinstance(version, bool) or not isinstance(version, int):
        raise InvalidRequestError(
            f"{document}.schema_version must be an integer, "
            f"got {version!r}"
        )
    if version not in SUPPORTED_SCHEMA_VERSIONS:
        raise SchemaVersionError(
            f"{document} schema_version {version} is not supported by this "
            f"build (supported: {list(SUPPORTED_SCHEMA_VERSIONS)})"
        )
    return version
