"""Typed error taxonomy of the serving API.

Every failure a caller of :mod:`repro.api` (or of the HTTP gateway built
on it, :mod:`repro.gateway`) can observe has a named exception class
here, with two properties the bare ``ValueError``/``KeyError`` raises
they replace never had:

* **a stable machine-readable code** (:attr:`ApiError.code`) and a
  canonical HTTP status (:attr:`ApiError.http_status`), so a wire
  protocol can map errors without parsing messages, and
* **backward compatibility by subclassing** — each typed error derives
  from the builtin exception the same code path used to raise
  (``UnknownReceptorError`` is a ``KeyError``, ``ServiceClosedError`` a
  ``RuntimeError``, ...), so existing ``except ValueError:`` call sites
  and tests keep working unchanged.

The gateway serializes these as ``{"error": {"code", "message",
"http_status"}}`` bodies (see :func:`error_body`) and the stdlib client
rebuilds the matching class from the code (:func:`error_from_code`).
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Type

__all__ = [
    "ApiError",
    "InvalidRequestError",
    "SchemaVersionError",
    "UnknownReceptorError",
    "JobNotFoundError",
    "DuplicateRequestError",
    "ServiceClosedError",
    "JobTimeoutError",
    "JobFailedError",
    "JobCancelledError",
    "AuthenticationError",
    "QuotaExceededError",
    "error_body",
    "error_from_code",
    "ERROR_CODES",
]


class ApiError(Exception):
    """Base of the serving-API error taxonomy.

    ``code`` is the stable wire identifier; ``http_status`` the canonical
    HTTP status a gateway responds with.  Subclasses override both as
    class attributes — instances only carry the human-readable message.
    """

    code: str = "internal_error"
    http_status: int = 500

    def as_message(self) -> str:
        """The human-readable message (KeyError-safe).

        ``KeyError``-derived classes repr their single argument through
        ``str()`` (``str(KeyError("x")) == "'x'"``); this accessor returns
        the raw message for wire bodies.
        """
        if self.args and isinstance(self.args[0], str):
            return self.args[0]
        return str(self)


class InvalidRequestError(ApiError, ValueError):
    """A request document or parameter fails validation."""

    code = "invalid_request"
    http_status = 400


class SchemaVersionError(InvalidRequestError):
    """A wire document declares a schema version this build cannot serve."""

    code = "unsupported_schema_version"
    http_status = 400


class UnknownReceptorError(ApiError, KeyError):
    """A request references a receptor fingerprint that was never registered."""

    code = "unknown_receptor"
    http_status = 404


class JobNotFoundError(ApiError, KeyError):
    """A job id does not name any submitted job."""

    code = "job_not_found"
    http_status = 404


class DuplicateRequestError(ApiError, ValueError):
    """A submitted ``request_id`` collides with an existing job."""

    code = "duplicate_request_id"
    http_status = 409


class ServiceClosedError(ApiError, RuntimeError):
    """The service (or gateway) is shut down and accepts no new work."""

    code = "service_closed"
    http_status = 503


class JobTimeoutError(ApiError, TimeoutError):
    """Waiting for a job's result timed out — the job itself is still live.

    Distinct from a *failed* job: :meth:`repro.api.JobHandle.result`
    raises this only when the wait deadline expires, and re-raises the
    job's own exception when the job actually failed, so a poll loop can
    tell "keep waiting" apart from "give up" without inspecting messages.
    """

    code = "result_timeout"
    http_status = 408


class JobFailedError(ApiError, RuntimeError):
    """A job reached the ``failed`` state (wire-side surrogate).

    The in-process API re-raises the job's original exception; this class
    exists for clients on the far side of a wire, where the original
    object cannot travel — the gateway ships the failure as this code
    plus the original's message.
    """

    code = "job_failed"
    http_status = 500


class JobCancelledError(ApiError, RuntimeError):
    """A job reached the ``cancelled`` state (wire-side surrogate).

    The in-process API raises :class:`repro.api.jobs.JobCancelled`; this
    class carries the same outcome across a wire, where the gateway maps
    it to HTTP 409 (the result can never exist).
    """

    code = "job_cancelled"
    http_status = 409


class AuthenticationError(ApiError):
    """Missing or unknown API key."""

    code = "unauthenticated"
    http_status = 401


class QuotaExceededError(ApiError):
    """Admission control shed this request (rate, queue or concurrency).

    ``retry_after_s`` is the earliest time the client should retry;
    gateways send it as the ``Retry-After`` header.
    """

    code = "quota_exceeded"
    http_status = 429

    def __init__(self, message: str, retry_after_s: float = 1.0) -> None:
        super().__init__(message)
        self.retry_after_s = float(retry_after_s)


#: Wire code -> exception class (the client-side rebuild table).
ERROR_CODES: Dict[str, Type[ApiError]] = {
    cls.code: cls
    for cls in (
        ApiError,
        InvalidRequestError,
        SchemaVersionError,
        UnknownReceptorError,
        JobNotFoundError,
        DuplicateRequestError,
        ServiceClosedError,
        JobTimeoutError,
        JobFailedError,
        JobCancelledError,
        AuthenticationError,
        QuotaExceededError,
    )
}


def error_body(exc: BaseException) -> Dict[str, Any]:
    """The JSON error envelope a gateway ships for ``exc``.

    Typed errors carry their own code/status; anything else degrades to
    the opaque ``internal_error`` (the message still travels, the type
    does not — deliberate, so server-side stack details stay server-side).
    """
    if isinstance(exc, ApiError):
        return {
            "error": {
                "code": exc.code,
                "message": exc.as_message(),
                "http_status": exc.http_status,
            }
        }
    return {
        "error": {
            "code": ApiError.code,
            "message": f"{type(exc).__name__}: {exc}",
            "http_status": ApiError.http_status,
        }
    }


def error_from_code(
    code: str, message: str, retry_after_s: Optional[float] = None
) -> ApiError:
    """Rebuild the typed error a wire body describes (client side)."""
    cls = ERROR_CODES.get(code, ApiError)
    if cls is QuotaExceededError:
        return QuotaExceededError(
            message,
            retry_after_s=retry_after_s if retry_after_s is not None else 1.0,
        )
    return cls(message)
