"""Job model of the mapping service: handles, status, progress events.

A submitted :class:`~repro.api.requests.MapRequest` becomes a job.  The
caller holds a :class:`JobHandle` and interacts only through it — poll
the status, wait for the result, cancel, read progress events — while the
service executes the request on its worker pool.  Cancellation is
cooperative once a job runs: the flag is checked at every stage boundary
(per probe, per pipeline stage, and — when the request shards
minimization over multiple virtual devices — per shard start and per
batch chunk within a shard), so a running job stops at the next
boundary rather than mid-kernel.  One exception: a request running in
fork mode (``probe_workers > 1``) executes its probe fan-out as a single
process-level barrier, so cancellation there applies before the fork and
again at the consensus stage, not between probes.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import Future
from dataclasses import asdict, dataclass
from typing import Any, Callable, Dict, List, Optional

from repro.api.errors import JobTimeoutError
from repro.api.schema import SCHEMA_VERSION, check_schema_version
from repro.obs.logging import log_event
from repro.obs.metrics import registry
from repro.obs.trace import NULL_TRACER, TracerLike

__all__ = [
    "JOB_QUEUED",
    "JOB_RUNNING",
    "JOB_DONE",
    "JOB_FAILED",
    "JOB_CANCELLED",
    "JOB_STATUSES",
    "JobCancelled",
    "ProgressEvent",
    "JobHandle",
]

#: Job lifecycle states (strings, so they serialize into logs verbatim).
JOB_QUEUED = "queued"
JOB_RUNNING = "running"
JOB_DONE = "done"
JOB_FAILED = "failed"
JOB_CANCELLED = "cancelled"
JOB_STATUSES = (JOB_QUEUED, JOB_RUNNING, JOB_DONE, JOB_FAILED, JOB_CANCELLED)

#: States a job never leaves.
_TERMINAL = (JOB_DONE, JOB_FAILED, JOB_CANCELLED)


class JobCancelled(RuntimeError):
    """Raised inside a job when its cancel flag is observed, and re-raised
    by :meth:`JobHandle.result` for a cancelled job."""


@dataclass(frozen=True)
class ProgressEvent:
    """One stage boundary of one job: ``probe`` entered ``stage``.

    ``stage`` is ``"dock"`` / ``"minimize"`` / ``"cluster"`` per probe
    (``"dispatch"`` per probe in fork mode, whose in-stage progress lives
    in the worker processes), then a single ``"consensus"`` (with
    ``probe=""``) for the cross-probe stage.  ``index``/``total`` locate
    the probe within the request, so a client can render per-stage
    progress without knowing the pipeline.  A multi-device minimization
    additionally emits ``"minimize-shard"`` per shard, where
    ``index``/``total`` locate the *shard* within that probe's shard plan.

    Correlation fields (wire schema v2): ``trace_id``/``span_id`` tie a
    live event to the request's trace (empty strings when tracing is
    off), and ``elapsed_s`` is monotonic seconds since the job started
    executing — event streams order and time consistently even when
    client and server wall clocks disagree.
    """

    job_id: str
    stage: str
    probe: str
    index: int
    total: int
    trace_id: str = ""
    span_id: str = ""
    elapsed_s: float = 0.0

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready wire form (the gateway's SSE ``data:`` payload)."""
        out: Dict[str, object] = {"schema_version": SCHEMA_VERSION}
        out.update(asdict(self))
        return out

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ProgressEvent":
        """Rebuild an event from :meth:`to_dict` output (re-validated)."""
        check_schema_version(data, "ProgressEvent")
        known = {
            "schema_version", "job_id", "stage", "probe", "index", "total",
            "trace_id", "span_id", "elapsed_s",
        }
        unknown = sorted(set(data) - known)
        if unknown:
            from repro.api.errors import InvalidRequestError

            raise InvalidRequestError(
                f"unknown ProgressEvent field(s): {unknown}"
            )
        return cls(
            job_id=str(data.get("job_id", "")),
            stage=str(data.get("stage", "")),
            probe=str(data.get("probe", "")),
            index=int(data.get("index", 0)),
            total=int(data.get("total", 0)),
            trace_id=str(data.get("trace_id", "")),
            span_id=str(data.get("span_id", "")),
            elapsed_s=float(data.get("elapsed_s", 0.0)),
        )


class JobHandle:
    """The caller's view of one submitted mapping job.

    Thread-safe; every accessor reflects the live state of the job.  The
    service mutates the underlying record through the package-private
    methods — callers only read, wait and cancel.
    """

    def __init__(
        self,
        job_id: str,
        on_event: Optional[Callable[[ProgressEvent], None]] = None,
    ) -> None:
        self.job_id = job_id
        self._status = JOB_QUEUED
        self._result = None
        self._error: Optional[BaseException] = None
        self._events: List[ProgressEvent] = []
        self._on_event = on_event
        self._done_callbacks: List[Callable[["JobHandle"], None]] = []
        self._cancel = threading.Event()
        self._done = threading.Event()
        self._lock = threading.Lock()
        self._future: Optional[Future] = None  # set by the service after submit
        self._tracer: TracerLike = NULL_TRACER  # set when tracing is on
        self._t0 = time.perf_counter()  # re-anchored when the job starts running

    # -- caller API --------------------------------------------------------------

    def status(self) -> str:
        """Current lifecycle state (one of :data:`JOB_STATUSES`)."""
        with self._lock:
            return self._status

    def poll(self) -> str:
        """Non-blocking status check (alias of :meth:`status`)."""
        return self.status()

    def done(self) -> bool:
        """True once the job reached a terminal state."""
        return self.status() in _TERMINAL

    def result(self, timeout: Optional[float] = None):
        """Block until terminal, then return the :class:`MapResult`.

        The error contract distinguishes *the wait giving up* from *the
        job going wrong*, so poll loops never confuse the two:

        * **wait timed out** — the job is still queued/running after
          ``timeout`` seconds: raises
          :class:`~repro.api.errors.JobTimeoutError` (a
          :class:`TimeoutError` subclass, so legacy ``except
          TimeoutError:`` handlers still catch it).  The job keeps
          running; calling ``result`` again later is valid and may
          succeed.
        * **job failed** — re-raises the job's own exception, whatever
          its type (even if that happens to be a ``TimeoutError`` raised
          *inside* the job — it will never be a ``JobTimeoutError``,
          which only this wait raises).  The job is terminal; retrying
          ``result`` re-raises the same error.
        * **job cancelled** — raises :class:`JobCancelled`; terminal.
        """
        if not self._done.wait(timeout):
            raise JobTimeoutError(
                f"job {self.job_id!r} still {self.status()!r} after "
                f"{timeout}s (the job keeps running; wait again or cancel)"
            )
        with self._lock:
            if self._status == JOB_CANCELLED:
                raise JobCancelled(f"job {self.job_id!r} was cancelled")
            if self._status == JOB_FAILED:
                error = self._error
                assert error is not None  # _finish("failed", ...) set it
                raise error
            return self._result

    def cancel(self) -> bool:
        """Request cancellation; True unless the job already finished.

        A queued job is cancelled immediately; a running one stops at its
        next stage boundary (cooperative), after which :meth:`status`
        reports ``"cancelled"`` and :meth:`result` raises
        :class:`JobCancelled`.
        """
        with self._lock:
            if self._status in _TERMINAL:
                return False
            self._cancel.set()
            future = self._future
        # Outside the lock: Future.cancel only succeeds while still queued.
        if future is not None and future.cancel():
            self._finish(JOB_CANCELLED)
        return True

    def events(self) -> List[ProgressEvent]:
        """Progress events recorded so far (copy, oldest first)."""
        with self._lock:
            return list(self._events)

    @property
    def trace_id(self) -> str:
        """The id of this job's trace ("" when tracing is off)."""
        return self._tracer.trace_id

    def add_done_callback(self, fn: Callable[["JobHandle"], None]) -> None:
        """Call ``fn(handle)`` once the job reaches a terminal state.

        Fires exactly once per callback, on the thread that finishes the
        job (or immediately, on the caller's thread, if the job is
        already terminal).  The serving layers use this to free admission
        slots the moment a job completes instead of polling.
        """
        with self._lock:
            if self._status not in _TERMINAL:
                self._done_callbacks.append(fn)
                return
        fn(self)

    def exception(self) -> Optional[BaseException]:
        """The error of a failed job, else None."""
        with self._lock:
            return self._error

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"JobHandle({self.job_id!r}, status={self.status()!r})"

    # -- service-side hooks ------------------------------------------------------

    def _check_cancelled(self) -> None:
        """Stage-boundary check: raise :class:`JobCancelled` if requested."""
        if self._cancel.is_set():
            raise JobCancelled(f"job {self.job_id!r} was cancelled")

    def _set_tracer(self, tracer: Optional[TracerLike]) -> None:
        """Attach the request's tracer so events carry its ids."""
        with self._lock:
            self._tracer = tracer if tracer is not None else NULL_TRACER

    def _emit(
        self, stage: str, probe: str, index: int, total: int, span_id: str = ""
    ) -> None:
        event = ProgressEvent(
            job_id=self.job_id,
            stage=stage,
            probe=probe,
            index=index,
            total=total,
            trace_id=self._tracer.trace_id,
            span_id=span_id,
            elapsed_s=time.perf_counter() - self._t0,
        )
        with self._lock:
            self._events.append(event)
        if self._on_event is not None:
            self._on_event(event)

    def _set_running(self) -> None:
        with self._lock:
            if self._status == JOB_QUEUED:
                self._status = JOB_RUNNING
                # Event elapsed_s counts from execution start, not submit.
                self._t0 = time.perf_counter()

    def _finish(
        self,
        status: str,
        result=None,
        error: Optional[BaseException] = None,
    ) -> None:
        with self._lock:
            if self._status in _TERMINAL:
                return
            self._status = status
            self._result = result
            self._error = error
            callbacks, self._done_callbacks = self._done_callbacks, []
        registry().counter(
            "repro_jobs_total", ("status",),
            help="Jobs finished, by terminal state.",
        ).inc(status=status)
        log_event(
            "job.finished",
            job_id=self.job_id,
            status=status,
            trace_id=self._tracer.trace_id,
            elapsed_s=round(time.perf_counter() - self._t0, 6),
            error=str(error) if error is not None else "",
        )
        self._done.set()
        for fn in callbacks:
            fn(self)
