"""Job model of the mapping service: handles, status, progress events.

A submitted :class:`~repro.api.requests.MapRequest` becomes a job.  The
caller holds a :class:`JobHandle` and interacts only through it — poll
the status, wait for the result, cancel, read progress events — while the
service executes the request on its worker pool.  Cancellation is
cooperative once a job runs: the flag is checked at every stage boundary
(per probe, per pipeline stage, and — when the request shards
minimization over multiple virtual devices — per shard start and per
batch chunk within a shard), so a running job stops at the next
boundary rather than mid-kernel.  One exception: a request running in
fork mode (``probe_workers > 1``) executes its probe fan-out as a single
process-level barrier, so cancellation there applies before the fork and
again at the consensus stage, not between probes.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Callable, List, Optional

__all__ = [
    "JOB_QUEUED",
    "JOB_RUNNING",
    "JOB_DONE",
    "JOB_FAILED",
    "JOB_CANCELLED",
    "JOB_STATUSES",
    "JobCancelled",
    "ProgressEvent",
    "JobHandle",
]

#: Job lifecycle states (strings, so they serialize into logs verbatim).
JOB_QUEUED = "queued"
JOB_RUNNING = "running"
JOB_DONE = "done"
JOB_FAILED = "failed"
JOB_CANCELLED = "cancelled"
JOB_STATUSES = (JOB_QUEUED, JOB_RUNNING, JOB_DONE, JOB_FAILED, JOB_CANCELLED)

#: States a job never leaves.
_TERMINAL = (JOB_DONE, JOB_FAILED, JOB_CANCELLED)


class JobCancelled(RuntimeError):
    """Raised inside a job when its cancel flag is observed, and re-raised
    by :meth:`JobHandle.result` for a cancelled job."""


@dataclass(frozen=True)
class ProgressEvent:
    """One stage boundary of one job: ``probe`` entered ``stage``.

    ``stage`` is ``"dock"`` / ``"minimize"`` / ``"cluster"`` per probe
    (``"dispatch"`` per probe in fork mode, whose in-stage progress lives
    in the worker processes), then a single ``"consensus"`` (with
    ``probe=""``) for the cross-probe stage.  ``index``/``total`` locate
    the probe within the request, so a client can render per-stage
    progress without knowing the pipeline.  A multi-device minimization
    additionally emits ``"minimize-shard"`` per shard, where
    ``index``/``total`` locate the *shard* within that probe's shard plan.
    """

    job_id: str
    stage: str
    probe: str
    index: int
    total: int


class JobHandle:
    """The caller's view of one submitted mapping job.

    Thread-safe; every accessor reflects the live state of the job.  The
    service mutates the underlying record through the package-private
    methods — callers only read, wait and cancel.
    """

    def __init__(
        self,
        job_id: str,
        on_event: Optional[Callable[[ProgressEvent], None]] = None,
    ) -> None:
        self.job_id = job_id
        self._status = JOB_QUEUED
        self._result = None
        self._error: Optional[BaseException] = None
        self._events: List[ProgressEvent] = []
        self._on_event = on_event
        self._cancel = threading.Event()
        self._done = threading.Event()
        self._lock = threading.Lock()
        self._future = None  # set by the service right after submit

    # -- caller API --------------------------------------------------------------

    def status(self) -> str:
        """Current lifecycle state (one of :data:`JOB_STATUSES`)."""
        with self._lock:
            return self._status

    def poll(self) -> str:
        """Non-blocking status check (alias of :meth:`status`)."""
        return self.status()

    def done(self) -> bool:
        """True once the job reached a terminal state."""
        return self.status() in _TERMINAL

    def result(self, timeout: Optional[float] = None):
        """Block until terminal, then return the :class:`MapResult`.

        Raises :class:`JobCancelled` for a cancelled job, re-raises the
        job's exception for a failed one, and raises :class:`TimeoutError`
        if the job is still running after ``timeout`` seconds.
        """
        if not self._done.wait(timeout):
            raise TimeoutError(
                f"job {self.job_id!r} still {self.status()!r} after {timeout}s"
            )
        with self._lock:
            if self._status == JOB_CANCELLED:
                raise JobCancelled(f"job {self.job_id!r} was cancelled")
            if self._status == JOB_FAILED:
                raise self._error
            return self._result

    def cancel(self) -> bool:
        """Request cancellation; True unless the job already finished.

        A queued job is cancelled immediately; a running one stops at its
        next stage boundary (cooperative), after which :meth:`status`
        reports ``"cancelled"`` and :meth:`result` raises
        :class:`JobCancelled`.
        """
        with self._lock:
            if self._status in _TERMINAL:
                return False
            self._cancel.set()
            future = self._future
        # Outside the lock: Future.cancel only succeeds while still queued.
        if future is not None and future.cancel():
            self._finish(JOB_CANCELLED)
        return True

    def events(self) -> List[ProgressEvent]:
        """Progress events recorded so far (copy, oldest first)."""
        with self._lock:
            return list(self._events)

    def exception(self) -> Optional[BaseException]:
        """The error of a failed job, else None."""
        with self._lock:
            return self._error

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"JobHandle({self.job_id!r}, status={self.status()!r})"

    # -- service-side hooks ------------------------------------------------------

    def _check_cancelled(self) -> None:
        """Stage-boundary check: raise :class:`JobCancelled` if requested."""
        if self._cancel.is_set():
            raise JobCancelled(f"job {self.job_id!r} was cancelled")

    def _emit(self, stage: str, probe: str, index: int, total: int) -> None:
        event = ProgressEvent(
            job_id=self.job_id, stage=stage, probe=probe, index=index, total=total
        )
        with self._lock:
            self._events.append(event)
        if self._on_event is not None:
            self._on_event(event)

    def _set_running(self) -> None:
        with self._lock:
            if self._status == JOB_QUEUED:
                self._status = JOB_RUNNING

    def _finish(
        self,
        status: str,
        result=None,
        error: Optional[BaseException] = None,
    ) -> None:
        with self._lock:
            if self._status in _TERMINAL:
                return
            self._status = status
            self._result = result
            self._error = error
        self._done.set()
