"""Physical and algorithmic constants shared across the reproduction.

Values mirror those used by FTMap / PIPER / CHARMM as described in the paper
(Sukhwani & Herbordt 2010) and its references: the ACE continuum
electrostatics model (Schaefer & Karplus 1996), the generalized Born
pairwise interaction (Still et al. 1990), and the smoothed Lennard-Jones
6-12 variant of Eq. (8).
"""

from __future__ import annotations

# --- Electrostatics -------------------------------------------------------

#: Coulomb constant in kcal*mol^-1*Angstrom*e^-2, as used in Eq. (7):
#: E_int = 332 * q_i q_j / r_ij - 166 * tau * q_i q_j / sqrt(...)
COULOMB_332 = 332.0637

#: The "166" prefactor of the generalized Born term (half of 332).
BORN_166 = COULOMB_332 / 2.0

#: Solvent (water) dielectric constant used by ACE.
SOLVENT_DIELECTRIC = 78.5

#: Solute (protein interior) dielectric constant.
SOLUTE_DIELECTRIC = 1.0

#: tau = 1/eps_in - 1/eps_out, the dielectric contrast factor of the
#: generalized Born equation.
TAU = 1.0 / SOLUTE_DIELECTRIC - 1.0 / SOLVENT_DIELECTRIC

#: Exponent divisor in the GB smoothing function exp(-r^2 / (4 a_i a_j)).
GB_EXPONENT_DIVISOR = 4.0

# --- Van der Waals ---------------------------------------------------------

#: Default non-bonded cutoff distance (Angstrom); typical CHARMM value.
VDW_CUTOFF = 9.0

#: Cutoff beyond which pairs are excluded from neighbor lists.  Slightly
#: larger than the interaction cutoff so that lists stay valid for several
#: minimization steps ("seldom updated" in the paper).
NEIGHBOR_LIST_CUTOFF = 10.5

# --- PIPER rigid docking ---------------------------------------------------

#: Number of rotations sampled by FTMap's coarse rotation set (Sec. II.A:
#: "performing a total of 500 rotations").
FTMAP_NUM_ROTATIONS = 500

#: Number of top-scoring translations retained per rotation (Sec. II.A).
POSES_PER_ROTATION = 4

#: Total conformations passed to minimization per probe (500 x 4).
CONFORMATIONS_PER_PROBE = FTMAP_NUM_ROTATIONS * POSES_PER_ROTATION

#: Default protein/result correlation grid edge (Sec. V.A: "a total
#: correlation grid size of 128^3, ... typical for FTMap probes and
#: proteins").
DEFAULT_PROTEIN_GRID = 128

#: Default probe grid edge (Sec. V.A: "probe grid size of 4^3").
DEFAULT_PROBE_GRID = 4

#: Upper bound on desolvation pairwise-potential correlation terms
#: (Sec. II.A: "a sum of 4 to 18 pairwise potential terms").
MAX_DESOLVATION_TERMS = 18
MIN_DESOLVATION_TERMS = 4

#: Number of shape-complementarity correlation channels (weighted sum of two
#: components).
SHAPE_TERMS = 2

#: Number of electrostatic correlation channels.
ELEC_TERMS = 2

#: Maximum total FFT/direct correlations per rotation (2 + 2 + 18 = 22).
MAX_CORRELATION_TERMS = SHAPE_TERMS + ELEC_TERMS + MAX_DESOLVATION_TERMS

#: Default weights w2 (electrostatics) and w3 (desolvation) of Eq. (2).
DEFAULT_ELEC_WEIGHT = 0.6
DEFAULT_DESOLVATION_WEIGHT = 0.4

#: Exclusion radius (in voxels) used by the filtering step when suppressing
#: neighbors of an already-selected score (Fig. 5).
FILTER_EXCLUSION_RADIUS = 3

# --- FTMap workload scale --------------------------------------------------

#: Number of small-molecule probes mapped by FTMap (Sec. II.B: "With 16
#: probes to be mapped").
FTMAP_NUM_PROBES = 16

#: Typical atom count of a protein-probe complex during minimization
#: (Sec. V.B: "the 2200 atoms in the complex").
TYPICAL_COMPLEX_ATOMS = 2200

#: Typical number of atom-atom interactions per energy term per iteration
#: (Sec. V.B: "around 10,000 atom-atom computations for each of the energy
#: term").
TYPICAL_PAIR_COUNT = 10_000

# --- Numerical tolerances --------------------------------------------------

#: Relative tolerance when comparing FFT and direct correlation results.
CORRELATION_RTOL = 1e-6

#: Default convergence threshold on energy change for the minimizer
#: (kcal/mol).
MINIMIZER_TOLERANCE = 1e-4

#: Default maximum minimization iterations.
MINIMIZER_MAX_ITER = 1000
