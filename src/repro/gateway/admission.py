"""Admission control: bounded priority queue, load shedding, accounting.

The gateway never hands raw traffic to the :class:`FTMapService`.  Every
``POST /v1/jobs`` passes through the :class:`AdmissionController`, which
enforces — in order, cheapest check first:

1. **request-rate quota** — the tenant's token bucket
   (:class:`~repro.gateway.auth.TokenBucket`); an empty bucket sheds the
   request with the exact seconds-until-next-token as ``Retry-After``,
2. **per-tenant concurrency cap** — at most ``max_in_flight``
   admitted-but-unfinished jobs per tenant,
3. **bounded global queue** — at most ``max_queue_depth`` jobs waiting
   for a dispatch slot; beyond that the gateway *sheds* (HTTP 429)
   instead of queueing unboundedly, so overload degrades into fast
   rejections rather than unbounded latency.

Admitted jobs wait in a priority queue ((tenant priority, arrival seq) —
lower priority value first, FIFO within a tenant class) and a dispatcher
thread forwards them to the service whenever fewer than
``max_concurrent`` are running.  Completion is event-driven
(:meth:`JobHandle.add_done_callback`), not polled: a finishing job frees
its slot immediately.

Every transition lands in per-tenant counters
(:class:`TenantCounters`), which is what makes multi-tenant serving
*accountable*: ``/v1/stats`` attributes accepted/shed/completed traffic
to the tenant that caused it.
"""

from __future__ import annotations

import heapq
import math
import threading
import time
from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Optional, Tuple

from repro.api.errors import (
    DuplicateRequestError,
    InvalidRequestError,
    QuotaExceededError,
    ServiceClosedError,
)
from repro.api.jobs import JOB_QUEUED, JobHandle
from repro.api.requests import MapRequest
from repro.api.schema import SCHEMA_VERSION
from repro.gateway.auth import TenantRegistry, TenantSpec
from repro.obs.logging import log_event
from repro.obs.metrics import registry
from repro.obs.trace import Span, Tracer

__all__ = ["GatewayJob", "TenantCounters", "AdmissionController"]


@dataclass
class TenantCounters:
    """Per-tenant traffic accounting (monotonic counters + live gauges)."""

    submitted: int = 0          # every POST /v1/jobs that authenticated
    accepted: int = 0           # admitted into the queue
    shed_rate: int = 0          # 429: token bucket empty
    shed_concurrency: int = 0   # 429: per-tenant in-flight cap
    shed_queue: int = 0         # 429: global queue full
    completed: int = 0
    failed: int = 0
    cancelled: int = 0
    queued: int = 0             # gauge: admitted, waiting for dispatch
    running: int = 0            # gauge: dispatched to the service

    @property
    def shed(self) -> int:
        return self.shed_rate + self.shed_concurrency + self.shed_queue

    # Nested fragment of the /v1/stats document; AdmissionController.stats()
    # stamps schema_version on the enclosing document.
    def to_dict(self) -> Dict[str, object]:  # repro: ignore[REPRO-SCHEMA]
        return {
            "submitted": self.submitted,
            "accepted": self.accepted,
            "shed": self.shed,
            "shed_rate": self.shed_rate,
            "shed_concurrency": self.shed_concurrency,
            "shed_queue": self.shed_queue,
            "completed": self.completed,
            "failed": self.failed,
            "cancelled": self.cancelled,
            "queued": self.queued,
            "running": self.running,
        }


@dataclass
class GatewayJob:
    """One admitted job as the gateway tracks it.

    Before dispatch the job exists only here (``handle`` is None and the
    status is ``"queued"``); after dispatch every lifecycle question
    delegates to the service's :class:`JobHandle`.
    """

    job_id: str
    tenant: str
    priority: int
    request: MapRequest
    handle: Optional[JobHandle] = None
    #: Set when the job was cancelled while still in the admission queue.
    cancelled_in_queue: bool = field(default=False)
    #: True only inside the dispatch window (popped from the queue, no
    #: service handle yet) — cancellation waits this window out.
    dispatching: bool = field(default=False)
    #: The service refused the dispatch (e.g. closed underneath the
    #: gateway); terminal, reported as ``"failed"``.
    dispatch_error: Optional[BaseException] = field(default=None)
    #: Request trace started at gateway ingress (None unless the request
    #: asked for tracing); handed to the service at dispatch so one trace
    #: spans ingress → queue → every pipeline stage.
    tracer: Optional[Tracer] = field(default=None)
    #: The open admission-queue-wait span of a tracing job.
    queue_span: Optional[Span] = field(default=None)
    #: ``perf_counter`` at admission, for queue-wait and job latency.
    admitted_s: float = field(default=0.0)

    def status(self) -> str:
        if self.cancelled_in_queue:
            return "cancelled"
        if self.dispatch_error is not None:
            return "failed"
        if self.handle is None:
            return JOB_QUEUED
        return self.handle.status()

    def done(self) -> bool:
        return self.status() in ("done", "failed", "cancelled")


class AdmissionController:
    """Traffic shaping between authenticated requests and the service.

    Parameters
    ----------
    service:
        The :class:`~repro.api.service.FTMapService` doing the mapping.
    registry:
        Tenant registry (API keys, buckets, limits).
    max_queue_depth:
        Bound on jobs waiting for a dispatch slot, across all tenants.
    max_concurrent:
        Jobs handed to the service at once; defaults to the service's
        ``max_workers`` (more would just queue invisibly inside the
        service's executor, defeating the priority order).
    shed_retry_after_s:
        ``Retry-After`` hint for queue/concurrency sheds (rate sheds
        compute the exact bucket refill time instead).
    """

    def __init__(
        self,
        service,
        registry: TenantRegistry,
        max_queue_depth: int = 32,
        max_concurrent: Optional[int] = None,
        shed_retry_after_s: float = 1.0,
        clock: Optional[Callable[[], float]] = None,
    ) -> None:
        if max_queue_depth < 1:
            raise InvalidRequestError(
                f"max_queue_depth must be >= 1, got {max_queue_depth}"
            )
        self.service = service
        self.registry = registry
        self.max_queue_depth = int(max_queue_depth)
        self.max_concurrent = int(
            max_concurrent
            if max_concurrent is not None
            else getattr(service, "max_workers", 2)
        )
        if self.max_concurrent < 1:
            raise InvalidRequestError(
                f"max_concurrent must be >= 1, got {self.max_concurrent}"
            )
        self.shed_retry_after_s = float(shed_retry_after_s)
        self._clock = clock if clock is not None else time.monotonic
        self._cv = threading.Condition()
        self._heap: List[Tuple[int, int, GatewayJob]] = []
        self._queued = 0          # live entries in the heap (excl. cancelled)
        self._running = 0
        self._seq = 0   # heap arrival order (FIFO within a priority class)
        self._ids = 0   # generated gw-N job ids
        self._jobs: Dict[str, GatewayJob] = {}
        self._counters: Dict[str, TenantCounters] = {
            name: TenantCounters() for name in registry.names()
        }
        self._closed = False
        self._dispatcher = threading.Thread(
            target=self._dispatch_loop,
            name="gateway-dispatch",
            daemon=True,
        )
        self._dispatcher.start()

    # -- admission ---------------------------------------------------------------

    def submit(self, tenant: TenantSpec, request: MapRequest) -> GatewayJob:
        """Admit ``request`` for ``tenant`` or shed it with a typed 429."""
        t_ingress = time.perf_counter()
        requests_total = registry().counter(
            "repro_gateway_requests_total", ("tenant", "outcome"),
            help="Submissions per tenant by admission outcome.",
        )
        counters = self._counters[tenant.name]
        with self._cv:
            if self._closed:
                raise ServiceClosedError("gateway is shut down")
            counters.submitted += 1

        # 1. Request-rate quota (bucket has its own lock; the exact
        #    refill time becomes Retry-After).
        retry_after = self.registry.bucket(tenant.name).try_acquire()
        if retry_after > 0.0:
            with self._cv:
                counters.shed_rate += 1
            requests_total.inc(tenant=tenant.name, outcome="shed_rate")
            raise QuotaExceededError(
                f"tenant {tenant.name!r} exceeded its request rate "
                f"({tenant.rate:g}/s, burst {tenant.burst})",
                retry_after_s=retry_after,
            )

        with self._cv:
            # 2. Per-tenant concurrency cap (queued + running).
            if counters.queued + counters.running >= tenant.max_in_flight:
                counters.shed_concurrency += 1
                requests_total.inc(
                    tenant=tenant.name, outcome="shed_concurrency"
                )
                raise QuotaExceededError(
                    f"tenant {tenant.name!r} already has "
                    f"{counters.queued + counters.running} job(s) in flight "
                    f"(cap {tenant.max_in_flight})",
                    retry_after_s=self.shed_retry_after_s,
                )
            # 3. Bounded global queue: shed, never queue unboundedly.
            if self._queued >= self.max_queue_depth:
                counters.shed_queue += 1
                requests_total.inc(tenant=tenant.name, outcome="shed_queue")
                raise QuotaExceededError(
                    f"admission queue full ({self.max_queue_depth} waiting); "
                    "shedding load",
                    retry_after_s=self.shed_retry_after_s,
                )

            job_id = request.request_id
            if job_id is None:
                self._ids += 1
                while f"gw-{self._ids}" in self._jobs:
                    self._ids += 1
                job_id = f"gw-{self._ids}"
            elif job_id in self._jobs:
                raise DuplicateRequestError(f"duplicate request_id {job_id!r}")

            job = GatewayJob(
                job_id=job_id,
                tenant=tenant.name,
                priority=tenant.priority,
                # Pin the gateway id as the service request id so service
                # handles, progress events and results all agree on it.
                request=replace(request, request_id=job_id),
            )
            if (
                request.tracing
                if request.tracing is not None
                else request.config.tracing
            ):
                # The trace starts here, at the gateway: the ingress span
                # covers authentication + admission, and the queue span
                # stays open until dispatch hands the job to the service.
                tracer = Tracer()
                tracer.add_span(
                    "ingress", t_ingress, time.perf_counter(),
                    tenant=tenant.name, job_id=job_id,
                )
                job.tracer = tracer
                job.queue_span = tracer.start_span(
                    "queue", tenant=tenant.name, priority=tenant.priority
                )
            job.admitted_s = time.perf_counter()
            self._seq += 1
            heapq.heappush(self._heap, (tenant.priority, self._seq, job))
            self._jobs[job_id] = job
            self._queued += 1
            counters.accepted += 1
            counters.queued += 1
            registry().gauge(
                "repro_gateway_queue_depth",
                help="Jobs waiting for a dispatch slot.",
            ).set(self._queued)
            self._cv.notify_all()
        requests_total.inc(tenant=tenant.name, outcome="accepted")
        log_event(
            "gateway.admitted",
            job_id=job.job_id,
            tenant=tenant.name,
            trace_id=job.tracer.trace_id if job.tracer is not None else "",
        )
        return job

    # -- lookup / cancel ---------------------------------------------------------

    def job(self, job_id: str, tenant: Optional[str] = None) -> GatewayJob:
        """Look an admitted job up; unknown ids (or another tenant's ids,
        when ``tenant`` is given) raise the 404-typed error — a tenant
        cannot observe whether someone else's job id exists."""
        from repro.api.errors import JobNotFoundError

        with self._cv:
            job = self._jobs.get(job_id)
        if job is None or (tenant is not None and job.tenant != tenant):
            raise JobNotFoundError(f"no job with id {job_id!r}")
        return job

    def cancel(self, job_id: str, tenant: Optional[str] = None) -> bool:
        """Cancel a job wherever it currently is; True unless terminal.

        Jobs still in the admission queue are cancelled instantly (they
        never reach the service); dispatched jobs cancel cooperatively
        through their :class:`JobHandle`.
        """
        job = self.job(job_id, tenant=tenant)
        with self._cv:
            # A job mid-dispatch (popped, no handle yet) is about to get
            # one — wait the tiny window out so the cancel lands exactly
            # once, on the right side of the accounting.
            while job.dispatching:
                self._cv.wait()
            if job.cancelled_in_queue or job.dispatch_error is not None:
                return False
            if job.handle is None:
                job.cancelled_in_queue = True
                self._queued -= 1
                counters = self._counters[job.tenant]
                counters.queued -= 1
                counters.cancelled += 1
                self._cv.notify_all()
                return True
        return job.handle.cancel()

    # -- dispatch ----------------------------------------------------------------

    def _dispatch_loop(self) -> None:
        while True:
            with self._cv:
                while not self._closed and not (
                    self._queued > 0 and self._running < self.max_concurrent
                ):
                    self._cv.wait()
                if self._closed:
                    return
                job = self._pop_next_locked()
                if job is None:
                    continue
                self._running += 1
                self._counters[job.tenant].queued -= 1
                self._counters[job.tenant].running += 1
                registry().gauge(
                    "repro_gateway_queue_depth",
                    help="Jobs waiting for a dispatch slot.",
                ).set(self._queued)
            registry().histogram(
                "repro_gateway_queue_wait_seconds",
                help="Seconds jobs waited in the admission queue.",
            ).observe(time.perf_counter() - job.admitted_s)
            if job.queue_span is not None:
                job.queue_span.end()
            try:
                # Only thread the tracer through when one was opened at
                # ingress — keeps plain submits signature-compatible with
                # service doubles that mirror the v1 interface.
                if job.tracer is not None:
                    handle = self.service.submit(job.request, tracer=job.tracer)
                else:
                    handle = self.service.submit(job.request)
            except BaseException as exc:
                # The service refused (e.g. closed underneath us): return
                # the slot and mark the job failed-by-accounting.
                with self._cv:
                    self._running -= 1
                    self._counters[job.tenant].running -= 1
                    self._counters[job.tenant].failed += 1
                    job.dispatch_error = exc
                    job.dispatching = False
                    self._cv.notify_all()
                continue
            with self._cv:
                job.handle = handle
                job.dispatching = False
                self._cv.notify_all()
            handle.add_done_callback(lambda _h, _job=job: self._on_done(_job))

    def _pop_next_locked(self) -> Optional[GatewayJob]:
        while self._heap:
            _, _, job = heapq.heappop(self._heap)
            if job.cancelled_in_queue:
                continue  # cancelled while waiting; already accounted
            self._queued -= 1
            job.dispatching = True
            return job
        return None

    def _on_done(self, job: GatewayJob) -> None:
        handle = job.handle
        assert handle is not None  # registered only after dispatch set it
        status = handle.status()
        with self._cv:
            self._running -= 1
            counters = self._counters[job.tenant]
            counters.running -= 1
            if status == "done":
                counters.completed += 1
            elif status == "failed":
                counters.failed += 1
            else:
                counters.cancelled += 1
            self._cv.notify_all()
        registry().histogram(
            "repro_gateway_job_seconds", ("tenant",),
            help="Admission-to-completion seconds per tenant.",
        ).observe(time.perf_counter() - job.admitted_s, tenant=job.tenant)
        log_event(
            "gateway.finished",
            job_id=job.job_id,
            tenant=job.tenant,
            status=status,
            trace_id=job.tracer.trace_id if job.tracer is not None else "",
        )

    # -- lifecycle / stats -------------------------------------------------------

    def close(self) -> None:
        """Stop dispatching; queued jobs are cancelled, running ones keep
        their handles (the owning server closes the service after)."""
        with self._cv:
            if self._closed:
                return
            self._closed = True
            for _, _, job in self._heap:
                if not job.cancelled_in_queue and job.handle is None:
                    job.cancelled_in_queue = True
                    counters = self._counters[job.tenant]
                    counters.queued -= 1
                    counters.cancelled += 1
            self._heap.clear()
            self._queued = 0
            self._cv.notify_all()
        self._dispatcher.join(timeout=5.0)

    def stats(self) -> Dict[str, object]:
        """The ``/v1/stats`` document: queues, tenants, cache, latencies."""
        with self._cv:
            tenants = {
                name: counters.to_dict()
                for name, counters in self._counters.items()
            }
            queue_depth = self._queued
            running = self._running
            jobs_total = len(self._jobs)
        cache = self.service.cache.snapshot()
        # Imported here: repro.workers is the serving layer's dependency,
        # not the other way around, and stats() is cold path.
        from repro.workers import worker_stats

        return {
            "schema_version": SCHEMA_VERSION,
            "queue_depth": queue_depth,
            "running": running,
            "max_queue_depth": self.max_queue_depth,
            "max_concurrent": self.max_concurrent,
            "jobs_total": jobs_total,
            "tenants": tenants,
            "cache": cache.to_dict(),
            "workers": worker_stats(),
            "metrics": self._metrics_stats(),
        }

    def _metrics_stats(self) -> Dict[str, object]:
        """Registry-derived latency summary embedded in ``/v1/stats``.

        Queue-wait and per-tenant completion-latency percentiles from the
        process metrics registry — the JSON view of what ``/v1/metrics``
        exposes as Prometheus series.  Quantiles over empty histograms
        are ``None`` (never NaN, which is not valid JSON).
        """
        reg = registry()

        def q(hist, quantile: float, **labels) -> Optional[float]:
            value = hist.quantile(quantile, **labels)
            return None if math.isnan(value) else value

        wait = reg.histogram(
            "repro_gateway_queue_wait_seconds",
            help="Seconds jobs waited in the admission queue.",
        )
        latency = reg.histogram(
            "repro_gateway_job_seconds", ("tenant",),
            help="Admission-to-completion seconds per tenant.",
        )
        per_tenant: Dict[str, object] = {}
        for (tenant,), _cell in latency.series():
            per_tenant[tenant] = {
                "count": latency.count(tenant=tenant),
                "p50_s": q(latency, 0.5, tenant=tenant),
                "p99_s": q(latency, 0.99, tenant=tenant),
            }
        return {
            "queue_wait_count": wait.count(),
            "queue_wait_p50_s": q(wait, 0.5),
            "queue_wait_p99_s": q(wait, 0.99),
            "tenant_latency": per_tenant,
        }
