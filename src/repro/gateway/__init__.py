"""HTTP/JSON multi-tenant gateway over the mapping service.

This package makes the session-scoped :class:`~repro.api.FTMapService`
reachable *over the wire* as a traffic-shaped facility — the serving
shape the paper's "mapping as a service" end state implies:

* :mod:`repro.gateway.server` — the stdlib ``ThreadingHTTPServer``
  endpoint surface (register / submit / poll / result / SSE progress /
  cancel / healthz / stats),
* :mod:`repro.gateway.auth` — tenants: API keys, request-rate token
  buckets, per-tenant caps and priorities,
* :mod:`repro.gateway.admission` — the bounded priority queue that
  sheds load (HTTP 429 + ``Retry-After``) instead of queueing
  unboundedly, with per-tenant accounting,
* :mod:`repro.gateway.wire` — the molecule wire codec (receptors travel
  once, by value; afterwards every request addresses them by content
  hash),
* :mod:`repro.gateway.client` — the stdlib client used by examples and
  the load benchmark.

Quickstart::

    from repro.api import FTMapService, MapRequest
    from repro.gateway import GatewayClient, GatewayServer, TenantSpec
    from repro import FTMapConfig, synthetic_protein

    service = FTMapService(max_workers=2)
    with GatewayServer(
        service, [TenantSpec("acme", api_key="acme-key")], owns_service=True
    ) as gw:
        client = GatewayClient(gw.url, api_key="acme-key")
        receptor = client.register_receptor(synthetic_protein())
        job_id = client.submit(MapRequest(
            receptor=receptor,
            config=FTMapConfig(probe_names=("ethanol",)),
        ))
        result = client.result(job_id, timeout_s=600)
        print(result["result"]["sites"])
"""

from repro.gateway.admission import AdmissionController, GatewayJob, TenantCounters
from repro.gateway.auth import TenantRegistry, TenantSpec, TokenBucket
from repro.gateway.client import GatewayClient
from repro.gateway.server import GatewayServer
from repro.gateway.wire import molecule_from_wire, molecule_to_wire

__all__ = [
    "GatewayServer",
    "GatewayClient",
    "TenantSpec",
    "TenantRegistry",
    "TokenBucket",
    "AdmissionController",
    "TenantCounters",
    "GatewayJob",
    "molecule_to_wire",
    "molecule_from_wire",
]
