"""The HTTP/JSON gateway: stdlib ``http.server`` over :class:`FTMapService`.

One :class:`GatewayServer` owns a :class:`ThreadingHTTPServer` (one
thread per connection — long-lived SSE streams don't block other
clients), a :class:`~repro.gateway.auth.TenantRegistry` and an
:class:`~repro.gateway.admission.AdmissionController` in front of the
mapping service.  The endpoint surface (all under ``/v1``):

=========  =========================  ===========================================
method     path                       purpose
=========  =========================  ===========================================
``POST``   ``/v1/receptors``          register a receptor by content hash
``POST``   ``/v1/jobs``               submit a ``MapRequest`` wire document
``GET``    ``/v1/jobs/{id}``          poll job status
``GET``    ``/v1/jobs/{id}/result``   fetch the result (202 while running)
``GET``    ``/v1/jobs/{id}/events``   server-sent progress stream
``DELETE`` ``/v1/jobs/{id}``          cancel (queued or running)
``GET``    ``/v1/healthz``            liveness (unauthenticated)
``GET``    ``/v1/stats``              queues, per-tenant counters, cache stats
``GET``    ``/v1/metrics``            Prometheus text exposition of the registry
=========  =========================  ===========================================

Authentication is ``Authorization: Bearer <key>`` (or ``X-API-Key``);
every error is a typed JSON body (:func:`repro.api.errors.error_body`)
whose HTTP status comes from the exception class, and quota sheds carry
``Retry-After``.  Tenant isolation is strict: a job is only visible to
the tenant that submitted it — foreign ids 404 rather than 403, so ids
don't leak across tenants.
"""

from __future__ import annotations

import json
import math
import re
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, Optional, Sequence, Tuple

from repro.api.errors import (
    InvalidRequestError,
    JobCancelledError,
    JobFailedError,
    QuotaExceededError,
    UnknownReceptorError,
    error_body,
)
from repro.api.requests import MapRequest
from repro.api.schema import SCHEMA_VERSION
from repro.api.service import FTMapService
from repro.gateway.admission import AdmissionController, GatewayJob
from repro.gateway.auth import TenantRegistry, TenantSpec
from repro.gateway.wire import molecule_from_wire
from repro.obs.metrics import registry

__all__ = ["GatewayServer"]

_JOB_ROUTE = re.compile(r"^/v1/jobs/(?P<job_id>[^/]+)(?P<sub>/result|/events)?$")

#: Request bodies above this are rejected before parsing (64 MiB — a
#: paper-scale receptor serializes to a few MiB of JSON).
MAX_BODY_BYTES = 64 * 1024 * 1024


class GatewayServer:
    """In-process HTTP gateway over one mapping service.

    Parameters
    ----------
    service:
        The :class:`FTMapService` to serve.  The gateway does not own it
        unless ``owns_service=True`` (then :meth:`close` closes it too).
    tenants:
        The tenant roster (:class:`TenantSpec`); at least one.
    host / port:
        Bind address; ``port=0`` picks an ephemeral port (see
        :attr:`url` after construction).
    max_queue_depth / max_concurrent / shed_retry_after_s:
        Admission-control knobs (see :class:`AdmissionController`).
    sse_poll_interval_s:
        How often the ``/events`` stream polls a job's event log.

    Use as a context manager, or :meth:`start` / :meth:`close`::

        with GatewayServer(service, [TenantSpec("acme", "key-1")]) as gw:
            client = GatewayClient(gw.url, api_key="key-1")
            ...
    """

    def __init__(
        self,
        service: FTMapService,
        tenants: Sequence[TenantSpec],
        host: str = "127.0.0.1",
        port: int = 0,
        max_queue_depth: int = 32,
        max_concurrent: Optional[int] = None,
        shed_retry_after_s: float = 1.0,
        sse_poll_interval_s: float = 0.02,
        owns_service: bool = False,
        clock=None,
    ) -> None:
        self.service = service
        self.registry = TenantRegistry(tenants, clock=clock)
        self.controller = AdmissionController(
            service,
            self.registry,
            max_queue_depth=max_queue_depth,
            max_concurrent=max_concurrent,
            shed_retry_after_s=shed_retry_after_s,
            clock=clock,
        )
        self.sse_poll_interval_s = float(sse_poll_interval_s)
        self._owns_service = owns_service
        handler = type(
            "_BoundGatewayHandler", (_GatewayHandler,), {"gateway": self}
        )
        self._httpd = ThreadingHTTPServer((host, port), handler)
        self._thread: Optional[threading.Thread] = None
        self._closed = False

    # -- lifecycle ---------------------------------------------------------------

    @property
    def address(self) -> Tuple[str, int]:
        host, port = self._httpd.server_address[:2]
        return str(host), int(port)

    @property
    def url(self) -> str:
        host, port = self.address
        return f"http://{host}:{port}"

    def start(self) -> "GatewayServer":
        """Serve on a daemon thread; returns self (chainable)."""
        if self._thread is None:
            self._thread = threading.Thread(
                target=self._httpd.serve_forever,
                kwargs={"poll_interval": 0.05},
                name="gateway-http",
                daemon=True,
            )
            self._thread.start()
        return self

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self.controller.close()
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
        if self._owns_service:
            self.service.close()

    def __enter__(self) -> "GatewayServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.close()


class _GatewayHandler(BaseHTTPRequestHandler):
    """Routes one connection; ``gateway`` is bound by class construction."""

    gateway: GatewayServer
    protocol_version = "HTTP/1.1"
    # The default server string leaks the exact Python patch level.
    server_version = "repro-gateway"
    sys_version = ""

    # -- plumbing ----------------------------------------------------------------

    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        pass  # request logging off; /v1/stats is the observability surface

    def _send_json(
        self,
        status: int,
        payload: Dict[str, object],
        extra_headers: Optional[Dict[str, str]] = None,
    ) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in (extra_headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _send_text(
        self, status: int, text: str, content_type: str = "text/plain; charset=utf-8"
    ) -> None:
        body = text.encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_error_obj(self, exc: BaseException) -> None:
        payload = error_body(exc)
        status = payload["error"]["http_status"]
        headers: Dict[str, str] = {}
        if isinstance(exc, QuotaExceededError):
            # HTTP Retry-After is integer seconds; the exact float rides
            # in the body for clients that can use the precision.
            headers["Retry-After"] = str(max(1, math.ceil(exc.retry_after_s)))
            payload["error"]["retry_after_s"] = exc.retry_after_s
        self._send_json(status, payload, headers)

    def _read_json_body(self) -> Dict[str, object]:
        length = int(self.headers.get("Content-Length") or 0)
        if length <= 0:
            raise InvalidRequestError("request needs a JSON body")
        if length > MAX_BODY_BYTES:
            raise InvalidRequestError(
                f"request body of {length} bytes exceeds the "
                f"{MAX_BODY_BYTES}-byte limit"
            )
        raw = self.rfile.read(length)
        try:
            data = json.loads(raw)
        except json.JSONDecodeError as exc:
            raise InvalidRequestError(f"malformed JSON body: {exc}") from exc
        if not isinstance(data, dict):
            raise InvalidRequestError("JSON body must be an object")
        return data

    def _authenticate(self) -> TenantSpec:
        auth = self.headers.get("Authorization") or ""
        key = None
        if auth.lower().startswith("bearer "):
            key = auth[7:].strip()
        if not key:
            key = self.headers.get("X-API-Key")
        return self.gateway.registry.authenticate(key)

    def _job_doc(self, job: GatewayJob) -> Dict[str, object]:
        n_events = len(job.handle.events()) if job.handle is not None else 0
        return {
            "schema_version": SCHEMA_VERSION,
            "job_id": job.job_id,
            "tenant": job.tenant,
            "status": job.status(),
            "events": n_events,
        }

    # -- routing -----------------------------------------------------------------

    def _method_not_allowed(self, method: str, path: str) -> None:
        self._send_json(
            405,
            {
                "error": {
                    "code": "method_not_allowed",
                    "message": f"{method} not allowed on {path}",
                    "http_status": 405,
                }
            },
        )

    def _route(self, method: str) -> None:
        try:
            path = self.path.split("?", 1)[0].rstrip("/") or "/"
            if path == "/v1/healthz":
                if method == "GET":
                    self._handle_healthz()
                else:
                    self._method_not_allowed(method, path)
                return
            tenant = self._authenticate()
            fixed = {
                "/v1/receptors": ("POST", lambda: self._handle_register(tenant)),
                "/v1/jobs": ("POST", lambda: self._handle_submit(tenant)),
                "/v1/stats": ("GET", self._handle_stats),
                "/v1/metrics": ("GET", self._handle_metrics),
            }
            if path in fixed:
                allowed, handler = fixed[path]
                if method == allowed:
                    handler()
                else:
                    self._method_not_allowed(method, path)
            else:
                match = _JOB_ROUTE.match(path)
                if match is None:
                    self._send_json(
                        404,
                        {
                            "error": {
                                "code": "not_found",
                                "message": f"no route for {method} {path}",
                                "http_status": 404,
                            }
                        },
                    )
                    return
                job_id, sub = match.group("job_id"), match.group("sub")
                if method == "GET" and sub is None:
                    self._handle_status(tenant, job_id)
                elif method == "GET" and sub == "/result":
                    self._handle_result(tenant, job_id)
                elif method == "GET" and sub == "/events":
                    self._handle_events(tenant, job_id)
                elif method == "DELETE" and sub is None:
                    self._handle_cancel(tenant, job_id)
                else:
                    self._method_not_allowed(method, path)
        except (BrokenPipeError, ConnectionResetError):
            pass  # client went away mid-response (SSE disconnects land here)
        except Exception as exc:  # every failure leaves as a typed JSON body
            try:
                self._send_error_obj(exc)
            except (BrokenPipeError, ConnectionResetError):
                pass

    def do_GET(self) -> None:  # noqa: N802 - stdlib naming
        self._route("GET")

    def do_POST(self) -> None:  # noqa: N802
        self._route("POST")

    def do_DELETE(self) -> None:  # noqa: N802
        self._route("DELETE")

    def do_PUT(self) -> None:  # noqa: N802 - 405, not the stdlib's 501
        self._route("PUT")

    def do_PATCH(self) -> None:  # noqa: N802
        self._route("PATCH")

    # -- endpoints ---------------------------------------------------------------

    def _handle_healthz(self) -> None:
        from repro import __version__

        self._send_json(
            200,
            {
                "schema_version": SCHEMA_VERSION,
                "status": "ok",
                "version": __version__,
            },
        )

    def _handle_register(self, tenant: TenantSpec) -> None:
        data = self._read_json_body()
        molecule, fingerprint = molecule_from_wire(data)
        registered = self.gateway.service.register_receptor(molecule)
        # molecule_from_wire already verified content == claimed hash, and
        # register_receptor hashes the same content, so these agree.
        assert registered == fingerprint
        self._send_json(
            201,
            {
                "schema_version": SCHEMA_VERSION,
                "receptor": fingerprint,
                "n_atoms": molecule.n_atoms,
            },
        )

    def _handle_submit(self, tenant: TenantSpec) -> None:
        data = self._read_json_body()
        request = MapRequest.from_dict(data)
        if (
            isinstance(request.receptor, str)
            and request.receptor not in self.gateway.service.registered_receptors()
        ):
            # Fail fast with the typed 404 instead of burying the unknown
            # fingerprint in a failed job the client discovers later.
            raise UnknownReceptorError(
                f"unknown receptor fingerprint {request.receptor!r}; "
                "POST it to /v1/receptors first"
            )
        job = self.gateway.controller.submit(tenant, request)
        self._send_json(202, self._job_doc(job))

    def _handle_status(self, tenant: TenantSpec, job_id: str) -> None:
        job = self.gateway.controller.job(job_id, tenant=tenant.name)
        self._send_json(200, self._job_doc(job))

    def _handle_result(self, tenant: TenantSpec, job_id: str) -> None:
        job = self.gateway.controller.job(job_id, tenant=tenant.name)
        status = job.status()
        if status == "done":
            assert job.handle is not None  # "done" means the service ran it
            result = job.handle.result(timeout=0)
            self._send_json(200, result.to_dict())
        elif status == "failed":
            if job.dispatch_error is not None:
                message = str(job.dispatch_error)
            else:
                # No dispatch error + "failed" means the handle exists and
                # carries the job's own exception.
                assert job.handle is not None
                exc = job.handle.exception()
                message = f"{type(exc).__name__}: {exc}"
            raise JobFailedError(f"job {job_id!r} failed: {message}")
        elif status == "cancelled":
            raise JobCancelledError(f"job {job_id!r} was cancelled")
        else:
            self._send_json(202, self._job_doc(job))

    def _handle_events(self, tenant: TenantSpec, job_id: str) -> None:
        """Server-sent events: replay the log, then stream until terminal."""
        job = self.gateway.controller.job(job_id, tenant=tenant.name)
        self.send_response(200)
        self.send_header("Content-Type", "text/event-stream")
        self.send_header("Cache-Control", "no-cache")
        # No Content-Length: the stream ends when the job does, so this
        # response is delimited by connection close.
        self.send_header("Connection", "close")
        self.end_headers()
        sent = 0
        while True:
            events = job.handle.events() if job.handle is not None else []
            for event in events[sent:]:
                self._write_sse("progress", event.to_dict())
            sent = len(events)
            if job.done():
                # Drain anything emitted between the snapshot and the
                # terminal check, then close with the final status.
                events = job.handle.events() if job.handle is not None else []
                for event in events[sent:]:
                    self._write_sse("progress", event.to_dict())
                self._write_sse("status", self._job_doc(job))
                break
            time.sleep(self.gateway.sse_poll_interval_s)
        self.close_connection = True

    def _write_sse(self, event: str, payload: Dict[str, object]) -> None:
        chunk = f"event: {event}\ndata: {json.dumps(payload)}\n\n"
        self.wfile.write(chunk.encode("utf-8"))
        self.wfile.flush()

    def _handle_cancel(self, tenant: TenantSpec, job_id: str) -> None:
        cancelled = self.gateway.controller.cancel(job_id, tenant=tenant.name)
        job = self.gateway.controller.job(job_id, tenant=tenant.name)
        doc = self._job_doc(job)
        doc["cancelled"] = cancelled
        self._send_json(200, doc)

    def _handle_stats(self) -> None:
        self._send_json(200, self.gateway.controller.stats())

    def _handle_metrics(self) -> None:
        # Prometheus text exposition format 0.0.4 — scrapeable by any
        # standard collector.  Auth-gated like /v1/stats: the series carry
        # per-tenant labels.
        self._send_text(
            200,
            registry().render(),
            content_type="text/plain; version=0.0.4; charset=utf-8",
        )
