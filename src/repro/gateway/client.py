"""Stdlib HTTP client for the gateway (examples, tests, load benchmark).

:class:`GatewayClient` wraps ``urllib.request`` — no dependencies — and
translates the gateway's typed JSON error bodies back into the very same
exception classes the in-process API raises
(:mod:`repro.api.errors`), so this code is transport-agnostic::

    try:
        job_id = client.submit(request)
    except QuotaExceededError as exc:
        time.sleep(exc.retry_after_s)   # the wire Retry-After, as a float

Results and events arrive as the wire documents (plain dicts matching
``MapResult.to_dict()`` / ``ProgressEvent.to_dict()``): the client is a
*thin* transport, not a re-hydrator — process-local payloads (poses,
conformations) deliberately never cross the wire.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from typing import Dict, Iterator, Optional, Tuple, Union

from repro.api.errors import (
    ApiError,
    JobTimeoutError,
    QuotaExceededError,
    error_from_code,
)
from repro.api.requests import MapRequest
from repro.gateway.wire import molecule_to_wire
from repro.structure.molecule import Molecule

__all__ = ["GatewayClient"]

#: Job states the server reports as final.
_TERMINAL = ("done", "failed", "cancelled")


class GatewayClient:
    """Client for one gateway endpoint, authenticated as one tenant."""

    def __init__(
        self,
        base_url: str,
        api_key: Optional[str] = None,
        timeout_s: float = 30.0,
    ) -> None:
        self.base_url = base_url.rstrip("/")
        self.api_key = api_key
        self.timeout_s = float(timeout_s)

    # -- transport ---------------------------------------------------------------

    def _request(
        self,
        method: str,
        path: str,
        body: Optional[Dict[str, object]] = None,
    ) -> Tuple[int, Dict[str, object]]:
        """One round trip; returns ``(status, parsed_json)``.

        4xx/5xx responses are raised as the typed error their body names
        (:func:`repro.api.errors.error_from_code`); quota sheds carry the
        body's exact ``retry_after_s`` (falling back to the integer
        ``Retry-After`` header).
        """
        data = json.dumps(body).encode("utf-8") if body is not None else None
        request = urllib.request.Request(
            self.base_url + path, data=data, method=method
        )
        request.add_header("Accept", "application/json")
        if data is not None:
            request.add_header("Content-Type", "application/json")
        if self.api_key:
            request.add_header("Authorization", f"Bearer {self.api_key}")
        try:
            with urllib.request.urlopen(request, timeout=self.timeout_s) as resp:
                payload = json.loads(resp.read().decode("utf-8"))
                return int(resp.status), payload
        except urllib.error.HTTPError as exc:
            raw = exc.read()
            try:
                payload = json.loads(raw.decode("utf-8"))
                err = payload.get("error") or {}
            except (ValueError, UnicodeDecodeError):
                err = {}
            retry_after = err.get("retry_after_s")
            if retry_after is None:
                header = exc.headers.get("Retry-After")
                retry_after = float(header) if header else None
            raise error_from_code(
                str(err.get("code", "internal_error")),
                str(err.get("message", f"HTTP {exc.code}")),
                retry_after_s=retry_after,
            ) from None

    # -- endpoints ---------------------------------------------------------------

    def healthz(self) -> Dict[str, object]:
        return self._request("GET", "/v1/healthz")[1]

    def stats(self) -> Dict[str, object]:
        return self._request("GET", "/v1/stats")[1]

    def metrics(self) -> str:
        """Fetch ``/v1/metrics`` — the Prometheus text exposition, raw.

        Unlike every other endpoint this returns plain text, not JSON;
        feed it to a Prometheus scraper or grep for a series by name.
        """
        request = urllib.request.Request(
            self.base_url + "/v1/metrics", method="GET"
        )
        if self.api_key:
            request.add_header("Authorization", f"Bearer {self.api_key}")
        try:
            with urllib.request.urlopen(request, timeout=self.timeout_s) as resp:
                body: bytes = resp.read()
                return body.decode("utf-8")
        except urllib.error.HTTPError as exc:
            raw = exc.read()
            try:
                err = json.loads(raw.decode("utf-8")).get("error") or {}
            except (ValueError, UnicodeDecodeError):
                err = {}
            raise error_from_code(
                str(err.get("code", "internal_error")),
                str(err.get("message", f"HTTP {exc.code}")),
            ) from None

    def register_receptor(self, receptor: Molecule) -> str:
        """Upload a receptor; returns its content fingerprint."""
        _, doc = self._request(
            "POST", "/v1/receptors", molecule_to_wire(receptor)
        )
        return str(doc["receptor"])

    def submit(
        self,
        request: Union[MapRequest, Dict[str, object]],
        max_retries: int = 0,
        max_retry_wait_s: float = 10.0,
    ) -> str:
        """Submit a request document; returns the job id.

        A shed submit (:class:`QuotaExceededError`) is retried up to
        ``max_retries`` times, sleeping the server's ``retry_after_s``
        each attempt (capped at ``max_retry_wait_s``); with the default
        ``max_retries=0`` the 429 propagates and backpressure is the
        caller's problem — which is exactly what a load generator wants.
        """
        body = request.to_dict() if isinstance(request, MapRequest) else request
        attempts = 0
        while True:
            try:
                _, doc = self._request("POST", "/v1/jobs", body)
                return str(doc["job_id"])
            except QuotaExceededError as exc:
                if attempts >= max_retries:
                    raise
                attempts += 1
                time.sleep(min(exc.retry_after_s, max_retry_wait_s))

    def status(self, job_id: str) -> Dict[str, object]:
        return self._request("GET", f"/v1/jobs/{job_id}")[1]

    def cancel(self, job_id: str) -> Dict[str, object]:
        return self._request("DELETE", f"/v1/jobs/{job_id}")[1]

    def result(
        self,
        job_id: str,
        timeout_s: Optional[float] = None,
        poll_interval_s: float = 0.05,
    ) -> Dict[str, object]:
        """Poll until terminal, then return the result wire document.

        Mirrors :meth:`repro.api.JobHandle.result`: raises
        :class:`JobTimeoutError` when ``timeout_s`` elapses first (the
        job keeps running), and the typed failure
        (``JobFailedError`` / ``JobCancelledError``) for a job that
        ended without a result.
        """
        deadline = (
            time.monotonic() + timeout_s if timeout_s is not None else None
        )
        while True:
            code, doc = self._request("GET", f"/v1/jobs/{job_id}/result")
            if code == 200:
                return doc
            if deadline is not None and time.monotonic() >= deadline:
                raise JobTimeoutError(
                    f"job {job_id!r} still {doc.get('status')!r} after "
                    f"{timeout_s}s (the job keeps running server-side)"
                )
            time.sleep(poll_interval_s)

    def events(self, job_id: str) -> Iterator[Tuple[str, Dict[str, object]]]:
        """Stream the job's server-sent events as ``(event, payload)``.

        Yields ``("progress", ProgressEvent.to_dict())`` per stage
        boundary, then exactly one ``("status", job_document)`` when the
        job reaches a terminal state, and returns.
        """
        request = urllib.request.Request(
            f"{self.base_url}/v1/jobs/{job_id}/events", method="GET"
        )
        request.add_header("Accept", "text/event-stream")
        if self.api_key:
            request.add_header("Authorization", f"Bearer {self.api_key}")
        try:
            resp = urllib.request.urlopen(request, timeout=self.timeout_s)
        except urllib.error.HTTPError as exc:
            raw = exc.read()
            try:
                err = json.loads(raw.decode("utf-8")).get("error") or {}
            except (ValueError, UnicodeDecodeError):
                err = {}
            raise error_from_code(
                str(err.get("code", "internal_error")),
                str(err.get("message", f"HTTP {exc.code}")),
            ) from None
        with resp:
            event_name = "message"
            for raw_line in resp:
                line = raw_line.decode("utf-8").rstrip("\n").rstrip("\r")
                if line.startswith("event:"):
                    event_name = line[6:].strip()
                elif line.startswith("data:"):
                    payload = json.loads(line[5:].strip())
                    yield event_name, payload
                    if event_name == "status":
                        return
                elif not line:
                    event_name = "message"

    def map_remote(
        self,
        request: Union[MapRequest, Dict[str, object]],
        timeout_s: Optional[float] = None,
        max_retries: int = 0,
    ) -> Dict[str, object]:
        """Sugar: submit, then wait for the result document."""
        job_id = self.submit(request, max_retries=max_retries)
        return self.result(job_id, timeout_s=timeout_s)


# Re-exported for callers that catch transport errors generically.
GatewayError = ApiError
