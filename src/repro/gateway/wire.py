"""Wire codecs of the HTTP gateway.

The gateway speaks JSON documents built from the serving API's
``to_dict`` forms (:class:`~repro.api.MapRequest`,
:class:`~repro.api.MapResult`, :class:`~repro.api.ProgressEvent`).  The
one payload those forms deliberately exclude is the receptor itself —
requests address receptors by content hash.  This module supplies the
missing half: a JSON codec for :class:`~repro.structure.molecule.Molecule`
used by ``POST /v1/receptors``, with an end-to-end integrity check.

Fidelity matters more than compactness here: Python ``float`` values
round-trip *bitwise* through ``json`` (``repr`` shortest-round-trip), so
a molecule rebuilt from its wire form hashes to the same content
fingerprint as the original.  The sender embeds its locally computed
fingerprint and the receiver recomputes it — any codec drift, truncation
or parameter-table mismatch surfaces as a typed 400 at registration time
instead of as silently different artifacts later.
"""

from __future__ import annotations

from typing import Any, Dict, Tuple

import numpy as np

from repro.api.errors import InvalidRequestError
from repro.api.requests import receptor_fingerprint
from repro.api.schema import SCHEMA_VERSION, check_schema_version
from repro.structure.molecule import BondedTopology, Molecule

__all__ = ["molecule_to_wire", "molecule_from_wire"]

_TOPOLOGY_FIELDS = ("bonds", "angles", "dihedrals", "impropers")


def molecule_to_wire(molecule: Molecule) -> Dict[str, object]:
    """JSON-ready form of a molecule (the ``POST /v1/receptors`` body).

    Serializes exactly the content the fingerprint hashes — coordinates,
    type names, charges and bonded topology (per-atom LJ/ACE parameters
    re-derive from the type names) — plus the sender-side fingerprint for
    the receiver's integrity check.  Molecules whose parameters were
    resolved against a *non-default* force field are rejected: the
    receiver reconstructs against the shared default table, and a custom
    table would silently re-parameterize the molecule.
    """
    from repro.structure.forcefield import default_forcefield

    if molecule.forcefield is not default_forcefield():
        raise InvalidRequestError(
            "only molecules parameterized against the default force field "
            "serialize over the wire; custom force-field tables do not travel"
        )
    topo = molecule.topology
    return {
        "schema_version": SCHEMA_VERSION,
        "name": molecule.name,
        "coords": [[float(x) for x in row] for row in molecule.coords],
        "type_names": list(molecule.type_names),
        "charges": [float(q) for q in molecule.charges],
        "topology": {
            name: [[int(i) for i in row] for row in getattr(topo, name)]
            for name in _TOPOLOGY_FIELDS
        },
        "fingerprint": receptor_fingerprint(molecule),
    }


def molecule_from_wire(data: Dict[str, Any]) -> Tuple[Molecule, str]:
    """Rebuild a molecule from :func:`molecule_to_wire` output.

    Returns ``(molecule, fingerprint)`` where the fingerprint was
    *recomputed* from the rebuilt molecule.  If the document carries the
    sender's fingerprint (it always does when produced by
    :func:`molecule_to_wire`), a mismatch raises
    :class:`~repro.api.errors.InvalidRequestError` — the content that
    arrived is not the content the sender hashed.
    """
    check_schema_version(data, "Molecule")
    known = {
        "schema_version",
        "name",
        "coords",
        "type_names",
        "charges",
        "topology",
        "fingerprint",
    }
    unknown = sorted(set(data) - known)
    if unknown:
        raise InvalidRequestError(f"unknown Molecule field(s): {unknown}")
    for field in ("coords", "type_names"):
        if field not in data:
            raise InvalidRequestError(f"Molecule document needs {field!r}")
    topo_data = data.get("topology") or {}
    if not isinstance(topo_data, dict):
        raise InvalidRequestError("Molecule.topology must be an object")
    unknown_topo = sorted(set(topo_data) - set(_TOPOLOGY_FIELDS))
    if unknown_topo:
        raise InvalidRequestError(
            f"unknown Molecule.topology field(s): {unknown_topo}"
        )
    try:
        topology = BondedTopology(
            **{
                name: np.asarray(topo_data.get(name, []), dtype=np.intp)
                for name in _TOPOLOGY_FIELDS
            }
        )
        charges = data.get("charges")
        molecule = Molecule(
            coords=np.asarray(data["coords"], dtype=float),
            type_names=list(data["type_names"]),
            charges=(
                np.asarray(charges, dtype=float)
                if charges is not None
                else None
            ),
            topology=topology,
            name=str(data.get("name", "molecule")),
        )
    except (TypeError, ValueError, KeyError) as exc:
        raise InvalidRequestError(f"malformed Molecule document: {exc}") from exc
    fingerprint = receptor_fingerprint(molecule)
    claimed = data.get("fingerprint")
    if claimed is not None and claimed != fingerprint:
        raise InvalidRequestError(
            "Molecule fingerprint mismatch: the document claims "
            f"{str(claimed)[:16]}… but its content hashes to "
            f"{fingerprint[:16]}… (corrupt or re-encoded payload)"
        )
    return molecule, fingerprint
