"""Tenancy: API keys, per-tenant limits, request-rate token buckets.

A *tenant* is one paying consumer of the gateway: a named principal with
an API key, a sustained request rate + burst allowance (token bucket), a
cap on how many of its jobs may be in flight at once, and a scheduling
priority.  The :class:`TenantRegistry` resolves the ``Authorization``
header to a tenant and owns each tenant's live bucket; everything
enforcement-shaped (queues, shedding, counters) lives in
:mod:`repro.gateway.admission`.

Clocks are injectable throughout so quota behavior is deterministic
under test — production uses ``time.monotonic``.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, Optional

from repro.api.errors import AuthenticationError, InvalidRequestError

__all__ = ["TenantSpec", "TokenBucket", "TenantRegistry"]


@dataclass(frozen=True)
class TenantSpec:
    """Declared limits of one tenant.

    ``rate``/``burst`` parameterize the request token bucket (sustained
    requests per second and the instantaneous allowance); a tenant may
    have at most ``max_in_flight`` jobs admitted-but-unfinished (queued
    or running) at once.  ``priority`` orders the admission queue —
    *lower* values dispatch first (0 = most urgent), ties FIFO.
    """

    name: str
    api_key: str
    rate: float = 10.0
    burst: int = 10
    max_in_flight: int = 4
    priority: int = 10

    def __post_init__(self) -> None:
        if not self.name:
            raise InvalidRequestError("tenant name must be non-empty")
        if not self.api_key:
            raise InvalidRequestError(f"tenant {self.name!r} needs an api_key")
        if not (self.rate > 0):
            raise InvalidRequestError(
                f"tenant {self.name!r}: rate must be positive, got {self.rate}"
            )
        if self.burst < 1:
            raise InvalidRequestError(
                f"tenant {self.name!r}: burst must be >= 1, got {self.burst}"
            )
        if self.max_in_flight < 1:
            raise InvalidRequestError(
                f"tenant {self.name!r}: max_in_flight must be >= 1, "
                f"got {self.max_in_flight}"
            )


class TokenBucket:
    """Classic token bucket: ``rate`` tokens/s refill, ``burst`` capacity.

    :meth:`try_acquire` is non-blocking: it returns ``0.0`` when a token
    was taken and otherwise the seconds until one *will* be available —
    exactly the number a gateway ships as ``Retry-After``.  Thread-safe.
    """

    def __init__(
        self,
        rate: float,
        burst: int,
        clock: Optional[Callable[[], float]] = None,
    ) -> None:
        if not (rate > 0):
            raise InvalidRequestError(f"rate must be positive, got {rate}")
        if burst < 1:
            raise InvalidRequestError(f"burst must be >= 1, got {burst}")
        self.rate = float(rate)
        self.burst = int(burst)
        self._clock = clock if clock is not None else time.monotonic
        self._tokens = float(burst)
        self._stamp = self._clock()
        self._lock = threading.Lock()

    def _refill_locked(self) -> None:
        # Caller holds self._lock (the *_locked naming convention REPRO-LOCK
        # checks callers against).
        now = self._clock()
        elapsed = max(0.0, now - self._stamp)
        self._stamp = now
        self._tokens = min(self.burst, self._tokens + elapsed * self.rate)

    def try_acquire(self) -> float:
        """Take one token if available; else seconds until the next one."""
        with self._lock:
            self._refill_locked()
            if self._tokens >= 1.0:
                self._tokens -= 1.0
                return 0.0
            return (1.0 - self._tokens) / self.rate

    def available(self) -> float:
        """Current token count (refilled to now); for stats/tests."""
        with self._lock:
            self._refill_locked()
            return self._tokens


class TenantRegistry:
    """API-key -> tenant resolution plus each tenant's live bucket."""

    def __init__(
        self,
        tenants: Iterable[TenantSpec],
        clock: Optional[Callable[[], float]] = None,
    ) -> None:
        specs = list(tenants)
        if not specs:
            raise InvalidRequestError("a gateway needs at least one tenant")
        names = [t.name for t in specs]
        if len(set(names)) != len(names):
            raise InvalidRequestError(f"duplicate tenant names in {names}")
        keys = [t.api_key for t in specs]
        if len(set(keys)) != len(keys):
            raise InvalidRequestError("tenants must have distinct api_keys")
        self._by_key: Dict[str, TenantSpec] = {t.api_key: t for t in specs}
        self._by_name: Dict[str, TenantSpec] = {t.name: t for t in specs}
        self._buckets: Dict[str, TokenBucket] = {
            t.name: TokenBucket(t.rate, t.burst, clock=clock) for t in specs
        }

    def authenticate(self, api_key: Optional[str]) -> TenantSpec:
        """Resolve an API key; missing/unknown keys raise 401-typed errors."""
        if not api_key:
            raise AuthenticationError(
                "missing API key; send 'Authorization: Bearer <key>' "
                "or 'X-API-Key: <key>'"
            )
        tenant = self._by_key.get(api_key)
        if tenant is None:
            raise AuthenticationError("unknown API key")
        return tenant

    def tenant(self, name: str) -> TenantSpec:
        return self._by_name[name]

    def bucket(self, name: str) -> TokenBucket:
        return self._buckets[name]

    def names(self) -> list:
        return list(self._by_name)
