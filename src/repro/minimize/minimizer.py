"""Iterative energy minimizer (FTMap phase 2 driver).

"Energy minimization is an iterative process ... computing the potential
energy of the complex at a point, updating the forces acting on the atoms,
and adjusting the atom-coordinates according to the total forces acting on
them ... repeated for many iterations until the energy of the system
converges to within a threshold."  (Sec. II.B)

We implement steepest descent with a backtracking line search (guaranteed
monotone energy decrease), a movable-atom mask (FTMap frees the probe and
nearby side chains while the protein core stays rigid), and the paper's
neighbor-list refresh policy (lists checked, and rebuilt only when stale —
"a few times per 1000 minimization iterations").

The per-iteration task breakdown matches Sec. IV: (i) self energies,
(ii) pairwise interactions, (iii) van der Waals, (iv) gradients, (v) force
updates — all inside ``EnergyModel.evaluate`` — and (vi) the optimization
move and coordinate update, which stays "on the host" here too.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional

import numpy as np

from repro.constants import MINIMIZER_MAX_ITER, MINIMIZER_TOLERANCE
from repro.minimize.energy import EnergyModel, EnergyReport

__all__ = ["MinimizerConfig", "MinimizationResult", "Minimizer"]


@dataclass(frozen=True)
class MinimizerConfig:
    """Minimization hyper-parameters.

    ``initial_step`` is in Angstrom per unit normalized force; backtracking
    halves the step until the energy decreases (up to ``max_backtracks``),
    and a successful step grows the next trial step by ``growth``.

    ``method`` selects steepest descent (``"sd"``, the paper's simple
    per-iteration move) or Polak-Ribiere conjugate gradient (``"cg"``, the
    classic CHARMM refinement minimizer); CG typically reaches the same
    energy in fewer iterations, at identical per-iteration kernel cost —
    which is why the GPU mapping is agnostic to the choice.
    """

    max_iterations: int = MINIMIZER_MAX_ITER
    tolerance: float = MINIMIZER_TOLERANCE
    initial_step: float = 0.05
    max_backtracks: int = 12
    growth: float = 1.2
    max_step: float = 0.5
    check_neighbor_list_every: int = 25
    method: str = "sd"
    cg_restart_every: int = 20

    def __post_init__(self) -> None:
        if self.max_iterations < 1:
            raise ValueError("max_iterations must be >= 1")
        if self.tolerance <= 0 or self.initial_step <= 0:
            raise ValueError("tolerance and initial_step must be positive")
        if self.method not in ("sd", "cg"):
            raise ValueError(f"unknown method {self.method!r}")
        if self.cg_restart_every < 1:
            raise ValueError("cg_restart_every must be >= 1")


@dataclass
class MinimizationResult:
    """Outcome of one minimization run."""

    coords: np.ndarray
    energy: float
    initial_energy: float
    iterations: int
    converged: bool
    energy_trajectory: List[float] = field(default_factory=list)
    list_rebuilds: int = 0
    final_report: Optional[EnergyReport] = None

    @property
    def energy_drop(self) -> float:
        return self.initial_energy - self.energy


class Minimizer:
    """Steepest-descent minimizer over an :class:`EnergyModel`.

    Parameters
    ----------
    model:
        Energy model for the complex.
    movable:
        Optional boolean mask of atoms free to move; frozen atoms keep their
        coordinates and feel no position updates (their force contributions
        to movable atoms are still exact).  Default: all movable.
    config:
        :class:`MinimizerConfig`.
    """

    def __init__(
        self,
        model: EnergyModel,
        movable: np.ndarray | None = None,
        config: MinimizerConfig | None = None,
    ) -> None:
        self.model = model
        n = model.molecule.n_atoms
        if movable is None:
            # Inherit the model's movable mask (the pair filter and the
            # position updates must agree on who moves).
            movable = model.movable if model.movable is not None else np.ones(n, dtype=bool)
        movable = np.asarray(movable, dtype=bool)
        if movable.shape != (n,):
            raise ValueError(f"movable mask must be ({n},)")
        self.movable = movable
        self.config = config or MinimizerConfig()

    def run(
        self,
        coords: np.ndarray | None = None,
        callback: Optional[Callable[[int, EnergyReport], None]] = None,
    ) -> MinimizationResult:
        """Minimize from ``coords`` (default: the molecule's own coordinates).

        ``callback(iteration, report)`` fires after each accepted step,
        which the performance harness uses to meter per-iteration work.
        """
        cfg = self.config
        x = np.array(
            self.model.molecule.coords if coords is None else coords, dtype=float
        )
        rebuilds_before = self.model.list_rebuilds
        report = self.model.evaluate(x)
        energy = report.total
        initial_energy = energy
        trajectory = [energy]
        step = cfg.initial_step
        converged = False
        iterations = 0
        prev_forces: Optional[np.ndarray] = None
        prev_direction: Optional[np.ndarray] = None

        for it in range(1, cfg.max_iterations + 1):
            iterations = it
            forces = report.forces.copy()
            forces[~self.movable] = 0.0
            fmax = float(np.abs(forces).max())
            if fmax == 0.0:
                converged = True
                break

            if cfg.method == "cg" and prev_forces is not None and (
                it % cfg.cg_restart_every != 0
            ):
                # Polak-Ribiere beta, clipped at 0 (automatic restart).
                num = float(((forces - prev_forces) * forces).sum())
                den = float((prev_forces * prev_forces).sum())
                beta = max(0.0, num / den) if den > 0 else 0.0
                raw = forces + beta * prev_direction
                # Fall back to steepest descent if CG points uphill.
                if float((raw * forces).sum()) <= 0:
                    raw = forces
            else:
                raw = forces
            prev_forces = forces
            prev_direction = raw
            dmax = float(np.abs(raw).max())
            direction = raw / dmax  # normalized descent direction

            # Backtracking line search: shrink until energy decreases.
            accepted = False
            trial_step = min(step, cfg.max_step)
            for _ in range(cfg.max_backtracks):
                x_trial = x + trial_step * direction
                e_trial = self.model.energy_only(x_trial)
                if e_trial < energy:
                    accepted = True
                    break
                trial_step *= 0.5
            if not accepted:
                converged = True  # no downhill step representable
                break

            x = x_trial
            prev_energy = energy
            energy = e_trial
            step = min(trial_step * cfg.growth, cfg.max_step)

            if it % cfg.check_neighbor_list_every == 0:
                self.model.maybe_refresh(x)

            report = self.model.evaluate(x)
            # Keep the line-search energy authoritative; evaluate() may
            # differ slightly after a list refresh.
            energy = report.total
            trajectory.append(energy)
            if callback is not None:
                callback(it, report)
            if abs(prev_energy - energy) < cfg.tolerance:
                converged = True
                break

        return MinimizationResult(
            coords=x,
            energy=energy,
            initial_energy=initial_energy,
            iterations=iterations,
            converged=converged,
            energy_trajectory=trajectory,
            list_rebuilds=self.model.list_rebuilds - rebuilds_before,
            final_report=report,
        )
