"""Total-energy assembly: Eq. (3) with per-term decomposition and forces.

``E_total = (E_vdw + E_elec)  [non-bonded]  +  (E_bond + E_angle +
E_torsion + E_improper)  [bonded]``

The non-bonded terms are evaluated over the neighbor list (built once and
refreshed only when atoms drift, per the paper's "seldom updated" policy);
E_elec is the ACE model: per-atom self energies (Eqs. 5-6) feeding effective
Born radii feeding the GB pairwise term (Eq. 7).

Forces are analytic with the frozen-alpha approximation (Born radii are
treated as constants within one force evaluation; see ``repro.minimize.ace``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.constants import NEIGHBOR_LIST_CUTOFF, VDW_CUTOFF
from repro.minimize.ace import (
    ace_self_energies,
    born_radii_from_self_energies,
    gb_pairwise_energy,
)
from repro.minimize.bonded import (
    angle_energy,
    bond_energy,
    dihedral_energy,
    improper_energy,
)
from repro.minimize.neighborlist import (
    NeighborList,
    bonded_exclusions,
    build_neighbor_list,
)
from repro.minimize.vdw import vdw_energy
from repro.structure.molecule import Molecule

__all__ = ["EnergyReport", "EnergyModel", "resolve_bonded_params", "geometry_equilibria"]


def resolve_bonded_params(molecule: Molecule) -> Dict[str, np.ndarray]:
    """Per-term bonded parameter arrays for one molecule's topology.

    Shared by :class:`EnergyModel` and the ensemble evaluator
    (:class:`repro.minimize.ensemble.EnsembleEnergyModel`): the parameters
    depend only on topology and build geometry, so every conformation of the
    same complex reuses one resolution.
    """
    ff = molecule.forcefield
    topo = molecule.topology
    t = molecule.type_names

    kb = np.array([ff.bond_param(t[i], t[j]).kb for i, j in topo.bonds])
    r0 = np.array([ff.bond_param(t[i], t[j]).r0 for i, j in topo.bonds])
    ka = np.array([ff.angle_param(t[i], t[j], t[k]).ka for i, j, k in topo.angles])
    th0 = np.array(
        [ff.angle_param(t[i], t[j], t[k]).theta0 for i, j, k in topo.angles]
    )
    if molecule.meta.get("calibrate_bonded_equilibrium"):
        r0, th0, psi0_cal = geometry_equilibria(molecule)
    else:
        psi0_cal = None
    kd = np.array(
        [ff.dihedral_param(t[i], t[j], t[k], t[l]).kd for i, j, k, l in topo.dihedrals]
    )
    nmul = np.array(
        [ff.dihedral_param(t[i], t[j], t[k], t[l]).n for i, j, k, l in topo.dihedrals],
        dtype=float,
    )
    delt = np.array(
        [ff.dihedral_param(t[i], t[j], t[k], t[l]).delta for i, j, k, l in topo.dihedrals]
    )
    ki = np.array(
        [ff.improper_param(t[i], t[j], t[k], t[l]).ka for i, j, k, l in topo.impropers]
    )
    psi0 = np.array(
        [ff.improper_param(t[i], t[j], t[k], t[l]).theta0 for i, j, k, l in topo.impropers]
    )
    if psi0_cal is not None:
        psi0 = psi0_cal
    return dict(kb=kb, r0=r0, ka=ka, th0=th0, kd=kd, nmul=nmul, delt=delt, ki=ki, psi0=psi0)


def geometry_equilibria(molecule: Molecule):
    """Bond/angle/improper equilibria measured from the build geometry."""
    from repro.minimize.bonded import _dihedral_angle_and_grads

    c = molecule.coords
    topo = molecule.topology
    if len(topo.bonds):
        d = c[topo.bonds[:, 0]] - c[topo.bonds[:, 1]]
        r0 = np.linalg.norm(d, axis=1)
    else:
        r0 = np.empty(0)
    if len(topo.angles):
        rij = c[topo.angles[:, 0]] - c[topo.angles[:, 1]]
        rkj = c[topo.angles[:, 2]] - c[topo.angles[:, 1]]
        cos_t = (rij * rkj).sum(axis=1) / (
            np.linalg.norm(rij, axis=1) * np.linalg.norm(rkj, axis=1)
        )
        th0 = np.arccos(np.clip(cos_t, -1.0, 1.0))
    else:
        th0 = np.empty(0)
    if len(topo.impropers):
        psi0, _ = _dihedral_angle_and_grads(c, topo.impropers)
    else:
        psi0 = np.empty(0)
    return r0, th0, psi0


@dataclass
class EnergyReport:
    """Decomposed energy evaluation at one configuration.

    ``components`` keys: ``elec_self``, ``elec_pairwise``, ``vdw``,
    ``bond``, ``angle``, ``dihedral``, ``improper``.  ``forces`` is the
    negative gradient; ``per_atom_nonbonded`` is the paper's per-atom energy
    array (self + half-split pairwise + half-split vdw).
    """

    total: float
    components: Dict[str, float]
    forces: np.ndarray
    per_atom_nonbonded: np.ndarray
    born_radii: np.ndarray

    @property
    def nonbonded(self) -> float:
        c = self.components
        return c["elec_self"] + c["elec_pairwise"] + c["vdw"]

    @property
    def bonded(self) -> float:
        c = self.components
        return c["bond"] + c["angle"] + c["dihedral"] + c["improper"]


class EnergyModel:
    """Evaluates the CHARMM/ACE potential for one molecule (complex).

    Parameters
    ----------
    molecule:
        The protein-probe complex (or any molecule with parameters).
    movable:
        Optional boolean mask of atoms free to move.  When given, the
        non-bonded pair set is restricted to pairs touching at least one
        movable atom — frozen-frozen interactions are constant during
        minimization, and dropping them is what brings a 2200-atom complex
        down to the paper's ~10,000 pair interactions per term (Sec. V.B).
        The constant frozen-frozen energy is simply not reported.
    nonbonded_cutoff:
        Interaction cutoff for vdW smoothing (Angstrom).
    list_cutoff:
        Neighbor-list cutoff (slightly larger, so lists stay valid).
    dtype:
        Arithmetic precision — ``np.float64`` (default, the historical
        serial behavior) or ``np.float32`` (the paper's GPU arithmetic,
        now available on the serial path too; mirrors the ensemble
        model's ``precision="single"``).  Coordinates and parameters are
        cast once; neighbor lists are always built in float64.
    energies_only:
        When True (default), :meth:`energy_only` uses the kernels'
        energies-only fast path — skipping every gradient and
        per-atom-split computation during line searches.  The energy
        values are computed by the same operations in the same order as
        :meth:`evaluate`, so minimization trajectories are bitwise
        identical; only the per-iteration cost changes.  Set False to
        restore the historical full-evaluation line search (the fixed
        pre-re-baselining cost profile).

    If ``molecule.meta['calibrate_bonded_equilibrium']`` is set, bonded
    equilibrium values (r0, theta0, psi0) are taken from the molecule's
    build-time geometry instead of the generic force-field constants —
    synthetic structures are their own bonded minimum (DESIGN.md).

    The neighbor list is built lazily on first evaluation and refreshed by
    :meth:`maybe_refresh` when any listed pair stretches 20% past the list
    cutoff — matching the paper's policy that list updates happen "only a
    few times per 1000 minimization iterations".
    """

    def __init__(
        self,
        molecule: Molecule,
        movable: np.ndarray | None = None,
        nonbonded_cutoff: float = VDW_CUTOFF,
        list_cutoff: float = NEIGHBOR_LIST_CUTOFF,
        dtype: np.dtype | type = np.float64,
        energies_only: bool = True,
    ) -> None:
        dt = np.dtype(dtype)
        if dt not in (np.dtype(np.float32), np.dtype(np.float64)):
            raise ValueError(f"dtype must be float32 or float64, got {dt}")
        self.dtype = dt
        self.energies_only = energies_only
        self.molecule = molecule
        self.nonbonded_cutoff = nonbonded_cutoff
        self.list_cutoff = list_cutoff
        self.exclusions = bonded_exclusions(molecule.topology)
        self._nlist: Optional[NeighborList] = None
        self._active: Optional[tuple] = None
        self.list_rebuilds = 0
        if movable is not None:
            movable = np.asarray(movable, dtype=bool)
            if movable.shape != (molecule.n_atoms,):
                raise ValueError(f"movable mask must be ({molecule.n_atoms},)")
        self.movable = movable
        self._bonded_params = self._resolve_bonded_params()
        # Parameters cast once to the model dtype (a no-op view at fp64).
        self._params = {
            "charges": np.asarray(molecule.charges, dtype=dt),
            "born": np.asarray(molecule.born_radii, dtype=dt),
            "volumes": np.asarray(molecule.volumes, dtype=dt),
            "eps": np.asarray(molecule.eps, dtype=dt),
            "rm": np.asarray(molecule.rm, dtype=dt),
        }
        self._bonded_params = {
            key: np.asarray(val, dtype=dt) for key, val in self._bonded_params.items()
        }

    # -- neighbor list management ------------------------------------------------

    def neighbor_list(self, coords: np.ndarray | None = None) -> NeighborList:
        """Current neighbor list, building it on first use."""
        if self._nlist is None:
            c = self.molecule.coords if coords is None else coords
            self._nlist = build_neighbor_list(c, self.list_cutoff, self.exclusions)
            self._active = None
            self.list_rebuilds += 1
        return self._nlist

    def active_pairs(self, coords: np.ndarray | None = None):
        """(pair_i, pair_j) actually evaluated: movable-filtered half list."""
        nlist = self.neighbor_list(coords)
        if self._active is None:
            i, j = nlist.pair_arrays()
            if self.movable is not None:
                keep = self.movable[i] | self.movable[j]
                i, j = i[keep], j[keep]
            self._active = (i, j)
        return self._active

    @property
    def n_active_pairs(self) -> int:
        i, _ = self.active_pairs()
        return len(i)

    def maybe_refresh(self, coords: np.ndarray) -> bool:
        """Rebuild the neighbor list if any pair drifted out of validity.

        Returns True when a rebuild happened (the event that forces the GPU
        pipeline to regenerate and re-upload assignment tables).
        """
        nlist = self.neighbor_list(coords)
        if not nlist.max_distance_ok(coords):
            self.force_refresh(coords)
            return True
        return False

    def force_refresh(self, coords: np.ndarray) -> None:
        self._nlist = build_neighbor_list(coords, self.list_cutoff, self.exclusions)
        self._active = None
        self.list_rebuilds += 1

    # -- bonded parameter resolution -----------------------------------------------

    def _resolve_bonded_params(self):
        return resolve_bonded_params(self.molecule)

    # -- evaluation ------------------------------------------------------------------

    def evaluate(self, coords: np.ndarray | None = None) -> EnergyReport:
        """Full energy, decomposition, per-atom array, and forces."""
        m = self.molecule
        c = np.asarray(m.coords if coords is None else coords, dtype=self.dtype)
        pair_i, pair_j = self.active_pairs(c)
        t = self._params

        # (i) self energies + gradients (GPU kernel (a) in the paper)
        self_res = ace_self_energies(
            c, t["charges"], t["born"], t["volumes"], pair_i, pair_j
        )
        e_self = float(self_res.self_energies.sum())

        # Effective Born radii for the GB pairwise term
        alphas = born_radii_from_self_energies(
            self_res.self_energies, t["charges"], t["born"]
        )

        # (ii)+(iii) pairwise elec + vdw (GPU kernel (b))
        e_gb, per_atom_gb, grad_gb = gb_pairwise_energy(
            c, t["charges"], alphas, pair_i, pair_j
        )
        e_vdw, per_atom_vdw, grad_vdw = vdw_energy(
            c, t["eps"], t["rm"], pair_i, pair_j, self.nonbonded_cutoff
        )

        # Bonded terms (host side)
        p = self._bonded_params
        e_bond, g_bond = bond_energy(c, m.topology.bonds, p["kb"], p["r0"])
        e_angle, g_angle = angle_energy(c, m.topology.angles, p["ka"], p["th0"])
        e_dih, g_dih = dihedral_energy(
            c, m.topology.dihedrals, p["kd"], p["nmul"], p["delt"]
        )
        e_imp, g_imp = improper_energy(c, m.topology.impropers, p["ki"], p["psi0"])

        components = {
            "elec_self": e_self,
            "elec_pairwise": e_gb,
            "vdw": e_vdw,
            "bond": e_bond,
            "angle": e_angle,
            "dihedral": e_dih,
            "improper": e_imp,
        }
        total = float(sum(components.values()))
        gradient = (
            self_res.gradient + grad_gb + grad_vdw + g_bond + g_angle + g_dih + g_imp
        )
        per_atom = self_res.self_energies + per_atom_gb + per_atom_vdw
        return EnergyReport(
            total=total,
            components=components,
            forces=-gradient,
            per_atom_nonbonded=per_atom,
            born_radii=alphas,
        )

    def energy_only(self, coords: np.ndarray | None = None) -> float:
        """Total energy (used by line searches).

        With ``energies_only`` (the default) this skips every gradient and
        per-atom-split computation via the kernels' ``with_gradient`` /
        ``energies_only`` fast paths.  Each kernel computes its energy total
        *before* branching on those flags, and the seven components are
        summed here in the same order as :meth:`evaluate`, so the returned
        value — and every line-search decision made from it — is bitwise
        identical to the full evaluation.  (This brings the serial path to
        parity with ``EnsembleEnergyModel.energy_only``; the historical
        always-full behavior remains available via ``energies_only=False``
        and is what the pre-re-baselining benchmark floors measured.)
        """
        if not self.energies_only:
            return self.evaluate(coords).total
        m = self.molecule
        c = np.asarray(m.coords if coords is None else coords, dtype=self.dtype)
        pair_i, pair_j = self.active_pairs(c)
        t = self._params

        self_res = ace_self_energies(
            c, t["charges"], t["born"], t["volumes"], pair_i, pair_j,
            with_gradient=False,
        )
        e_self = float(self_res.self_energies.sum())
        alphas = born_radii_from_self_energies(
            self_res.self_energies, t["charges"], t["born"]
        )
        e_gb, _, _ = gb_pairwise_energy(
            c, t["charges"], alphas, pair_i, pair_j, energies_only=True
        )
        e_vdw, _, _ = vdw_energy(
            c, t["eps"], t["rm"], pair_i, pair_j, self.nonbonded_cutoff,
            energies_only=True,
        )
        p = self._bonded_params
        e_bond, _ = bond_energy(
            c, m.topology.bonds, p["kb"], p["r0"], with_gradient=False
        )
        e_angle, _ = angle_energy(
            c, m.topology.angles, p["ka"], p["th0"], with_gradient=False
        )
        e_dih, _ = dihedral_energy(
            c, m.topology.dihedrals, p["kd"], p["nmul"], p["delt"],
            with_gradient=False,
        )
        e_imp, _ = improper_energy(
            c, m.topology.impropers, p["ki"], p["psi0"], with_gradient=False
        )
        # Same accumulation sequence as evaluate()'s sum over components.
        return float(
            sum((e_self, e_gb, e_vdw, e_bond, e_angle, e_dih, e_imp))
        )
