"""Scatter-accumulation helpers for the per-pair energy kernels.

Every non-bonded and bonded term ends with the same operation: per-pair
3-vector gradient contributions scattered into per-atom rows ("the forces
acting on the atoms", Sec. II.B).  ``np.ufunc.at`` performs this with a
Python-level fancy-index loop that dominates the evaluator's runtime; a
per-component ``np.bincount`` computes the identical per-atom sums through
a single C loop, 4-6x faster at typical pair counts.

Semantics: ``np.bincount`` accumulates weights in input order, exactly like
``np.add.at``, so each atom's partial sums are added in the same sequence;
only the final combination of the add- and subtract-side partial sums
re-associates (one vector add instead of interleaved in-place updates) —
a summation-order-level floating-point difference, like every accumulation
restructuring in the paper's GPU schemes.
"""

from __future__ import annotations

import numpy as np

__all__ = ["as_float_array", "scatter_add_rows", "scatter_sub_rows"]


def as_float_array(x: np.ndarray) -> np.ndarray:
    """``x`` as a floating array, *preserving* float32/float64.

    The energy kernels historically forced float64; the batched ensemble
    path evaluates in float32 (the paper's GPU arithmetic), so the kernels
    now compute in whatever floating dtype the caller supplies.
    """
    x = np.asarray(x)
    if not np.issubdtype(x.dtype, np.floating):
        x = x.astype(float)
    return x


def scatter_add_rows(out: np.ndarray, idx: np.ndarray, rows: np.ndarray) -> None:
    """``out[idx[k]] += rows[k]`` for (N, 3) ``out`` and (P, 3) ``rows``."""
    n = len(out)
    for c in range(out.shape[1]):
        out[:, c] += np.bincount(idx, weights=rows[:, c], minlength=n)


def scatter_sub_rows(out: np.ndarray, idx: np.ndarray, rows: np.ndarray) -> None:
    """``out[idx[k]] -= rows[k]`` for (N, 3) ``out`` and (P, 3) ``rows``."""
    n = len(out)
    for c in range(out.shape[1]):
        out[:, c] -= np.bincount(idx, weights=rows[:, c], minlength=n)
