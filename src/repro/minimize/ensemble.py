"""Vectorized ensemble energy evaluation: many conformations, one topology.

FTMap's minimization phase refines ~2000 docked conformations of the *same*
receptor+probe complex (Sec. II.B) — the serial code builds a fresh
:class:`~repro.minimize.energy.EnergyModel` per conformation and walks the
pair terms one pose at a time.  :class:`EnsembleEnergyModel` instead stacks
``P`` same-topology conformations into one ``(P, N, 3)`` array, offsets each
pose's pair and bonded index arrays into its own ``N``-atom block, and
evaluates Eqs. (3)-(10) once over the concatenated arrays.

Exactness: pose ``k``'s pair list is the list its own serial
:class:`EnergyModel` would build (per-pose neighbor lists, per-pose movable
filters, the same "seldom updated" refresh policy), and pairs never cross
pose blocks, so per-pose energies, components, and forces match the serial
reference to summation-order-level floating point.  What changes is the
*number of NumPy dispatches* per evaluation — one vectorized pass instead of
``P`` — which is where the batched minimizer's wall-clock win comes from.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.constants import NEIGHBOR_LIST_CUTOFF, VDW_CUTOFF
from repro.minimize.ace import (
    ace_self_energies,
    born_radii_from_self_energies,
    gb_pairwise_energy,
)
from repro.minimize.bonded import (
    angle_energy,
    bond_energy,
    dihedral_energy,
    improper_energy,
)
from repro.minimize.energy import resolve_bonded_params
from repro.minimize.neighborlist import (
    NeighborList,
    SharedNeighborCore,
    bonded_exclusions,
    build_neighbor_list,
)
from repro.minimize.vdw import vdw_energy
from repro.structure.molecule import Molecule

__all__ = ["EnsembleEnergyReport", "EnsembleEnergyModel"]


@dataclass
class EnsembleEnergyReport:
    """Decomposed evaluation of a stack of conformations.

    All arrays are aligned with ``pose_ids`` (the ensemble slots evaluated,
    in order); ``components`` holds the same seven keys as
    :class:`~repro.minimize.energy.EnergyReport`, each as a ``(K,)`` array.
    """

    pose_ids: np.ndarray                # (K,)
    totals: np.ndarray                  # (K,)
    components: Dict[str, np.ndarray]   # each (K,)
    forces: np.ndarray                  # (K, N, 3)
    per_atom_nonbonded: np.ndarray      # (K, N)
    born_radii: np.ndarray              # (K, N)

    @property
    def n_poses(self) -> int:
        return len(self.pose_ids)


class EnsembleEnergyModel:
    """Evaluates the CHARMM/ACE potential for a stack of conformations.

    Parameters
    ----------
    molecule:
        Template complex: topology, force-field parameters, and (when
        ``meta['calibrate_bonded_equilibrium']`` is set) the build geometry
        the bonded equilibria are measured from.  All conformations share
        this topology.
    coords_stack:
        ``(P, N, 3)`` start coordinates, one conformation per row.  Pose
        neighbor lists are built lazily from the first coordinates each pose
        is evaluated at (mirroring ``EnergyModel``'s lazy first build).
    movable:
        Optional movable mask — ``(N,)`` shared by every pose, or ``(P, N)``
        per pose (FTMap's pocket masks depend on where the probe docked).
        Pair lists are movable-filtered per pose exactly like the serial
        model.
    nonbonded_cutoff, list_cutoff:
        As in :class:`~repro.minimize.energy.EnergyModel`.
    precision:
        ``"double"`` (default) evaluates in float64 and matches the serial
        model to summation order; ``"single"`` evaluates the stacked arrays
        in float32 — the paper's GPU arithmetic, and the batched engine's
        production configuration (mirroring the docking side's fp32 batched
        FFT path).  Neighbor lists are always built in float64.
    core_atoms:
        Number of leading atoms shared (bitwise) by every pose — the
        receptor block of an FTMap ensemble.  Defaults to
        ``n_atoms - molecule.meta["n_probe_atoms"]`` when that metadata is
        present, else 0.  When ``0 < core_atoms < n_atoms``, the core-core
        half list is built once per ensemble (:class:`SharedNeighborCore`)
        and each pose list is derived from its probe-environment delta —
        identical pairs, ~P-fold less build work.  Any pose whose core
        block differs from the shared core (receptor moved) silently falls
        back to a full per-pose build, so the optimization never changes
        results.  Pass ``0`` to disable sharing.
    """

    def __init__(
        self,
        molecule: Molecule,
        coords_stack: np.ndarray,
        movable: np.ndarray | None = None,
        nonbonded_cutoff: float = VDW_CUTOFF,
        list_cutoff: float = NEIGHBOR_LIST_CUTOFF,
        precision: str = "double",
        core_atoms: int | None = None,
    ) -> None:
        if precision not in ("single", "double"):
            raise ValueError(f"unknown precision {precision!r}")
        self.precision = precision
        self.dtype = np.float32 if precision == "single" else np.float64
        self.molecule = molecule
        stack = np.asarray(coords_stack, dtype=self.dtype)
        n = molecule.n_atoms
        if stack.ndim != 3 or stack.shape[1:] != (n, 3):
            raise ValueError(
                f"coords_stack must be (P, {n}, 3), got {stack.shape}"
            )
        self.coords_stack = stack.copy()
        self.n_poses = len(stack)
        self.n_atoms = n
        self.nonbonded_cutoff = nonbonded_cutoff
        self.list_cutoff = list_cutoff
        self.exclusions = bonded_exclusions(molecule.topology)
        self.movable = self._normalize_movable(movable)
        self._bonded_params = resolve_bonded_params(molecule)
        self._nlists: List[Optional[NeighborList]] = [None] * self.n_poses
        self._pose_pairs: List[Optional[Tuple[np.ndarray, np.ndarray]]] = (
            [None] * self.n_poses
        )
        self._flat_full: Optional[Tuple[np.ndarray, np.ndarray, np.ndarray]] = None
        self._tiled_cache: Dict[int, Dict[str, np.ndarray]] = {}
        self.list_rebuilds = 0
        self.pose_list_rebuilds = np.zeros(self.n_poses, dtype=int)
        if core_atoms is None:
            n_probe = molecule.meta.get("n_probe_atoms")
            core_atoms = n - int(n_probe) if n_probe else 0
        if not 0 <= core_atoms <= n:
            raise ValueError(f"core_atoms must be in [0, {n}], got {core_atoms}")
        self.core_atoms = int(core_atoms)
        self._shared_core: Optional[SharedNeighborCore] = None
        # Build-path counters, for tests and perf accounting: every pose
        # list build is exactly one delta build or one full build.
        self.shared_core_builds = 0   # core-core list constructions (per ensemble)
        self.delta_list_builds = 0    # cheap probe-delta pose builds
        self.full_list_builds = 0     # full per-pose fallback builds

    # -- masks -------------------------------------------------------------------

    def _normalize_movable(self, movable) -> Optional[np.ndarray]:
        if movable is None:
            return None
        movable = np.asarray(movable, dtype=bool)
        if movable.shape == (self.n_atoms,):
            movable = np.broadcast_to(movable, (self.n_poses, self.n_atoms)).copy()
        if movable.shape != (self.n_poses, self.n_atoms):
            raise ValueError(
                f"movable must be ({self.n_atoms},) or "
                f"({self.n_poses}, {self.n_atoms}), got {movable.shape}"
            )
        return movable

    def movable_stack(self) -> np.ndarray:
        """(P, N) movable mask (all-True when no mask was given)."""
        if self.movable is None:
            return np.ones((self.n_poses, self.n_atoms), dtype=bool)
        return self.movable

    # -- per-pose pair structure ----------------------------------------------------

    def _pose_neighbor_list(self, coords: np.ndarray) -> NeighborList:
        """Build one pose's list — shared-core delta path when applicable.

        The shared core is captured lazily from the first qualifying pose;
        any pose whose core block moved (``core_matches`` is bitwise) takes
        the full-build fallback, preserving exact per-pose semantics.
        """
        c = np.asarray(coords, dtype=np.float64)
        if 0 < self.core_atoms < self.n_atoms:
            if self._shared_core is None:
                self._shared_core = SharedNeighborCore(
                    c[: self.core_atoms], self.list_cutoff, self.exclusions
                )
                self.shared_core_builds += 1
            if self._shared_core.core_matches(c):
                self.delta_list_builds += 1
                return self._shared_core.pose_list(c)
        self.full_list_builds += 1
        return build_neighbor_list(c, self.list_cutoff, self.exclusions)

    def _build_pose(self, p: int, coords: np.ndarray) -> None:
        nlist = self._pose_neighbor_list(coords)
        i, j = nlist.pair_arrays()
        if self.movable is not None:
            mv = self.movable[p]
            keep = mv[i] | mv[j]
            i, j = i[keep], j[keep]
        self._nlists[p] = nlist
        self._pose_pairs[p] = (i, j)
        self._flat_full = None
        self.list_rebuilds += 1
        self.pose_list_rebuilds[p] += 1

    def _ensure_pose(self, p: int, coords: np.ndarray | None = None) -> None:
        if self._nlists[p] is None:
            c = self.coords_stack[p] if coords is None else coords
            self._build_pose(p, c)

    def pair_arrays(self, p: int) -> Tuple[np.ndarray, np.ndarray]:
        """Movable-filtered (first, second) pair arrays of pose ``p``."""
        self._ensure_pose(p)
        return self._pose_pairs[p]

    def pose_pair_counts(self) -> np.ndarray:
        """(P,) active-pair count per pose (builds missing lists)."""
        return np.array(
            [len(self.pair_arrays(p)[0]) for p in range(self.n_poses)], dtype=int
        )

    @property
    def n_active_pairs(self) -> int:
        """Total active pairs across the ensemble."""
        return int(self.pose_pair_counts().sum())

    def maybe_refresh(
        self, coords: np.ndarray, pose_ids: Sequence[int] | None = None
    ) -> bool:
        """Rebuild the lists of any pose whose pairs drifted out of validity.

        ``coords`` rows are aligned with ``pose_ids`` (all poses when None).
        Returns True when at least one pose rebuilt — the event that, on the
        GPU, forces assignment tables to be regenerated and re-uploaded.
        """
        ids = np.arange(self.n_poses) if pose_ids is None else np.asarray(pose_ids)
        rebuilt = False
        for k, p in enumerate(ids):
            nlist = self._nlists[p]
            if nlist is None:
                self._build_pose(int(p), coords[k])
                continue
            if not nlist.max_distance_ok(coords[k]):
                self._build_pose(int(p), coords[k])
                rebuilt = True
        return rebuilt

    def force_refresh(
        self, coords: np.ndarray, pose_ids: Sequence[int] | None = None
    ) -> None:
        ids = np.arange(self.n_poses) if pose_ids is None else np.asarray(pose_ids)
        for k, p in enumerate(ids):
            self._build_pose(int(p), coords[k])

    # -- flattening ------------------------------------------------------------------

    def _flat_pairs(
        self, pose_ids: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Concatenated pair arrays with each pose offset to its own block.

        Returns ``(I, J, boundaries)`` where ``boundaries`` has K+1 entries
        delimiting each pose's segment of the flat pair arrays.
        """
        full = pose_ids.size == self.n_poses and np.array_equal(
            pose_ids, np.arange(self.n_poses)
        )
        if full and self._flat_full is not None:
            return self._flat_full
        n = self.n_atoms
        arrs_i, arrs_j, counts = [], [], []
        for k, p in enumerate(pose_ids):
            i, j = self._pose_pairs[p]
            arrs_i.append(i + k * n)
            arrs_j.append(j + k * n)
            counts.append(len(i))
        if arrs_i:
            flat_i = np.concatenate(arrs_i)
            flat_j = np.concatenate(arrs_j)
        else:
            flat_i = np.empty(0, dtype=np.intp)
            flat_j = np.empty(0, dtype=np.intp)
        boundaries = np.concatenate([[0], np.cumsum(counts)]).astype(np.intp)
        out = (flat_i, flat_j, boundaries)
        if full:
            self._flat_full = out
        return out

    def _tiled(self, k: int) -> Dict[str, np.ndarray]:
        """Per-atom parameters and bonded topology tiled for a K-pose stack.

        Tiled once at the full ensemble size; smaller active sets (the
        shrinking line-search and moved-pose subsets) are served as views of
        the full tile — every pose block is identical, so the first ``k``
        blocks of the P-pose tile *are* the k-pose tile.
        """
        full = self._tiled_cache.get(self.n_poses)
        if full is None:
            full = self._build_tiled(self.n_poses)
            self._tiled_cache[self.n_poses] = full
        if k == self.n_poses:
            return full
        out = {}
        for key, arr in full.items():
            per_pose = len(arr) // self.n_poses
            out[key] = arr[: k * per_pose]
        return out

    def _build_tiled(self, k: int) -> Dict[str, np.ndarray]:
        m = self.molecule
        n = self.n_atoms
        p = self._bonded_params
        offsets = np.arange(k) * n

        def tile_topo(arr: np.ndarray) -> np.ndarray:
            arr = np.asarray(arr, dtype=np.intp)
            if len(arr) == 0:
                return arr
            return np.tile(arr, (k, 1)) + np.repeat(offsets, len(arr))[:, None]

        def tile_param(arr: np.ndarray) -> np.ndarray:
            return np.tile(np.asarray(arr, dtype=self.dtype), k)

        out = {
            "charges": tile_param(m.charges),
            "born": tile_param(m.born_radii),
            "volumes": tile_param(m.volumes),
            "eps": tile_param(m.eps),
            "rm": tile_param(m.rm),
            "bonds": tile_topo(m.topology.bonds),
            "angles": tile_topo(m.topology.angles),
            "dihedrals": tile_topo(m.topology.dihedrals),
            "impropers": tile_topo(m.topology.impropers),
            "kb": tile_param(p["kb"]),
            "r0": tile_param(p["r0"]),
            "ka": tile_param(p["ka"]),
            "th0": tile_param(p["th0"]),
            "kd": tile_param(p["kd"]),
            "nmul": tile_param(p["nmul"]),
            "delt": tile_param(p["delt"]),
            "ki": tile_param(p["ki"]),
            "psi0": tile_param(p["psi0"]),
        }
        return out

    # -- evaluation ------------------------------------------------------------------

    def evaluate(
        self, coords: np.ndarray, pose_ids: Sequence[int] | None = None
    ) -> EnsembleEnergyReport:
        """Energies, components, per-atom arrays, and forces for a stack.

        ``coords`` is ``(K, N, 3)`` with rows aligned to ``pose_ids`` (all
        poses in order when None).
        """
        ids = (
            np.arange(self.n_poses)
            if pose_ids is None
            else np.asarray(pose_ids, dtype=np.intp)
        )
        coords = np.asarray(coords, dtype=self.dtype)
        n = self.n_atoms
        k = ids.size
        if coords.shape != (k, n, 3):
            raise ValueError(f"coords must be ({k}, {n}, 3), got {coords.shape}")
        if k == 0:
            # Empty results still carry the ensemble dtype: a "single"
            # ensemble's zero-pose path must not leak fp64 arrays.
            return EnsembleEnergyReport(
                pose_ids=ids,
                totals=np.zeros(0, dtype=self.dtype),
                components={},
                forces=np.zeros((0, n, 3), dtype=self.dtype),
                per_atom_nonbonded=np.zeros((0, n), dtype=self.dtype),
                born_radii=np.zeros((0, n), dtype=self.dtype),
            )
        for row, p in enumerate(ids):
            self._ensure_pose(int(p), coords[row])
        pair_i, pair_j, bounds = self._flat_pairs(ids)
        flat = coords.reshape(k * n, 3)
        par = self._tiled(k)
        m = self.molecule

        # (i) self energies + gradients (GPU kernel (a) in the paper)
        self_res = ace_self_energies(
            flat, par["charges"], par["born"], par["volumes"], pair_i, pair_j
        )
        alphas = born_radii_from_self_energies(
            self_res.self_energies, par["charges"], par["born"]
        )

        # (ii)+(iii) pairwise elec + vdw (GPU kernel (b)); per-pair energies
        # are kept so pose sums replicate the serial accumulation order.
        _, per_atom_gb, grad_gb, gb_pair = gb_pairwise_energy(
            flat, par["charges"], alphas, pair_i, pair_j, per_pair=True
        )
        _, per_atom_vdw, grad_vdw, vdw_pair = vdw_energy(
            flat, par["eps"], par["rm"], pair_i, pair_j,
            self.nonbonded_cutoff, per_pair=True,
        )

        # Bonded terms (host side), one flattened pass per term.
        _, g_bond, bond_t = bond_energy(
            flat, par["bonds"], par["kb"], par["r0"], per_term=True
        )
        _, g_angle, angle_t = angle_energy(
            flat, par["angles"], par["ka"], par["th0"], per_term=True
        )
        _, g_dih, dih_t = dihedral_energy(
            flat, par["dihedrals"], par["kd"], par["nmul"], par["delt"], per_term=True
        )
        _, g_imp, imp_t = improper_energy(
            flat, par["impropers"], par["ki"], par["psi0"], per_term=True
        )

        components = {
            "elec_self": self_res.self_energies.reshape(k, n).sum(axis=1),
            "elec_pairwise": _segment_sums(gb_pair, bounds),
            "vdw": _segment_sums(vdw_pair, bounds),
            "bond": bond_t.reshape(k, len(m.topology.bonds)).sum(axis=1),
            "angle": angle_t.reshape(k, len(m.topology.angles)).sum(axis=1),
            "dihedral": dih_t.reshape(k, len(m.topology.dihedrals)).sum(axis=1),
            "improper": imp_t.reshape(k, len(m.topology.impropers)).sum(axis=1),
        }
        # Same accumulation sequence as the serial EnergyModel's total.
        totals = np.zeros(k, dtype=self.dtype)
        for key in (
            "elec_self", "elec_pairwise", "vdw", "bond", "angle", "dihedral", "improper",
        ):
            totals = totals + components[key]
        gradient = (
            self_res.gradient + grad_gb + grad_vdw + g_bond + g_angle + g_dih + g_imp
        )
        per_atom = self_res.self_energies + per_atom_gb + per_atom_vdw
        return EnsembleEnergyReport(
            pose_ids=ids,
            totals=totals,
            components=components,
            forces=-gradient.reshape(k, n, 3),
            per_atom_nonbonded=per_atom.reshape(k, n),
            born_radii=alphas.reshape(k, n),
        )

    def energy_only(
        self, coords: np.ndarray, pose_ids: Sequence[int] | None = None
    ) -> np.ndarray:
        """(K,) total energies — the batched line search's fast path.

        Skips every derivative and per-atom-split computation (roughly half
        the per-pair arithmetic plus all gradient scatters); the energy
        values themselves are computed by the same operations in the same
        order as :meth:`evaluate`, so line-search decisions are identical.
        """
        ids = (
            np.arange(self.n_poses)
            if pose_ids is None
            else np.asarray(pose_ids, dtype=np.intp)
        )
        coords = np.asarray(coords, dtype=self.dtype)
        n = self.n_atoms
        k = ids.size
        if coords.shape != (k, n, 3):
            raise ValueError(f"coords must be ({k}, {n}, 3), got {coords.shape}")
        if k == 0:
            return np.zeros(0, dtype=self.dtype)
        for row, p in enumerate(ids):
            self._ensure_pose(int(p), coords[row])
        pair_i, pair_j, bounds = self._flat_pairs(ids)
        flat = coords.reshape(k * n, 3)
        par = self._tiled(k)
        m = self.molecule

        self_res = ace_self_energies(
            flat, par["charges"], par["born"], par["volumes"], pair_i, pair_j,
            with_gradient=False,
        )
        alphas = born_radii_from_self_energies(
            self_res.self_energies, par["charges"], par["born"]
        )
        _, _, _, gb_pair = gb_pairwise_energy(
            flat, par["charges"], alphas, pair_i, pair_j,
            per_pair=True, energies_only=True,
        )
        _, _, _, vdw_pair = vdw_energy(
            flat, par["eps"], par["rm"], pair_i, pair_j,
            self.nonbonded_cutoff, per_pair=True, energies_only=True,
        )
        _, _, bond_t = bond_energy(
            flat, par["bonds"], par["kb"], par["r0"],
            per_term=True, with_gradient=False,
        )
        _, _, angle_t = angle_energy(
            flat, par["angles"], par["ka"], par["th0"],
            per_term=True, with_gradient=False,
        )
        _, _, dih_t = dihedral_energy(
            flat, par["dihedrals"], par["kd"], par["nmul"], par["delt"],
            per_term=True, with_gradient=False,
        )
        _, _, imp_t = improper_energy(
            flat, par["impropers"], par["ki"], par["psi0"],
            per_term=True, with_gradient=False,
        )
        totals = np.zeros(k, dtype=self.dtype)
        for part in (
            self_res.self_energies.reshape(k, n).sum(axis=1),
            _segment_sums(gb_pair, bounds),
            _segment_sums(vdw_pair, bounds),
            bond_t.reshape(k, len(m.topology.bonds)).sum(axis=1),
            angle_t.reshape(k, len(m.topology.angles)).sum(axis=1),
            dih_t.reshape(k, len(m.topology.dihedrals)).sum(axis=1),
            imp_t.reshape(k, len(m.topology.impropers)).sum(axis=1),
        ):
            totals = totals + part
        return totals


def _segment_sums(values: np.ndarray, boundaries: np.ndarray) -> np.ndarray:
    """Per-segment sums, each segment summed exactly like a serial ``.sum()``."""
    return np.array(
        [
            values[boundaries[s] : boundaries[s + 1]].sum()
            for s in range(len(boundaries) - 1)
        ]
    )
