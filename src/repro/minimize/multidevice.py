"""Multi-device ensemble minimization: shard the pose stack, merge in order.

The paper's stated future work ("we plan on extending this work to a
multi-GPU implementation", Sec. VI) applied to the minimization phase:
independent conformations distribute across devices with no inter-device
communication, so a ``(P, N, 3)`` ensemble shards into contiguous
per-device sub-ensembles (:class:`~repro.exec.plan.ShardPlan`), each shard
runs the scheme-C batched path — numerically the
:class:`~repro.minimize.batched.BatchedMinimizer`, with predicted device
time from the shared kernel model
(:func:`repro.gpu.minimize_common.scheme_c_iteration_s`) — and the
per-shard results merge back in the plan's fixed reduction order.

Determinism is the load-bearing property: each pose's trajectory depends
only on its own coordinates (the batched evaluator reduces along the pair
axis per pose), so shard composition cannot change any pose's numbers,
and the ordered reduction makes a 1/2/4-device run bitwise-identical to
the single-device ``BatchedMinimizer`` — in fp64 exactly, in the fp32
production precision too.  That invariance is also what lets the
minimization artifact cache key stay *shard-invariant* (device count and
batch size excluded).

Shards execute on a thread pool by default (real overlap wherever the
NumPy kernels release the GIL — the same mechanism as the service's stage
pipeline); ``shard_workers=1`` forces the sequential loop.  Cancellation
is cooperative at shard starts and at every batch-chunk boundary within
a shard: queued shards never start after a cancel, and a running shard
stops at its next memory-budgeted chunk rather than mid-kernel (in the
default parallel mode all shards may already be in flight, so the chunk
boundaries are what bounds the latency of a cancel).
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

import numpy as np

from repro.constants import NEIGHBOR_LIST_CUTOFF, VDW_CUTOFF
from repro.exec.plan import ShardPlan
from repro.exec.topology import DeviceTopology, default_topology
from repro.gpu.minimize_common import scheme_c_iteration_s
from repro.minimize.batched import BatchedMinimizer
from repro.minimize.ensemble import EnsembleEnergyModel
from repro.minimize.minimizer import MinimizationResult, MinimizerConfig
from repro.structure.molecule import Molecule

__all__ = [
    "COORD_BYTES_PER_ATOM",
    "TEMPLATE_BYTES_PER_ATOM",
    "DEFAULT_MINIMIZE_DEVICES",
    "ShardExecution",
    "MultiDeviceRun",
    "MultiDeviceMinimizer",
]

#: fp32 xyz per atom: the per-shard conformation upload traffic.
COORD_BYTES_PER_ATOM = 12.0

#: Modeled template broadcast per atom (fp32 coords + the per-atom
#: parameter tables the energy kernels read: charges, eps/rm, Born radii,
#: volumes, type indices — ~28 B), shipped once to every device.
TEMPLATE_BYTES_PER_ATOM = 40.0

#: Device count a bare ``backend="multi-gpu-sim"`` request shards over
#: when neither ``devices`` nor a topology is given: the smallest real
#: fan-out.
DEFAULT_MINIMIZE_DEVICES = 2


@dataclass(frozen=True)
class ShardExecution:
    """Provenance of one executed shard: where it ran and what it cost."""

    device_index: int
    start: int
    stop: int
    n_poses: int
    pose_iterations: int          # sum of per-pose iterations actually run
    predicted_device_s: float     # upload + kernel time on the virtual device
    #: Measured host wall clock of this shard (``time.perf_counter``
    #: start and elapsed seconds on its worker thread) — the observed
    #: counterpart of ``predicted_device_s``, consumed by the tracing
    #: layer to reconstruct shard overlap post hoc.
    wall_start_s: float = 0.0
    wall_s: float = 0.0


@dataclass
class MultiDeviceRun:
    """Merged per-pose results plus the full shard provenance."""

    results: List[MinimizationResult]
    num_devices: int
    shards: Tuple[ShardExecution, ...]
    reduction_order: Tuple[int, ...]
    predicted_makespan_s: float   # busiest shard + serialized broadcast
    predicted_broadcast_s: float


class MultiDeviceMinimizer:
    """Shards an ensemble over a :class:`DeviceTopology` and minimizes.

    Parameters
    ----------
    molecule:
        Template complex shared by all poses.
    coords_stack:
        ``(P, N, 3)`` start conformations (``(N, 3)`` promoted to ``P=1``).
    movable:
        Optional movable mask, ``(N,)`` shared or ``(P, N)`` per pose.
    config:
        :class:`MinimizerConfig` shared by every pose.
    topology:
        The virtual devices to shard over (default: the package-default
        hardware at :data:`DEFAULT_MINIMIZE_DEVICES` devices).
    precision:
        Sub-ensemble arithmetic, ``"single"`` (production, the paper's
        fp32 kernels) or ``"double"`` (bitwise-serial reference).
    batch_size:
        Poses per vectorized evaluation *within* a shard (``None`` = the
        whole shard at once).  The engine passes its memory-budgeted
        batch here, so a shard larger than the working-set cap evaluates
        in chunks exactly like the single-device batched path —
        numerically invisible (per-pose independence), memory-visible.
    shard_workers:
        Concurrent shard executions (default: one thread per shard up to
        the host core count; ``1`` forces the sequential loop).
    """

    def __init__(
        self,
        molecule: Molecule,
        coords_stack: np.ndarray,
        movable: np.ndarray | None = None,
        config: MinimizerConfig | None = None,
        topology: DeviceTopology | None = None,
        precision: str = "single",
        batch_size: int | None = None,
        nonbonded_cutoff: float = VDW_CUTOFF,
        list_cutoff: float = NEIGHBOR_LIST_CUTOFF,
        shard_workers: int | None = None,
    ) -> None:
        if precision not in ("single", "double"):
            raise ValueError(f"unknown precision {precision!r}")
        if batch_size is not None and batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        if shard_workers is not None and shard_workers < 1:
            raise ValueError(f"shard_workers must be >= 1, got {shard_workers}")
        # Host-side canonical copy is deliberately fp64; each shard's
        # BatchedMinimizer casts to the engine precision at kernel entry.
        stack = np.asarray(coords_stack, dtype=float)  # repro: ignore[REPRO-DTYPE]
        if stack.ndim == 2:
            stack = stack[None]
        n = molecule.n_atoms
        if stack.ndim != 3 or stack.shape[1:] != (n, 3):
            raise ValueError(f"coords_stack must be (P, {n}, 3), got {stack.shape}")
        self.molecule = molecule
        self.coords_stack = stack
        self.n_poses = len(stack)
        self.config = config or MinimizerConfig()
        self.topology = topology or default_topology(DEFAULT_MINIMIZE_DEVICES)
        self.precision = precision
        self.batch_size = batch_size
        self.nonbonded_cutoff = nonbonded_cutoff
        self.list_cutoff = list_cutoff
        self.shard_workers = shard_workers
        self.movable = self._normalize_movable(movable)

    def _normalize_movable(self, movable) -> Optional[np.ndarray]:
        if movable is None:
            return None
        movable = np.asarray(movable, dtype=bool)
        if movable.shape == (self.molecule.n_atoms,):
            movable = np.broadcast_to(
                movable, (self.n_poses, self.molecule.n_atoms)
            ).copy()
        if movable.shape != (self.n_poses, self.molecule.n_atoms):
            raise ValueError(
                f"movable must be ({self.molecule.n_atoms},) or "
                f"({self.n_poses}, {self.molecule.n_atoms}), got {movable.shape}"
            )
        return movable

    def plan(self) -> ShardPlan:
        """The shard plan this run executes (also its reduction order)."""
        return self.topology.plan(self.n_poses)

    # -- execution ---------------------------------------------------------------

    def run(
        self,
        cancel_check: Optional[Callable[[], None]] = None,
        on_shard: Optional[Callable[[int, int], None]] = None,
    ) -> MultiDeviceRun:
        """Minimize every shard; results merge in the plan's fixed order.

        ``cancel_check()`` runs as each shard starts and before every
        batch chunk within a shard (raise to stop at that boundary —
        queued shards are abandoned, running shards stop at their next
        chunk); ``on_shard(shard_index, num_shards)`` fires as each shard
        starts, for per-shard progress reporting.
        """
        plan = self.plan()
        shards = plan.shards
        if not shards:
            return MultiDeviceRun(
                results=[],
                num_devices=self.topology.num_devices,
                shards=(),
                reduction_order=(),
                predicted_makespan_s=0.0,
                predicted_broadcast_s=0.0,
            )
        broadcast_s = self.topology.broadcast_s(
            int(self.molecule.n_atoms * TEMPLATE_BYTES_PER_ATOM)
        )

        n_shards = len(shards)

        def exec_shard(k: int) -> Tuple[List[MinimizationResult], ShardExecution]:
            if cancel_check is not None:
                cancel_check()
            if on_shard is not None:
                on_shard(k, n_shards)
            shard = shards[k]
            wall_start = time.perf_counter()
            # The shard evaluates in memory-budgeted batches, like the
            # single-device batched path; per-pose independence makes the
            # chunking numerically invisible.
            limit = self.batch_size or shard.size
            results: List[MinimizationResult] = []
            n_pairs = 0
            for lo in range(shard.start, shard.stop, limit):
                if lo != shard.start and cancel_check is not None:
                    cancel_check()
                hi = min(lo + limit, shard.stop)
                sub = EnsembleEnergyModel(
                    self.molecule,
                    self.coords_stack[lo:hi],
                    movable=(
                        None if self.movable is None else self.movable[lo:hi]
                    ),
                    nonbonded_cutoff=self.nonbonded_cutoff,
                    list_cutoff=self.list_cutoff,
                    precision=self.precision,
                )
                results.extend(BatchedMinimizer(sub, self.config).run())
                if lo == shard.start:
                    # Predicted device time uses the shard-local pair
                    # count (same topology across poses, pose 0
                    # representative).
                    n_pairs = len(sub.pair_arrays(0)[0])
            iter_s = scheme_c_iteration_s(
                n_pairs, self.molecule.n_atoms, self.topology.device_spec
            )
            upload_s = self.topology.cost_model().transfer_time(
                int(shard.size * self.molecule.n_atoms * COORD_BYTES_PER_ATOM)
            )
            pose_iterations = int(sum(r.iterations for r in results))
            execution = ShardExecution(
                device_index=shard.device_index,
                start=shard.start,
                stop=shard.stop,
                n_poses=shard.size,
                pose_iterations=pose_iterations,
                predicted_device_s=upload_s + pose_iterations * iter_s,
                wall_start_s=wall_start,
                wall_s=time.perf_counter() - wall_start,
            )
            return results, execution

        workers = self.shard_workers or min(n_shards, os.cpu_count() or 1)
        if workers > 1 and n_shards > 1:
            with ThreadPoolExecutor(
                max_workers=workers, thread_name_prefix="minimize-shard"
            ) as pool:
                futures = [pool.submit(exec_shard, k) for k in range(n_shards)]
                # Gathered in submission order == plan order: the
                # deterministic reduction, independent of completion
                # timing.  The first shard error (cancellation included)
                # propagates here.
                outs = [f.result() for f in futures]
        else:
            outs = [exec_shard(k) for k in range(n_shards)]

        results: List[MinimizationResult] = []
        executions: List[ShardExecution] = []
        for shard_results, execution in outs:
            results.extend(shard_results)
            executions.append(execution)
        makespan = max(e.predicted_device_s for e in executions) + broadcast_s
        return MultiDeviceRun(
            results=results,
            num_devices=self.topology.num_devices,
            shards=tuple(executions),
            reduction_order=plan.reduction_order,
            predicted_makespan_s=makespan,
            predicted_broadcast_s=broadcast_s,
        )
