"""Analytic Continuum Electrostatics (ACE): Eqs. (4)-(7) of the paper.

The electrostatic energy decomposes (Eq. 4) into per-atom self energies and
pairwise interaction energies:

* **Self energy** (Eq. 5): Born self-energy in solvent plus effective
  pairwise contributions from all other solute atoms,

      E_i^self = q_i^2 / (2 eps_s R_i) + sum_{k != i} E_ik^self

* **Pairwise self term** (Eq. 6, Schaefer & Karplus 1996):

      E_ik^self = omega_ik q_i^2 exp(-r_ik^2 / sigma_ik^2)
                + tau q_i^2 Vtilde_k / (8 pi) * (r_ik^3 / (r_ik^4 + mu_ik^4))^4

* **Pairwise interaction** (Eq. 7, generalized Born):

      E_ij^int = 332 q_i q_j / r_ij
               - 166 tau q_i q_j / sqrt(r^2 + a_i a_j exp(-r^2 / (4 a_i a_j)))

Born radii ``a_i`` "depend on the self-energy of the atom"; we use the
standard inversion ``a_i = 166 tau q_i^2 / E_i^self`` clamped to a physical
range (see :func:`born_radii_from_self_energies`).

Pair parameters: ``sigma_ik`` and ``mu_ik`` are arithmetic means of per-atom
ACE radii, and ``omega_ik`` is chosen so the Gaussian height scales with the
neighbor's volume — physically plausible stand-ins for the fitted CHARMM/ACE
tables (documented substitution; DESIGN.md).

Gradients: all terms are differentiated analytically with Born radii held
fixed during a force evaluation (radii are refreshed once per iteration,
like the neighbor lists) — the standard frozen-alpha approximation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.constants import BORN_166, COULOMB_332, SOLVENT_DIELECTRIC, TAU
from repro.minimize.accumulate import as_float_array, scatter_add_rows, scatter_sub_rows

__all__ = [
    "AceSelfResult",
    "ace_self_energies",
    "born_radii_from_self_energies",
    "gb_pairwise_energy",
]

#: Clamp range for effective Born radii (Angstrom).
BORN_RADIUS_MIN = 0.8
BORN_RADIUS_MAX = 16.0

#: Height scale of the ACE self-energy Gaussian (kcal/mol per charge^2 per A^3).
OMEGA_SCALE = 0.08


@dataclass
class AceSelfResult:
    """Per-atom self energies and the gradient of their sum.

    When requested (``per_pair=True``), ``pair_terms_forward`` holds the
    directional contributions E_ik^self credited to the pair's *first* atom
    and ``pair_terms_reverse`` those credited to the *second* atom — the
    quantities the split pairs-lists of Fig. 10 route separately.
    """

    self_energies: np.ndarray          # (N,)
    gradient: np.ndarray | None        # (N, 3) d(sum_i E_i^self)/dx; None on
                                       # the energies-only fast path
    pair_terms_forward: np.ndarray | None = None   # (P,) e_ij
    pair_terms_reverse: np.ndarray | None = None   # (P,) e_ji


def _pair_params(
    born_i: np.ndarray, born_k: np.ndarray, vol_k: np.ndarray
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """(omega_ik, sigma_ik, mu_ik) for pair arrays.

    sigma and mu are arithmetic-mean radii; omega scales with the neighbor
    volume so bulky neighbors desolvate more, normalized by sigma^3 to keep
    the Gaussian integral volume-like.
    """
    sigma = born_i + born_k
    mu = 0.5 * (born_i + born_k)
    omega = OMEGA_SCALE * TAU * vol_k / (sigma**3)
    return omega, sigma, mu


def ace_self_energies(
    coords: np.ndarray,
    charges: np.ndarray,
    born_params: np.ndarray,
    volumes: np.ndarray,
    pair_i: np.ndarray,
    pair_j: np.ndarray,
    per_pair: bool = False,
    with_gradient: bool = True,
) -> AceSelfResult:
    """Evaluate Eq. (5)/(6) over a half pairs-list.

    Parameters
    ----------
    coords, charges:
        (N, 3) positions and (N,) charges.
    born_params:
        (N,) per-type ACE radii ``R_i`` (the force-field Born radius
        parameter, *not* the effective GB radius).
    volumes:
        (N,) ACE solute volumes ``Vtilde``.
    pair_i, pair_j:
        Half list of interacting pairs (each unordered pair once).  Both
        directions of Eq. (6) are evaluated: atom i gains a term using
        ``Vtilde_j`` and atom j gains a term using ``Vtilde_i``.

    Returns
    -------
    :class:`AceSelfResult` with per-atom self energies (including the
    constant Born term ``q^2 / (2 eps_s R)``) and the analytic gradient of
    the *total* self energy.
    """
    coords = as_float_array(coords)
    n = len(coords)
    energies = (charges**2) / (2.0 * SOLVENT_DIELECTRIC * born_params)
    gradient = np.zeros((n, 3), dtype=coords.dtype)
    if len(pair_i) == 0:
        empty = np.zeros(0, dtype=coords.dtype) if per_pair else None
        return AceSelfResult(energies, gradient, empty, empty)

    d = coords[pair_i] - coords[pair_j]
    r2 = (d * d).sum(axis=1)
    r = np.sqrt(r2)

    qi2 = charges[pair_i] ** 2
    qj2 = charges[pair_j] ** 2

    # Direction i<-j uses V_j; direction j<-i uses V_i.  The pair geometry
    # (r, sigma, mu) is symmetric under our parameter choice.
    omega_ij, sigma, mu = _pair_params(
        born_params[pair_i], born_params[pair_j], volumes[pair_j]
    )
    omega_ji, _, _ = _pair_params(
        born_params[pair_j], born_params[pair_i], volumes[pair_i]
    )

    sig2 = sigma**2
    gauss = np.exp(-r2 / sig2)

    r3 = r2 * r
    r4 = r2 * r2
    mu4 = mu**4
    denom = r4 + mu4
    frac = r3 / denom                     # f = r^3/(r^4 + mu^4)
    frac4 = frac**4

    tail_i = TAU * qi2 * volumes[pair_j] / (8.0 * np.pi)
    tail_j = TAU * qj2 * volumes[pair_i] / (8.0 * np.pi)

    e_ij = omega_ij * qi2 * gauss + tail_i * frac4
    e_ji = omega_ji * qj2 * gauss + tail_j * frac4

    np.add.at(energies, pair_i, e_ij)
    np.add.at(energies, pair_j, e_ji)

    if not with_gradient:
        # Line-search fast path: energies only, no derivative arithmetic.
        if per_pair:
            return AceSelfResult(energies, None, e_ij, e_ji)
        return AceSelfResult(energies, None)

    # Gradient wrt r of each term (then chain rule through d/r).
    # d(gauss)/dr = -2 r / sigma^2 * gauss
    dgauss_dr = -2.0 * r / sig2 * gauss
    # d(f^4)/dr = 4 f^3 * df/dr;  df/dr = (3 r^2 (r^4+mu^4) - r^3 4r^3)/denom^2
    dfrac_dr = (3.0 * r2 * denom - 4.0 * r3 * r3) / (denom**2)
    dfrac4_dr = 4.0 * (frac**3) * dfrac_dr

    de_dr = (
        omega_ij * qi2 * dgauss_dr
        + tail_i * dfrac4_dr
        + omega_ji * qj2 * dgauss_dr
        + tail_j * dfrac4_dr
    )
    r_safe = np.where(r > 0, r, 1.0)
    g = (de_dr / r_safe)[:, None] * d  # dE/dx_i; dE/dx_j = -g
    scatter_add_rows(gradient, pair_i, g)
    scatter_sub_rows(gradient, pair_j, g)
    if per_pair:
        return AceSelfResult(energies, gradient, e_ij, e_ji)
    return AceSelfResult(energies, gradient)


def born_radii_from_self_energies(
    self_energies: np.ndarray,
    charges: np.ndarray,
    fallback: np.ndarray,
) -> np.ndarray:
    """Effective GB radii from self energies (Eq. 7's alpha_i).

    Standard GB inversion ``a_i = 166 * tau * q_i^2 / E_i^self``: an atom
    whose self energy is large (well solvated) gets a small radius.  Atoms
    with negligible charge (or non-positive self energy, which cannot occur
    with our positive-definite Eq. 6 parameters but is guarded anyway) fall
    back to their force-field Born radius.  Results are clamped to
    [0.8, 16] Angstrom.
    """
    q2 = as_float_array(charges) ** 2
    e = as_float_array(self_energies)
    with np.errstate(divide="ignore", invalid="ignore"):
        alpha = BORN_166 * TAU * q2 / e
    bad = ~np.isfinite(alpha) | (alpha <= 0) | (q2 < 1e-12)
    alpha = np.where(bad, fallback, alpha)
    return np.clip(alpha, BORN_RADIUS_MIN, BORN_RADIUS_MAX)


def gb_pairwise_energy(
    coords: np.ndarray,
    charges: np.ndarray,
    alphas: np.ndarray,
    pair_i: np.ndarray,
    pair_j: np.ndarray,
    per_pair: bool = False,
    energies_only: bool = False,
):
    """Generalized Born pairwise interaction (Eq. 7) with analytic gradient.

    Evaluates, for each half-list pair,

        E = 332 q_i q_j / r - 166 tau q_i q_j / f_GB(r, a_i, a_j)
        f_GB = sqrt(r^2 + a_i a_j exp(-r^2 / (4 a_i a_j)))

    Returns ``(total_energy, per_atom_energy, gradient)`` where per-atom
    energy splits each pair term equally between its two atoms (the paper's
    energy arrays hold per-atom accumulations).  With ``per_pair=True`` a
    fourth element (the per-pair energies) is appended, used by the GPU
    kernel simulations.
    """
    coords = as_float_array(coords)
    n = len(coords)
    per_atom = np.zeros(n, dtype=coords.dtype)
    gradient = np.zeros((n, 3), dtype=coords.dtype)
    if len(pair_i) == 0:
        result = (0.0, per_atom, gradient)
        return result + (np.zeros(0),) if per_pair else result

    d = coords[pair_i] - coords[pair_j]
    r2 = (d * d).sum(axis=1)
    r = np.sqrt(r2)
    qq = charges[pair_i] * charges[pair_j]
    aa = alphas[pair_i] * alphas[pair_j]

    expo = np.exp(-r2 / (4.0 * aa))
    f2 = r2 + aa * expo
    f = np.sqrt(f2)

    r_safe = np.where(r > 0, r, 1.0)
    e_coul = COULOMB_332 * qq / r_safe
    e_gb = -BORN_166 * TAU * qq / f
    e_pair = e_coul + e_gb
    total = float(e_pair.sum())

    if energies_only:
        # Line-search fast path: per-pair energies only (callers sum them);
        # no per-atom split, no derivative arithmetic.
        result = (total, None, None)
        return result + (e_pair,) if per_pair else result

    np.add.at(per_atom, pair_i, 0.5 * e_pair)
    np.add.at(per_atom, pair_j, 0.5 * e_pair)

    # dE/dr: coulomb term -332 qq / r^2;
    # GB term: +166 tau qq / f^2 * df/dr, df/dr = (2r + aa * expo * (-2r/(4aa)))/(2f)
    #        = r (1 - expo/4) / f
    df_dr = r * (1.0 - 0.25 * expo) / f
    de_dr = -COULOMB_332 * qq / (r_safe**2) + BORN_166 * TAU * qq / f2 * df_dr
    g = (de_dr / r_safe)[:, None] * d
    scatter_add_rows(gradient, pair_i, g)
    scatter_sub_rows(gradient, pair_j, g)

    if per_pair:
        return total, per_atom, gradient, e_pair
    return total, per_atom, gradient
