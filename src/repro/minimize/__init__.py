"""CHARMM-potential energy minimization (FTMap phase 2).

Implements Eq. (3): ``E_total = E_vdw + E_elec + E_bond + E_angle +
E_torsion + E_improper`` with the ACE continuum electrostatics model
(Eqs. 4-7), the smoothed Lennard-Jones 6-12 variant (Eqs. 8-10), analytic
gradients, neighbor-list / pairs-list data structures (Figs. 7, 9, 10), and
an iterative minimizer with the paper's "seldom updated" neighbor-list
policy.
"""

from repro.minimize.neighborlist import NeighborList, build_neighbor_list, bonded_exclusions
from repro.minimize.pairslist import PairsList, SplitPairsLists, split_pairs
from repro.minimize.ace import (
    ace_self_energies,
    born_radii_from_self_energies,
    gb_pairwise_energy,
)
from repro.minimize.vdw import vdw_energy, vdw_pair_parameters
from repro.minimize.bonded import bond_energy, angle_energy, dihedral_energy, improper_energy
from repro.minimize.energy import EnergyModel, EnergyReport
from repro.minimize.minimizer import MinimizationResult, Minimizer, MinimizerConfig

__all__ = [
    "NeighborList",
    "build_neighbor_list",
    "bonded_exclusions",
    "PairsList",
    "SplitPairsLists",
    "split_pairs",
    "ace_self_energies",
    "born_radii_from_self_energies",
    "gb_pairwise_energy",
    "vdw_energy",
    "vdw_pair_parameters",
    "bond_energy",
    "angle_energy",
    "dihedral_energy",
    "improper_energy",
    "EnergyModel",
    "EnergyReport",
    "MinimizationResult",
    "Minimizer",
    "MinimizerConfig",
]
