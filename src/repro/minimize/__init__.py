"""CHARMM-potential energy minimization (FTMap phase 2).

Implements Eq. (3): ``E_total = E_vdw + E_elec + E_bond + E_angle +
E_torsion + E_improper`` with the ACE continuum electrostatics model
(Eqs. 4-7), the smoothed Lennard-Jones 6-12 variant (Eqs. 8-10), analytic
gradients, neighbor-list / pairs-list data structures (Figs. 7, 9, 10), and
an iterative minimizer with the paper's "seldom updated" neighbor-list
policy.

The batched subsystem refines whole ensembles of docked conformations:
:class:`EnsembleEnergyModel` evaluates a ``(P, N, 3)`` stack in one
vectorized pass, :class:`BatchedMinimizer` advances every pose in lock-step
with per-pose convergence, and :class:`MinimizationEngine` is the facade
that auto-selects ``serial | batched | multiprocess | gpu-sim`` from the
cost models (:mod:`repro.minimize.selection`).
"""

from repro.minimize.neighborlist import NeighborList, build_neighbor_list, bonded_exclusions
from repro.minimize.pairslist import PairsList, SplitPairsLists, split_pairs
from repro.minimize.accumulate import as_float_array, scatter_add_rows, scatter_sub_rows
from repro.minimize.ace import (
    ace_self_energies,
    born_radii_from_self_energies,
    gb_pairwise_energy,
)
from repro.minimize.vdw import vdw_energy, vdw_pair_parameters
from repro.minimize.bonded import bond_energy, angle_energy, dihedral_energy, improper_energy
from repro.minimize.energy import (
    EnergyModel,
    EnergyReport,
    geometry_equilibria,
    resolve_bonded_params,
)
from repro.minimize.minimizer import MinimizationResult, Minimizer, MinimizerConfig
from repro.minimize.ensemble import EnsembleEnergyModel, EnsembleEnergyReport
from repro.minimize.batched import BatchedMinimizer
from repro.minimize.multidevice import (
    DEFAULT_MINIMIZE_DEVICES,
    MultiDeviceMinimizer,
    MultiDeviceRun,
    ShardExecution,
)
from repro.minimize.selection import (
    MINIMIZE_CPU_BACKENDS,
    MinimizeBackendDecision,
    ensemble_batch_limit,
    predict_minimize_times,
    select_minimize_backend,
)
from repro.minimize.engine import (
    MINIMIZE_BACKEND_NAMES,
    MinimizationEngine,
    MinimizationRun,
)

__all__ = [
    "NeighborList",
    "build_neighbor_list",
    "bonded_exclusions",
    "PairsList",
    "SplitPairsLists",
    "split_pairs",
    "as_float_array",
    "scatter_add_rows",
    "scatter_sub_rows",
    "ace_self_energies",
    "born_radii_from_self_energies",
    "gb_pairwise_energy",
    "vdw_energy",
    "vdw_pair_parameters",
    "bond_energy",
    "angle_energy",
    "dihedral_energy",
    "improper_energy",
    "EnergyModel",
    "EnergyReport",
    "geometry_equilibria",
    "resolve_bonded_params",
    "MinimizationResult",
    "Minimizer",
    "MinimizerConfig",
    "EnsembleEnergyModel",
    "EnsembleEnergyReport",
    "BatchedMinimizer",
    "MultiDeviceMinimizer",
    "MultiDeviceRun",
    "ShardExecution",
    "DEFAULT_MINIMIZE_DEVICES",
    "MINIMIZE_CPU_BACKENDS",
    "MinimizeBackendDecision",
    "ensemble_batch_limit",
    "predict_minimize_times",
    "select_minimize_backend",
    "MINIMIZE_BACKEND_NAMES",
    "MinimizationEngine",
    "MinimizationRun",
]
