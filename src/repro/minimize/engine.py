"""The single minimization entry point: backend selection + batched execution.

Mirror of :class:`repro.docking.engine.DockingEngine`, one phase later:
every ensemble-refinement scenario — the FTMap minimization stage, the
equivalence tests, the benchmarks — funnels through
:class:`MinimizationEngine`.  The facade

1. resolves a backend (``serial`` / ``batched`` / ``multiprocess`` /
   ``gpu-sim`` / ``multi-gpu-sim`` / ``auto``) via the cost-model
   selection layer (:mod:`repro.minimize.selection`), sized by ensemble
   size x pair count — and, when a
   :class:`~repro.exec.topology.DeviceTopology` is supplied, aware of the
   sharded multi-device option,
2. builds the matching execution path — per-pose serial
   :class:`~repro.minimize.minimizer.Minimizer` runs, a
   :class:`~repro.minimize.batched.BatchedMinimizer` over an
   :class:`~repro.minimize.ensemble.EnsembleEnergyModel`, a forked
   per-pose fan-out, the serial path with a scheme-C virtual-GPU time
   ledger for ``gpu-sim``, or the sharded
   :class:`~repro.minimize.multidevice.MultiDeviceMinimizer` for
   ``multi-gpu-sim``,
3. runs the ensemble and returns per-pose
   :class:`~repro.minimize.minimizer.MinimizationResult` lists.

Numerics: ``serial``, ``multiprocess``, and double-precision ``batched``
agree to floating-point summation order (tested); the production batched
configuration evaluates in float32 — the paper's GPU arithmetic — and
agrees within single-precision tolerance.  ``multi-gpu-sim`` is
bitwise-identical to ``batched`` at the same precision whatever the
device count (per-pose numerics are shard-invariant; the reduction order
is fixed by the plan).
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple

import numpy as np

from repro.constants import NEIGHBOR_LIST_CUTOFF, VDW_CUTOFF
from repro.exec.topology import DeviceTopology, default_topology
from repro.minimize.batched import BatchedMinimizer
from repro.minimize.energy import EnergyModel
from repro.minimize.ensemble import EnsembleEnergyModel
from repro.minimize.minimizer import MinimizationResult, Minimizer, MinimizerConfig
from repro.minimize.multidevice import (
    DEFAULT_MINIMIZE_DEVICES,
    MultiDeviceMinimizer,
    ShardExecution,
)
from repro.minimize.selection import MinimizeBackendDecision, select_minimize_backend
from repro.obs.metrics import registry
from repro.structure.molecule import Molecule
from repro.util.parallel import chunked, parallel_map

__all__ = ["MinimizationEngine", "MinimizationRun", "MINIMIZE_BACKEND_NAMES"]

#: Backends the facade can execute.
MINIMIZE_BACKEND_NAMES = (
    "serial", "batched", "multiprocess", "gpu-sim", "multi-gpu-sim", "auto",
)


@dataclass
class MinimizationRun:
    """Per-pose results plus the provenance of one facade run."""

    results: List[MinimizationResult]
    backend: str
    batch_size: int
    decision: MinimizeBackendDecision
    predicted_device_time_s: Optional[float] = None   # gpu-sim / multi-gpu-sim
    #: Multi-device provenance: device count the run was planned over,
    #: per-shard execution records, and the fixed merge order (empty /
    #: 1 for single-device backends).
    num_devices: int = 1
    shards: Tuple[ShardExecution, ...] = field(default_factory=tuple)
    reduction_order: Tuple[int, ...] = field(default_factory=tuple)

    @property
    def shard_sizes(self) -> Tuple[int, ...]:
        return tuple(s.n_poses for s in self.shards)


class MinimizationEngine:
    """Facade over ensemble minimization with auto-selected backends.

    Parameters
    ----------
    molecule:
        Template complex (topology + parameters shared by all poses).
    coords_stack:
        ``(P, N, 3)`` start conformations (``(N, 3)`` is promoted to a
        single-pose ensemble).
    movable:
        Optional movable mask, ``(N,)`` shared or ``(P, N)`` per pose.
    config:
        :class:`MinimizerConfig` shared by every pose.
    backend:
        One of :data:`MINIMIZE_BACKEND_NAMES`; ``"auto"`` (default) picks
        the cheapest CPU backend from the cost model.
    batch_size:
        Poses per vectorized evaluation for the batched path (``None`` =
        cost-model default, memory-budgeted).
    workers:
        Process fan-out for ``multiprocess`` (default: host core count).
    precision:
        Batched-path arithmetic: ``"single"`` (default — the production
        configuration, matching the paper's fp32 GPU kernels) or
        ``"double"`` (bitwise-serial equivalence).  Other backends always
        run float64.
    device:
        Virtual device for ``gpu-sim`` (defaults to the paper's C1060).
    topology:
        :class:`~repro.exec.topology.DeviceTopology` for ``multi-gpu-sim``
        (and for topology-aware ``auto`` selection — supplying a
        multi-device topology lets the selector weigh the sharded virtual
        devices against the host backends).
    devices:
        Shorthand for ``topology``: a device count on the default
        hardware.  A bare ``backend="multi-gpu-sim"`` with neither
        defaults to :data:`~repro.minimize.multidevice.DEFAULT_MINIMIZE_DEVICES`.
    shard_workers:
        Concurrent shard executions for ``multi-gpu-sim`` (``1`` forces
        the sequential shard loop; default one thread per shard).
    serial_fast_path:
        When True (default) the ``serial``, ``multiprocess``, and
        ``gpu-sim`` per-pose models use the energies-only line-search
        fast path (bitwise-identical results, ~1.2x faster iterations).
        ``False`` restores the historical full-evaluation line search —
        the A/B switch the benchmark re-baselining measures against.
    """

    def __init__(
        self,
        molecule: Molecule,
        coords_stack: np.ndarray,
        movable: np.ndarray | None = None,
        config: MinimizerConfig | None = None,
        backend: str = "auto",
        batch_size: int | None = None,
        workers: int | None = None,
        precision: str = "single",
        device=None,
        topology: DeviceTopology | None = None,
        devices: int | None = None,
        shard_workers: int | None = None,
        nonbonded_cutoff: float = VDW_CUTOFF,
        list_cutoff: float = NEIGHBOR_LIST_CUTOFF,
        serial_fast_path: bool = True,
    ) -> None:
        if backend not in MINIMIZE_BACKEND_NAMES:
            raise ValueError(
                f"unknown backend {backend!r}; expected one of {MINIMIZE_BACKEND_NAMES}"
            )
        if precision not in ("single", "double"):
            raise ValueError(f"unknown precision {precision!r}")
        if topology is not None and devices is not None and topology.num_devices != devices:
            raise ValueError(
                f"topology has {topology.num_devices} devices but devices={devices}"
            )
        if topology is None and devices is not None:
            topology = default_topology(devices)
        if topology is None and backend == "multi-gpu-sim":
            topology = default_topology(DEFAULT_MINIMIZE_DEVICES)
        # Host-side canonical copy is deliberately fp64; the engine casts to
        # its precision at kernel entry, so both families share one input.
        stack = np.asarray(coords_stack, dtype=float)  # repro: ignore[REPRO-DTYPE]
        if stack.ndim == 2:
            stack = stack[None]
        n = molecule.n_atoms
        if stack.ndim != 3 or stack.shape[1:] != (n, 3):
            raise ValueError(f"coords_stack must be (P, {n}, 3), got {stack.shape}")
        self.molecule = molecule
        self.coords_stack = stack
        self.n_poses = len(stack)
        self.config = config or MinimizerConfig()
        self.precision = precision
        self.serial_fast_path = serial_fast_path
        self.nonbonded_cutoff = nonbonded_cutoff
        self.list_cutoff = list_cutoff
        self._device = device
        self.topology = topology
        self.shard_workers = shard_workers
        self.workers = workers or os.cpu_count() or 1
        # The ensemble model doubles as the cost-model's pair-count probe
        # (pose 0's movable-filtered list is representative — same topology,
        # same pocket scale across poses) and as the single-chunk batched
        # execution path, the common case; it also owns movable-mask
        # normalization, so validation lives in exactly one place.
        self._ensemble_model = EnsembleEnergyModel(
            self.molecule,
            self.coords_stack,
            movable=movable,
            nonbonded_cutoff=self.nonbonded_cutoff,
            list_cutoff=self.list_cutoff,
            precision=self.precision,
        )
        self.movable = self._ensemble_model.movable
        n_pairs = (
            len(self._ensemble_model.pair_arrays(0)[0]) if self.n_poses else 0
        )
        self.decision = select_minimize_backend(
            n_poses=self.n_poses,
            n_pairs=n_pairs,
            n_atoms=n,
            iterations=self.config.max_iterations,
            batch_size=batch_size,
            workers=workers,
            include_gpu=backend == "gpu-sim",
            device_spec=device.spec if device is not None else None,
            topology=self.topology,
        )
        self.backend = backend if backend != "auto" else self.decision.backend
        if batch_size is not None:
            self.batch_size = batch_size
        elif self.backend in ("batched", "gpu-sim", "multi-gpu-sim"):
            self.batch_size = self.decision.batch_size
        else:
            self.batch_size = 1

    def _movable_row(self, p: int) -> Optional[np.ndarray]:
        return None if self.movable is None else self.movable[p]

    # -- execution ---------------------------------------------------------------

    def run(
        self,
        cancel_check: Optional[Callable[[], None]] = None,
        on_shard: Optional[Callable[[int, int], None]] = None,
    ) -> List[MinimizationResult]:
        """Minimize the ensemble; one result per pose, in pose order."""
        return self.run_detailed(cancel_check=cancel_check, on_shard=on_shard).results

    def run_detailed(
        self,
        cancel_check: Optional[Callable[[], None]] = None,
        on_shard: Optional[Callable[[int, int], None]] = None,
    ) -> MinimizationRun:
        """Minimize and report backend provenance (and GPU time ledger).

        ``cancel_check`` / ``on_shard`` drive the ``multi-gpu-sim``
        backend's cooperative boundaries (a raising ``cancel_check`` stops
        queued shards from starting and running shards at their next
        batch chunk); other backends honor ``cancel_check`` once, before
        any work starts.
        """
        t_start = time.perf_counter()
        predicted_device_s: Optional[float] = None
        # Provenance reports the devices the run was *planned over*, which
        # is only >1 when the sharded backend actually executes.
        num_devices = (
            self.topology.num_devices
            if self.backend == "multi-gpu-sim" and self.topology is not None
            else 1
        )
        shards: Tuple[ShardExecution, ...] = ()
        reduction_order: Tuple[int, ...] = ()
        if cancel_check is not None and self.backend != "multi-gpu-sim":
            cancel_check()
        if self.n_poses == 0:
            results: List[MinimizationResult] = []
        elif self.backend == "serial":
            results = self._run_serial()
        elif self.backend == "batched":
            results = self._run_batched()
        elif self.backend == "multiprocess":
            results = self._run_multiprocess()
        elif self.backend == "multi-gpu-sim":
            md = MultiDeviceMinimizer(
                self.molecule,
                self.coords_stack,
                movable=self.movable,
                config=self.config,
                topology=self.topology,
                precision=self.precision,
                batch_size=self.batch_size,
                nonbonded_cutoff=self.nonbonded_cutoff,
                list_cutoff=self.list_cutoff,
                shard_workers=self.shard_workers,
            ).run(cancel_check=cancel_check, on_shard=on_shard)
            results = md.results
            predicted_device_s = md.predicted_makespan_s
            shards = md.shards
            reduction_order = md.reduction_order
        else:
            results, predicted_device_s = self._run_gpu_sim()
        reg = registry()
        reg.counter(
            "repro_minimize_poses_total", ("backend",),
            help="Poses minimized, by executing backend.",
        ).inc(len(results), backend=self.backend)
        reg.counter(
            "repro_minimize_iterations_total", ("backend",),
            help="Minimizer iterations run (energy/gradient evaluations).",
        ).inc(sum(r.iterations for r in results), backend=self.backend)
        reg.histogram(
            "repro_minimize_run_seconds", ("backend",),
            help="Wall seconds per minimization run.",
        ).observe(time.perf_counter() - t_start, backend=self.backend)
        if shards:
            makespans = reg.histogram(
                "repro_minimize_shard_seconds", ("device",),
                help="Measured wall seconds per minimization shard.",
            )
            for shard in shards:
                makespans.observe(shard.wall_s, device=str(shard.device_index))
        return MinimizationRun(
            results=results,
            backend=self.backend,
            batch_size=self.batch_size,
            decision=self.decision,
            predicted_device_time_s=predicted_device_s,
            num_devices=num_devices,
            shards=shards,
            reduction_order=reduction_order,
        )

    # -- backends ----------------------------------------------------------------

    def _serial_model(self, p: int) -> EnergyModel:
        return EnergyModel(
            self.molecule,
            movable=self._movable_row(p),
            nonbonded_cutoff=self.nonbonded_cutoff,
            list_cutoff=self.list_cutoff,
            energies_only=self.serial_fast_path,
        )

    def _run_serial(self) -> List[MinimizationResult]:
        return [
            Minimizer(self._serial_model(p), config=self.config).run(
                coords=self.coords_stack[p]
            )
            for p in range(self.n_poses)
        ]

    def _run_batched(self) -> List[MinimizationResult]:
        if self.batch_size >= self.n_poses:
            return BatchedMinimizer(self._ensemble_model, self.config).run()
        results: List[MinimizationResult] = []
        for pose_chunk in chunked(list(range(self.n_poses)), self.batch_size):
            idx = np.asarray(pose_chunk)
            model = EnsembleEnergyModel(
                self.molecule,
                self.coords_stack[idx],
                movable=None if self.movable is None else self.movable[idx],
                nonbonded_cutoff=self.nonbonded_cutoff,
                list_cutoff=self.list_cutoff,
                precision=self.precision,
            )
            results.extend(BatchedMinimizer(model, self.config).run())
        return results

    def _run_multiprocess(self) -> List[MinimizationResult]:
        items = [
            (self.coords_stack[p], self._movable_row(p)) for p in range(self.n_poses)
        ]
        return parallel_map(
            _minimize_worker_task,
            items,
            processes=min(self.workers, self.n_poses),
            initializer=_init_minimize_worker,
            initargs=(
                self.molecule,
                self.config,
                self.nonbonded_cutoff,
                self.list_cutoff,
                self.serial_fast_path,
            ),
        )

    def _run_gpu_sim(self):
        """Serial-reference numerics + the scheme-C virtual-device ledger.

        Each pose's per-iteration kernel launches are recorded on the
        virtual device once, then scaled by the iterations that pose
        actually ran — mirroring the docking facade's predicted-time ledger.
        """
        from repro.cuda.device import Device
        from repro.gpu.minimize_kernels import GpuMinimizationEngine

        device = self._device or Device()
        results: List[MinimizationResult] = []
        predicted = 0.0
        for p in range(self.n_poses):
            model = self._serial_model(p)
            model.neighbor_list(self.coords_stack[p])   # pose-p pair structure
            gpu = GpuMinimizationEngine(device, model)
            res = Minimizer(model, config=self.config).run(
                coords=self.coords_stack[p]
            )
            predicted += res.iterations * gpu.iteration_timing().total_s
            results.append(res)
        return results, predicted


# Module-level worker state: built once per forked worker by the
# initializer, so the template molecule is shipped once, not per task.
_MINIMIZE_WORKER_CTX = None


def _init_minimize_worker(
    molecule, config, nonbonded_cutoff, list_cutoff, fast_path=True
) -> None:
    global _MINIMIZE_WORKER_CTX
    _MINIMIZE_WORKER_CTX = (molecule, config, nonbonded_cutoff, list_cutoff, fast_path)


def _minimize_worker_task(item) -> MinimizationResult:
    coords, movable = item
    molecule, config, nonbonded_cutoff, list_cutoff, fast_path = _MINIMIZE_WORKER_CTX
    model = EnergyModel(
        molecule,
        movable=movable,
        nonbonded_cutoff=nonbonded_cutoff,
        list_cutoff=list_cutoff,
        energies_only=fast_path,
    )
    return Minimizer(model, config=config).run(coords=coords)
