"""The single minimization entry point: backend selection + batched execution.

Mirror of :class:`repro.docking.engine.DockingEngine`, one phase later:
every ensemble-refinement scenario — the FTMap minimization stage, the
equivalence tests, the benchmarks — funnels through
:class:`MinimizationEngine`.  The facade

1. resolves a backend (``serial`` / ``batched`` / ``multiprocess`` /
   ``gpu-sim`` / ``auto``) via the cost-model selection layer
   (:mod:`repro.minimize.selection`), sized by ensemble size x pair count,
2. builds the matching execution path — per-pose serial
   :class:`~repro.minimize.minimizer.Minimizer` runs, a
   :class:`~repro.minimize.batched.BatchedMinimizer` over an
   :class:`~repro.minimize.ensemble.EnsembleEnergyModel`, a forked
   per-pose fan-out, or the serial path with a scheme-C virtual-GPU
   time ledger for ``gpu-sim``,
3. runs the ensemble and returns per-pose
   :class:`~repro.minimize.minimizer.MinimizationResult` lists.

Numerics: ``serial``, ``multiprocess``, and double-precision ``batched``
agree to floating-point summation order (tested); the production batched
configuration evaluates in float32 — the paper's GPU arithmetic — and
agrees within single-precision tolerance.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.constants import NEIGHBOR_LIST_CUTOFF, VDW_CUTOFF
from repro.minimize.batched import BatchedMinimizer
from repro.minimize.energy import EnergyModel
from repro.minimize.ensemble import EnsembleEnergyModel
from repro.minimize.minimizer import MinimizationResult, Minimizer, MinimizerConfig
from repro.minimize.selection import MinimizeBackendDecision, select_minimize_backend
from repro.structure.molecule import Molecule
from repro.util.parallel import chunked, parallel_map

__all__ = ["MinimizationEngine", "MinimizationRun", "MINIMIZE_BACKEND_NAMES"]

#: Backends the facade can execute.
MINIMIZE_BACKEND_NAMES = ("serial", "batched", "multiprocess", "gpu-sim", "auto")


@dataclass
class MinimizationRun:
    """Per-pose results plus the provenance of one facade run."""

    results: List[MinimizationResult]
    backend: str
    batch_size: int
    decision: MinimizeBackendDecision
    predicted_device_time_s: Optional[float] = None   # gpu-sim only


class MinimizationEngine:
    """Facade over ensemble minimization with auto-selected backends.

    Parameters
    ----------
    molecule:
        Template complex (topology + parameters shared by all poses).
    coords_stack:
        ``(P, N, 3)`` start conformations (``(N, 3)`` is promoted to a
        single-pose ensemble).
    movable:
        Optional movable mask, ``(N,)`` shared or ``(P, N)`` per pose.
    config:
        :class:`MinimizerConfig` shared by every pose.
    backend:
        One of :data:`MINIMIZE_BACKEND_NAMES`; ``"auto"`` (default) picks
        the cheapest CPU backend from the cost model.
    batch_size:
        Poses per vectorized evaluation for the batched path (``None`` =
        cost-model default, memory-budgeted).
    workers:
        Process fan-out for ``multiprocess`` (default: host core count).
    precision:
        Batched-path arithmetic: ``"single"`` (default — the production
        configuration, matching the paper's fp32 GPU kernels) or
        ``"double"`` (bitwise-serial equivalence).  Other backends always
        run float64.
    device:
        Virtual device for ``gpu-sim`` (defaults to the paper's C1060).
    """

    def __init__(
        self,
        molecule: Molecule,
        coords_stack: np.ndarray,
        movable: np.ndarray | None = None,
        config: MinimizerConfig | None = None,
        backend: str = "auto",
        batch_size: int | None = None,
        workers: int | None = None,
        precision: str = "single",
        device=None,
        nonbonded_cutoff: float = VDW_CUTOFF,
        list_cutoff: float = NEIGHBOR_LIST_CUTOFF,
    ) -> None:
        if backend not in MINIMIZE_BACKEND_NAMES:
            raise ValueError(
                f"unknown backend {backend!r}; expected one of {MINIMIZE_BACKEND_NAMES}"
            )
        if precision not in ("single", "double"):
            raise ValueError(f"unknown precision {precision!r}")
        stack = np.asarray(coords_stack, dtype=float)
        if stack.ndim == 2:
            stack = stack[None]
        n = molecule.n_atoms
        if stack.ndim != 3 or stack.shape[1:] != (n, 3):
            raise ValueError(f"coords_stack must be (P, {n}, 3), got {stack.shape}")
        self.molecule = molecule
        self.coords_stack = stack
        self.n_poses = len(stack)
        self.config = config or MinimizerConfig()
        self.precision = precision
        self.nonbonded_cutoff = nonbonded_cutoff
        self.list_cutoff = list_cutoff
        self._device = device
        self.workers = workers or os.cpu_count() or 1
        # The ensemble model doubles as the cost-model's pair-count probe
        # (pose 0's movable-filtered list is representative — same topology,
        # same pocket scale across poses) and as the single-chunk batched
        # execution path, the common case; it also owns movable-mask
        # normalization, so validation lives in exactly one place.
        self._ensemble_model = EnsembleEnergyModel(
            self.molecule,
            self.coords_stack,
            movable=movable,
            nonbonded_cutoff=self.nonbonded_cutoff,
            list_cutoff=self.list_cutoff,
            precision=self.precision,
        )
        self.movable = self._ensemble_model.movable
        n_pairs = (
            len(self._ensemble_model.pair_arrays(0)[0]) if self.n_poses else 0
        )
        self.decision = select_minimize_backend(
            n_poses=self.n_poses,
            n_pairs=n_pairs,
            n_atoms=n,
            iterations=self.config.max_iterations,
            batch_size=batch_size,
            workers=workers,
            include_gpu=backend == "gpu-sim",
            device_spec=device.spec if device is not None else None,
        )
        self.backend = backend if backend != "auto" else self.decision.backend
        if batch_size is not None:
            self.batch_size = batch_size
        elif self.backend in ("batched", "gpu-sim"):
            self.batch_size = self.decision.batch_size
        else:
            self.batch_size = 1

    def _movable_row(self, p: int) -> Optional[np.ndarray]:
        return None if self.movable is None else self.movable[p]

    # -- execution ---------------------------------------------------------------

    def run(self) -> List[MinimizationResult]:
        """Minimize the ensemble; one result per pose, in pose order."""
        return self.run_detailed().results

    def run_detailed(self) -> MinimizationRun:
        """Minimize and report backend provenance (and GPU time ledger)."""
        predicted_device_s: Optional[float] = None
        if self.n_poses == 0:
            results: List[MinimizationResult] = []
        elif self.backend == "serial":
            results = self._run_serial()
        elif self.backend == "batched":
            results = self._run_batched()
        elif self.backend == "multiprocess":
            results = self._run_multiprocess()
        else:
            results, predicted_device_s = self._run_gpu_sim()
        return MinimizationRun(
            results=results,
            backend=self.backend,
            batch_size=self.batch_size,
            decision=self.decision,
            predicted_device_time_s=predicted_device_s,
        )

    # -- backends ----------------------------------------------------------------

    def _serial_model(self, p: int) -> EnergyModel:
        return EnergyModel(
            self.molecule,
            movable=self._movable_row(p),
            nonbonded_cutoff=self.nonbonded_cutoff,
            list_cutoff=self.list_cutoff,
        )

    def _run_serial(self) -> List[MinimizationResult]:
        return [
            Minimizer(self._serial_model(p), config=self.config).run(
                coords=self.coords_stack[p]
            )
            for p in range(self.n_poses)
        ]

    def _run_batched(self) -> List[MinimizationResult]:
        if self.batch_size >= self.n_poses:
            return BatchedMinimizer(self._ensemble_model, self.config).run()
        results: List[MinimizationResult] = []
        for pose_chunk in chunked(list(range(self.n_poses)), self.batch_size):
            idx = np.asarray(pose_chunk)
            model = EnsembleEnergyModel(
                self.molecule,
                self.coords_stack[idx],
                movable=None if self.movable is None else self.movable[idx],
                nonbonded_cutoff=self.nonbonded_cutoff,
                list_cutoff=self.list_cutoff,
                precision=self.precision,
            )
            results.extend(BatchedMinimizer(model, self.config).run())
        return results

    def _run_multiprocess(self) -> List[MinimizationResult]:
        items = [
            (self.coords_stack[p], self._movable_row(p)) for p in range(self.n_poses)
        ]
        return parallel_map(
            _minimize_worker_task,
            items,
            processes=min(self.workers, self.n_poses),
            initializer=_init_minimize_worker,
            initargs=(
                self.molecule,
                self.config,
                self.nonbonded_cutoff,
                self.list_cutoff,
            ),
        )

    def _run_gpu_sim(self):
        """Serial-reference numerics + the scheme-C virtual-device ledger.

        Each pose's per-iteration kernel launches are recorded on the
        virtual device once, then scaled by the iterations that pose
        actually ran — mirroring the docking facade's predicted-time ledger.
        """
        from repro.cuda.device import Device
        from repro.gpu.minimize_kernels import GpuMinimizationEngine

        device = self._device or Device()
        results: List[MinimizationResult] = []
        predicted = 0.0
        for p in range(self.n_poses):
            model = self._serial_model(p)
            model.neighbor_list(self.coords_stack[p])   # pose-p pair structure
            gpu = GpuMinimizationEngine(device, model)
            res = Minimizer(model, config=self.config).run(
                coords=self.coords_stack[p]
            )
            predicted += res.iterations * gpu.iteration_timing().total_s
            results.append(res)
        return results, predicted


# Module-level worker state: built once per forked worker by the
# initializer, so the template molecule is shipped once, not per task.
_MINIMIZE_WORKER_CTX = None


def _init_minimize_worker(molecule, config, nonbonded_cutoff, list_cutoff) -> None:
    global _MINIMIZE_WORKER_CTX
    _MINIMIZE_WORKER_CTX = (molecule, config, nonbonded_cutoff, list_cutoff)


def _minimize_worker_task(item) -> MinimizationResult:
    coords, movable = item
    molecule, config, nonbonded_cutoff, list_cutoff = _MINIMIZE_WORKER_CTX
    model = EnergyModel(
        molecule,
        movable=movable,
        nonbonded_cutoff=nonbonded_cutoff,
        list_cutoff=list_cutoff,
    )
    return Minimizer(model, config=config).run(coords=coords)
