"""Bonded energy terms of Eq. (3): bond, angle, torsion (dihedral), improper.

Standard CHARMM functional forms with analytic gradients:

* bond:     E = kb (r - r0)^2
* angle:    E = ka (theta - theta0)^2
* dihedral: E = kd (1 + cos(n phi - delta))
* improper: E = ki (psi - psi0)^2   (harmonic out-of-plane, CHARMM style)

Bonded evaluation "is a small fraction of the total runtime and is left to
be executed on the host" (Sec. II.B); these vectorized routines are the host
path in both the serial and GPU pipelines.
"""

from __future__ import annotations

import numpy as np

from repro.minimize.accumulate import as_float_array, scatter_add_rows, scatter_sub_rows

__all__ = ["bond_energy", "angle_energy", "dihedral_energy", "improper_energy"]

_EPS = 1e-12


def bond_energy(
    coords: np.ndarray,
    bonds: np.ndarray,
    kb: np.ndarray,
    r0: np.ndarray,
    per_term: bool = False,
    with_gradient: bool = True,
):
    """Harmonic bond energy and gradient.

    Parameters are per-bond arrays (kb, r0); ``bonds`` is (B, 2).  With
    ``per_term=True`` a third element (the per-bond energies, in bond order)
    is appended — the hook the ensemble evaluator uses to split one
    flattened bonded pass back into per-conformation sums.
    """
    coords = as_float_array(coords)
    n = len(coords)
    grad = np.zeros((n, 3), dtype=coords.dtype)
    if len(bonds) == 0:
        return (0.0, grad, np.zeros(0)) if per_term else (0.0, grad)
    i, j = bonds[:, 0], bonds[:, 1]
    d = coords[i] - coords[j]
    r = np.linalg.norm(d, axis=1)
    dr = r - r0
    e_terms = kb * dr**2
    energy = float(e_terms.sum())
    if not with_gradient:
        return (energy, None, e_terms) if per_term else (energy, None)
    r_safe = np.where(r > _EPS, r, 1.0)
    g = (2.0 * kb * dr / r_safe)[:, None] * d
    scatter_add_rows(grad, i, g)
    scatter_sub_rows(grad, j, g)
    if per_term:
        return energy, grad, e_terms
    return energy, grad


def angle_energy(
    coords: np.ndarray,
    angles: np.ndarray,
    ka: np.ndarray,
    theta0: np.ndarray,
    per_term: bool = False,
    with_gradient: bool = True,
):
    """Harmonic angle energy and gradient; ``angles`` is (A, 3) = (i, j, k)
    with ``j`` the vertex.  ``per_term=True`` appends per-angle energies."""
    coords = as_float_array(coords)
    n = len(coords)
    grad = np.zeros((n, 3), dtype=coords.dtype)
    if len(angles) == 0:
        return (0.0, grad, np.zeros(0)) if per_term else (0.0, grad)
    i, j, k = angles[:, 0], angles[:, 1], angles[:, 2]
    rij = coords[i] - coords[j]
    rkj = coords[k] - coords[j]
    nij = np.linalg.norm(rij, axis=1)
    nkj = np.linalg.norm(rkj, axis=1)
    nij = np.where(nij > _EPS, nij, _EPS)
    nkj = np.where(nkj > _EPS, nkj, _EPS)
    cos_t = (rij * rkj).sum(axis=1) / (nij * nkj)
    cos_t = np.clip(cos_t, -1.0, 1.0)
    theta = np.arccos(cos_t)
    dt = theta - theta0
    e_terms = ka * dt**2
    energy = float(e_terms.sum())
    if not with_gradient:
        return (energy, None, e_terms) if per_term else (energy, None)

    # dtheta/dcos = -1/sin(theta); guard collinear geometries.
    sin_t = np.sqrt(np.maximum(1.0 - cos_t**2, 1e-8))
    dE_dtheta = 2.0 * ka * dt
    coef = -dE_dtheta / sin_t

    # dcos/dri and dcos/drk (standard formulas)
    dcos_di = (rkj / (nij * nkj)[:, None]) - (cos_t / nij**2)[:, None] * rij
    dcos_dk = (rij / (nij * nkj)[:, None]) - (cos_t / nkj**2)[:, None] * rkj
    gi = coef[:, None] * dcos_di
    gk = coef[:, None] * dcos_dk
    scatter_add_rows(grad, i, gi)
    scatter_add_rows(grad, k, gk)
    scatter_sub_rows(grad, j, gi + gk)
    if per_term:
        return energy, grad, e_terms
    return energy, grad


def _dihedral_angle_and_grads(
    coords: np.ndarray, quads: np.ndarray, with_grads: bool = True
):
    """Signed dihedral angles phi and dphi/dx for (D, 4) index quads.

    Convention: with bond vectors b1 = p1-p0, b2 = p2-p1, b3 = p3-p2 and
    plane normals n1 = b1 x b2, n2 = b2 x b3,

        phi = atan2((n1 x n2) . b2_hat, n1 . n2)

    (right-handed about b2; a +phi twist of p3 about the +b2 axis increases
    the angle).  Gradients follow the standard b-vector result, verified
    against finite differences in the test suite:

        dphi/dp0 = -|b2| n1 / |n1|^2
        dphi/dp3 = +|b2| n2 / |n2|^2
        dphi/dp1 = -(1 + s) dphi/dp0 + t dphi/dp3
        dphi/dp2 = s dphi/dp0 - (1 + t) dphi/dp3

    with s = (b1 . b2)/|b2|^2 and t = (b3 . b2)/|b2|^2; translation
    invariance (the four gradients sum to zero) holds by construction.
    """
    p0, p1, p2, p3 = (coords[quads[:, k]] for k in range(4))
    b1 = p1 - p0
    b2 = p2 - p1
    b3 = p3 - p2

    n1 = np.cross(b1, b2)
    n2 = np.cross(b2, b3)
    nb2 = np.linalg.norm(b2, axis=1)
    nb2 = np.where(nb2 > _EPS, nb2, _EPS)
    b2_hat = b2 / nb2[:, None]

    x = (n1 * n2).sum(axis=1)
    y = (np.cross(n1, n2) * b2_hat).sum(axis=1)
    phi = np.arctan2(y, x)
    if not with_grads:
        return phi, None

    sq_n1 = (n1 * n1).sum(axis=1)
    sq_n2 = (n2 * n2).sum(axis=1)
    sq_n1 = np.where(sq_n1 > _EPS, sq_n1, _EPS)
    sq_n2 = np.where(sq_n2 > _EPS, sq_n2, _EPS)

    dphi_d0 = -(nb2 / sq_n1)[:, None] * n1
    dphi_d3 = (nb2 / sq_n2)[:, None] * n2
    s = ((b1 * b2).sum(axis=1) / (nb2**2))[:, None]
    t = ((b3 * b2).sum(axis=1) / (nb2**2))[:, None]
    dphi_d1 = -(1.0 + s) * dphi_d0 + t * dphi_d3
    dphi_d2 = s * dphi_d0 - (1.0 + t) * dphi_d3
    return phi, (dphi_d0, dphi_d1, dphi_d2, dphi_d3)


def dihedral_energy(
    coords: np.ndarray,
    dihedrals: np.ndarray,
    kd: np.ndarray,
    n_mult: np.ndarray,
    delta: np.ndarray,
    per_term: bool = False,
    with_gradient: bool = True,
):
    """Cosine torsion energy ``kd (1 + cos(n phi - delta))`` and gradient."""
    coords = as_float_array(coords)
    n = len(coords)
    grad = np.zeros((n, 3), dtype=coords.dtype)
    if len(dihedrals) == 0:
        return (0.0, grad, np.zeros(0)) if per_term else (0.0, grad)
    phi, dgrads = _dihedral_angle_and_grads(coords, dihedrals, with_gradient)
    arg = n_mult * phi - delta
    e_terms = kd * (1.0 + np.cos(arg))
    energy = float(e_terms.sum())
    if not with_gradient:
        return (energy, None, e_terms) if per_term else (energy, None)
    dE_dphi = -kd * n_mult * np.sin(arg)
    for col, dphi in zip(range(4), dgrads):
        scatter_add_rows(grad, dihedrals[:, col], dE_dphi[:, None] * dphi)
    if per_term:
        return energy, grad, e_terms
    return energy, grad


def improper_energy(
    coords: np.ndarray,
    impropers: np.ndarray,
    ki: np.ndarray,
    psi0: np.ndarray,
    per_term: bool = False,
    with_gradient: bool = True,
):
    """Harmonic improper energy ``ki (psi - psi0)^2`` using the dihedral
    angle of the (i, j, k, l) quad as the out-of-plane coordinate psi."""
    coords = as_float_array(coords)
    n = len(coords)
    grad = np.zeros((n, 3), dtype=coords.dtype)
    if len(impropers) == 0:
        return (0.0, grad, np.zeros(0)) if per_term else (0.0, grad)
    psi, dgrads = _dihedral_angle_and_grads(coords, impropers, with_gradient)
    # Wrap psi - psi0 into (-pi, pi] so the harmonic well is periodic-safe.
    dpsi = np.arctan2(np.sin(psi - psi0), np.cos(psi - psi0))
    e_terms = ki * dpsi**2
    energy = float(e_terms.sum())
    if not with_gradient:
        return (energy, None, e_terms) if per_term else (energy, None)
    dE_dpsi = 2.0 * ki * dpsi
    for col, dphi in zip(range(4), dgrads):
        scatter_add_rows(grad, impropers[:, col], dE_dpsi[:, None] * dphi)
    if per_term:
        return energy, grad, e_terms
    return energy, grad
