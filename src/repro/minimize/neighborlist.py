"""Neighbor lists: the serial FTMap data structure of Fig. 7.

"Each atom (the 'first' atom) has an associated list of neighbors (the
'second' atoms) that contribute to its energy."  Each interacting pair is
stored exactly once, under the lower-indexed atom; processing a pair updates
the energies of *both* atoms.  Lists are built with a cutoff slightly larger
than the interaction cutoff so they remain valid for many iterations
("though energy minimization, like MD, uses neighbor-lists, they are seldom
updated", Sec. II.B).

Storage is CSR-style (offsets + flat second-atom indices), which is both the
natural serial layout and the input from which the GPU pairs-lists of
Figs. 9-10 are derived.

Two construction paths share one vectorized cell-grid core
(:class:`_CellGrid`, sorted-flat-index ``searchsorted`` lookups — no Python
dict walk over cells):

* :func:`build_neighbor_list` — the full O(N) build of one conformation.
* :class:`SharedNeighborCore` — the ensemble-shared path: FTMap's
  minimization phase refines P poses of the *same* receptor+probe complex,
  whose receptor block is identical across poses.  The receptor-receptor
  half list (the overwhelming majority of pairs) is built once per
  ensemble; each pose then derives its full list from the small
  probe-environment delta (probe-probe pairs plus probe-receptor pairs
  within the cutoff), cutting ensemble list-build work ~P-fold.  The
  combined pair set is identical to an independent full build of the pose.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product
from typing import FrozenSet, Optional, Set, Tuple

import numpy as np

from repro.constants import NEIGHBOR_LIST_CUTOFF
from repro.structure.molecule import BondedTopology

__all__ = [
    "NeighborList",
    "SharedNeighborCore",
    "build_neighbor_list",
    "bonded_exclusions",
]

#: The 27-cell neighborhood stencil, as 3-D cell-coordinate offsets.  Kept
#: in 3-D (not pre-flattened) so boundary cells are bounds-checked per axis:
#: flat-index arithmetic alone would wrap a ``dy = -1`` step at ``cy = 0``
#: into a different real cell, which produced duplicate pairs in boxes
#: thinner than three cells.
_STENCIL = np.array(list(product((-1, 0, 1), repeat=3)), dtype=np.int64)


@dataclass
class NeighborList:
    """CSR neighbor list: atom ``i``'s seconds are
    ``indices[offsets[i]:offsets[i+1]]``; every stored second ``j`` satisfies
    ``j > i`` (half list)."""

    n_atoms: int
    offsets: np.ndarray   # (n_atoms + 1,) intp
    indices: np.ndarray   # (n_pairs,) intp
    cutoff: float

    def __post_init__(self) -> None:
        self.offsets = np.asarray(self.offsets, dtype=np.intp)
        self.indices = np.asarray(self.indices, dtype=np.intp)
        if self.offsets.shape != (self.n_atoms + 1,):
            raise ValueError("offsets must have length n_atoms + 1")
        if self.offsets[0] != 0 or self.offsets[-1] != len(self.indices):
            raise ValueError("offsets must start at 0 and end at len(indices)")
        # Flat (first, second) arrays, materialized once on first use: the
        # refresh-policy validity checks run every few iterations and must
        # not re-allocate the pair expansion each time.
        self._firsts: Optional[np.ndarray] = None

    @property
    def n_pairs(self) -> int:
        return len(self.indices)

    def seconds_of(self, i: int) -> np.ndarray:
        """Second atoms of first atom ``i``."""
        return self.indices[self.offsets[i] : self.offsets[i + 1]]

    def counts(self) -> np.ndarray:
        """Number of seconds per first atom — the widely varying group sizes
        ("ranging from a few to a few hundred", Sec. IV.A)."""
        return np.diff(self.offsets)

    def pair_arrays(self) -> Tuple[np.ndarray, np.ndarray]:
        """Flat (first, second) index arrays, one entry per stored pair.

        Cached on the list (a ``NeighborList`` is immutable once built;
        rebuilds create a fresh list, which invalidates by construction).
        Treat the returned arrays as read-only.
        """
        if self._firsts is None:
            self._firsts = np.repeat(
                np.arange(self.n_atoms, dtype=np.intp), self.counts()
            )
        return self._firsts, self.indices

    def max_distance_ok(self, coords: np.ndarray) -> bool:
        """Check every listed pair is still within the list cutoff."""
        i, j = self.pair_arrays()
        if len(i) == 0:
            return True
        d = coords[i] - coords[j]
        d2 = (d * d).sum(axis=1)
        limit = self.cutoff * 1.2
        return bool(np.all(d2 <= limit * limit))


def bonded_exclusions(topology: BondedTopology) -> FrozenSet[Tuple[int, int]]:
    """Pairs excluded from non-bonded lists: 1-2 (bonded) and 1-3 (angle ends).

    Standard CHARMM exclusion policy; keeps bonded terms from being double
    counted by the non-bonded potentials.
    """
    excl: Set[Tuple[int, int]] = set()
    for i, j in topology.bonds:
        excl.add((min(i, j), max(i, j)))
    for i, _, k in topology.angles:
        excl.add((min(i, k), max(i, k)))
    return frozenset(excl)


class _CellGrid:
    """Cutoff-edge spatial cells over a fixed point set.

    Occupied cells are kept as a sorted flat-index array; all neighborhood
    lookups are ``np.searchsorted`` probes against it (the vectorized
    replacement for the historical per-cell Python dict loop).  Queries may
    lie outside the binned box — out-of-range neighbor cells are
    bounds-checked per axis and simply contribute no candidates.
    """

    def __init__(self, coords: np.ndarray, cell: float) -> None:
        self.cell = float(cell)
        self.n_points = len(coords)
        self.mins = coords.min(axis=0)
        self.point_cells = np.floor((coords - self.mins) / self.cell).astype(np.int64)
        self.dims = self.point_cells.max(axis=0) + 1
        flat = self._flatten(self.point_cells)
        self.order = np.argsort(flat, kind="stable")
        self.cells, self.starts = np.unique(flat[self.order], return_index=True)
        self.ends = np.append(self.starts[1:], self.n_points)

    def _flatten(self, xyz: np.ndarray) -> np.ndarray:
        return (xyz[..., 0] * self.dims[1] + xyz[..., 1]) * self.dims[2] + xyz[..., 2]

    def cell_coords(self, points: np.ndarray) -> np.ndarray:
        """Integer 3-D cell coordinates of ``points`` (out-of-range allowed)."""
        return np.floor((points - self.mins) / self.cell).astype(np.int64)

    def neighborhood_candidates(
        self, query_cells: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """All (query_row, member_point) candidates from 27-neighborhoods.

        For each query row (an integer cell coordinate triple), gathers the
        binned points of every occupied cell in its 27-cell neighborhood.
        Every point within one cell edge of a query's cell is guaranteed to
        be among its candidates.
        """
        q = len(query_cells)
        if q == 0 or self.n_points == 0:
            empty = np.empty(0, dtype=np.intp)
            return empty, empty
        nb = query_cells[:, None, :] + _STENCIL[None, :, :]          # (Q, 27, 3)
        in_bounds = np.all((nb >= 0) & (nb < self.dims), axis=2)      # (Q, 27)
        flat = self._flatten(nb)                                      # (Q, 27)
        pos = np.searchsorted(self.cells, flat)
        pos_c = np.minimum(pos, len(self.cells) - 1)
        hit = in_bounds & (self.cells[pos_c] == flat)
        q_rows, stencil_slots = np.nonzero(hit)
        cell_idx = pos_c[q_rows, stencil_slots]
        counts = self.ends[cell_idx] - self.starts[cell_idx]
        total = int(counts.sum())
        # Expand each hit cell's contiguous member slice, fully vectorized:
        # within-block offsets ramp 0..count-1 per hit.
        block_starts = np.cumsum(counts) - counts
        local = np.arange(total, dtype=np.intp) - np.repeat(block_starts, counts)
        members = self.order[np.repeat(self.starts[cell_idx], counts) + local]
        return np.repeat(q_rows, counts).astype(np.intp), members.astype(np.intp)


def _filter_exclusions(
    i_arr: np.ndarray,
    j_arr: np.ndarray,
    excl_keys: np.ndarray,
    n: int,
) -> Tuple[np.ndarray, np.ndarray]:
    """Drop pairs whose ``i * n + j`` key is in the sorted exclusion keys."""
    if len(excl_keys) == 0 or len(i_arr) == 0:
        return i_arr, j_arr
    keys = i_arr.astype(np.int64) * n + j_arr
    pos = np.searchsorted(excl_keys, keys)
    pos_c = np.minimum(pos, len(excl_keys) - 1)
    keep = excl_keys[pos_c] != keys
    return i_arr[keep], j_arr[keep]


def _exclusion_keys(
    exclusions: FrozenSet[Tuple[int, int]], n: int
) -> np.ndarray:
    keys = np.fromiter(
        (a * n + b for a, b in exclusions), dtype=np.int64, count=len(exclusions)
    )
    keys.sort()
    return keys


def _csr_from_pairs(i_arr: np.ndarray, j_arr: np.ndarray, n: int, cutoff: float
                    ) -> NeighborList:
    """Sort (i, j) pairs into the canonical CSR layout (stable by (i, j))."""
    order = np.lexsort((j_arr, i_arr))
    i_arr, j_arr = i_arr[order], j_arr[order]
    counts = np.bincount(i_arr, minlength=n)
    offsets = np.concatenate([[0], np.cumsum(counts)]).astype(np.intp)
    return NeighborList(n, offsets, j_arr.astype(np.intp), cutoff)


def _half_list_pairs(
    coords: np.ndarray, cutoff: float, grid: _CellGrid
) -> Tuple[np.ndarray, np.ndarray]:
    """All (i < j) pairs of ``coords`` within ``cutoff``, via the cell grid."""
    a, b = grid.neighborhood_candidates(grid.point_cells)
    if len(a) == 0:
        empty = np.empty(0, dtype=np.intp)
        return empty, empty
    d = coords[a] - coords[b]
    d2 = (d * d).sum(axis=1)
    keep = (d2 <= cutoff * cutoff) & (a < b)
    return a[keep], b[keep]


def build_neighbor_list(
    coords: np.ndarray,
    cutoff: float = NEIGHBOR_LIST_CUTOFF,
    exclusions: FrozenSet[Tuple[int, int]] = frozenset(),
) -> NeighborList:
    """Build a half neighbor list with a spatial cell grid (O(N) expected).

    Parameters
    ----------
    coords:
        (N, 3) positions.
    cutoff:
        List cutoff distance (Angstrom).
    exclusions:
        Pairs (i < j) to omit (bonded exclusions).
    """
    coords = np.asarray(coords, dtype=float)
    n = len(coords)
    if n == 0:
        return NeighborList(0, np.zeros(1, dtype=np.intp), np.empty(0, dtype=np.intp), cutoff)

    grid = _CellGrid(coords, cutoff)
    i_arr, j_arr = _half_list_pairs(coords, cutoff, grid)
    if exclusions:
        i_arr, j_arr = _filter_exclusions(
            i_arr, j_arr, _exclusion_keys(exclusions, n), n
        )
    return _csr_from_pairs(i_arr, j_arr, n, cutoff)


class SharedNeighborCore:
    """Ensemble-shared receptor-core neighbor structure.

    FTMap's minimization phase refines P poses of one receptor+probe
    complex whose receptor block — atoms ``[0, n_core)`` — is identical
    across poses.  Building P independent lists therefore redoes the same
    receptor-receptor work P times.  This class builds it once:

    * the core-core half list (bonded exclusions already applied) and the
      core cell grid are computed from the shared core coordinates at
      construction,
    * :meth:`pose_list` derives a pose's full :class:`NeighborList` from
      only the probe-environment delta — probe-probe pairs (brute-force
      half list over the small probe block) plus probe-core pairs (grid
      query of the probe atoms against the core's 27-cell neighborhoods).

    The combined pair set is identical to an independent
    :func:`build_neighbor_list` of the full pose, and the CSR layout is
    identical too (same canonical (i, j) sort): callers cannot tell the
    lists apart except by build cost.  Validity ("seldom updated")
    semantics are unchanged — a pose list is refreshed through
    :meth:`NeighborList.max_distance_ok` exactly like a full build, and
    :meth:`core_matches` tells refreshers whether the cheap delta rebuild
    still applies (it does unless the pose's receptor atoms moved).
    """

    def __init__(
        self,
        core_coords: np.ndarray,
        cutoff: float = NEIGHBOR_LIST_CUTOFF,
        exclusions: FrozenSet[Tuple[int, int]] = frozenset(),
    ) -> None:
        core = np.array(np.asarray(core_coords, dtype=float), copy=True)
        if core.ndim != 2 or core.shape[1] != 3:
            raise ValueError(f"core_coords must be (n_core, 3), got {core.shape}")
        self.n_core = len(core)
        self.cutoff = float(cutoff)
        self.core_coords = core
        nc = self.n_core
        core_excl = frozenset((a, b) for a, b in exclusions if b < nc)
        # Delta exclusions (any pair touching a probe atom), kept
        # lexicographically sorted so the flat keys `a * n + b` are sorted
        # for every pose atom count n.
        delta = sorted((a, b) for a, b in exclusions if b >= nc)
        self._delta_excl_a = np.array([a for a, _ in delta], dtype=np.int64)
        self._delta_excl_b = np.array([b for _, b in delta], dtype=np.int64)
        if nc > 0:
            self._grid = _CellGrid(core, self.cutoff)
            core_i, core_j = _half_list_pairs(core, self.cutoff, self._grid)
            if core_excl:
                core_i, core_j = _filter_exclusions(
                    core_i, core_j, _exclusion_keys(core_excl, nc), nc
                )
        else:
            self._grid = None
            core_i = core_j = np.empty(0, dtype=np.intp)
        self._core_i = core_i
        self._core_j = core_j

    @property
    def core_n_pairs(self) -> int:
        return len(self._core_i)

    def core_matches(self, coords: np.ndarray) -> bool:
        """Whether a pose's leading block still *is* the shared core.

        Bitwise comparison: any receptor motion (moved pocket side chains,
        a different receptor) disqualifies the shared core for that pose,
        and the caller falls back to a full per-pose build.
        """
        c = np.asarray(coords, dtype=float)
        return len(c) >= self.n_core and np.array_equal(
            c[: self.n_core], self.core_coords
        )

    def pose_list(self, coords: np.ndarray) -> NeighborList:
        """Full pose list = shared core pairs + this pose's probe delta.

        ``coords`` is the pose's full (N, 3) coordinates whose leading
        ``n_core`` rows equal the shared core (see :meth:`core_matches`;
        not re-verified here).
        """
        coords = np.asarray(coords, dtype=float)
        n = len(coords)
        nc = self.n_core
        probe = coords[nc:]
        m = len(probe)
        cutoff_sq = self.cutoff * self.cutoff

        delta_i = []
        delta_j = []
        if m and nc:
            # Probe-core pairs: grid query against the core's cells.  The
            # lower-indexed (core) atom is the pair's first atom.
            q_rows, cands = self._grid.neighborhood_candidates(
                self._grid.cell_coords(probe)
            )
            if len(q_rows):
                d = probe[q_rows] - self.core_coords[cands]
                d2 = (d * d).sum(axis=1)
                keep = d2 <= cutoff_sq
                delta_i.append(cands[keep])
                delta_j.append((q_rows[keep] + nc).astype(np.intp))
        if m > 1:
            # Probe-probe pairs: the probe block is small, brute-force it.
            pi, pj = np.triu_indices(m, k=1)
            d = probe[pi] - probe[pj]
            d2 = (d * d).sum(axis=1)
            keep = d2 <= cutoff_sq
            delta_i.append((pi[keep] + nc).astype(np.intp))
            delta_j.append((pj[keep] + nc).astype(np.intp))

        if delta_i:
            di = np.concatenate(delta_i)
            dj = np.concatenate(delta_j)
        else:
            di = dj = np.empty(0, dtype=np.intp)
        if len(self._delta_excl_a):
            di, dj = _filter_exclusions(
                di, dj, self._delta_excl_a * n + self._delta_excl_b, n
            )
        i_arr = np.concatenate([self._core_i, di])
        j_arr = np.concatenate([self._core_j, dj])
        return _csr_from_pairs(i_arr, j_arr, n, self.cutoff)
