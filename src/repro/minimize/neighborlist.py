"""Neighbor lists: the serial FTMap data structure of Fig. 7.

"Each atom (the 'first' atom) has an associated list of neighbors (the
'second' atoms) that contribute to its energy."  Each interacting pair is
stored exactly once, under the lower-indexed atom; processing a pair updates
the energies of *both* atoms.  Lists are built with a cutoff slightly larger
than the interaction cutoff so they remain valid for many iterations
("though energy minimization, like MD, uses neighbor-lists, they are seldom
updated", Sec. II.B).

Storage is CSR-style (offsets + flat second-atom indices), which is both the
natural serial layout and the input from which the GPU pairs-lists of
Figs. 9-10 are derived.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Set, Tuple

import numpy as np

from repro.constants import NEIGHBOR_LIST_CUTOFF
from repro.structure.molecule import BondedTopology

__all__ = ["NeighborList", "build_neighbor_list", "bonded_exclusions"]


@dataclass
class NeighborList:
    """CSR neighbor list: atom ``i``'s seconds are
    ``indices[offsets[i]:offsets[i+1]]``; every stored second ``j`` satisfies
    ``j > i`` (half list)."""

    n_atoms: int
    offsets: np.ndarray   # (n_atoms + 1,) intp
    indices: np.ndarray   # (n_pairs,) intp
    cutoff: float

    def __post_init__(self) -> None:
        self.offsets = np.asarray(self.offsets, dtype=np.intp)
        self.indices = np.asarray(self.indices, dtype=np.intp)
        if self.offsets.shape != (self.n_atoms + 1,):
            raise ValueError("offsets must have length n_atoms + 1")
        if self.offsets[0] != 0 or self.offsets[-1] != len(self.indices):
            raise ValueError("offsets must start at 0 and end at len(indices)")

    @property
    def n_pairs(self) -> int:
        return len(self.indices)

    def seconds_of(self, i: int) -> np.ndarray:
        """Second atoms of first atom ``i``."""
        return self.indices[self.offsets[i] : self.offsets[i + 1]]

    def counts(self) -> np.ndarray:
        """Number of seconds per first atom — the widely varying group sizes
        ("ranging from a few to a few hundred", Sec. IV.A)."""
        return np.diff(self.offsets)

    def pair_arrays(self) -> Tuple[np.ndarray, np.ndarray]:
        """Flat (first, second) index arrays, one entry per stored pair."""
        firsts = np.repeat(np.arange(self.n_atoms, dtype=np.intp), self.counts())
        return firsts, self.indices.copy()

    def max_distance_ok(self, coords: np.ndarray) -> bool:
        """Check every listed pair is still within the list cutoff."""
        i, j = self.pair_arrays()
        if len(i) == 0:
            return True
        d = np.linalg.norm(coords[i] - coords[j], axis=1)
        return bool(np.all(d <= self.cutoff * 1.2))


def bonded_exclusions(topology: BondedTopology) -> FrozenSet[Tuple[int, int]]:
    """Pairs excluded from non-bonded lists: 1-2 (bonded) and 1-3 (angle ends).

    Standard CHARMM exclusion policy; keeps bonded terms from being double
    counted by the non-bonded potentials.
    """
    excl: Set[Tuple[int, int]] = set()
    for i, j in topology.bonds:
        excl.add((min(i, j), max(i, j)))
    for i, _, k in topology.angles:
        excl.add((min(i, k), max(i, k)))
    return frozenset(excl)


def build_neighbor_list(
    coords: np.ndarray,
    cutoff: float = NEIGHBOR_LIST_CUTOFF,
    exclusions: FrozenSet[Tuple[int, int]] = frozenset(),
) -> NeighborList:
    """Build a half neighbor list with a spatial cell grid (O(N) expected).

    Parameters
    ----------
    coords:
        (N, 3) positions.
    cutoff:
        List cutoff distance (Angstrom).
    exclusions:
        Pairs (i < j) to omit (bonded exclusions).
    """
    coords = np.asarray(coords, dtype=float)
    n = len(coords)
    if n == 0:
        return NeighborList(0, np.zeros(1, dtype=np.intp), np.empty(0, dtype=np.intp), cutoff)

    # Cell binning: cells of edge = cutoff; compare each cell with its 27
    # neighborhood.  For the paper's local-refinement geometry this is
    # ~uniform occupancy.
    mins = coords.min(axis=0)
    cell_idx = np.floor((coords - mins) / cutoff).astype(np.int64)
    dims = cell_idx.max(axis=0) + 1
    flat = (cell_idx[:, 0] * dims[1] + cell_idx[:, 1]) * dims[2] + cell_idx[:, 2]
    order = np.argsort(flat, kind="stable")
    sorted_flat = flat[order]
    # cell -> slice of `order`
    unique_cells, starts = np.unique(sorted_flat, return_index=True)
    cell_to_slice = {
        int(c): (int(s), int(e))
        for c, s, e in zip(
            unique_cells, starts, np.append(starts[1:], len(order))
        )
    }

    cutoff_sq = cutoff * cutoff
    pair_i: list = []
    pair_j: list = []
    neighbor_offsets = [
        (dx * dims[1] + dy) * dims[2] + dz
        for dx in (-1, 0, 1)
        for dy in (-1, 0, 1)
        for dz in (-1, 0, 1)
    ]
    for c in unique_cells:
        s, e = cell_to_slice[int(c)]
        members = order[s:e]
        # Gather candidate atoms from the 27-cell neighborhood.
        cand_list = []
        for off in neighbor_offsets:
            nb = int(c) + off
            sl = cell_to_slice.get(nb)
            if sl is not None:
                cand_list.append(order[sl[0] : sl[1]])
        cands = np.concatenate(cand_list)
        # Vectorized distance check members x candidates.
        diff = coords[members][:, None, :] - coords[cands][None, :, :]
        d2 = (diff * diff).sum(axis=2)
        mi, cj = np.nonzero(d2 <= cutoff_sq)
        a = members[mi]
        b = cands[cj]
        keep = a < b  # half list
        pair_i.append(a[keep])
        pair_j.append(b[keep])

    i_arr = np.concatenate(pair_i) if pair_i else np.empty(0, dtype=np.intp)
    j_arr = np.concatenate(pair_j) if pair_j else np.empty(0, dtype=np.intp)

    if exclusions:
        excl_keys = {a * n + b for a, b in exclusions}
        keys = i_arr * n + j_arr
        mask = np.fromiter(
            (int(k) not in excl_keys for k in keys), dtype=bool, count=len(keys)
        )
        i_arr, j_arr = i_arr[mask], j_arr[mask]

    # Sort by first atom to get CSR layout (stable keeps j order deterministic).
    order2 = np.lexsort((j_arr, i_arr))
    i_arr, j_arr = i_arr[order2], j_arr[order2]
    counts = np.bincount(i_arr, minlength=n)
    offsets = np.concatenate([[0], np.cumsum(counts)]).astype(np.intp)
    return NeighborList(n, offsets, j_arr.astype(np.intp), cutoff)
