"""Smoothed Lennard-Jones 6-12 van der Waals term: Eqs. (8)-(10).

FTMap "uses a variant of the Lennard-Jones 6-12 potential" that folds the
cutoff into the functional form through ``(r/rc)^6`` and ``(r/rc)^12``
polynomial tail terms.  We use the unique such variant that is C^1-smooth at
the cutoff:

    E(r) = eps * [ (rm^12/r^12) - 2 (rm^6/r^6)
                 + (r^6/rc^6) * (6 rm^6/rc^6 - 4 rm^12/rc^12)
                 + (r^12/rc^12) * (3 rm^12/rc^12 - 4 rm^6/rc^6) ]   r < rc
    E(r) = 0                                                        r >= rc

The tail coefficients are the unique solution making both E(rc) = 0 and
E'(rc) = 0 for every (eps, rm) — i.e., energy and force vanish continuously
at the cutoff, which a minimizer requires (a force jump at rc would make
line searches oscillate).  Pair parameters combine per Eqs. (9)-(10):
``eps_ik = sqrt(eps_i eps_k)`` and ``rm_ik = (rm_i + rm_k) / 2``... the
paper's Eq. (10) writes the sum; we follow CHARMM's rm_min convention where
per-atom ``rm`` values are half-radii so the pair minimum is their sum.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.constants import VDW_CUTOFF
from repro.minimize.accumulate import as_float_array, scatter_add_rows, scatter_sub_rows

__all__ = ["vdw_pair_parameters", "vdw_energy"]


def vdw_pair_parameters(
    eps: np.ndarray, rm: np.ndarray, pair_i: np.ndarray, pair_j: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Combine per-atom LJ parameters into per-pair (eps_ik, rm_ik).

    Eq. (9): geometric mean of well depths; Eq. (10): sum of half-radii.
    """
    eps_ik = np.sqrt(eps[pair_i] * eps[pair_j])
    rm_ik = rm[pair_i] + rm[pair_j]
    return eps_ik, rm_ik


def vdw_energy(
    coords: np.ndarray,
    eps: np.ndarray,
    rm: np.ndarray,
    pair_i: np.ndarray,
    pair_j: np.ndarray,
    cutoff: float = VDW_CUTOFF,
    per_pair: bool = False,
    energies_only: bool = False,
):
    """Smoothed LJ energy, per-atom split, and analytic gradient.

    Returns ``(total, per_atom, gradient)`` (plus per-pair energies when
    ``per_pair=True``).  Pairs at or beyond the cutoff contribute exactly
    zero energy and force.
    """
    coords = as_float_array(coords)
    n = len(coords)
    per_atom = np.zeros(n, dtype=coords.dtype)
    gradient = np.zeros((n, 3), dtype=coords.dtype)
    if len(pair_i) == 0:
        result = (0.0, per_atom, gradient)
        return result + (np.zeros(0),) if per_pair else result

    d = coords[pair_i] - coords[pair_j]
    r2 = (d * d).sum(axis=1)
    r = np.sqrt(r2)

    eps_ik, rm_ik = vdw_pair_parameters(eps, rm, pair_i, pair_j)

    rc = cutoff
    inside = r < rc
    r_in = np.where(inside, r, rc)  # dummy values outside; masked later
    r_in = np.where(r_in > 1e-6, r_in, 1e-6)  # guard r=0 overlap

    u = rm_ik**6
    inv_r6 = 1.0 / r_in**6
    a = u * u * inv_r6 * inv_r6          # rm^12 / r^12
    b = u * inv_r6                        # rm^6  / r^6
    rc6 = rc**6
    rc12 = rc6 * rc6
    p6 = r_in**6 / rc6                    # (r/rc)^6
    p12 = p6 * p6
    c6 = u / rc6                          # (rm/rc)^6
    c12 = c6 * c6

    e_pair = eps_ik * (a - 2.0 * b + p6 * (6.0 * c6 - 4.0 * c12) + p12 * (3.0 * c12 - 4.0 * c6))
    e_pair = np.where(inside, e_pair, 0.0)
    total = float(e_pair.sum())

    if energies_only:
        # Line-search fast path: per-pair energies only, no per-atom split,
        # no derivative arithmetic.
        result = (total, None, None)
        return result + (e_pair,) if per_pair else result

    np.add.at(per_atom, pair_i, 0.5 * e_pair)
    np.add.at(per_atom, pair_j, 0.5 * e_pair)

    # dE/dr = eps [ -12 rm^12/r^13 + 12 rm^6/r^7
    #             + 6 r^5/rc^6 (6c6 - 4c12) + 12 r^11/rc^12 (3c12 - 4c6) ]
    de_dr = eps_ik * (
        -12.0 * a / r_in
        + 12.0 * b / r_in
        + 6.0 * (r_in**5) / rc6 * (6.0 * c6 - 4.0 * c12)
        + 12.0 * (r_in**11) / rc12 * (3.0 * c12 - 4.0 * c6)
    )
    de_dr = np.where(inside, de_dr, 0.0)
    r_safe = np.where(r > 1e-6, r, 1e-6)
    g = (de_dr / r_safe)[:, None] * d
    scatter_add_rows(gradient, pair_i, g)
    scatter_sub_rows(gradient, pair_j, g)

    if per_pair:
        return total, per_atom, gradient, e_pair
    return total, per_atom, gradient
