"""Pairs-list data structures: Figs. 9 and 10 of the paper.

The GPU restructuring replaces the neighbor-list with:

* :class:`PairsList` (Fig. 9) — a flat list of atom pairs, each carrying
  slots for the partial energies of *both* atoms; pairs are independent and
  distribute evenly over threads, but accumulation into per-atom energies
  remains serial because second atoms occur in random order.
* :class:`SplitPairsLists` (Fig. 10) — two lists.  The **forward** list is
  the original neighbor-list flattened (grouped by first atom); the
  **reverse** list is the neighbor-list transposed (each original second
  atom becomes a first atom).  While processing a list only the energy of
  the pair's first atom is computed, which makes all writes for one atom
  land in one contiguous group — the property that enables shared-memory
  accumulation via the assignment table (Fig. 11, in
  ``repro.gpu.assignment``).

The same structures also drive the *vectorized CPU* energy path: a flat
pairs-list is exactly the gather/scatter layout NumPy needs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.minimize.neighborlist import NeighborList

__all__ = ["PairsList", "SplitPairsLists", "split_pairs", "group_boundaries"]


@dataclass
class PairsList:
    """Flat atom-pairs list (Fig. 9).

    ``atom1``/``atom2`` are (P,) index arrays; ``energy1``/``energy2`` are
    the per-pair partial-energy slots the GPU threads write ("fields to
    store the partial energies of the two atoms involved in the pair").
    """

    atom1: np.ndarray
    atom2: np.ndarray
    energy1: np.ndarray
    energy2: np.ndarray

    @classmethod
    def from_neighbor_list(cls, nlist: NeighborList) -> "PairsList":
        i, j = nlist.pair_arrays()
        p = len(i)
        return cls(
            atom1=i,
            atom2=j,
            energy1=np.zeros(p),
            energy2=np.zeros(p),
        )

    @property
    def n_pairs(self) -> int:
        return len(self.atom1)

    def accumulate_serial(self, n_atoms: int) -> np.ndarray:
        """Serial accumulation of partial energies into per-atom totals.

        This is the step the paper found "is actually faster on the host"
        for the flat list: a single serial walk over both energy columns.
        """
        out = np.zeros(n_atoms)
        # NumPy's unbuffered add.at is the vectorized equivalent of the
        # host-side serial accumulation loop.
        np.add.at(out, self.atom1, self.energy1)
        np.add.at(out, self.atom2, self.energy2)
        return out


@dataclass
class DirectionalPairsList:
    """One direction of the split pairs-list (Fig. 10).

    Pairs are grouped by ``first`` (contiguous runs); only the first atom's
    energy is computed while processing this list, so there is a single
    energy column.
    """

    first: np.ndarray    # (P,) group-sorted first-atom indices
    second: np.ndarray   # (P,) partner indices
    energy: np.ndarray   # (P,) partial energy of `first` for this pair

    @property
    def n_pairs(self) -> int:
        return len(self.first)

    def group_sizes(self) -> Tuple[np.ndarray, np.ndarray]:
        """(unique first atoms, pairs per group) in storage order."""
        if self.n_pairs == 0:
            return np.empty(0, dtype=np.intp), np.empty(0, dtype=np.intp)
        change = np.nonzero(np.diff(self.first))[0] + 1
        starts = np.concatenate([[0], change])
        ends = np.concatenate([change, [self.n_pairs]])
        return self.first[starts], (ends - starts).astype(np.intp)

    def accumulate_grouped(self, n_atoms: int) -> np.ndarray:
        """Per-atom totals via grouped (shared-memory-style) accumulation.

        Because pairs are grouped by first atom, each atom's partials are a
        contiguous slice — the master thread of each group sums a contiguous
        run, which is what makes the GPU version fast.  Here we use
        ``np.add.reduceat`` over the group boundaries.
        """
        out = np.zeros(n_atoms)
        if self.n_pairs == 0:
            return out
        atoms, sizes = self.group_sizes()
        starts = np.concatenate([[0], np.cumsum(sizes)[:-1]])
        sums = np.add.reduceat(self.energy, starts)
        out[atoms] = sums
        return out


@dataclass
class SplitPairsLists:
    """Forward + reverse directional pairs-lists (Fig. 10)."""

    forward: DirectionalPairsList
    reverse: DirectionalPairsList

    def total_pairs(self) -> int:
        return self.forward.n_pairs + self.reverse.n_pairs


def split_pairs(nlist: NeighborList) -> SplitPairsLists:
    """Build the forward and reverse pairs-lists from a neighbor list.

    The forward list is the neighbor list itself (already grouped by first
    atom).  The reverse list treats "each second atom of the original
    neighbor list as a first atom for the reverse neighbor list": transpose
    the pair set and re-sort grouped by the (new) first atom.
    """
    i, j = nlist.pair_arrays()
    fwd = DirectionalPairsList(first=i.copy(), second=j.copy(), energy=np.zeros(len(i)))
    order = np.lexsort((i, j))
    rev = DirectionalPairsList(
        first=j[order].copy(), second=i[order].copy(), energy=np.zeros(len(i))
    )
    return SplitPairsLists(forward=fwd, reverse=rev)


def group_boundaries(first: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Start indices and sizes of contiguous equal-``first`` runs."""
    if len(first) == 0:
        return np.empty(0, dtype=np.intp), np.empty(0, dtype=np.intp)
    change = np.nonzero(np.diff(first))[0] + 1
    starts = np.concatenate([[0], change]).astype(np.intp)
    sizes = np.diff(np.concatenate([starts, [len(first)]])).astype(np.intp)
    return starts, sizes
