"""Batched ensemble minimizer: the serial algorithm, one step for all poses.

Runs the exact per-pose algorithm of :class:`~repro.minimize.minimizer.
Minimizer` — steepest descent or Polak-Ribiere CG, normalized descent
direction, backtracking line search, the "seldom updated" neighbor-list
policy — but advances every conformation of an ensemble in lock-step through
one :class:`~repro.minimize.ensemble.EnsembleEnergyModel` evaluation per
step.  Per-pose state (step size, CG memory, convergence) is kept in arrays;
poses drop out of the active set as they converge, so late iterations
evaluate only the stragglers (active-set masking).

The numbers are the serial numbers: each pose's trajectory is what its own
``Minimizer`` would produce, to floating-point summation order.  Only the
batching of NumPy dispatches differs — the same restructuring-without-
renumbering discipline the paper's GPU schemes follow.
"""

from __future__ import annotations

from typing import Callable, List, Optional

import numpy as np

from repro.minimize.energy import EnergyReport
from repro.minimize.ensemble import EnsembleEnergyModel, EnsembleEnergyReport
from repro.minimize.minimizer import MinimizationResult, MinimizerConfig

__all__ = ["BatchedMinimizer"]


class BatchedMinimizer:
    """Minimizes every pose of an ensemble with vectorized per-pose state.

    Parameters
    ----------
    model:
        The ensemble energy model (carries the movable masks).
    config:
        :class:`MinimizerConfig` — shared hyper-parameters; step sizes and
        convergence are still tracked per pose.
    """

    def __init__(
        self,
        model: EnsembleEnergyModel,
        config: MinimizerConfig | None = None,
    ) -> None:
        self.model = model
        self.config = config or MinimizerConfig()

    def run(
        self,
        coords_stack: np.ndarray | None = None,
        callback: Optional[Callable[[int, EnsembleEnergyReport], None]] = None,
    ) -> List[MinimizationResult]:
        """Minimize every pose; returns one result per pose, in pose order.

        ``callback(iteration, ensemble_report)`` fires after each accepted
        batch step with the report of the poses evaluated that iteration.
        """
        cfg = self.config
        model = self.model
        n_poses, n_atoms = model.n_poses, model.n_atoms
        if n_poses == 0:
            return []
        dtype = model.dtype
        x = np.array(
            model.coords_stack if coords_stack is None else coords_stack, dtype=dtype
        )
        if x.shape != (n_poses, n_atoms, 3):
            raise ValueError(f"coords_stack must be ({n_poses}, {n_atoms}, 3)")
        movable = model.movable_stack()
        rebuilds_before = model.pose_list_rebuilds.copy()

        report = model.evaluate(x)
        energy = report.totals.copy()
        initial_energy = energy.copy()
        trajectory: List[List[float]] = [[float(e)] for e in energy]

        # Last-known per-pose evaluation state (rows refreshed as poses step).
        forces_buf = report.forces.copy()
        comp_buf = {key: val.copy() for key, val in report.components.items()}
        per_atom_buf = report.per_atom_nonbonded.copy()
        born_buf = report.born_radii.copy()

        step = np.full(n_poses, cfg.initial_step, dtype=dtype)
        converged = np.zeros(n_poses, dtype=bool)
        iterations = np.zeros(n_poses, dtype=int)
        active = np.ones(n_poses, dtype=bool)
        prev_forces = np.zeros((n_poses, n_atoms, 3), dtype=dtype)
        prev_direction = np.zeros((n_poses, n_atoms, 3), dtype=dtype)

        for it in range(1, cfg.max_iterations + 1):
            ids = np.nonzero(active)[0]
            if ids.size == 0:
                break
            iterations[ids] = it

            forces = forces_buf[ids].copy()
            forces[~movable[ids]] = 0.0
            fmax = np.abs(forces).max(axis=(1, 2))
            at_rest = fmax == 0.0
            if at_rest.any():
                converged[ids[at_rest]] = True
                active[ids[at_rest]] = False
                ids = ids[~at_rest]
                forces = forces[~at_rest]
                if ids.size == 0:
                    continue

            if cfg.method == "cg" and it > 1 and (it % cfg.cg_restart_every != 0):
                # Polak-Ribiere beta per pose, clipped at 0 (automatic restart).
                pf = prev_forces[ids]
                num = ((forces - pf) * forces).sum(axis=(1, 2))
                den = (pf * pf).sum(axis=(1, 2))
                beta = np.where(den > 0, np.maximum(0.0, num / den), 0.0)
                raw = forces + beta[:, None, None] * prev_direction[ids]
                # Fall back to steepest descent where CG points uphill.
                uphill = (raw * forces).sum(axis=(1, 2)) <= 0
                raw[uphill] = forces[uphill]
            else:
                raw = forces
            prev_forces[ids] = forces
            prev_direction[ids] = raw
            dmax = np.abs(raw).max(axis=(1, 2))
            direction = raw / dmax[:, None, None]  # normalized descent directions

            # Backtracking line search: each pending pose halves its own step
            # until its energy decreases; accepted poses sit out the retries.
            trial = np.minimum(step[ids], dtype(cfg.max_step))
            accepted = np.zeros(ids.size, dtype=bool)
            x_new = np.empty_like(direction)
            e_new = np.empty(ids.size, dtype=dtype)
            pending = np.arange(ids.size)
            for _ in range(cfg.max_backtracks):
                pids = ids[pending]
                x_trial = x[pids] + trial[pending][:, None, None] * direction[pending]
                e_trial = model.energy_only(x_trial, pose_ids=pids)
                ok = e_trial < energy[pids]
                hit = pending[ok]
                accepted[hit] = True
                x_new[hit] = x_trial[ok]
                e_new[hit] = e_trial[ok]
                pending = pending[~ok]
                if pending.size == 0:
                    break
                trial[pending] *= 0.5

            # No downhill step representable -> that pose is done.
            stuck = ids[~accepted]
            converged[stuck] = True
            active[stuck] = False
            moved = ids[accepted]
            if moved.size == 0:
                continue

            prev_energy = energy[moved].copy()
            x[moved] = x_new[accepted]
            energy[moved] = e_new[accepted]
            step[moved] = np.minimum(trial[accepted] * cfg.growth, cfg.max_step)

            if it % cfg.check_neighbor_list_every == 0:
                model.maybe_refresh(x[moved], pose_ids=moved)

            report = model.evaluate(x[moved], pose_ids=moved)
            forces_buf[moved] = report.forces
            # Keep the evaluated energy authoritative; it may differ slightly
            # from the line-search value after a list refresh.
            energy[moved] = report.totals
            per_atom_buf[moved] = report.per_atom_nonbonded
            born_buf[moved] = report.born_radii
            for key, val in report.components.items():
                comp_buf[key][moved] = val
            for row, p in enumerate(moved):
                trajectory[p].append(float(report.totals[row]))
            if callback is not None:
                callback(it, report)
            settled = np.abs(prev_energy - energy[moved]) < cfg.tolerance
            converged[moved[settled]] = True
            active[moved[settled]] = False

        results: List[MinimizationResult] = []
        for p in range(n_poses):
            final_report = EnergyReport(
                total=float(energy[p]),
                components={key: float(val[p]) for key, val in comp_buf.items()},
                forces=forces_buf[p].copy(),
                per_atom_nonbonded=per_atom_buf[p].copy(),
                born_radii=born_buf[p].copy(),
            )
            results.append(
                MinimizationResult(
                    coords=x[p],
                    energy=float(energy[p]),
                    initial_energy=float(initial_energy[p]),
                    iterations=int(iterations[p]),
                    converged=bool(converged[p]),
                    energy_trajectory=trajectory[p],
                    list_rebuilds=int(
                        model.pose_list_rebuilds[p] - rebuilds_before[p]
                    ),
                    final_report=final_report,
                )
            )
        return results
