"""Backend auto-selection for the minimization hot path.

Mirror of :mod:`repro.docking.selection`, one phase later in the pipeline:
given an ensemble size (poses), the per-pose active-pair count, and the
atom count, predict the whole-phase cost of every minimization backend and
pick the cheapest:

* ``serial`` / ``batched`` / ``multiprocess`` from the reproduction-host
  formulas of :class:`repro.perf.cpumodel.CpuModel` — the batched path
  amortizes the fixed per-evaluation dispatch cost over the ensemble (it
  wins when that overhead is a visible fraction, i.e. small/medium pair
  counts), while process fan-out divides the array arithmetic across cores
  (it wins for very large pair counts where arithmetic dominates),
* ``gpu-sim`` from the analytic GPU cost model applied to the three
  scheme-C energy kernels (via the shared per-iteration predictor in
  :mod:`repro.gpu.minimize_common`), included only when a device spec is
  supplied — the virtual device predicts time but executes on the host, so
  it must be opted into,
* ``multi-gpu-sim`` from the same kernel model sharded over a
  :class:`~repro.exec.topology.DeviceTopology`: the predicted phase time
  is the busiest shard (ceil-division imbalance) plus the per-shard
  ensemble upload and the serialized template broadcast.  Supplying a
  multi-device topology *is* the opt-in — auto-selection then weighs the
  sharded virtual devices against the host backends.

Host constants and the default device spec come from the shared topology
layer (:mod:`repro.exec.topology`) — this module no longer keeps its own
``CpuModel()`` / ``TESLA_C1060`` fallbacks, so it cannot drift from the
docking selector.

The decision carries every backend's prediction so callers (benchmarks,
reports) can show the full table, not just the winner.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Dict, Optional

from repro.exec.topology import DeviceTopology, default_device_spec, host_model
from repro.perf.cpumodel import CpuModel

__all__ = [
    "MINIMIZE_CPU_BACKENDS",
    "DEFAULT_MINIMIZE_BATCH",
    "ENSEMBLE_PAIR_BUDGET",
    "MinimizeBackendDecision",
    "ensemble_batch_limit",
    "predict_minimize_times",
    "multi_device_phase_s",
    "select_minimize_backend",
]

#: Backends that execute real host arithmetic (auto-selectable everywhere).
MINIMIZE_CPU_BACKENDS = ("serial", "batched", "multiprocess")

#: Default cap on poses per vectorized evaluation.
DEFAULT_MINIMIZE_BATCH = 64

#: Flattened-pair budget per vectorized evaluation: poses x pairs beyond
#: this stops amortizing (temporaries spill cache) and starts costing RAM,
#: so the batch size is clamped to stay inside it.
ENSEMBLE_PAIR_BUDGET = 1_500_000


def ensemble_batch_limit(n_pairs: int, budget: int = ENSEMBLE_PAIR_BUDGET) -> int:
    """Largest pose batch keeping ``batch * n_pairs`` within the budget."""
    return max(1, budget // max(1, n_pairs))


@dataclass(frozen=True)
class MinimizeBackendDecision:
    """Outcome of minimization backend selection for one ensemble size."""

    backend: str
    batch_size: int
    workers: int
    predictions: Dict[str, float]   # backend -> predicted whole-phase seconds

    @property
    def predicted_s(self) -> float:
        return self.predictions[self.backend]


def predict_minimize_times(
    n_poses: int,
    n_pairs: int,
    n_atoms: int,
    iterations: int,
    batch_size: Optional[int] = None,
    workers: Optional[int] = None,
    cpu: Optional[CpuModel] = None,
    device_spec=None,
    topology: Optional[DeviceTopology] = None,
) -> Dict[str, float]:
    """Predicted whole-phase seconds for every minimization backend.

    The host predictions (``serial``/``batched``/``multiprocess``) share
    ``CpuModel.host_minimization_phase_s``, whose per-iteration cost is
    ``1 + energy_only_fraction`` full evaluations: since the serial-floor
    re-baselining, every host backend's line-search probe uses the
    kernels' energies-only fast path, so the serial and batched formulas
    moved together and the predicted ratios between them are unchanged.

    ``gpu-sim`` appears only when ``device_spec`` is given (or implied by a
    ``topology``); its prediction is the cost-model time of the six
    scheme-C kernel passes per iteration plus the host move.
    ``multi-gpu-sim`` appears only when a ``topology`` is given: the same
    per-iteration kernel time, sharded — busiest-device makespan plus the
    per-shard conformation upload and the serialized template broadcast.
    """
    from repro.gpu.minimize_common import scheme_c_iteration_s

    cpu = cpu or host_model()
    batch = _resolve_batch(n_poses, n_pairs, batch_size)
    w = workers or os.cpu_count() or 1
    if device_spec is None and topology is not None:
        device_spec = topology.device_spec
    times = {
        "serial": cpu.host_minimization_phase_s(n_poses, iterations, n_pairs, n_atoms),
        "batched": cpu.host_minimization_phase_s(
            n_poses, iterations, n_pairs, n_atoms, batch=batch
        ),
        "multiprocess": cpu.multiprocess_minimization_phase_s(
            n_poses, iterations, n_pairs, n_atoms, workers=w
        ),
    }
    if device_spec is not None:
        times["gpu-sim"] = n_poses * iterations * scheme_c_iteration_s(
            n_pairs, n_atoms, device_spec
        )
    if topology is not None:
        times["multi-gpu-sim"] = multi_device_phase_s(
            n_poses, n_pairs, n_atoms, iterations, topology
        )
    return times


def multi_device_phase_s(
    n_poses: int,
    n_pairs: int,
    n_atoms: int,
    iterations: int,
    topology: DeviceTopology,
) -> float:
    """Predicted sharded minimization phase time on ``topology``.

    Busiest-shard makespan of the scheme-C iteration kernels plus the
    per-shard conformation upload and the serialized template broadcast.
    The single source of the sharded-phase formula: auto-selection, the
    ``perf.speedup`` shard-scaling tables and (via the same constants)
    the executing :class:`~repro.minimize.multidevice.MultiDeviceMinimizer`
    ledger all read it, so predictions cannot drift from execution.
    """
    from repro.gpu.minimize_common import scheme_c_iteration_s
    from repro.minimize.multidevice import (
        COORD_BYTES_PER_ATOM,
        TEMPLATE_BYTES_PER_ATOM,
    )

    if n_poses <= 0:
        return 0.0
    plan = topology.plan(n_poses)
    cost = topology.cost_model()
    iter_s = scheme_c_iteration_s(n_pairs, n_atoms, topology.device_spec)
    upload_s = cost.transfer_time(int(plan.largest * n_atoms * COORD_BYTES_PER_ATOM))
    broadcast_s = topology.broadcast_s(int(n_atoms * TEMPLATE_BYTES_PER_ATOM))
    return plan.makespan_s(iterations * iter_s, per_shard_s=upload_s) + broadcast_s


def select_minimize_backend(
    n_poses: int,
    n_pairs: int,
    n_atoms: int,
    iterations: int,
    batch_size: Optional[int] = None,
    workers: Optional[int] = None,
    include_gpu: bool = False,
    cpu: Optional[CpuModel] = None,
    device_spec=None,
    topology: Optional[DeviceTopology] = None,
) -> MinimizeBackendDecision:
    """Pick the cheapest minimization backend for an ensemble size.

    The GPU simulator is considered only with ``include_gpu=True`` (it
    predicts device time while computing on the host, so auto-picking it
    must be an explicit choice); ``multi-gpu-sim`` is considered only when
    a multi-device ``topology`` is supplied — naming a topology is the
    same explicit choice one fan-out wider.  A single pose never selects
    the batched, multiprocess, or sharded paths — there is nothing to
    batch, fan out, or shard.
    """
    if include_gpu and device_spec is None:
        device_spec = (
            topology.device_spec if topology is not None else default_device_spec()
        )
    w = workers or os.cpu_count() or 1
    times = predict_minimize_times(
        n_poses, n_pairs, n_atoms, iterations, batch_size, w, cpu, device_spec,
        topology,
    )
    candidates = dict(times)
    if not include_gpu:
        candidates.pop("gpu-sim", None)
    if topology is None or topology.num_devices <= 1:
        candidates.pop("multi-gpu-sim", None)
    if n_poses <= 1:
        candidates.pop("batched", None)
        candidates.pop("multiprocess", None)
        candidates.pop("multi-gpu-sim", None)
    backend = min(candidates, key=candidates.get)
    batch = (
        _resolve_batch(n_poses, n_pairs, batch_size)
        if backend in ("batched", "gpu-sim", "multi-gpu-sim")
        else 1
    )
    return MinimizeBackendDecision(
        backend=backend, batch_size=batch, workers=w, predictions=times
    )


def _resolve_batch(n_poses: int, n_pairs: int, batch_size: Optional[int]) -> int:
    if batch_size is not None:
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        return batch_size
    return max(
        1, min(DEFAULT_MINIMIZE_BATCH, ensemble_batch_limit(n_pairs), max(1, n_poses))
    )
