"""Backend auto-selection for the minimization hot path.

Mirror of :mod:`repro.docking.selection`, one phase later in the pipeline:
given an ensemble size (poses), the per-pose active-pair count, and the
atom count, predict the whole-phase cost of every minimization backend and
pick the cheapest:

* ``serial`` / ``batched`` / ``multiprocess`` from the reproduction-host
  formulas of :class:`repro.perf.cpumodel.CpuModel` — the batched path
  amortizes the fixed per-evaluation dispatch cost over the ensemble (it
  wins when that overhead is a visible fraction, i.e. small/medium pair
  counts), while process fan-out divides the array arithmetic across cores
  (it wins for very large pair counts where arithmetic dominates),
* ``gpu-sim`` from the analytic GPU cost model applied to the three
  scheme-C energy kernels (via the shared launch builder in
  :mod:`repro.gpu.minimize_common`), included only when a device spec is
  supplied — the virtual device predicts time but executes on the host, so
  it must be opted into.

The decision carries every backend's prediction so callers (benchmarks,
reports) can show the full table, not just the winner.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Dict, Optional

from repro.perf.cpumodel import CpuModel

__all__ = [
    "MINIMIZE_CPU_BACKENDS",
    "DEFAULT_MINIMIZE_BATCH",
    "ENSEMBLE_PAIR_BUDGET",
    "MinimizeBackendDecision",
    "ensemble_batch_limit",
    "predict_minimize_times",
    "select_minimize_backend",
]

#: Backends that execute real host arithmetic (auto-selectable everywhere).
MINIMIZE_CPU_BACKENDS = ("serial", "batched", "multiprocess")

#: Default cap on poses per vectorized evaluation.
DEFAULT_MINIMIZE_BATCH = 64

#: Flattened-pair budget per vectorized evaluation: poses x pairs beyond
#: this stops amortizing (temporaries spill cache) and starts costing RAM,
#: so the batch size is clamped to stay inside it.
ENSEMBLE_PAIR_BUDGET = 1_500_000


def ensemble_batch_limit(n_pairs: int, budget: int = ENSEMBLE_PAIR_BUDGET) -> int:
    """Largest pose batch keeping ``batch * n_pairs`` within the budget."""
    return max(1, budget // max(1, n_pairs))


@dataclass(frozen=True)
class MinimizeBackendDecision:
    """Outcome of minimization backend selection for one ensemble size."""

    backend: str
    batch_size: int
    workers: int
    predictions: Dict[str, float]   # backend -> predicted whole-phase seconds

    @property
    def predicted_s(self) -> float:
        return self.predictions[self.backend]


def predict_minimize_times(
    n_poses: int,
    n_pairs: int,
    n_atoms: int,
    iterations: int,
    batch_size: Optional[int] = None,
    workers: Optional[int] = None,
    cpu: Optional[CpuModel] = None,
    device_spec=None,
) -> Dict[str, float]:
    """Predicted whole-phase seconds for every minimization backend.

    ``gpu-sim`` appears only when ``device_spec`` is given; its prediction
    is the cost-model time of the six scheme-C kernel passes per iteration
    (forward + reverse direction of each energy kernel) plus the host move.
    """
    cpu = cpu or CpuModel()
    batch = _resolve_batch(n_poses, n_pairs, batch_size)
    w = workers or os.cpu_count() or 1
    times = {
        "serial": cpu.host_minimization_phase_s(n_poses, iterations, n_pairs, n_atoms),
        "batched": cpu.host_minimization_phase_s(
            n_poses, iterations, n_pairs, n_atoms, batch=batch
        ),
        "multiprocess": cpu.multiprocess_minimization_phase_s(
            n_poses, iterations, n_pairs, n_atoms, workers=w
        ),
    }
    if device_spec is not None:
        times["gpu-sim"] = (
            n_poses * iterations * _gpu_iteration_s(n_pairs, n_atoms, device_spec)
        )
    return times


def select_minimize_backend(
    n_poses: int,
    n_pairs: int,
    n_atoms: int,
    iterations: int,
    batch_size: Optional[int] = None,
    workers: Optional[int] = None,
    include_gpu: bool = False,
    cpu: Optional[CpuModel] = None,
    device_spec=None,
) -> MinimizeBackendDecision:
    """Pick the cheapest minimization backend for an ensemble size.

    The GPU simulator is considered only with ``include_gpu=True`` (it
    predicts device time while computing on the host, so auto-picking it
    must be an explicit choice).  A single pose never selects the batched
    or multiprocess paths — there is nothing to batch or fan out.
    """
    if include_gpu and device_spec is None:
        from repro.cuda.device import TESLA_C1060

        device_spec = TESLA_C1060
    w = workers or os.cpu_count() or 1
    times = predict_minimize_times(
        n_poses, n_pairs, n_atoms, iterations, batch_size, w, cpu, device_spec
    )
    candidates = dict(times)
    if not include_gpu:
        candidates.pop("gpu-sim", None)
    if n_poses <= 1:
        candidates.pop("batched", None)
        candidates.pop("multiprocess", None)
    backend = min(candidates, key=candidates.get)
    batch = (
        _resolve_batch(n_poses, n_pairs, batch_size)
        if backend in ("batched", "gpu-sim")
        else 1
    )
    return MinimizeBackendDecision(
        backend=backend, batch_size=batch, workers=w, predictions=times
    )


def _resolve_batch(n_poses: int, n_pairs: int, batch_size: Optional[int]) -> int:
    if batch_size is not None:
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        return batch_size
    return max(
        1, min(DEFAULT_MINIMIZE_BATCH, ensemble_batch_limit(n_pairs), max(1, n_poses))
    )


def _gpu_iteration_s(n_pairs: int, n_atoms: int, device_spec) -> float:
    """Cost-model time of one scheme-C minimization iteration."""
    from repro.cuda.costmodel import CostModel
    from repro.gpu.minimize_common import (
        FORCE_UPDATE_OPS,
        PAIRWISE_VDW_OPS,
        SELF_ENERGY_OPS,
        energy_kernel_launch,
    )
    from repro.gpu.minimize_kernels import HOST_MOVE_S

    cost = CostModel(device_spec)
    total = 0.0
    for name, profile in (
        ("self_energy", SELF_ENERGY_OPS),
        ("pairwise_vdw", PAIRWISE_VDW_OPS),
        ("force_update", FORCE_UPDATE_OPS),
    ):
        launch = energy_kernel_launch(name, profile, n_pairs, n_atoms)
        total += 2.0 * cost.kernel_time(launch)   # forward + reverse lists
    return total + HOST_MOVE_S
