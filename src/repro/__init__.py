"""repro: reproduction of "Fast Binding Site Mapping using GPUs and CUDA"
(Sukhwani & Herbordt, IPDPS Workshops 2010).

The package rebuilds the full FTMap system the paper accelerates —

* PIPER rigid docking (FFT + direct multi-channel grid correlation, scoring,
  region-exclusion filtering): :mod:`repro.docking`, :mod:`repro.grids`,
* CHARMM/ACE energy minimization (Eqs. 3-10, neighbor/pairs lists, analytic
  gradients, steepest-descent driver): :mod:`repro.minimize`,
* the binding-site mapping application (probe library, clustering,
  consensus hotspots): :mod:`repro.mapping`, :mod:`repro.structure`,

— plus the paper's contribution, the GPU port, on a *virtual CUDA device*
(Tesla C1060 execution/cost model): :mod:`repro.cuda`, :mod:`repro.gpu`,
with the serial/multicore reference models and the table/figure
reproduction harness in :mod:`repro.perf`, and the unified telemetry
layer (request tracing, metrics registry, structured logging) in
:mod:`repro.obs`.

The public front door is the session-scoped mapping service
(:mod:`repro.api`)::

    from repro import synthetic_protein, FTMapConfig, FTMapService, mapping_report

    with FTMapService() as service:
        mapped = service.map(
            synthetic_protein(),
            FTMapConfig(probe_names=("ethanol", "benzene")),
        )
    print(mapping_report(mapped.result))
"""

from repro.structure import (
    Molecule,
    ForceField,
    default_forcefield,
    build_probe,
    probe_library,
    FTMAP_PROBE_NAMES,
    synthetic_protein,
    synthetic_complex,
    read_pdb,
    write_pdb,
)
from repro.docking import (
    PiperConfig,
    PiperDocker,
    DockedPose,
    DockingEngine,
    DockingRun,
    FFTCorrelationEngine,
    BatchedFFTCorrelationEngine,
    DirectCorrelationEngine,
    select_backend,
    filter_top_poses,
)
from repro.minimize import (
    EnergyModel,
    EnergyReport,
    Minimizer,
    MinimizerConfig,
    MinimizationResult,
    EnsembleEnergyModel,
    BatchedMinimizer,
    MinimizationEngine,
    MinimizationRun,
    MultiDeviceMinimizer,
    MultiDeviceRun,
    ShardExecution,
    select_minimize_backend,
)
from repro.mapping import (
    FTMapConfig,
    FTMapResult,
    run_ftmap,
    run_sweep,
    sweep_grid,
    SweepReport,
    mapping_report,
    consensus_sites,
    cluster_poses,
)
from repro.cache import CacheManager, CacheStats, resolve_manager
from repro.cuda import Device, DeviceSpec, TESLA_C1060
from repro.exec import DeviceTopology, ShardPlan, default_topology
from repro.api import (
    FTMapService,
    MapRequest,
    MapResult,
    JobHandle,
    JobCancelled,
    ProgressEvent,
    receptor_fingerprint,
)
from repro.obs import MetricsRegistry, Tracer, metrics_registry

__version__ = "1.9.0"

__all__ = [
    "Molecule",
    "ForceField",
    "default_forcefield",
    "build_probe",
    "probe_library",
    "FTMAP_PROBE_NAMES",
    "synthetic_protein",
    "synthetic_complex",
    "read_pdb",
    "write_pdb",
    "PiperConfig",
    "PiperDocker",
    "DockedPose",
    "DockingEngine",
    "DockingRun",
    "FFTCorrelationEngine",
    "BatchedFFTCorrelationEngine",
    "DirectCorrelationEngine",
    "select_backend",
    "filter_top_poses",
    "EnergyModel",
    "EnergyReport",
    "Minimizer",
    "MinimizerConfig",
    "MinimizationResult",
    "EnsembleEnergyModel",
    "BatchedMinimizer",
    "MinimizationEngine",
    "MinimizationRun",
    "MultiDeviceMinimizer",
    "MultiDeviceRun",
    "ShardExecution",
    "select_minimize_backend",
    "FTMapConfig",
    "FTMapResult",
    "run_ftmap",
    "run_sweep",
    "sweep_grid",
    "SweepReport",
    "CacheManager",
    "CacheStats",
    "resolve_manager",
    "mapping_report",
    "consensus_sites",
    "cluster_poses",
    "FTMapService",
    "MapRequest",
    "MapResult",
    "JobHandle",
    "JobCancelled",
    "ProgressEvent",
    "receptor_fingerprint",
    "Device",
    "DeviceSpec",
    "TESLA_C1060",
    "DeviceTopology",
    "ShardPlan",
    "default_topology",
    "Tracer",
    "MetricsRegistry",
    "metrics_registry",
    "__version__",
]
