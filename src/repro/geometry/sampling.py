"""Quasi-uniform SO(3) sampling for PIPER's rotation set.

FTMap reduces PIPER's "tens of thousands" of rotations to 500 by sampling at a
higher angular granularity (Sec. II.A).  We generate deterministic,
well-spread rotation sets with the super-Fibonacci spiral (Alexa 2022), which
gives low-discrepancy coverage of SO(3) for any sample count, plus a
grid-of-Euler-angles fallback mirroring classic docking codes.
"""

from __future__ import annotations

import numpy as np

from repro.geometry.rotations import Quaternion, quaternion_to_matrix, rotation_matrix_euler

__all__ = ["super_fibonacci_rotations", "uniform_euler_rotations", "rotation_set"]

# Super-Fibonacci constants: phi is the golden ratio, psi solves psi^4=psi+4.
_PHI = float(np.sqrt(2.0))
_PSI = 1.533751168755204288118041


def super_fibonacci_rotations(n: int) -> np.ndarray:
    """Return ``n`` rotation matrices spread quasi-uniformly over SO(3).

    Implements the super-Fibonacci spiral point set on the unit 3-sphere;
    antipodal quaternions map to the same rotation, so the set double-covers
    without harm.

    Parameters
    ----------
    n:
        Number of rotations (>= 1).

    Returns
    -------
    (n, 3, 3) array of rotation matrices.
    """
    if n < 1:
        raise ValueError("need at least one rotation")
    out = np.empty((n, 3, 3), dtype=float)
    for i in range(n):
        s = i + 0.5
        t = s / n
        d = 2.0 * np.pi * s
        r = np.sqrt(t)
        big_r = np.sqrt(1.0 - t)
        alpha = d / _PHI
        beta = d / _PSI
        q = Quaternion(
            float(r * np.sin(alpha)),
            float(r * np.cos(alpha)),
            float(big_r * np.sin(beta)),
            float(big_r * np.cos(beta)),
        )
        out[i] = quaternion_to_matrix(q)
    return out


def uniform_euler_rotations(steps_alpha: int, steps_beta: int, steps_gamma: int) -> np.ndarray:
    """Rotation matrices on a regular Z-Y-Z Euler grid.

    This mirrors the "incremental angle" sweep described in Sec. II.A.  The
    beta axis is sampled on [0, pi) mid-points to avoid the degenerate poles.
    """
    if min(steps_alpha, steps_beta, steps_gamma) < 1:
        raise ValueError("all step counts must be >= 1")
    alphas = np.linspace(0.0, 2 * np.pi, steps_alpha, endpoint=False)
    betas = (np.arange(steps_beta) + 0.5) * (np.pi / steps_beta)
    gammas = np.linspace(0.0, 2 * np.pi, steps_gamma, endpoint=False)
    mats = [
        rotation_matrix_euler(a, b, g)
        for a in alphas
        for b in betas
        for g in gammas
    ]
    return np.stack(mats)


def rotation_set(n: int, scheme: str = "super-fibonacci") -> np.ndarray:
    """Build the docking rotation set used by the PIPER driver.

    Parameters
    ----------
    n:
        Number of rotations; FTMap uses 500.
    scheme:
        ``"super-fibonacci"`` (default, quasi-uniform) or ``"euler"``
        (regular Euler grid with approximately ``n`` entries).
    """
    if scheme == "super-fibonacci":
        return super_fibonacci_rotations(n)
    if scheme == "euler":
        # Choose a near-cubic factorization of n for the three Euler axes.
        k = max(1, round(n ** (1.0 / 3.0)))
        mats = uniform_euler_rotations(k, k, k)
        return mats[:n] if len(mats) >= n else mats
    raise ValueError(f"unknown rotation sampling scheme: {scheme!r}")
