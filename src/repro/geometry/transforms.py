"""Rigid-body transforms applied to atom coordinate arrays.

A docking *pose* is a rotation plus an integer grid translation (alpha, beta,
gamma in Eq. (1)).  :class:`RigidTransform` composes the two in Angstrom
space so minimization can start from the docked placement.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.geometry.rotations import is_rotation_matrix

__all__ = [
    "RigidTransform",
    "apply_rotation",
    "center_of_coordinates",
    "centered",
    "bounding_radius",
]


def apply_rotation(coords: np.ndarray, R: np.ndarray) -> np.ndarray:
    """Rotate an (N, 3) coordinate array about the origin by matrix ``R``."""
    return np.asarray(coords, dtype=float) @ np.asarray(R, dtype=float).T


def center_of_coordinates(coords: np.ndarray) -> np.ndarray:
    """Geometric center (not mass-weighted) of an (N, 3) array."""
    coords = np.asarray(coords, dtype=float)
    if coords.ndim != 2 or coords.shape[1] != 3:
        raise ValueError(f"expected (N, 3) coordinates, got {coords.shape}")
    return coords.mean(axis=0)


def centered(coords: np.ndarray) -> np.ndarray:
    """Coordinates translated so their geometric center is the origin."""
    coords = np.asarray(coords, dtype=float)
    return coords - center_of_coordinates(coords)


def bounding_radius(coords: np.ndarray) -> float:
    """Radius of the smallest origin-centered sphere containing the centered
    coordinates; used to size probe grids."""
    coords = np.asarray(coords, dtype=float)
    if len(coords) == 0:
        return 0.0
    c = centered(coords)
    return float(np.sqrt((c**2).sum(axis=1).max()))


@dataclass(frozen=True)
class RigidTransform:
    """Rotation followed by translation: ``x -> x @ R.T + t``."""

    rotation: np.ndarray = field(default_factory=lambda: np.eye(3))
    translation: np.ndarray = field(default_factory=lambda: np.zeros(3))

    def __post_init__(self) -> None:
        R = np.asarray(self.rotation, dtype=float)
        t = np.asarray(self.translation, dtype=float)
        if not is_rotation_matrix(R, atol=1e-6):
            raise ValueError("rotation is not a proper rotation matrix")
        if t.shape != (3,):
            raise ValueError(f"translation must have shape (3,), got {t.shape}")
        object.__setattr__(self, "rotation", R)
        object.__setattr__(self, "translation", t)

    @classmethod
    def identity(cls) -> "RigidTransform":
        return cls()

    def apply(self, coords: np.ndarray) -> np.ndarray:
        """Transform an (N, 3) or (3,) coordinate array."""
        return apply_rotation(coords, self.rotation) + self.translation

    def compose(self, other: "RigidTransform") -> "RigidTransform":
        """Return the transform equivalent to applying ``other`` then ``self``."""
        R = self.rotation @ other.rotation
        t = apply_rotation(other.translation, self.rotation) + self.translation
        return RigidTransform(R, t)

    def inverse(self) -> "RigidTransform":
        R_inv = self.rotation.T
        return RigidTransform(R_inv, -apply_rotation(self.translation, R_inv))
