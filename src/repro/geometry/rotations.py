"""Rotation algebra: unit quaternions and 3x3 rotation matrices.

All rotation matrices follow the row-vector-on-the-right convention used
throughout the package: ``rotated = coords @ R.T`` for an (N, 3) coordinate
array, equivalent to applying ``R`` to each column vector.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "Quaternion",
    "quaternion_to_matrix",
    "matrix_to_quaternion",
    "random_rotation_matrix",
    "rotation_matrix_axis_angle",
    "rotation_matrix_euler",
    "is_rotation_matrix",
    "rotation_angle_between",
]


@dataclass(frozen=True)
class Quaternion:
    """Unit quaternion ``w + xi + yj + zk`` representing a 3-D rotation.

    Stored normalized; construction normalizes its inputs.  The identity
    rotation is ``Quaternion(1, 0, 0, 0)``.
    """

    w: float
    x: float
    y: float
    z: float

    def __post_init__(self) -> None:
        norm = float(np.sqrt(self.w**2 + self.x**2 + self.y**2 + self.z**2))
        if norm == 0.0:
            raise ValueError("zero quaternion cannot represent a rotation")
        if abs(norm - 1.0) > 1e-12:
            object.__setattr__(self, "w", self.w / norm)
            object.__setattr__(self, "x", self.x / norm)
            object.__setattr__(self, "y", self.y / norm)
            object.__setattr__(self, "z", self.z / norm)

    @classmethod
    def identity(cls) -> "Quaternion":
        return cls(1.0, 0.0, 0.0, 0.0)

    @classmethod
    def from_axis_angle(cls, axis: np.ndarray, angle: float) -> "Quaternion":
        """Quaternion rotating by ``angle`` radians about ``axis``."""
        axis = np.asarray(axis, dtype=float)
        norm = np.linalg.norm(axis)
        if norm == 0.0:
            raise ValueError("rotation axis must be non-zero")
        axis = axis / norm
        half = 0.5 * angle
        s = np.sin(half)
        return cls(float(np.cos(half)), float(axis[0] * s), float(axis[1] * s), float(axis[2] * s))

    def as_array(self) -> np.ndarray:
        return np.array([self.w, self.x, self.y, self.z], dtype=float)

    def conjugate(self) -> "Quaternion":
        return Quaternion(self.w, -self.x, -self.y, -self.z)

    def __mul__(self, other: "Quaternion") -> "Quaternion":
        """Hamilton product; ``(a * b)`` rotates by ``b`` then ``a``."""
        w1, x1, y1, z1 = self.w, self.x, self.y, self.z
        w2, x2, y2, z2 = other.w, other.x, other.y, other.z
        return Quaternion(
            w1 * w2 - x1 * x2 - y1 * y2 - z1 * z2,
            w1 * x2 + x1 * w2 + y1 * z2 - z1 * y2,
            w1 * y2 - x1 * z2 + y1 * w2 + z1 * x2,
            w1 * z2 + x1 * y2 - y1 * x2 + z1 * w2,
        )

    def rotate(self, coords: np.ndarray) -> np.ndarray:
        """Rotate an (N, 3) or (3,) coordinate array by this quaternion."""
        return np.asarray(coords, dtype=float) @ quaternion_to_matrix(self).T

    def angle_to(self, other: "Quaternion") -> float:
        """Geodesic rotation angle (radians) between two orientations."""
        dot = abs(float(np.dot(self.as_array(), other.as_array())))
        dot = min(dot, 1.0)
        return 2.0 * float(np.arccos(dot))


def quaternion_to_matrix(q: Quaternion) -> np.ndarray:
    """Convert a unit quaternion to a 3x3 rotation matrix."""
    w, x, y, z = q.w, q.x, q.y, q.z
    return np.array(
        [
            [1 - 2 * (y * y + z * z), 2 * (x * y - w * z), 2 * (x * z + w * y)],
            [2 * (x * y + w * z), 1 - 2 * (x * x + z * z), 2 * (y * z - w * x)],
            [2 * (x * z - w * y), 2 * (y * z + w * x), 1 - 2 * (x * x + y * y)],
        ],
        dtype=float,
    )


def matrix_to_quaternion(R: np.ndarray) -> Quaternion:
    """Convert a rotation matrix to a unit quaternion (Shepperd's method)."""
    R = np.asarray(R, dtype=float)
    if R.shape != (3, 3):
        raise ValueError(f"expected (3, 3) matrix, got {R.shape}")
    trace = float(np.trace(R))
    if trace > 0:
        s = 2.0 * np.sqrt(trace + 1.0)
        w = 0.25 * s
        x = (R[2, 1] - R[1, 2]) / s
        y = (R[0, 2] - R[2, 0]) / s
        z = (R[1, 0] - R[0, 1]) / s
    elif R[0, 0] > R[1, 1] and R[0, 0] > R[2, 2]:
        s = 2.0 * np.sqrt(1.0 + R[0, 0] - R[1, 1] - R[2, 2])
        w = (R[2, 1] - R[1, 2]) / s
        x = 0.25 * s
        y = (R[0, 1] + R[1, 0]) / s
        z = (R[0, 2] + R[2, 0]) / s
    elif R[1, 1] > R[2, 2]:
        s = 2.0 * np.sqrt(1.0 + R[1, 1] - R[0, 0] - R[2, 2])
        w = (R[0, 2] - R[2, 0]) / s
        x = (R[0, 1] + R[1, 0]) / s
        y = 0.25 * s
        z = (R[1, 2] + R[2, 1]) / s
    else:
        s = 2.0 * np.sqrt(1.0 + R[2, 2] - R[0, 0] - R[1, 1])
        w = (R[1, 0] - R[0, 1]) / s
        x = (R[0, 2] + R[2, 0]) / s
        y = (R[1, 2] + R[2, 1]) / s
        z = 0.25 * s
    return Quaternion(float(w), float(x), float(y), float(z))


def rotation_matrix_axis_angle(axis: np.ndarray, angle: float) -> np.ndarray:
    """Rotation matrix for ``angle`` radians about ``axis`` (Rodrigues)."""
    return quaternion_to_matrix(Quaternion.from_axis_angle(axis, angle))


def rotation_matrix_euler(alpha: float, beta: float, gamma: float) -> np.ndarray:
    """Z-Y-Z Euler-angle rotation matrix ``Rz(alpha) @ Ry(beta) @ Rz(gamma)``."""
    ca, sa = np.cos(alpha), np.sin(alpha)
    cb, sb = np.cos(beta), np.sin(beta)
    cg, sg = np.cos(gamma), np.sin(gamma)
    rz_a = np.array([[ca, -sa, 0], [sa, ca, 0], [0, 0, 1]], dtype=float)
    ry_b = np.array([[cb, 0, sb], [0, 1, 0], [-sb, 0, cb]], dtype=float)
    rz_g = np.array([[cg, -sg, 0], [sg, cg, 0], [0, 0, 1]], dtype=float)
    return rz_a @ ry_b @ rz_g


def random_rotation_matrix(rng: np.random.Generator) -> np.ndarray:
    """Draw a rotation matrix uniformly from SO(3) (Shoemake's method)."""
    u1, u2, u3 = rng.random(3)
    q = Quaternion(
        float(np.sqrt(1 - u1) * np.sin(2 * np.pi * u2)),
        float(np.sqrt(1 - u1) * np.cos(2 * np.pi * u2)),
        float(np.sqrt(u1) * np.sin(2 * np.pi * u3)),
        float(np.sqrt(u1) * np.cos(2 * np.pi * u3)),
    )
    return quaternion_to_matrix(q)


def is_rotation_matrix(R: np.ndarray, atol: float = 1e-8) -> bool:
    """True if ``R`` is orthogonal with determinant +1 within ``atol``."""
    R = np.asarray(R, dtype=float)
    if R.shape != (3, 3):
        return False
    if not np.allclose(R @ R.T, np.eye(3), atol=atol):
        return False
    return bool(abs(np.linalg.det(R) - 1.0) <= atol)


def rotation_angle_between(R1: np.ndarray, R2: np.ndarray) -> float:
    """Geodesic angle (radians) between two rotation matrices."""
    R = np.asarray(R1) @ np.asarray(R2).T
    cos_theta = (float(np.trace(R)) - 1.0) / 2.0
    cos_theta = min(1.0, max(-1.0, cos_theta))
    return float(np.arccos(cos_theta))
