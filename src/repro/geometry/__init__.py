"""3-D geometry substrate: rotations, rigid transforms, SO(3) sampling.

PIPER's exhaustive search rotates the probe grid through a precomputed set of
rotations (FTMap uses 500 at coarse granularity, Sec. II.A).  This package
provides the rotation algebra (quaternions and matrices), deterministic
quasi-uniform SO(3) sampling used to build that rotation set, and rigid-body
transforms applied to atom coordinates.
"""

from repro.geometry.rotations import (
    Quaternion,
    quaternion_to_matrix,
    matrix_to_quaternion,
    random_rotation_matrix,
    rotation_matrix_axis_angle,
    rotation_matrix_euler,
    is_rotation_matrix,
    rotation_angle_between,
)
from repro.geometry.sampling import (
    super_fibonacci_rotations,
    uniform_euler_rotations,
    rotation_set,
)
from repro.geometry.transforms import (
    RigidTransform,
    apply_rotation,
    center_of_coordinates,
    centered,
    bounding_radius,
)

__all__ = [
    "Quaternion",
    "quaternion_to_matrix",
    "matrix_to_quaternion",
    "random_rotation_matrix",
    "rotation_matrix_axis_angle",
    "rotation_matrix_euler",
    "is_rotation_matrix",
    "rotation_angle_between",
    "super_fibonacci_rotations",
    "uniform_euler_rotations",
    "rotation_set",
    "RigidTransform",
    "apply_rotation",
    "center_of_coordinates",
    "centered",
    "bounding_radius",
]
