"""Small input-validation helpers shared across the package."""

from __future__ import annotations

from typing import Tuple

import numpy as np

__all__ = ["require_positive", "require_shape", "require_in_range"]


def require_positive(value: float, name: str) -> float:
    """Return ``value`` if strictly positive, else raise ``ValueError``."""
    if not (value > 0):
        raise ValueError(f"{name} must be positive, got {value!r}")
    return value


def require_shape(arr: np.ndarray, shape: Tuple[int, ...], name: str) -> np.ndarray:
    """Return ``arr`` if its shape matches (``-1`` wildcards allowed)."""
    arr = np.asarray(arr)
    if len(arr.shape) != len(shape) or any(
        s != -1 and a != s for a, s in zip(arr.shape, shape)
    ):
        raise ValueError(f"{name} must have shape {shape}, got {arr.shape}")
    return arr


def require_in_range(value: float, lo: float, hi: float, name: str) -> float:
    """Return ``value`` if in [lo, hi], else raise ``ValueError``."""
    if not (lo <= value <= hi):
        raise ValueError(f"{name} must be in [{lo}, {hi}], got {value!r}")
    return value
