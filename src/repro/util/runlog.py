"""Structured run logging for examples and benchmark harnesses."""

from __future__ import annotations

import sys
import time
from typing import List, TextIO

__all__ = ["RunLogger"]


class RunLogger:
    """Timestamped section/step logger.

    Writes to a stream (stdout by default) and keeps an in-memory record so
    harnesses can archive what a run printed.
    """

    def __init__(self, stream: TextIO | None = None, enabled: bool = True) -> None:
        self.stream = stream or sys.stdout
        self.enabled = enabled
        self.records: List[str] = []
        self._t0 = time.perf_counter()
        self._section_t0 = self._t0

    def _emit(self, text: str) -> None:
        self.records.append(text)
        if self.enabled:
            print(text, file=self.stream)

    def section(self, title: str) -> None:
        self._section_t0 = time.perf_counter()
        self._emit(f"\n== {title} ==")

    def step(self, message: str) -> None:
        dt = time.perf_counter() - self._t0
        self._emit(f"[{dt:8.2f}s] {message}")

    def done(self, message: str = "done") -> None:
        dt = time.perf_counter() - self._section_t0
        self._emit(f"   ... {message} ({dt:.2f}s)")
