"""Deprecated: :class:`RunLogger` moved to :mod:`repro.obs.logging`.

This module remains as a back-compat shim — importing works forever,
instantiating warns once per call site.  New code should import from
``repro.obs.logging`` (or ``repro.obs``).
"""

from __future__ import annotations

import warnings

from repro.obs.logging import RunLogger as _RunLogger

__all__ = ["RunLogger"]


class RunLogger(_RunLogger):
    """Back-compat alias for :class:`repro.obs.logging.RunLogger`."""

    def __init__(self, *args, **kwargs) -> None:
        warnings.warn(
            "repro.util.runlog.RunLogger moved to repro.obs.logging.RunLogger; "
            "this shim will be removed in a future release",
            DeprecationWarning,
            stacklevel=2,
        )
        super().__init__(*args, **kwargs)
