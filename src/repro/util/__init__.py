"""Utilities: multiprocessing fan-out, validation helpers, run logging."""

from repro.util.parallel import parallel_map, multicore_dock_rotations
from repro.util.validation import (
    require_positive,
    require_shape,
    require_in_range,
)
from repro.obs.logging import RunLogger

__all__ = [
    "parallel_map",
    "multicore_dock_rotations",
    "require_positive",
    "require_shape",
    "require_in_range",
    "RunLogger",
]
