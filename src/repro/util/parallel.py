"""Parallel execution primitives: fan-out and stage pipelining.

Fan-out ("Currently the FTMap production code supports only
coarse-grained parallelism through distributing rotations across nodes of
a server.  In previous work we created a multicore version of the docking
phase") distributes independent work items — rotations, probes, sweep
configs — across worker processes or threads, preserving order.

Stage pipelining (:class:`PipelineExecutor`) is the other axis: one item
flows through a *chain* of stages, and stage ``s`` of item ``k+1``
overlaps stage ``s+1`` of item ``k``.  That is the ROADMAP's "async probe
streaming": probe k+1 docks while probe k minimizes, so a multi-probe
mapping request is bounded by its slowest stage, not the sum of stages.
"""

from __future__ import annotations

import contextvars
import multiprocessing as mp
import os
import queue
import threading
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Iterable, Iterator, List, Optional, Sequence, TypeVar

T = TypeVar("T")
R = TypeVar("R")

__all__ = [
    "parallel_map",
    "multicore_dock_rotations",
    "chunked",
    "usable_cpus",
    "RotationExecutor",
    "PipelineExecutor",
    "pipeline_map",
]


def usable_cpus() -> int:
    """CPUs this process may actually run on.

    Container/cgroup deployments routinely pin a process to fewer CPUs
    than the machine has; scheduling decisions (thread vs process
    streaming, worker counts) must see the *affinity* count, not the
    hardware count.  Falls back to ``os.cpu_count()`` on platforms
    without ``sched_getaffinity``.
    """
    getaffinity = getattr(os, "sched_getaffinity", None)
    if getaffinity is not None:
        try:
            return max(1, len(getaffinity(0)))
        except OSError:  # pragma: no cover - exotic platform
            pass
    return max(1, os.cpu_count() or 1)


def chunked(items: Sequence[T], size: int) -> Iterator[List[T]]:
    """Yield consecutive chunks of at most ``size`` items (last may be short)."""
    if size < 1:
        raise ValueError("chunk size must be >= 1")
    for start in range(0, len(items), size):
        yield list(items[start : start + size])


class RotationExecutor:
    """Order-preserving map over rotation work items.

    The natural unit of parallelism in PIPER is the rotation; this executor
    fans rotation tasks (gridding, scoring chunks) out over threads or
    processes while keeping results in submission order, so every caller is
    deterministic regardless of mode.

    Parameters
    ----------
    mode:
        ``"serial"`` (default), ``"thread"`` (NumPy/FFT work releases the
        GIL, so threads help the gridding and correlation inner loops), or
        ``"process"`` (fork-based; falls back to serial where ``fork`` is
        unavailable).
    workers:
        Worker count; defaults to the host core count.
    """

    def __init__(self, mode: str = "serial", workers: int | None = None) -> None:
        if mode not in ("serial", "thread", "process"):
            raise ValueError(f"unknown executor mode {mode!r}")
        self.mode = mode
        self.workers = workers or os.cpu_count() or 1
        self._pool: ThreadPoolExecutor | None = None

    def map(self, fn: Callable[[T], R], items: Sequence[T]) -> List[R]:
        """Apply ``fn`` to every item, preserving order."""
        items = list(items)
        if self.mode == "serial" or self.workers <= 1 or len(items) <= 1:
            return [fn(x) for x in items]
        if self.mode == "thread":
            # Lazily created and reused: callers map once per rotation chunk,
            # and a pool per chunk would churn threads on the hot path.
            if self._pool is None:
                self._pool = ThreadPoolExecutor(max_workers=self.workers)
            return list(self._pool.map(fn, items))
        return parallel_map(fn, items, processes=self.workers)

    def close(self) -> None:
        """Shut down the reusable thread pool (no-op for other modes)."""
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def __del__(self) -> None:  # pragma: no cover - GC timing
        self.close()

class _StageItem:
    """One item in flight: its index, current payload, or sticky error."""

    __slots__ = ("index", "payload", "error")

    def __init__(self, index: int, payload, error: Optional[BaseException] = None):
        self.index = index
        self.payload = payload
        self.error = error


class PipelineExecutor:
    """Order-preserving map of items through a chain of stages.

    Each stage runs in its own thread with bounded hand-off queues, so
    stage ``s`` processes item ``k+1`` while stage ``s+1`` still works on
    item ``k`` — within one stage, items stay strictly sequential and in
    submission order.  Because every item's computation is independent and
    the per-item work is exactly the composed stage functions, results are
    identical to the serial loop ``[stageN(...stage1(x)) for x in items]``
    — pipelining changes scheduling, never values.

    An exception raised by a stage sticks to its item: downstream stages
    skip it, the remaining items still run, and :meth:`map` re-raises the
    error of the *earliest* failed item — deterministic regardless of
    thread timing.

    Parameters
    ----------
    stages:
        The stage callables, applied left to right.
    mode:
        ``"thread"`` (default) or ``"serial"`` (plain loop; the
        equivalence baseline and the fallback for single-stage or
        single-item work).
    queue_size:
        Bound of each hand-off queue (backpressure: how many finished
        stage-``s`` payloads may wait for stage ``s+1``).
    """

    def __init__(
        self,
        stages: Sequence[Callable],
        mode: str = "thread",
        queue_size: int = 2,
    ) -> None:
        if not stages:
            raise ValueError("PipelineExecutor needs at least one stage")
        if mode not in ("serial", "thread"):
            raise ValueError(f"unknown pipeline mode {mode!r}")
        if queue_size < 1:
            raise ValueError("queue_size must be >= 1")
        self.stages = list(stages)
        self.mode = mode
        self.queue_size = queue_size

    def map(self, items: Sequence[T]) -> List:
        items = list(items)
        if not items:
            return []
        if self.mode == "serial" or len(self.stages) == 1 or len(items) == 1:
            return self._map_serial(items)
        return self._map_threaded(items)

    def _map_serial(self, items: Sequence[T]) -> List:
        out = []
        for item in items:
            value = item
            for stage in self.stages:
                value = stage(value)
            out.append(value)
        return out

    def _map_threaded(self, items: Sequence[T]) -> List:
        queues = [
            queue.Queue(maxsize=self.queue_size)
            for _ in range(len(self.stages) + 1)
        ]
        sentinel = object()
        # Snapshot the caller's contextvars (active trace span, request
        # scope, ...) so stage threads observe the same ambient context
        # the serial loop would — scheduling changes, context doesn't.
        caller_ctx = contextvars.copy_context()

        def run_stage(stage: Callable, q_in: queue.Queue, q_out: queue.Queue):
            ctx = caller_ctx.copy()
            while True:
                got = q_in.get()
                if got is sentinel:
                    q_out.put(sentinel)
                    return
                if got.error is None:
                    try:
                        got.payload = ctx.run(stage, got.payload)
                    except BaseException as exc:  # sticky: later stages skip
                        got.error = exc
                        got.payload = None
                q_out.put(got)

        workers = [
            threading.Thread(
                target=run_stage,
                args=(stage, queues[s], queues[s + 1]),
                name=f"pipeline-stage-{s}",
                daemon=True,
            )
            for s, stage in enumerate(self.stages)
        ]
        for w in workers:
            w.start()

        results: List = [None] * len(items)
        errors: List[_StageItem] = []

        def feed():
            for i, item in enumerate(items):
                queues[0].put(_StageItem(i, item))
            queues[0].put(sentinel)

        feeder = threading.Thread(target=feed, name="pipeline-feed", daemon=True)
        feeder.start()
        while True:
            got = queues[-1].get()
            if got is sentinel:
                break
            if got.error is not None:
                errors.append(got)
            else:
                results[got.index] = got.payload
        feeder.join()
        for w in workers:
            w.join()
        if errors:
            raise min(errors, key=lambda e: e.index).error
        return results


def pipeline_map(
    stages: Sequence[Callable],
    items: Sequence[T],
    mode: str = "thread",
    queue_size: int = 2,
) -> List:
    """One-shot :class:`PipelineExecutor` — map ``items`` through ``stages``."""
    return PipelineExecutor(stages, mode=mode, queue_size=queue_size).map(items)


# Module-level worker state: built once per process by the initializer so
# the (large) receptor grids are voxelized per worker, not per task.
_WORKER_DOCKER = None


def parallel_map(
    fn: Callable[[T], R],
    items: Sequence[T],
    processes: int | None = None,
    chunksize: int = 1,
    initializer: Callable[..., None] | None = None,
    initargs: tuple = (),
) -> List[R]:
    """Order-preserving multiprocessing map with a serial fallback.

    Uses ``fork`` where available (cheap with NumPy buffers); falls back to
    serial execution when only one process is requested or the platform
    lacks ``fork`` — keeping results deterministic either way.

    ``initializer(*initargs)`` runs once per worker before any task (the
    pattern that builds per-worker state — receptor grids, energy models —
    once instead of per task); the serial fallback calls it once in-process
    so ``fn`` sees the same globals either way.

    Nested fan-outs degrade gracefully: pool workers are daemonic and may
    not fork grandchildren, so a ``parallel_map`` reached from inside
    another ``parallel_map`` task (e.g. a multiprocess minimization stage
    inside a probe-streaming worker) runs serially instead of raising.
    """
    processes = processes or os.cpu_count() or 1

    def serial() -> List[R]:
        if initializer is not None:
            initializer(*initargs)
        return [fn(x) for x in items]

    if processes <= 1 or len(items) <= 1 or mp.current_process().daemon:
        return serial()
    try:
        ctx = mp.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        return serial()
    with ctx.Pool(
        processes=processes, initializer=initializer, initargs=initargs
    ) as pool:
        return pool.map(fn, items, chunksize=chunksize)


def _init_docker(receptor, probe, config) -> None:  # pragma: no cover - subprocess
    global _WORKER_DOCKER
    from repro.docking.piper import PiperDocker

    _WORKER_DOCKER = PiperDocker(receptor, probe, config)


def _dock_chunk(rotation_indices: List[int]):  # pragma: no cover - subprocess
    return _WORKER_DOCKER.run(rotation_indices)


def multicore_dock_rotations(
    receptor,
    probe,
    config,
    rotation_indices: Iterable[int],
    processes: int | None = None,
    chunk_size: int | None = None,
):
    """Dock a set of rotations across worker processes.

    Returns the flat, energy-sorted pose list — identical to
    ``PiperDocker.run`` on the same indices (tested), just computed on
    multiple cores.  Workers receive rotation *chunks* so the configured
    engine's batched path is exercised inside each worker too.  This is
    the real-execution counterpart of the multicore *cost model* used by
    the Sec. V.A comparison benchmark.
    """
    indices = list(rotation_indices)
    processes = processes or os.cpu_count() or 1
    if processes <= 1 or len(indices) <= 1:
        from repro.docking.piper import PiperDocker

        docker = PiperDocker(receptor, probe, config)
        return docker.run(indices)
    try:
        ctx = mp.get_context("fork")
    except ValueError:  # pragma: no cover
        from repro.docking.piper import PiperDocker

        docker = PiperDocker(receptor, probe, config)
        return docker.run(indices)
    size = chunk_size or max(1, (len(indices) + processes - 1) // processes)
    with ctx.Pool(
        processes=processes, initializer=_init_docker, initargs=(receptor, probe, config)
    ) as pool:
        nested = pool.map(_dock_chunk, list(chunked(indices, size)))
    poses = [p for group in nested for p in group]
    poses.sort()
    return poses
