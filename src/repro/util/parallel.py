"""Multiprocessing fan-out for the multicore comparison (Sec. V.A).

"Currently the FTMap production code supports only coarse-grained
parallelism through distributing rotations across nodes of a server.  In
previous work we created a multicore version of the docking phase" — the
natural unit of parallelism is the rotation, and this module distributes
rotations across worker processes the same way.
"""

from __future__ import annotations

import multiprocessing as mp
import os
from typing import Callable, Iterable, List, Sequence, TypeVar

T = TypeVar("T")
R = TypeVar("R")

__all__ = ["parallel_map", "multicore_dock_rotations"]

# Module-level worker state: built once per process by the initializer so
# the (large) receptor grids are voxelized per worker, not per task.
_WORKER_DOCKER = None


def parallel_map(
    fn: Callable[[T], R],
    items: Sequence[T],
    processes: int | None = None,
    chunksize: int = 1,
) -> List[R]:
    """Order-preserving multiprocessing map with a serial fallback.

    Uses ``fork`` where available (cheap with NumPy buffers); falls back to
    serial execution when only one process is requested or the platform
    lacks ``fork`` — keeping results deterministic either way.
    """
    processes = processes or os.cpu_count() or 1
    if processes <= 1 or len(items) <= 1:
        return [fn(x) for x in items]
    try:
        ctx = mp.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        return [fn(x) for x in items]
    with ctx.Pool(processes=processes) as pool:
        return pool.map(fn, items, chunksize=chunksize)


def _init_docker(receptor, probe, config) -> None:  # pragma: no cover - subprocess
    global _WORKER_DOCKER
    from repro.docking.piper import PiperDocker

    _WORKER_DOCKER = PiperDocker(receptor, probe, config)


def _dock_one(rotation_index: int):  # pragma: no cover - subprocess
    return _WORKER_DOCKER.poses_for_rotation(rotation_index)


def multicore_dock_rotations(
    receptor,
    probe,
    config,
    rotation_indices: Iterable[int],
    processes: int | None = None,
):
    """Dock a set of rotations across worker processes.

    Returns the flat, energy-sorted pose list — identical to
    ``PiperDocker.run`` on the same indices (tested), just computed on
    multiple cores.  This is the real-execution counterpart of the
    multicore *cost model* used by the Sec. V.A comparison benchmark.
    """
    indices = list(rotation_indices)
    processes = processes or os.cpu_count() or 1
    if processes <= 1 or len(indices) <= 1:
        from repro.docking.piper import PiperDocker

        docker = PiperDocker(receptor, probe, config)
        return docker.run(indices)
    try:
        ctx = mp.get_context("fork")
    except ValueError:  # pragma: no cover
        from repro.docking.piper import PiperDocker

        docker = PiperDocker(receptor, probe, config)
        return docker.run(indices)
    with ctx.Pool(
        processes=processes, initializer=_init_docker, initargs=(receptor, probe, config)
    ) as pool:
        nested = pool.map(_dock_one, indices)
    poses = [p for group in nested for p in group]
    poses.sort()
    return poses
