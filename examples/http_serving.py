#!/usr/bin/env python
"""Serving mappings over HTTP: the gateway end-to-end, in one process.

``examples/serve_requests.py`` showed the in-process service; this one
puts the wire in the middle.  A :class:`repro.gateway.GatewayServer`
(stdlib ``ThreadingHTTPServer``, JSON bodies) fronts the same
:class:`~repro.api.FTMapService`, and two *tenants* talk to it through
the stdlib :class:`~repro.gateway.GatewayClient`:

1. receptors are **uploaded once** (``POST /v1/receptors``) and from
   then on addressed by content hash,
2. jobs are **submitted** (``POST /v1/jobs``), **watched live** over
   Server-Sent Events (``GET /v1/jobs/{id}/events``), and **fetched**
   (``GET /v1/jobs/{id}/result``) — float-for-float identical to a
   direct ``service.map()`` call,
3. a deliberately tiny quota shows **admission control**: the gateway
   sheds the over-limit request with HTTP 429 + ``Retry-After`` instead
   of queueing it, and ``GET /v1/stats`` attributes every accepted and
   shed request to the tenant that caused it.

Run:  python examples/http_serving.py
"""

from __future__ import annotations

import json

from repro import FTMapConfig, synthetic_protein
from repro.api import FTMapService, MapRequest
from repro.api.errors import QuotaExceededError
from repro.cache import CacheManager
from repro.gateway import GatewayClient, GatewayServer, TenantSpec
from repro.obs.logging import RunLogger


def main() -> None:
    log = RunLogger()

    config = FTMapConfig(
        probe_names=("ethanol", "acetone"),
        num_rotations=12,
        receptor_grid=32,
        minimize_top=3,
        minimizer_iterations=6,
        engine="fft",
    )
    protein = synthetic_protein(n_residues=40, seed=3)

    log.section("gateway up: one service, two tenants, real TCP")
    service = FTMapService(cache=CacheManager(policy="memory"), max_workers=2)
    tenants = [
        TenantSpec("acme", api_key="acme-key", rate=100.0, burst=100),
        # 'capped' gets exactly 2 requests before the bucket runs dry.
        TenantSpec("capped", api_key="capped-key", rate=0.05, burst=2),
    ]
    with GatewayServer(service, tenants, owns_service=True) as gw:
        log.step(f"listening on {gw.url} (tenants: acme, capped)")
        acme = GatewayClient(gw.url, api_key="acme-key")
        log.step(f"healthz: {json.dumps(acme.healthz())}")
        log.done()

        log.section("upload once, map by hash")
        receptor = acme.register_receptor(protein)
        log.step(f"receptor uploaded: {receptor[:16]}… ({protein.n_atoms} atoms)")
        request = MapRequest(receptor=receptor, config=config)
        wire = json.dumps(request.to_dict())
        log.step(f"a job submission is {len(wire)} bytes of JSON")
        log.done()

        log.section("submit + watch live over SSE")
        job_id = acme.submit(request)
        for event, payload in acme.events(job_id):
            if event == "progress":
                probe = payload["probe"] or "(all probes)"
                log.step(f"{payload['stage']:<10s} {probe}")
            else:
                log.step(f"terminal: {payload['status']}")
        over_http = acme.result(job_id, timeout_s=600)
        log.done(f"{len(over_http['result']['sites'])} consensus site(s)")

        log.section("the wire is exact: HTTP result == direct map")
        direct = service.map(protein, config=config)
        wire_sites = over_http["result"]["sites"]
        direct_sites = [site.to_dict() for site in direct.sites]
        identical = json.dumps(wire_sites, sort_keys=True) == json.dumps(
            direct_sites, sort_keys=True
        )
        log.step(f"sites bitwise identical over HTTP: {identical}")
        assert identical
        log.done()

        log.section("admission control: the quota tenant gets shed")
        capped = GatewayClient(gw.url, api_key="capped-key")
        accepted = [capped.submit(request) for _ in range(2)]
        log.step(f"capped: 2 accepted ({', '.join(accepted)})")
        try:
            capped.submit(request)
        except QuotaExceededError as exc:
            log.step(
                f"3rd submit shed: HTTP 429, retry after {exc.retry_after_s:.1f}s"
            )
        for job in accepted:
            capped.result(job, timeout_s=600)
        log.done()

        log.section("per-tenant accounting (GET /v1/stats)")
        stats = acme.stats()
        for name, counters in stats["tenants"].items():
            log.step(
                f"{name:<8s} submitted={counters['submitted']} "
                f"accepted={counters['accepted']} shed={counters['shed']} "
                f"completed={counters['completed']}"
            )
        cache = stats["cache"]
        log.step(f"shared cache hit rate: {cache['hit_rate']:.0%}")
        log.done("gateway down")


if __name__ == "__main__":
    main()
