#!/usr/bin/env python
"""Watching a mapping run: traces, stage latencies, metrics, logs.

The telemetry layer (:mod:`repro.obs`) answers "where did the time go"
for one request and "what is this process doing" across all of them:

1. **tracing** — ``FTMapConfig(tracing=True)`` (or per-request
   ``MapRequest(tracing=True)``) attaches a span tree to the result:
   every dock/minimize/cluster/consensus stage, cache and backend
   decisions as attributes, per-device minimization shards on their own
   timeline rows.  :func:`repro.obs.trace.stage_durations` folds it into
   the per-stage latency table below — the serving-side analogue of the
   paper's Fig. 2 stage profile,
2. **chrome export** — the same trace serializes to Chrome trace-event
   JSON; drop ``trace.json`` into ``chrome://tracing`` or
   https://ui.perfetto.dev and read the request as a flame chart,
3. **metrics** — counters/gauges/quantile histograms accumulate across
   requests in the process-wide registry, rendered as Prometheus text
   (the gateway serves this at ``GET /v1/metrics``),
4. **structured logs** — JSON lines carrying the same trace/job ids, so
   logs join against traces.

Run:  python examples/observability.py
"""

from __future__ import annotations

import json
import sys
import tempfile

from repro import FTMapConfig, synthetic_protein
from repro.api import FTMapService, MapRequest
from repro.obs.logging import RunLogger, configure_logging
from repro.obs.metrics import registry
from repro.obs.trace import chrome_trace, stage_durations


def main() -> None:
    log = RunLogger()

    config = FTMapConfig(
        probe_names=("ethanol", "acetone", "benzene"),
        num_rotations=12,
        receptor_grid=32,
        minimize_top=3,
        minimizer_iterations=6,
        engine="fft",
        tracing=True,  # <- the only switch a traced request needs
    )
    protein = synthetic_protein(n_residues=40, seed=3)

    log.section("a traced mapping (structured logs on stderr)")
    configure_logging(stream=sys.stderr)
    with FTMapService(max_workers=2) as service:
        fingerprint = service.register_receptor(protein)
        result = service.submit(
            MapRequest(receptor=fingerprint, config=config)
        ).result(timeout=600)
    configure_logging(enabled=False)
    trace = result.trace
    log.step(f"trace {trace['trace_id']}: {len(trace['spans'])} spans")
    log.done(f"{len(result.result.sites)} consensus site(s)")

    log.section("where did the time go? (per-stage latency)")
    totals = stage_durations(trace)
    wall = totals.pop("map")
    for stage in sorted(totals, key=totals.get, reverse=True):
        share = totals[stage] / wall
        bar = "#" * max(1, int(share * 40))
        log.step(f"{stage:<16s} {totals[stage]*1e3:8.1f} ms  {share:6.1%}  {bar}")
    log.step(f"{'request wall':<16s} {wall*1e3:8.1f} ms")
    log.done()

    log.section("the same trace as a flame chart")
    with tempfile.NamedTemporaryFile(
        "w", suffix=".json", prefix="repro-trace-", delete=False
    ) as fh:
        json.dump(chrome_trace(trace), fh)
    log.step(f"wrote {fh.name}")
    log.step("open chrome://tracing (or ui.perfetto.dev) and load it")
    rows = {s.get("thread", "") for s in trace["spans"]}
    log.done(f"{len(rows)} timeline row(s)")

    log.section("process-wide metrics (what the gateway serves at /v1/metrics)")
    exposition = registry().render()
    interesting = (
        "repro_stage_seconds",
        "repro_dock_runs_total",
        "repro_minimize_poses_total",
        "repro_jobs_total",
    )
    for line in exposition.splitlines():
        if line.startswith(interesting) and "quantile" not in line:
            log.step(line)
    log.done(f"full exposition: {len(exposition.splitlines())} lines")


if __name__ == "__main__":
    main()
