#!/usr/bin/env python
"""Parameter sweeps over one receptor with the artifact cache.

Protocol tuning is a repeat-mapping workload: the same receptor is mapped
under many :class:`FTMapConfig` variants to see how sensitive the
consensus sites are to clustering radii, minimization depth, rotation
counts, and so on.  Without caching every variant pays the full pipeline;
with the content-addressed cache (:mod:`repro.cache`) the variants share
receptor grids, receptor FFT spectra and — for post-docking parameter
changes — whole per-probe dock results.

This example runs the same sweep twice:

1. **cold** — cache policy ``off``: every variant recomputes everything,
2. **warm** — one shared in-memory cache: the first variant fills it and
   the rest ride on hits,

then prints both sweep reports (per-run wall time + cache hit rate) and
the wall-clock ratio.

Run:  python examples/parameter_sweep.py
"""

from __future__ import annotations

from dataclasses import replace

from repro import FTMapConfig, synthetic_protein
from repro.cache import reset_cache_registry
from repro.mapping.sweep import run_sweep, sweep_grid
from repro.obs.logging import RunLogger


def main() -> None:
    log = RunLogger()

    log.section("setup")
    protein = synthetic_protein(n_residues=60, seed=3)
    base = FTMapConfig(
        probe_names=("ethanol", "acetone"),
        num_rotations=24,
        receptor_grid=40,
        grid_spacing=1.25,
        minimize_top=3,
        minimizer_iterations=8,
        engine="fft",
        cache_policy="memory",
    )
    axes = dict(cluster_radius=(3.0, 4.0, 5.0), minimize_top=(3, 6))
    configs = sweep_grid(base, **axes)
    log.step(
        f"protein: {protein.n_atoms} atoms; sweep: "
        + " x ".join(f"{k}({len(v)})" for k, v in axes.items())
        + f" = {len(configs)} runs"
    )
    log.done()

    log.section("cold sweep (cache off)")
    cold_configs = sweep_grid(replace(base, cache_policy="off"), **axes)
    cold = run_sweep(protein, cold_configs)
    log.done(f"{cold.total_time_s:.2f} s total")
    print()
    print(cold.render())

    log.section("warm sweep (shared memory cache)")
    reset_cache_registry()   # start from an empty cache, fairly
    warm = run_sweep(protein, configs)
    log.done(f"{warm.total_time_s:.2f} s total")
    print()
    print(warm.render())

    print()
    ratio = cold.total_time_s / warm.total_time_s
    print(
        f"sweep speedup from artifact sharing: {ratio:.1f}x "
        f"(overall hit rate {warm.overall_hit_rate:.0%}; every variant after "
        "the first reuses the receptor grids, FFT spectra and dock results)"
    )

    # The top consensus site is stable across the cluster-radius variants
    # here — exactly the kind of question a sweep answers cheaply.
    top_centers = {
        run.label: tuple(round(float(c), 1) for c in run.result.top_site.center)
        for run in warm.runs
        if run.result.top_site is not None
    }
    print()
    print("top consensus site per variant:")
    for label, center in top_centers.items():
        print(f"  {label:<40s} {center}")

    # Every sweep point records its serialized config — the exact JSON a
    # job log or wire protocol would carry to replay that variant.
    import json

    best = min(warm.runs, key=lambda run: run.wall_time_s)
    wire = json.dumps(best.config_dict)
    print()
    print(
        f"replayable config of the fastest run ({best.label!r}): "
        f"{len(wire)} bytes of JSON"
    )


if __name__ == "__main__":
    main()
