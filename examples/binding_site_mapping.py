#!/usr/bin/env python
"""Binding-site mapping: the paper's application, end to end.

Docks a panel of small-molecule probes against a protein, minimizes the top
conformations of each, clusters the refined poses per probe, and reports
consensus sites — regions that bind many *different* probes, i.e. the
predicted druggable hotspots.

The synthetic protein has a pocket carved near its +x surface and (like a
real protein) a few other crevices; a correct run puts its consensus sites
in high-burial concavities, which we validate against the burial map.

Run:  python examples/binding_site_mapping.py
"""

from __future__ import annotations

import numpy as np

from repro import FTMapConfig, FTMapService, mapping_report, synthetic_protein
from repro.mapping.hotspot import burial_map, site_concavity
from repro.structure.builder import pocket_center
from repro.obs.logging import RunLogger


def main() -> None:
    log = RunLogger()

    log.section("setup")
    protein = synthetic_protein(n_residues=120, seed=3)
    config = FTMapConfig(
        probe_names=("ethanol", "acetone", "urea", "acetonitrile"),
        num_rotations=12,
        receptor_grid=48,
        grid_spacing=1.25,
        minimize_top=6,
        minimizer_iterations=40,
    )
    log.step(
        f"protein: {protein.n_atoms} atoms; probes: {', '.join(config.probe_names)}"
    )
    log.done()

    log.section("map (one request through the service front door)")
    # The probes stream stage-pipelined: probe k+1 docks while probe k
    # minimizes and clusters.
    with FTMapService(config=config) as service:
        mapped = service.map(protein, config)
    result = mapped.result
    log.done(
        f"mapping complete ({mapped.wall_time_s:.2f}s, {mapped.streaming})"
    )

    print()
    print(mapping_report(result))

    log.section("validate: consensus sites sit in concave crevices")
    top = result.top_site
    if top is None:
        log.step("no consensus site found")
        return
    bmap = burial_map(protein)
    threshold = bmap.percentile(60)
    for rank, site in enumerate(result.sites[:3], start=1):
        burial = bmap.value_at(np.asarray(site.center))
        ok = site_concavity(bmap, np.asarray(site.center))
        log.step(
            f"site #{rank}: burial {burial:.0f} "
            f"(60th percentile of surface burial: {threshold:.0f}) — "
            f"{'concave OK' if ok else 'NOT concave'}"
        )
    designed = pocket_center(protein)
    dist = float(np.linalg.norm(np.asarray(top.center) - designed))
    log.step(
        f"designed pocket at {np.round(designed, 1).tolist()}; top site at "
        f"{np.round(np.asarray(top.center), 1).tolist()} ({dist:.1f} A apart; "
        f"the protein has several competing crevices)"
    )
    log.done()


if __name__ == "__main__":
    main()
