#!/usr/bin/env python
"""Quickstart: dock one probe against a protein and refine the best pose.

This walks the two FTMap phases on a laptop-scale workload:

1. rigid docking (PIPER, direct correlation) — exhaustive rotation x
   translation search over multi-channel grids,
2. energy minimization (CHARMM/ACE) of the best docked conformation,

then runs the same anatomy through the production front door — one
:class:`repro.api.FTMapService` request — which is how every real caller
(scripts, sweeps, benchmarks, a future HTTP layer) maps receptors.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    EnergyModel,
    Minimizer,
    MinimizerConfig,
    PiperConfig,
    PiperDocker,
    build_probe,
    synthetic_protein,
)
from repro.geometry.transforms import centered
from repro.structure.builder import pocket_movable_mask
from repro.obs.logging import RunLogger


def main() -> None:
    log = RunLogger()

    log.section("build structures")
    protein = synthetic_protein(n_residues=120, seed=3)
    probe = build_probe("ethanol")
    log.step(f"protein: {protein.n_atoms} atoms, probe: {probe.n_atoms} atoms")
    log.done()

    log.section("phase 1: rigid docking (PIPER)")
    config = PiperConfig(
        num_rotations=24,        # FTMap uses 500; scaled for the demo
        receptor_grid=48,
        probe_grid=4,
        grid_spacing=1.25,
    )
    docker = PiperDocker(protein, probe, config)
    poses = docker.run()
    best = poses[0]
    log.step(
        f"{len(poses)} poses from {config.num_rotations} rotations; "
        f"best energy {best.score:.2f} at rotation {best.rotation_index}, "
        f"translation {best.translation}"
    )
    log.done()

    log.section("phase 2: energy minimization (CHARMM/ACE)")
    placed = probe.with_coords(best.transform.apply(centered(probe.coords)))
    complex_mol = protein.merged_with(placed)
    movable = pocket_movable_mask(complex_mol, probe.n_atoms)
    model = EnergyModel(complex_mol, movable=movable)
    log.step(
        f"complex: {complex_mol.n_atoms} atoms, {int(movable.sum())} movable, "
        f"{model.n_active_pairs} non-bonded pairs"
    )
    result = Minimizer(model, config=MinimizerConfig(max_iterations=80)).run()
    log.step(
        f"E: {result.initial_energy:.2f} -> {result.energy:.2f} kcal/mol in "
        f"{result.iterations} iterations (converged: {result.converged})"
    )
    rep = result.final_report
    for name, value in rep.components.items():
        log.step(f"  {name:<14s} {value:12.3f}")
    log.done()

    probe_center = result.coords[-probe.n_atoms :].mean(axis=0)
    log.step(f"refined probe center: {np.round(probe_center, 2).tolist()}")

    log.section("the same pipeline, as a service request")
    from repro import FTMapConfig, FTMapService

    with FTMapService() as service:
        mapped = service.map(
            protein,
            FTMapConfig(
                probe_names=("ethanol",),
                num_rotations=config.num_rotations,
                receptor_grid=config.receptor_grid,
                probe_grid=config.probe_grid,
                grid_spacing=config.grid_spacing,
                minimize_top=1,
                minimizer_iterations=80,
            ),
        )
    pr = mapped.probe_results["ethanol"]
    log.step(
        f"service request: {len(pr.docked_poses)} poses -> "
        f"{len(pr.minimized)} refined -> {len(pr.clusters)} cluster(s) "
        f"({mapped.wall_time_s:.2f}s)"
    )
    log.done()


if __name__ == "__main__":
    main()
