#!/usr/bin/env python
"""Reproduce the paper's headline results on the virtual Tesla C1060.

Prints every table and headline figure of the evaluation section:

* Table 1  — per-rotation rigid-docking speedups (paper: 32.6x total),
* Table 2  — minimization kernel speedups (26.7x / 17x / 6.7x),
* Sec. III — rotation-batching sweep (paper: 2.7x at batch 8),
* Sec. IV  — minimization scheme ladder (A poor, B ~3x, C 12.5x),
* Sec. V   — overall roll-up (435 -> 33 min, 13x) and the multicore
             comparison (11x / 6x / 12.3x).

Everything is model-vs-model: serial times come from the calibrated Xeon
model, GPU times from the C1060 cost model counting exactly the operations
the real kernels perform.  Run with real small-scale numerics in the test
and benchmark suites.

Run:  python examples/gpu_acceleration.py
"""

from __future__ import annotations

from repro.cuda import Device, TESLA_C1060
from repro.perf import (
    batching_sweep,
    multicore_comparison,
    overall_speedup,
    render_table,
    scheme_ladder,
    table1_docking_speedups,
    table2_minimization_speedups,
)


def main() -> None:
    print(f"virtual device: {TESLA_C1060.name}")
    print(
        f"  {TESLA_C1060.num_sms} SMs x {TESLA_C1060.cores_per_sm} cores @ "
        f"{TESLA_C1060.clock_ghz} GHz, {TESLA_C1060.global_bandwidth_gbs} GB/s, "
        f"{TESLA_C1060.shared_mem_per_sm // 1024} KiB shared / "
        f"{TESLA_C1060.constant_mem // 1024} KiB constant per SM"
    )
    print()

    rows, _ = table1_docking_speedups()
    print(render_table("Table 1 — rigid docking speedups (per rotation)", rows))
    print()

    rows, _ = table2_minimization_speedups()
    print(render_table("Table 2 — energy minimization kernel speedups", rows))
    print()

    rows, _ = batching_sweep()
    print(render_table("Sec. III.A — multi-rotation batching", rows))
    print()

    rows, _ = scheme_ladder()
    print(render_table("Sec. IV — minimization scheme ladder", rows))
    print()

    rows, _ = overall_speedup()
    print(render_table("Sec. V — overall speedup (per probe)", rows))
    print()

    rows, _ = multicore_comparison()
    print(render_table("Sec. V.A — multicore comparison", rows))
    print()

    # A peek at the device timeline for one docking rotation batch.
    from repro.gpu.pipeline import GpuFTMapPipeline

    dev = Device()
    pipe = GpuFTMapPipeline(dev)
    pipe.docking_times()
    print("device timeline (one docking batch at N=128):")
    for line in dev.timeline():
        print("  " + line)


if __name__ == "__main__":
    main()
