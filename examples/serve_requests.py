#!/usr/bin/env python
"""Serving a request stream: the mapping system as a service.

This is the paper's end state in miniature — one resident receptor,
mapped against a stream of probe workloads through the session-scoped
:class:`repro.api.FTMapService`:

1. the receptor is **registered once** and addressed by content hash,
2. a stream of :class:`~repro.api.MapRequest` documents (JSON-shaped —
   exactly what a wire protocol would carry) is **submitted
   asynchronously**; each job reports per-stage progress events,
3. multi-probe requests are **stage-pipelined** (probe k+1 docks while
   probe k minimizes), and repeat workloads are served
   **mapped-or-cached** from the shared artifact cache — watch the hit
   rates climb as the stream progresses.

Run:  python examples/serve_requests.py
"""

from __future__ import annotations

import json

from repro import FTMapConfig, synthetic_protein
from repro.api import FTMapService, MapRequest
from repro.cache import CacheManager
from repro.obs.logging import RunLogger


def main() -> None:
    log = RunLogger()

    log.section("session: one service, one resident receptor")
    protein = synthetic_protein(n_residues=60, seed=3)
    base = dict(
        num_rotations=24,
        receptor_grid=40,
        grid_spacing=1.25,
        minimize_top=3,
        minimizer_iterations=8,
        engine="fft",
    )
    service = FTMapService(cache=CacheManager(policy="memory"), max_workers=2)
    receptor_id = service.register_receptor(protein)
    log.step(f"receptor registered: {receptor_id[:16]}… ({protein.n_atoms} atoms)")
    log.done()

    # A request stream: different probe panels against the same receptor,
    # ending with a repeat of the first request (a pure cache ride).
    panels = [
        ("ethanol", "acetone"),
        ("ethanol", "acetone", "urea", "acetonitrile"),
        ("benzene", "phenol"),
        ("ethanol", "acetone"),                      # repeat of request 1
    ]
    requests = [
        MapRequest(
            receptor=receptor_id,
            config=FTMapConfig(probe_names=names, **base),
            request_id=f"req-{i}",
        )
        for i, names in enumerate(panels, start=1)
    ]

    log.section("wire shape: requests serialize as plain JSON")
    wire = json.dumps(requests[0].to_dict(), indent=None)
    log.step(f"req-1 is {len(wire)} bytes of JSON (receptor by hash)")
    assert MapRequest.from_dict(json.loads(wire)) == requests[0]
    log.done()

    log.section("submit the stream, poll for results")
    with service:
        handles = [service.submit(req) for req in requests]
        results = [h.result(timeout=600) for h in handles]
        for handle, mapped in zip(handles, results):
            stages = [e.stage for e in handle.events()]
            stats = mapped.cache_stats
            log.step(
                f"{handle.job_id}: {handle.status():<9s} "
                f"{mapped.wall_time_s:6.2f}s  {mapped.streaming:<10s} "
                f"{len(mapped.sites)} site(s)  "
                f"cache {stats.hits}/{stats.lookups} hits "
                f"({stats.hit_rate:.0%})  [{len(stages)} events]"
            )
    log.done("stream served")

    first, repeat = results[0], results[-1]
    log.section("mapped-or-cached: the repeat request rode the cache")
    log.step(
        f"req-1 cold: {first.wall_time_s:.2f}s at "
        f"{first.cache_stats.hit_rate:.0%} hit rate; "
        f"req-{len(results)} warm: {repeat.wall_time_s:.2f}s at "
        f"{repeat.cache_stats.hit_rate:.0%}"
    )
    top = repeat.top_site
    if top is not None:
        import numpy as np

        log.step(
            f"top consensus site: {top.probe_count} probes at "
            f"{np.round(np.asarray(top.center), 1).tolist()}"
        )
    log.done()


if __name__ == "__main__":
    main()
