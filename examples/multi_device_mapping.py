#!/usr/bin/env python
"""Multi-device mapping: topology config -> service request -> provenance.

The paper's stated future work is a multi-GPU FTMap server (Sec. VI).
This example walks that path end to end on virtual devices:

1. a :class:`~repro.exec.DeviceTopology` describes the node (here 4
   virtual Tesla C1060s) and the predicted shard scaling of the
   minimization phase comes straight from the shared cost models,
2. a :class:`~repro.api.MapRequest` asks for sharded minimization with
   two config knobs (``minimize_engine="multi-gpu-sim"``,
   ``minimize_devices=4``); the service dispatches each probe's
   conformation ensemble across the devices and emits a
   ``minimize-shard`` progress event per shard,
3. the result records **where the work actually ran** — device count,
   per-shard pose counts, reduction order — and a warm repeat skips the
   stage entirely through the shard-invariant minimized-ensemble cache.

Sharding never renumbers anything: the per-pose results are
bitwise-identical to the single-device batched minimizer.

Run:  python examples/multi_device_mapping.py
"""

from __future__ import annotations

from repro import FTMapConfig, synthetic_protein
from repro.api import FTMapService, MapRequest
from repro.cache import CacheManager
from repro.exec import DeviceTopology
from repro.perf.speedup import multigpu_minimization_scaling
from repro.perf.tables import render_table
from repro.obs.logging import RunLogger


def main() -> None:
    log = RunLogger()

    log.section("device topology: 4 virtual C1060s, predicted shard scaling")
    topology = DeviceTopology(num_devices=4)
    for device in topology.devices:
        log.step(f"device {device.index}: {device.spec.name}")
    plan = topology.plan(12)
    log.step(
        f"a 12-pose ensemble shards as {plan.shard_sizes} "
        f"(reduction order {plan.reduction_order})"
    )
    rows, predicted = multigpu_minimization_scaling(device_counts=(1, 2, 4, 8))
    print(render_table("Paper-scale minimization phase vs device count", rows))
    log.step(f"predicted speedup at 4 devices: {predicted[4]:.2f}x")
    log.done()

    log.section("service request: shard the minimization over the devices")
    protein = synthetic_protein(n_residues=40, seed=3)
    config = FTMapConfig(
        probe_names=("ethanol", "benzene"),
        num_rotations=8,
        receptor_grid=32,
        grid_spacing=1.4,
        minimize_top=8,
        minimizer_iterations=10,
        engine="direct",
        minimize_engine="multi-gpu-sim",
        minimize_devices=topology.num_devices,
        cache_policy="memory",
    )
    shard_events = []
    service = FTMapService(
        cache=CacheManager(policy="memory"),
        on_event=lambda e: shard_events.append(e)
        if e.stage == "minimize-shard"
        else None,
    )
    with service:
        receptor_id = service.register_receptor(protein)
        handle = service.submit(
            MapRequest(receptor=receptor_id, config=config, request_id="cold")
        )
        cold = handle.result(timeout=600)
        for event in shard_events:
            log.step(
                f"[{event.job_id}] probe {event.probe}: shard "
                f"{event.index + 1}/{event.total} dispatched"
            )
        log.done("cold request mapped")

        log.section("shard provenance: where the work actually ran")
        for name, prov in cold.minimize_provenance.items():
            log.step(
                f"{name}: backend={prov['backend']} devices={prov['devices']} "
                f"shards={prov['shard_sizes']} "
                f"reduction={prov['reduction_order']} cached={prov['cached']}"
            )
        log.done()

        log.section("warm repeat: the minimized ensembles ride the cache")
        warm = service.map(receptor_id, config)
        for name, prov in warm.minimize_provenance.items():
            log.step(
                f"{name}: cached={prov['cached']} (no shards ran: "
                f"shards={prov['shard_sizes']})"
            )
        stats = warm.cache_stats
        log.step(
            f"warm request: {stats.hits}/{stats.lookups} cache hits "
            f"({stats.hit_rate:.0%}), {warm.wall_time_s:.2f}s vs cold "
            f"{cold.wall_time_s:.2f}s"
        )
    # The invariant that makes all of this safe to deploy: sharded
    # results equal the cached (originally sharded) ones bitwise.
    for name in cold.probe_results:
        a = cold.probe_results[name].minimized_energies
        b = warm.probe_results[name].minimized_energies
        assert (a == b).all()
    log.done("multi-device mapping served")


if __name__ == "__main__":
    main()
