#!/usr/bin/env python
"""Working from PDB files: write, read, dock.

FTMap's production server consumes PDB structures.  This example round-trips
a structure through the minimal PDB reader/writer and runs docking on the
re-imported molecule, demonstrating the file-based workflow a user with real
structures would follow (point ``read_pdb`` at your own file).

Run:  python examples/pdb_workflow.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

import numpy as np

from repro import (
    PiperConfig,
    PiperDocker,
    build_probe,
    read_pdb,
    synthetic_protein,
    write_pdb,
)
from repro.obs.logging import RunLogger


def main() -> None:
    log = RunLogger()

    with tempfile.TemporaryDirectory() as tmp:
        pdb_path = Path(tmp) / "receptor.pdb"

        log.section("export a structure to PDB")
        protein = synthetic_protein(n_residues=80, seed=11)
        write_pdb(protein, pdb_path)
        size_kb = pdb_path.stat().st_size / 1024
        log.step(f"wrote {protein.n_atoms} atoms to {pdb_path.name} ({size_kb:.1f} KiB)")
        log.done()

        log.section("re-import and verify")
        imported = read_pdb(pdb_path)
        drift = float(np.abs(imported.coords - protein.coords).max())
        log.step(
            f"read back {imported.n_atoms} atoms; max coordinate drift "
            f"{drift:.4f} A (PDB columns are 0.001 A)"
        )
        assert imported.n_atoms == protein.n_atoms
        log.done()

        log.section("dock against the imported structure")
        probe = build_probe("acetonitrile")
        config = PiperConfig(
            num_rotations=8, receptor_grid=48, probe_grid=4, grid_spacing=1.25
        )
        docker = PiperDocker(imported, probe, config)
        poses = docker.run()
        log.step(f"best pose energy {poses[0].score:.2f} at {poses[0].translation}")
        log.done()


if __name__ == "__main__":
    main()
