"""Ensemble-shared neighbor-list construction (the serial-floor raw-speed
pass's tentpole artifact).

FTMap's minimization phase builds one neighbor list per retained pose of the
*same* receptor+probe complex; the receptor-receptor half list — the
overwhelming majority of pairs — is identical across poses.
:class:`~repro.minimize.neighborlist.SharedNeighborCore` builds it once and
derives each pose list from its probe-environment delta, so ensemble list
building should approach ~P-fold less work at P poses.

Gate: shared-core construction of a 16-pose ensemble's lists at paper scale
must beat 16 independent ``build_neighbor_list`` calls by >= 3x, and the
lists must be *identical* (same CSR offsets and indices pose by pose — the
property suite in ``tests/test_minimize_neighborlist.py`` covers randomized
geometries; here we re-check the timed workload).
"""

import time

import numpy as np

from repro.minimize.neighborlist import (
    SharedNeighborCore,
    bonded_exclusions,
    build_neighbor_list,
)
from repro.perf.tables import ComparisonRow
from repro.structure import synthetic_complex

#: Paper-scale minimization retains far more, but 16 poses is where the
#: engine's batched path lives at interactive scale.
N_POSES = 16

#: Shared-core ensemble list build vs independent per-pose builds
#: (acceptance floor; measured ~7-9x at this complex size — the delta is
#: tiny because the probe block is a few atoms against a ~3400-atom core).
MIN_SHARED_LISTBUILD_SPEEDUP = 3.0


def _best_of(fn, repeats=3):
    times = []
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        times.append(time.perf_counter() - t0)
    return min(times)


def test_shared_ensemble_listbuild_speedup(print_comparison):
    mol = synthetic_complex(probe_name="ethanol", n_residues=344, seed=3)
    n_probe = mol.meta["n_probe_atoms"]
    n_core = mol.n_atoms - n_probe
    excl = bonded_exclusions(mol.topology)
    rng = np.random.default_rng(5)
    stack = np.stack([mol.coords.copy() for _ in range(N_POSES)])
    for k in range(N_POSES):
        stack[k, -n_probe:] += rng.normal(scale=0.3, size=(n_probe, 3))

    def per_pose():
        return [
            build_neighbor_list(stack[k], exclusions=excl) for k in range(N_POSES)
        ]

    def shared():
        core = SharedNeighborCore(stack[0, :n_core], exclusions=excl)
        return [core.pose_list(stack[k]) for k in range(N_POSES)]

    t_per_pose = _best_of(per_pose)
    t_shared = _best_of(shared)
    speedup = t_per_pose / t_shared

    ref = per_pose()
    got = shared()
    print_comparison(
        f"Ensemble neighbor-list build — shared receptor core ({N_POSES} poses, "
        f"{mol.n_atoms} atoms, {ref[0].n_pairs} pairs/pose)",
        [
            ComparisonRow("independent builds (ms/pose)", None, t_per_pose / N_POSES * 1e3),
            ComparisonRow("shared-core builds (ms/pose)", None, t_shared / N_POSES * 1e3),
            ComparisonRow("shared-core speedup", None, speedup, "x"),
            ComparisonRow(
                "gate floor: shared listbuild (old -> new)",
                None,
                MIN_SHARED_LISTBUILD_SPEEDUP,
                "x",
            ),
        ],
    )
    assert speedup >= MIN_SHARED_LISTBUILD_SPEEDUP

    # The timed paths produced identical lists, pose by pose.
    for r, g in zip(ref, got):
        np.testing.assert_array_equal(r.offsets, g.offsets)
        np.testing.assert_array_equal(r.indices, g.indices)
