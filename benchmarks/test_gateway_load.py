"""Gateway load benchmark + serving gates (the HTTP gateway PR's artifact).

Concurrent clients hammer an in-process :class:`repro.gateway.GatewayServer`
over real TCP and we measure end-to-end request latency (submit → result
document) for cold and cache-warm mappings, plus how the gateway behaves
past saturation.  Two hard assertions:

* **warm serving overhead bounded** — the p50 latency of a cache-warm
  mapping served over HTTP must stay within ``MAX_WARM_OVERHEAD_X`` of
  the same warm mapping called directly on the service.  The gateway adds
  JSON (de)serialization, two HTTP round trips and a poll interval — a
  fixed cost that must never balloon into a multiple of the mapping
  itself beyond this bound,
* **overload sheds, it does not stall** — against a queue-bounded
  gateway, a submit burst past capacity must produce HTTP 429 sheds
  carrying ``Retry-After`` (never unbounded queueing), every *shed*
  decision must come back fast (p99 below ``MAX_SHED_LATENCY_S`` —
  rejection is cheap), and every *accepted* job must still complete.

The printed table archives p50/p99/throughput for the warm/cold mixes
(EXPERIMENTS.md); the paper column is n/a — the paper predates the
serving layer, these are ours-only operational numbers.
"""

from __future__ import annotations

import threading
import time

from repro.api import FTMapService, MapRequest
from repro.api.errors import QuotaExceededError
from repro.cache import CacheManager, reset_cache_registry
from repro.gateway import GatewayClient, GatewayServer, TenantSpec
from repro.mapping.ftmap import FTMapConfig
from repro.perf.tables import ComparisonRow
from repro.structure import synthetic_protein

#: Warm-mix HTTP p50 must stay within this multiple of the direct
#: (in-process) warm mapping latency.  The gateway's fixed cost — JSON,
#: TCP, the client's result poll interval — dominates at warm speed, so
#: this is deliberately a loose operational bound, not a micro-benchmark.
MAX_WARM_OVERHEAD_X = 25.0

#: A shed (429) decision is a constant-time bucket/queue check; even
#: under a concurrent burst its p99 must stay far below mapping time.
MAX_SHED_LATENCY_S = 1.0

CONFIG = dict(
    num_rotations=16,
    receptor_grid=32,
    grid_spacing=1.25,
    minimize_top=2,
    minimizer_iterations=3,
    engine="fft",
)


def _percentile(samples, q):
    ordered = sorted(samples)
    idx = min(len(ordered) - 1, int(round(q * (len(ordered) - 1))))
    return ordered[idx]


def _warm_config():
    return FTMapConfig(probe_names=("ethanol",), **CONFIG)


def _cold_config(i):
    # A unique rotation count per request defeats every cache tier.
    return FTMapConfig(
        probe_names=("ethanol",), **{**CONFIG, "num_rotations": 17 + i}
    )


def test_gateway_warm_cold_latency(print_comparison):
    reset_cache_registry()
    protein = synthetic_protein(n_residues=40, seed=3)
    service = FTMapService(cache=CacheManager(policy="memory"), max_workers=2)

    # Direct in-process baseline: prime the cache, then time warm maps.
    service.map(protein, config=_warm_config())
    direct = []
    for _ in range(3):
        t0 = time.perf_counter()
        service.map(protein, config=_warm_config())
        direct.append(time.perf_counter() - t0)
    direct_warm_p50 = _percentile(direct, 0.5)

    tenants = [
        TenantSpec(f"t{i}", api_key=f"t{i}-key", rate=1000.0, burst=1000,
                   max_in_flight=50)
        for i in range(2)
    ]
    n_warm_per_client = 6
    n_cold_per_client = 2
    warm_lat, cold_lat = [], []
    lock = threading.Lock()
    errors = []

    with GatewayServer(
        service, tenants, max_queue_depth=64, owns_service=True
    ) as gw:
        def client_thread(name, offset):
            client = GatewayClient(gw.url, api_key=f"{name}-key")
            receptor = client.register_receptor(protein)
            mine_warm, mine_cold = [], []
            try:
                for _ in range(n_warm_per_client):
                    t0 = time.perf_counter()
                    job = client.submit(
                        MapRequest(receptor=receptor, config=_warm_config()),
                        max_retries=50,
                    )
                    client.result(job, timeout_s=600, poll_interval_s=0.005)
                    mine_warm.append(time.perf_counter() - t0)
                for i in range(n_cold_per_client):
                    t0 = time.perf_counter()
                    job = client.submit(
                        MapRequest(
                            receptor=receptor,
                            config=_cold_config(offset * n_cold_per_client + i),
                        ),
                        max_retries=50,
                    )
                    client.result(job, timeout_s=600, poll_interval_s=0.005)
                    mine_cold.append(time.perf_counter() - t0)
            except Exception as exc:  # pragma: no cover - diagnostics
                with lock:
                    errors.append((name, exc))
                return
            with lock:
                warm_lat.extend(mine_warm)
                cold_lat.extend(mine_cold)

        t_start = time.perf_counter()
        threads = [
            threading.Thread(target=client_thread, args=(spec.name, k))
            for k, spec in enumerate(tenants)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=600)
        elapsed = time.perf_counter() - t_start
        assert not errors, errors

        stats = GatewayClient(gw.url, api_key="t0-key").stats()
        total_jobs = sum(
            c["completed"] for c in stats["tenants"].values()
        )

    warm_p50 = _percentile(warm_lat, 0.5)
    warm_p99 = _percentile(warm_lat, 0.99)
    cold_p50 = _percentile(cold_lat, 0.5)
    cold_p99 = _percentile(cold_lat, 0.99)
    throughput = total_jobs / elapsed

    print_comparison(
        "gateway serving latency (2 tenants, warm/cold mix over HTTP)",
        [
            ComparisonRow("direct warm map p50", None, direct_warm_p50, "s"),
            ComparisonRow("HTTP warm p50", None, warm_p50, "s"),
            ComparisonRow("HTTP warm p99", None, warm_p99, "s"),
            ComparisonRow("HTTP cold p50", None, cold_p50, "s"),
            ComparisonRow("HTTP cold p99", None, cold_p99, "s"),
            ComparisonRow("served throughput", None, throughput, " jobs/s"),
            ComparisonRow(
                "warm overhead (HTTP/direct)", None, warm_p50 / direct_warm_p50
            ),
        ],
    )

    assert total_jobs == 2 * (n_warm_per_client + n_cold_per_client)
    # THE GATE: warm serving overhead is bounded.
    assert warm_p50 <= MAX_WARM_OVERHEAD_X * direct_warm_p50, (
        f"warm HTTP p50 {warm_p50:.3f}s exceeds "
        f"{MAX_WARM_OVERHEAD_X:g}x the direct warm map "
        f"({direct_warm_p50:.3f}s)"
    )


def test_gateway_overload_sheds_fast(print_comparison):
    reset_cache_registry()
    protein = synthetic_protein(n_residues=40, seed=3)
    service = FTMapService(cache=CacheManager(policy="memory"), max_workers=1)
    tenants = [
        TenantSpec("flood", api_key="flood-key", rate=1000.0, burst=1000,
                   max_in_flight=100)
    ]
    burst = 10
    n_threads = 4
    accepted, shed_lat = [], []
    lock = threading.Lock()

    with GatewayServer(
        service, tenants, max_queue_depth=2, max_concurrent=1,
        owns_service=True,
    ) as gw:
        client = GatewayClient(gw.url, api_key="flood-key")
        receptor = client.register_receptor(protein)
        request = MapRequest(receptor=receptor, config=_warm_config())

        def flood():
            mine_accepted, mine_shed = [], []
            for _ in range(burst):
                t0 = time.perf_counter()
                try:
                    mine_accepted.append(client.submit(request))
                except QuotaExceededError as exc:
                    assert exc.retry_after_s > 0
                    mine_shed.append(time.perf_counter() - t0)
            with lock:
                accepted.extend(mine_accepted)
                shed_lat.extend(mine_shed)

        threads = [threading.Thread(target=flood) for _ in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=600)

        for job_id in accepted:
            client.result(job_id, timeout_s=600)
        stats = GatewayClient(gw.url, api_key="flood-key").stats()
        counters = stats["tenants"]["flood"]

    shed_p99 = _percentile(shed_lat, 0.99) if shed_lat else 0.0
    print_comparison(
        "gateway overload (burst of 40 at queue depth 2, 1 worker)",
        [
            ComparisonRow("submits", None, float(n_threads * burst)),
            ComparisonRow("accepted", None, float(len(accepted))),
            ComparisonRow("shed (429)", None, float(len(shed_lat))),
            ComparisonRow("shed decision p99", None, shed_p99, "s"),
        ],
    )

    # THE GATE: overload sheds with 429 + Retry-After instead of queueing
    # unboundedly, sheds are fast, and accepted work still completes.
    assert len(shed_lat) >= 1, "burst past capacity produced no 429 sheds"
    assert len(accepted) >= 3
    assert counters["completed"] == len(accepted)
    assert counters["shed_queue"] == len(shed_lat)
    assert counters["submitted"] == n_threads * burst
    assert shed_p99 <= MAX_SHED_LATENCY_S, (
        f"shed p99 {shed_p99:.3f}s — rejection must be cheap, not a stall"
    )
