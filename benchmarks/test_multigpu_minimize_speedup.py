"""Multi-GPU ensemble minimization shard-scaling gate (this PR's artifact).

The minimization phase shards its conformation ensemble over virtual
devices (:mod:`repro.minimize.multidevice`); this gate pins the scaling
two ways, mirroring the pipeline-overlap gate pattern:

* **predicted shard scaling >= 1.5x at 4 devices vs 1** — the
  paper-scale phase makespan from the shared topology/cost models
  (:func:`~repro.perf.speedup.multigpu_minimization_scaling`: busiest
  shard x scheme-C iteration time + upload + serialized broadcast).
  Deterministic on any host — the repo's cost-model idiom — and the gate.
* **wall clock >= 1.3x** — a real 16-pose ensemble through
  ``MinimizationEngine(backend="multi-gpu-sim")`` at 4 devices
  (thread-parallel shards) vs 1, asserted only where shard threads can
  actually run in parallel (>= 2 usable CPUs; CI runners have them,
  single-core containers skip the wall-clock half, never the predicted
  half).

Plus the invariant that makes sharding deployable at all: per-pose
results are bitwise-identical across device counts (the fp64 equivalence
against ``BatchedMinimizer`` is asserted in
``tests/test_minimize_multidevice.py``; here we re-check the timed fp32
runs agree exactly).
"""

import os
import time

import numpy as np

from repro.minimize import MinimizationEngine, MinimizerConfig
from repro.perf.speedup import multigpu_minimization_scaling
from repro.perf.tables import ComparisonRow
from repro.structure import synthetic_complex
from repro.structure.builder import pocket_movable_mask

#: Acceptance floor: predicted phase makespan at 4 virtual devices must
#: beat 1 device by this factor (ceil division alone gives ~4x; upload +
#: serialized broadcast erode it, the floor says "not by much").
MIN_PREDICTED_SHARD_SPEEDUP = 1.5
#: Unchanged by the serial-floor re-baselining pass (shard scaling is a
#: ratio across device counts of the same batched path; re-measured ~4x
#: predicted at 4 devices).
PREV_MIN_PREDICTED_SHARD_SPEEDUP = 1.5

#: Wall-clock floor on hosts with real parallelism (thread-backed shards,
#: same mechanism and floor as the stage-pipeline overlap gate).
MIN_WALL_SPEEDUP = 1.3
PREV_MIN_WALL_SPEEDUP = 1.3

N_POSES = 16
ITERATIONS = 12


def _usable_cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def _workload():
    mol = synthetic_complex(probe_name="ethanol", n_residues=40, seed=3)
    n_probe = mol.meta["n_probe_atoms"]
    rng = np.random.default_rng(5)
    stack = np.stack([mol.coords.copy() for _ in range(N_POSES)])
    for k in range(N_POSES):
        stack[k, -n_probe:] += rng.normal(scale=0.3, size=(n_probe, 3))
    masks = np.stack(
        [
            pocket_movable_mask(mol.with_coords(stack[k]), n_probe)
            for k in range(N_POSES)
        ]
    )
    return mol, stack, masks


def _run_devices(mol, stack, masks, devices):
    engine = MinimizationEngine(
        mol,
        stack,
        movable=masks,
        config=MinimizerConfig(max_iterations=ITERATIONS),
        backend="multi-gpu-sim",
        devices=devices,
    )
    t0 = time.perf_counter()
    run = engine.run_detailed()
    return run, time.perf_counter() - t0


def _best_wall(mol, stack, masks, devices, repeats=3):
    best_run, best_t = None, float("inf")
    for _ in range(repeats):
        run, t = _run_devices(mol, stack, masks, devices)
        if t < best_t:
            best_run, best_t = run, t
    return best_run, best_t


def test_multigpu_minimize_speedup(print_comparison):
    mol, stack, masks = _workload()

    # Warm the process (imports, allocator, neighbor-list code paths).
    _run_devices(mol, stack, masks, 1)

    run_1, t_1 = _best_wall(mol, stack, masks, 1)
    run_4, t_4 = _best_wall(mol, stack, masks, 4)
    wall_speedup = t_1 / t_4

    # Paper-scale predicted shard scaling from the shared cost models,
    # with the measured laptop-scale wall clocks alongside.
    rows, predicted = multigpu_minimization_scaling(
        device_counts=(1, 2, 4, 8), measured={1: t_1, 4: t_4}
    )
    cpus = _usable_cpus()
    rows = rows + [
        ComparisonRow(
            f"measured wall speedup 4v1 ({cpus} usable cpu(s), "
            f"{N_POSES} poses)",
            None,
            wall_speedup,
            "x",
        ),
        # Floor audit rows (reference = previous floor, measured = the
        # floor enforced now) — collected into the nightly artifact.
        ComparisonRow(
            "gate floor: predicted shard scaling (old -> new)",
            PREV_MIN_PREDICTED_SHARD_SPEEDUP,
            MIN_PREDICTED_SHARD_SPEEDUP,
            "x",
        ),
        ComparisonRow(
            "gate floor: sharded wall clock (old -> new)",
            PREV_MIN_WALL_SPEEDUP,
            MIN_WALL_SPEEDUP,
            "x",
        ),
    ]
    print_comparison(
        "Multi-GPU ensemble minimization — predicted shard scaling "
        "(paper scale) + measured sharded wall clock",
        rows,
    )

    # Gate 1 (every host): predicted phase makespan at 4 virtual devices.
    assert predicted[4] >= MIN_PREDICTED_SHARD_SPEEDUP

    # Gate 2 (hosts with real parallelism, e.g. the CI runners).
    if cpus >= 2:
        assert wall_speedup >= MIN_WALL_SPEEDUP

    # The deployability invariant: sharding never renumbers anything.
    assert len(run_1.results) == len(run_4.results) == N_POSES
    for a, b in zip(run_1.results, run_4.results):
        assert a.energy == b.energy
        np.testing.assert_array_equal(a.coords, b.coords)
    assert run_4.shard_sizes == (4, 4, 4, 4)
    assert run_4.reduction_order == (0, 1, 2, 3)
