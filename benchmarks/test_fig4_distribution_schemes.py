"""E4 — Figure 4: the two direct-correlation work distributions.

Paper: "Both distributions result in similar runtimes, though one or the
other can have better performance for various non-cubic grids."

Real measurement: the direct correlation both schemes execute.
Model output: predicted times on cubic (similar) and non-cubic (divergent)
result grids.
"""


from repro.cuda.device import Device
from repro.docking.direct import DirectCorrelationEngine
from repro.gpu.correlation_kernels import DistributionScheme, correlation_launch_sizes
from repro.perf.tables import ComparisonRow


def test_fig4_distribution_schemes(
    benchmark, bench_receptor_grids, bench_ligand_grids, print_comparison
):
    engine = DirectCorrelationEngine()
    benchmark(engine.correlate, bench_receptor_grids, bench_ligand_grids)

    def model_time(shape, scheme):
        return Device().launch(correlation_launch_sizes(shape, 22, 4, scheme))

    cubic = (125, 125, 125)
    flat = (125, 125, 4)       # few z-planes
    skinny = (8, 8, 125)       # tiny xy tiles

    rows = []
    results = {}
    for name, shape in (("cubic 125^3", cubic), ("flat 125x125x4", flat), ("skinny 8x8x125", skinny)):
        t1 = model_time(shape, DistributionScheme.PENCILS)
        t2 = model_time(shape, DistributionScheme.PLANES)
        results[name] = (t1, t2)
        rows.append(ComparisonRow(f"{name}: planes/pencils time ratio", None, t2 / t1))
    print_comparison("Fig. 4 — work-distribution schemes", rows)

    t1c, t2c = results["cubic 125^3"]
    assert abs(t1c - t2c) / max(t1c, t2c) < 0.1      # similar on cubic grids
    t1f, t2f = results["flat 125x125x4"]
    assert t2f > 1.5 * t1f                            # planes starves on flat
    t1s, t2s = results["skinny 8x8x125"]
    assert t1s > 1.5 * t2s                            # pencils starves on skinny
