"""Artifact-cache speedup gate (the caching PR's artifact).

The content-addressed cache (:mod:`repro.cache`) exists to make *repeat*
mappings near-free: receptor energy grids, receptor FFT spectra, whole
per-probe dock results and per-probe minimized ensembles are reused, so
a warm repeat pays only for clustering and consensus.  Two hard
assertions:

* **warm repeat >= 3x** — the same request twice through one
  :class:`~repro.api.FTMapService` session with the memory-tier cache;
  the warm run must be at least 3x faster than the cold one (measured
  ~5-15x at this docking-dominated scale),
* **cache-off unchanged** — with policy ``off`` the pipeline must produce
  bitwise-identical poses and minimized energies to the cached runs (the
  cache is invisible in outputs, only in wall clock).

The workload is docking-dominated on purpose (many rotations, shallow
minimization): that is the regime where the floor is conservative — with
the minimized-ensemble cache the warm run recomputes neither phase, so
deeper minimization only widens the measured ratio.
"""

import time

import numpy as np
import pytest

from repro.api import FTMapService
from repro.cache import CacheManager, reset_cache_registry
from repro.mapping.ftmap import FTMapConfig
from repro.perf.tables import ComparisonRow
from repro.structure import synthetic_protein

#: Warm-over-cold wall-clock floor for the repeat mapping (acceptance
#: gate; measured well above this at the benchmark scale).
MIN_WARM_REPEAT_SPEEDUP = 3.0
#: Unchanged by the serial-floor re-baselining pass (warm-over-cold is a
#: ratio of two runs through the *same* minimizer; re-measured ~26x).
PREV_MIN_WARM_REPEAT_SPEEDUP = 3.0


@pytest.fixture(autouse=True)
def _clean_registry():
    """Start from and leave behind an empty cache registry, so this
    module's populated managers can't skew other timed benchmarks."""
    reset_cache_registry()
    yield
    reset_cache_registry()


def _workload():
    protein = synthetic_protein(n_residues=60, seed=3)
    config = dict(
        probe_names=("ethanol", "acetone"),
        num_rotations=64,
        receptor_grid=40,
        grid_spacing=1.25,
        minimize_top=2,
        minimizer_iterations=3,
        engine="fft",
    )
    return protein, config


def _probe_outputs(result):
    """The bitwise-comparable outputs of one run."""
    out = {}
    for name, pr in result.probe_results.items():
        out[name] = (
            [(p.rotation_index, p.translation, p.score) for p in pr.docked_poses],
            pr.minimized_energies.copy(),
            pr.minimized_centers.copy(),
        )
    return out


def test_cache_warm_repeat_speedup(print_comparison):
    protein, config = _workload()

    reset_cache_registry()
    cfg_off = FTMapConfig(**config, cache_policy="off")
    cfg_on = FTMapConfig(**config, cache_policy="memory")

    # Three requests through one service session: uncached baseline, cold
    # fill, warm repeat (the sequential loop keeps the timings comparable
    # with the pre-service baselines of this gate).
    with FTMapService() as service:
        t0 = time.perf_counter()
        r_off = service.map(protein, cfg_off, streaming="sequential").result
        t_off = time.perf_counter() - t0

        t0 = time.perf_counter()
        r_cold = service.map(protein, cfg_on, streaming="sequential").result
        t_cold = time.perf_counter() - t0

        t0 = time.perf_counter()
        r_warm = service.map(protein, cfg_on, streaming="sequential").result
        t_warm = time.perf_counter() - t0

    speedup = t_cold / t_warm
    print_comparison(
        "Artifact cache — repeat mapping wall clock "
        f"({len(cfg_on.probe_names)} probes x {cfg_on.num_rotations} rotations)",
        [
            ComparisonRow("cache off (s)", None, t_off),
            ComparisonRow("cold, memory cache (s)", None, t_cold),
            ComparisonRow("warm repeat (s)", None, t_warm),
            ComparisonRow("warm-repeat speedup", None, speedup, "x"),
            ComparisonRow(
                "warm hit rate", None, r_warm.cache_stats.hit_rate * 100.0, "%"
            ),
            # Floor audit row (reference = previous floor, measured = the
            # floor enforced now) — collected into the nightly artifact.
            ComparisonRow(
                "gate floor: warm repeat (old -> new)",
                PREV_MIN_WARM_REPEAT_SPEEDUP,
                MIN_WARM_REPEAT_SPEEDUP,
                "x",
            ),
        ],
    )

    # The warm run reused everything: its only lookups are one
    # dock-result hit and one minimized-ensemble hit per probe.
    assert r_warm.cache_stats.misses == 0
    assert r_warm.cache_stats.hits == 2 * len(cfg_on.probe_names)
    assert r_warm.cache_stats.hit_rate == 1.0
    assert speedup >= MIN_WARM_REPEAT_SPEEDUP

    # Cache-off path unchanged: all three runs agree bitwise.
    out_off, out_cold, out_warm = (
        _probe_outputs(r) for r in (r_off, r_cold, r_warm)
    )
    for name in out_off:
        for other in (out_cold, out_warm):
            assert out_off[name][0] == other[name][0]           # poses
            assert np.array_equal(out_off[name][1], other[name][1])  # energies
            assert np.array_equal(out_off[name][2], other[name][2])  # centers


def test_cache_off_run_does_no_cache_work():
    """Policy off must not even consult the stores (zero lookups)."""
    protein, config = _workload()
    reset_cache_registry()
    manager = CacheManager(policy="off")
    config = dict(config, num_rotations=4)
    with FTMapService(cache=manager) as service:
        mapped = service.map(protein, FTMapConfig(**config, cache_policy="off"))
    assert mapped.cache_stats is None
    assert manager.stats.lookups == 0
    assert manager.stats.puts == 0
