"""Stage-pipelined probe streaming gate (the serving-layer PR's artifact).

The :class:`~repro.api.FTMapService` overlaps probe ``k+1``'s docking
with probe ``k``'s minimization/clustering
(:class:`~repro.util.parallel.PipelineExecutor`), so a multi-probe
request is bounded by its slowest stage, not the sum of stages.  Two hard
assertions on a stage-balanced workload:

* **schedule speedup >= 1.3x** — per-probe stage times are *measured* on
  the real pipeline functions, then the sequential sum is compared
  against the pipeline schedule's makespan
  (:func:`~repro.perf.speedup.pipeline_makespan`, the same recurrence the
  executor's threads realise).  This is deterministic on any host — the
  repo's cost-model idiom applied to scheduling — and is the gate.
* **wall clock >= 1.3x** — the same requests through ``service.map``
  sequential vs pipelined, asserted only where stage threads can actually
  run in parallel (>= 2 usable CPUs; CI runners have them, single-core
  containers skip the wall-clock half, never the schedule half).

Plus the invariant that makes pipelining deployable at all: the pipelined
``MapResult`` is bitwise-identical to the sequential one — scheduling
changes, values never do.
"""

import os
import time

import numpy as np

from repro.api import FTMapService
from repro.cache import CacheManager, reset_cache_registry
from repro.mapping.ftmap import FTMapConfig, cluster_probe, dock_probe, minimize_poses
from repro.perf.speedup import pipeline_makespan
from repro.perf.tables import ComparisonRow
from repro.structure import build_probe, synthetic_protein

#: Overlap floor of the acceptance gate: the stage-pipelined multi-probe
#: path must beat the sequential stage loop by this factor.
MIN_PIPELINE_SPEEDUP = 1.3
#: Unchanged by the serial-floor re-baselining pass (the serial fast path
#: speeds both the sequential and pipelined runs alike; re-measured ~1.55x
#: schedule speedup on the balanced workload).
PREV_MIN_PIPELINE_SPEEDUP = 1.3


def _usable_cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def _workload():
    """Stage-balanced on purpose: per-probe docking and minimization cost
    about the same, which is where overlap pays (a lopsided workload is
    bounded by its big stage no matter the schedule)."""
    protein = synthetic_protein(n_residues=60, seed=3)
    config = FTMapConfig(
        probe_names=(
            "ethanol", "acetone", "urea", "acetonitrile", "benzene", "phenol",
        ),
        num_rotations=48,
        receptor_grid=40,
        grid_spacing=1.25,
        minimize_top=3,
        minimizer_iterations=9,
        engine="fft",
        minimize_engine="batched",
        cache_policy="off",
    )
    return protein, config


def _measure_stage_times(protein, config):
    """Per-probe (dock, refine) wall times on the real stage functions."""
    times = []
    for name in config.probe_names:
        probe = build_probe(name)
        t0 = time.perf_counter()
        run = dock_probe(protein, probe, config)
        t_dock = time.perf_counter() - t0
        t0 = time.perf_counter()
        _, centers, energies, _ = minimize_poses(
            protein, probe, run.poses, config
        )
        cluster_probe(centers, energies, config)
        t_refine = time.perf_counter() - t0
        times.append([t_dock, t_refine])
    return times


def _probe_outputs(result):
    out = {}
    for name, pr in result.probe_results.items():
        out[name] = (
            [(p.rotation_index, p.translation, p.score) for p in pr.docked_poses],
            pr.minimized_energies.copy(),
            pr.minimized_centers.copy(),
        )
    return out


def test_pipeline_overlap_speedup(print_comparison):
    reset_cache_registry()
    protein, config = _workload()

    # Warm the process (spectra cache, imports, allocator) so the timed
    # stage measurements see steady-state per-probe costs.
    _measure_stage_times(protein, config)
    stage_times = _measure_stage_times(protein, config)

    sequential_s = sum(sum(row) for row in stage_times)
    makespan_s = pipeline_makespan(stage_times)
    schedule_speedup = sequential_s / makespan_s
    dock_total = sum(row[0] for row in stage_times)
    refine_total = sum(row[1] for row in stage_times)

    # Bitwise identity + wall clock through the service front door.
    with FTMapService(cache=CacheManager(policy="off")) as service:
        fingerprint = service.register_receptor(protein)
        t0 = time.perf_counter()
        seq = service.map(fingerprint, config, streaming="sequential")
        t_seq = time.perf_counter() - t0
        t0 = time.perf_counter()
        pipe = service.map(fingerprint, config, streaming="pipeline")
        t_pipe = time.perf_counter() - t0
    wall_speedup = t_seq / t_pipe

    cpus = _usable_cpus()
    print_comparison(
        "Async probe streaming — stage-pipelined vs sequential "
        f"({len(config.probe_names)} probes x {config.num_rotations} rotations)",
        [
            ComparisonRow("dock stage total (s)", None, dock_total),
            ComparisonRow("refine stage total (s)", None, refine_total),
            ComparisonRow("sequential stage loop (s)", None, sequential_s),
            ComparisonRow("pipeline schedule makespan (s)", None, makespan_s),
            ComparisonRow("schedule speedup", None, schedule_speedup, "x"),
            ComparisonRow("wall sequential (s)", None, t_seq),
            ComparisonRow("wall pipelined (s)", None, t_pipe),
            ComparisonRow(
                f"wall speedup ({cpus} usable cpu(s))", None, wall_speedup, "x"
            ),
            # Floor audit row (reference = previous floor, measured = the
            # floor enforced now) — collected into the nightly artifact.
            ComparisonRow(
                "gate floor: pipeline overlap (old -> new)",
                PREV_MIN_PIPELINE_SPEEDUP,
                MIN_PIPELINE_SPEEDUP,
                "x",
            ),
        ],
    )

    # Gate 1 (every host): the pipeline schedule over the *measured* real
    # stage times must clear the floor.
    assert schedule_speedup >= MIN_PIPELINE_SPEEDUP

    # Gate 2 (hosts with real parallelism, e.g. the CI runners): measured
    # wall clock clears the same floor.
    if cpus >= 2:
        assert wall_speedup >= MIN_PIPELINE_SPEEDUP

    # The invariant that makes the pipeline deployable: identical outputs.
    out_seq, out_pipe = _probe_outputs(seq.result), _probe_outputs(pipe.result)
    for name in out_seq:
        assert out_seq[name][0] == out_pipe[name][0]               # poses
        assert np.array_equal(out_seq[name][1], out_pipe[name][1])  # energies
        assert np.array_equal(out_seq[name][2], out_pipe[name][2])  # centers
    assert len(seq.sites) == len(pipe.sites)
    for a, b in zip(seq.sites, pipe.sites):
        assert np.array_equal(a.center, b.center)
        assert a.best_energy == b.best_energy
