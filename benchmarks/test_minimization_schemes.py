"""E11 — Sec. IV: the minimization-scheme ladder.

Paper: the neighbor-list mapping (Fig. 8) gives "poor performance"; the
flat pairs-list with host accumulation (Fig. 9) gives ~3x; the split
pairs-lists + assignment tables (Figs. 10-11) give the production 12.5x.

Real measurement: the split-scheme numeric path (pair energies routed
through the actual assignment tables) at paper scale.
"""


from repro.cuda.device import Device
from repro.gpu.minimize_kernels import GpuMinimizationEngine, GpuMinimizationScheme
from repro.perf.speedup import scheme_ladder


def test_minimization_scheme_ladder(benchmark, bench_energy_model, print_comparison):
    model = bench_energy_model
    engine = GpuMinimizationEngine(
        Device(), model, GpuMinimizationScheme.SPLIT_ASSIGNMENT
    )
    coords = model.molecule.coords

    benchmark(engine.per_atom_nonbonded, coords)

    rows, times = scheme_ladder(model=model)
    print_comparison("Sec. IV — minimization scheme ladder", rows)

    serial = times["serial"]
    assert serial / times["C-split-assignment"] >= 9          # paper 12.5x
    assert 2.0 <= serial / times["B-flat-pairs"] <= 4.5       # paper ~3x
    # Scheme A is the worst GPU mapping by a wide margin ("poor performance
    # and is not preferred"): at least 3x slower than the production scheme
    # and behind the flat pairs-list too.
    assert times["A-neighbor-list"] > 3 * times["C-split-assignment"]
    assert times["A-neighbor-list"] > times["B-flat-pairs"]
