"""E-min — ensemble batching of the minimization phase (PR 2's artifact).

Mirror of ``test_batching_speedup.py`` one pipeline phase later: the paper
batches rotations through one docking kernel launch (Sec. III.A); this
repo's minimization engine batches conformations through one vectorized
energy evaluation.  Two real wall-clock ratios on a real FTMap-scale
ensemble (>= 12 poses of one receptor+probe complex):

* **production config** — the fp32 batched path (the paper's GPU arithmetic,
  like the docking benchmark's fp32 batched-FFT engine) against the fp64
  serial per-pose loop, asserted at >= 1.2x,
* **pure batching (fp64)** — same arithmetic width as serial, isolating
  dispatch amortization; asserted >= 0.85x, the ratio itself reported for
  the nightly artifact.

Re-baselined by the serial-floor raw-speed pass: the serial loop now uses
the same energies-only line-search fast path the batched minimizer always
had (bitwise-identical results, ~1.25x faster serial iterations), so both
ratios measured against it dropped and the floors were deliberately
re-recorded (1.5 -> 1.2, 1.0 -> 0.85).  The old floors are kept as PREV_*
constants and the old->new deltas are printed with the measurements, so the
perf trajectory stays auditable from the nightly artifact alone.

Double-precision equivalence (bitwise-level agreement with the serial
minimizer) is asserted in ``tests/test_minimize_batched.py``; here we only
re-check that the timed runs produced matching refinements.
"""

import time

import numpy as np
import pytest

from repro.minimize import (
    BatchedMinimizer,
    EnergyModel,
    EnsembleEnergyModel,
    Minimizer,
    MinimizerConfig,
)
from repro.perf.tables import ComparisonRow
from repro.structure import synthetic_complex
from repro.structure.builder import pocket_movable_mask

#: FTMap retains >= 12 conformations per probe at interactive scale
#: (minimize_top); the paper-scale phase refines 2000.
N_POSES = 16

#: The batched production config (fp32 ensemble arithmetic) must beat the
#: fp64 serial per-pose loop by at least this much (acceptance floor;
#: measured ~1.35-1.4x single-core at this complex size against the
#: fast-path serial loop — ~1.8-2.2x against the historical serial loop,
#: which the PREV_ floor below recorded).
MIN_BATCHED_MINIMIZATION_SPEEDUP = 1.2
PREV_MIN_BATCHED_MINIMIZATION_SPEEDUP = 1.5

#: Like-for-like fp64 guard.  With serial and batched line searches now
#: using the same energies-only fast path, fp64 batching's only remaining
#: edge is dispatch amortization; at this complex size the measured ratio
#: is ~1.0, so the floor guards against batching *regressing* below 0.85,
#: not for a win that arithmetic parity no longer implies.
MIN_PURE_BATCHING_SPEEDUP = 0.85
PREV_MIN_PURE_BATCHING_SPEEDUP = 1.0

ITERATIONS = 20


@pytest.fixture(scope="module")
def workload():
    """(molecule, stack, masks): a >= 12-pose ensemble of one complex."""
    mol = synthetic_complex(probe_name="ethanol", n_residues=40, seed=3)
    n_probe = mol.meta["n_probe_atoms"]
    rng = np.random.default_rng(5)
    stack = np.stack([mol.coords.copy() for _ in range(N_POSES)])
    for k in range(N_POSES):
        stack[k, -n_probe:] += rng.normal(scale=0.3, size=(n_probe, 3))
    masks = np.stack(
        [
            pocket_movable_mask(mol.with_coords(stack[k]), n_probe)
            for k in range(N_POSES)
        ]
    )
    return mol, stack, masks


def _best_of(fn, repeats=3):
    times = []
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        times.append(time.perf_counter() - t0)
    return min(times)


def test_minimization_batching_speedup(workload, print_comparison):
    mol, stack, masks = workload
    cfg = MinimizerConfig(max_iterations=ITERATIONS)

    serial_models = [EnergyModel(mol, movable=masks[k]) for k in range(N_POSES)]
    em_fp32 = EnsembleEnergyModel(mol, stack, movable=masks, precision="single")
    em_fp64 = EnsembleEnergyModel(mol, stack, movable=masks, precision="double")

    # Warm the pair structures (built once per pose in both paths; iteration
    # counts below stay under the refresh check interval, so the timed runs
    # do identical work on identical lists every repeat).
    for k in range(N_POSES):
        serial_models[k].neighbor_list(stack[k])
    em_fp32.pose_pair_counts()
    em_fp64.pose_pair_counts()

    def serial_loop():
        return [
            Minimizer(serial_models[k], config=cfg).run(coords=stack[k])
            for k in range(N_POSES)
        ]

    t_serial = _best_of(serial_loop)
    t_fp32 = _best_of(lambda: BatchedMinimizer(em_fp32, cfg).run())
    t_fp64 = _best_of(lambda: BatchedMinimizer(em_fp64, cfg).run())
    speedup = t_serial / t_fp32
    speedup_fp64 = t_serial / t_fp64

    print_comparison(
        "Minimization ensemble batching — wall clock "
        f"({N_POSES} poses x {ITERATIONS} iterations)",
        [
            ComparisonRow("serial loop (ms/pose)", None, t_serial / N_POSES * 1e3),
            ComparisonRow("batched fp32 (ms/pose)", None, t_fp32 / N_POSES * 1e3),
            ComparisonRow("batched fp64 (ms/pose)", None, t_fp64 / N_POSES * 1e3),
            ComparisonRow("batched speedup (production fp32)", None, speedup, "x"),
            ComparisonRow("pure-batching (fp64) speedup", None, speedup_fp64, "x"),
            # Re-baselining audit trail: reference column = old floor,
            # measured column = the floor now enforced.
            ComparisonRow(
                "gate floor: batched fp32 (old -> new)",
                PREV_MIN_BATCHED_MINIMIZATION_SPEEDUP,
                MIN_BATCHED_MINIMIZATION_SPEEDUP,
                "x",
            ),
            ComparisonRow(
                "gate floor: pure batching fp64 (old -> new)",
                PREV_MIN_PURE_BATCHING_SPEEDUP,
                MIN_PURE_BATCHING_SPEEDUP,
                "x",
            ),
        ],
    )
    assert speedup >= MIN_BATCHED_MINIMIZATION_SPEEDUP
    assert speedup_fp64 >= MIN_PURE_BATCHING_SPEEDUP

    # The timed configurations refine to the same energies: fp64 exactly,
    # fp32 to single-precision tolerance.
    serial_res = serial_loop()
    fp64_res = BatchedMinimizer(em_fp64, cfg).run()
    fp32_res = BatchedMinimizer(em_fp32, cfg).run()
    for s, b64, b32 in zip(serial_res, fp64_res, fp32_res):
        assert b64.energy == pytest.approx(s.energy, rel=1e-10)
        assert b32.energy == pytest.approx(s.energy, rel=5e-3)


def test_active_set_masking_skips_converged_poses(workload):
    """Late iterations only evaluate unconverged poses: a loosely-converged
    ensemble finishes in fewer evaluations than poses x iterations."""
    mol, stack, masks = workload
    evaluated = []
    cfg = MinimizerConfig(max_iterations=40, tolerance=5.0)
    model = EnsembleEnergyModel(mol, stack, movable=masks)
    BatchedMinimizer(model, cfg).run(
        callback=lambda it, rep: evaluated.append(rep.n_poses)
    )
    assert evaluated[-1] <= N_POSES
    assert min(evaluated) < N_POSES   # somebody converged early and dropped out
