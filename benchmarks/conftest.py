"""Shared benchmark fixtures: real small-scale workloads + model helpers.

Every benchmark module regenerates one paper artifact (see DESIGN.md
experiment index): it *measures* the real algorithms at laptop scale with
pytest-benchmark, and *prints* the paper-vs-model comparison at the paper's
N=128 scale (the numbers archived in EXPERIMENTS.md).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.grids.energyfunctions import protein_grids
from repro.grids.gridding import GridSpec
from repro.grids.rotation import ligand_grid_spec, rotate_and_grid_ligand
from repro.minimize import EnergyModel
from repro.structure import build_probe, synthetic_complex, synthetic_protein
from repro.structure.builder import pocket_movable_mask


def _print_rows(title, rows):
    from repro.perf.tables import render_table

    print()
    print(render_table(title, rows))


@pytest.fixture(scope="session")
def print_comparison():
    return _print_rows


@pytest.fixture(scope="session")
def bench_protein():
    return synthetic_protein(n_residues=60, seed=3)


@pytest.fixture(scope="session")
def bench_probe():
    return build_probe("ethanol")


@pytest.fixture(scope="session")
def bench_receptor_grids(bench_protein):
    spec = GridSpec.centered_on(bench_protein, n=48, spacing=1.25)
    return protein_grids(bench_protein, spec, n_desolvation_terms=4)


@pytest.fixture(scope="session")
def bench_ligand_grids(bench_probe):
    spec = ligand_grid_spec(bench_probe, n=4, spacing=1.25)
    return rotate_and_grid_ligand(bench_probe, np.eye(3), spec, n_desolvation_terms=4)


@pytest.fixture(scope="session")
def bench_energy_model():
    mol = synthetic_complex(n_residues=344, seed=7)  # paper scale: ~2200 atoms
    mask = pocket_movable_mask(mol, mol.meta["n_probe_atoms"])
    model = EnergyModel(mol, movable=mask)
    model.neighbor_list()  # build once outside the timed region
    return model
