"""E8 — Sec. V.B/V.C: phase and end-to-end speedups.

Paper: minimization 400 -> 32 min (12.5x); whole probe 435 -> 33 min (13x).

Real measurement: a complete scaled-down minimization run (the unit repeated
2000x per probe).
"""


from repro.minimize import Minimizer, MinimizerConfig
from repro.perf.speedup import overall_speedup


def test_overall_speedup(benchmark, bench_energy_model, print_comparison):
    model = bench_energy_model

    def run_minimization():
        return Minimizer(model, config=MinimizerConfig(max_iterations=5)).run()

    result = benchmark.pedantic(run_minimization, rounds=3, iterations=1)
    assert result.energy <= result.initial_energy

    rows, ours = overall_speedup()
    print_comparison("Sec. V — overall speedup roll-up (per probe)", rows)

    assert 10 <= ours["minimization_speedup"] <= 15    # paper 12.5x
    assert 10 <= ours["overall_speedup"] <= 16         # paper 13x
    assert 350 <= ours["serial_total_min"] <= 520      # paper 435 min
    assert 25 <= ours["gpu_total_min"] <= 42           # paper 33 min
    benchmark.extra_info["overall_speedup"] = ours["overall_speedup"]
