"""E6 — Table 1: per-rotation rigid-docking speedups.

Paper (serial ms -> GPU ms, speedup): rotation+grid 80 -> 80 (1x),
correlations 3600 -> 13.5 (267x), accumulation 180 -> 1 (180x), scoring +
filtering 200 -> 30 (6.67x); total 4060 -> 125.5 (32.6x).

Real measurement: the direct-correlation kernel the GPU path executes.
Model output: the full Table 1 at N=128 / m=4 / 22 channels.
"""

import pytest

from repro.docking.direct import DirectCorrelationEngine
from repro.perf.speedup import table1_docking_speedups


def test_table1_docking_speedups(
    benchmark, bench_receptor_grids, bench_ligand_grids, print_comparison
):
    engine = DirectCorrelationEngine()
    benchmark(engine.correlate, bench_receptor_grids, bench_ligand_grids)

    rows, ours = table1_docking_speedups()
    print_comparison("Table 1 — rigid-docking speedups (per rotation)", rows)

    assert 180 <= ours["correlation"] <= 330            # paper 267x
    assert 70 <= ours["accumulation"] <= 260            # paper 180x
    assert 4 <= ours["scoring_filtering"] <= 12         # paper 6.67x
    assert 26 <= ours["total"] <= 40                    # paper 32.6x
    assert ours["rotation_grid"] == pytest.approx(1.0)  # host step
    # Serial/GPU absolute bands
    assert 3200 <= ours["serial_total_ms"] <= 4900      # paper 4060 ms
    assert 95 <= ours["gpu_total_ms"] <= 155            # paper 125.5 ms
    benchmark.extra_info["total_speedup"] = ours["total"]
