"""E10 — Sec. III: direct vs FFT correlation crossover.

Paper: "if the ligand grid is smaller than a certain size, direct
correlation can perform better than FFT correlation, especially if multiple
correlations are to be performed" (citing [15][16]); FTMap probes (<= 4^3)
sit far below the crossover.

Real measurement: both engines on real grids at the probe size, verifying
direct wins where the paper says it does, plus the modeled crossover sweep.
"""

import time

from repro.docking.direct import DirectCorrelationEngine
from repro.docking.fft import FFTCorrelationEngine
from repro.docking.selection import select_backend
from repro.perf.cpumodel import CpuModel
from repro.perf.tables import ComparisonRow


def test_direct_vs_fft_crossover(
    benchmark, bench_receptor_grids, bench_ligand_grids, print_comparison
):
    direct = DirectCorrelationEngine()
    fft = FFTCorrelationEngine()

    benchmark(direct.correlate, bench_receptor_grids, bench_ligand_grids)

    # Real head-to-head at the probe size (warm receptor-spectrum cache to
    # match PIPER, which transforms the protein once).
    fft.correlate(bench_receptor_grids, bench_ligand_grids)
    t0 = time.perf_counter()
    for _ in range(3):
        direct.correlate(bench_receptor_grids, bench_ligand_grids)
    t_direct = (time.perf_counter() - t0) / 3
    t0 = time.perf_counter()
    for _ in range(3):
        fft.correlate(bench_receptor_grids, bench_ligand_grids)
    t_fft = (time.perf_counter() - t0) / 3

    # Modeled crossover sweep at paper scale (N=128, 22 channels).
    cpu = CpuModel()
    rows = [
        ComparisonRow("measured direct/fft time at m=4", None, t_direct / t_fft)
    ]
    crossover = None
    fft_s = cpu.fft_correlation_s(128, 22)
    for m in (2, 4, 6, 8, 10, 12, 16):
        d = cpu.direct_correlation_s(128, m, 22)
        rows.append(ComparisonRow(f"model direct/fft at m={m}", None, d / fft_s))
        if crossover is None and d > fft_s:
            crossover = m
    print_comparison("Sec. III — direct vs FFT crossover", rows)

    assert t_direct < t_fft            # real: direct wins at probe size
    assert cpu.direct_correlation_s(128, 4, 22) < fft_s
    assert crossover is not None and 6 <= crossover <= 12

    # The selection layer reproduces the crossover: below it the auto
    # backend is direct, well above it an FFT path wins.
    below = select_backend(n=128, m=2, channels=22, num_rotations=500)
    above = select_backend(n=128, m=16, channels=22, num_rotations=500)
    assert below.backend == "direct"
    assert above.backend in ("fft", "batched-fft")
