"""E1 — Figure 2(a): FTMap runtime split (7% docking / 93% minimization).

Real measurement: one serial energy-evaluation iteration at paper scale
(the unit the minimization phase repeats ~2.3M times per probe).
Model output: the phase split at the paper's full workload.
"""


from repro.perf.profiles import ftmap_profile
from repro.perf.tables import ComparisonRow

PAPER_MINIMIZATION_FRACTION = 0.93
PAPER_DOCKING_FRACTION = 0.07


def test_fig2a_profile_shape(benchmark, bench_energy_model, print_comparison):
    model = bench_energy_model
    coords = model.molecule.coords

    # Real per-iteration energy evaluation (the repeated unit of the 93%).
    benchmark(model.evaluate, coords)

    profile = ftmap_profile()
    rows = [
        ComparisonRow(
            "energy minimization fraction",
            PAPER_MINIMIZATION_FRACTION,
            profile["energy_minimization"],
        ),
        ComparisonRow(
            "rigid docking fraction",
            PAPER_DOCKING_FRACTION,
            profile["rigid_docking"],
        ),
    ]
    print_comparison("Fig. 2(a) — FTMap phase profile", rows)

    assert 0.88 <= profile["energy_minimization"] <= 0.97
    assert 0.03 <= profile["rigid_docking"] <= 0.12
    benchmark.extra_info["minimization_fraction"] = profile["energy_minimization"]
