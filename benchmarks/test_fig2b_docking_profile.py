"""E2 — Figure 2(b): per-rotation docking time distribution.

Paper: ~93% FFT correlations, ~2.3% rotation + grid assignment, ~2.4%
accumulation, ~2.3% scoring & filtering (Table 1's own entries give
3600/80/180/200 of 4060 ms).

Real measurement: one full FFT-correlation rotation at 48^3 scale.
"""


from repro.docking.fft import FFTCorrelationEngine
from repro.perf.profiles import docking_profile
from repro.perf.tables import ComparisonRow

PAPER = {
    "fft_correlations": 3600.0 / 4060.0,
    "rotation_grid_assignment": 80.0 / 4060.0,
    "accumulation": 180.0 / 4060.0,
    "scoring_filtering": 200.0 / 4060.0,
}


def test_fig2b_docking_profile(
    benchmark, bench_receptor_grids, bench_ligand_grids, print_comparison
):
    engine = FFTCorrelationEngine()

    # Real measurement: the dominant step (all channels, one rotation).
    benchmark(engine.correlate, bench_receptor_grids, bench_ligand_grids)

    profile = docking_profile()
    rows = [
        ComparisonRow(f"{key} fraction", PAPER[key], profile[key])
        for key in PAPER
    ]
    print_comparison("Fig. 2(b) — per-rotation docking profile", rows)

    assert 0.85 <= profile["fft_correlations"] <= 0.95
    for key in ("rotation_grid_assignment", "accumulation", "scoring_filtering"):
        assert 0.01 <= profile[key] <= 0.06
