"""E9 — Sec. V.A/V.C: GPU PIPER vs the quad-core multicore versions.

Paper: GPU speedup is 11x vs FFT-based multicore PIPER, 6x vs
direct-correlation multicore PIPER; overall FTMap speedup vs multicore
docking is 12.3x.

Real measurement: multiprocessing docking over rotations (the coarse-grained
parallelism the paper's multicore version uses), checked identical to the
serial run by the test suite.
"""


from repro.docking import PiperConfig
from repro.perf.speedup import multicore_comparison
from repro.util.parallel import multicore_dock_rotations


def test_multicore_comparison(benchmark, bench_protein, bench_probe, print_comparison):
    cfg = PiperConfig(
        num_rotations=4, receptor_grid=32, probe_grid=4, grid_spacing=1.25
    )

    benchmark.pedantic(
        multicore_dock_rotations,
        args=(bench_protein, bench_probe, cfg, [0, 1, 2, 3]),
        kwargs={"processes": 2},
        rounds=2,
        iterations=1,
    )

    rows, ours = multicore_comparison()
    print_comparison("Sec. V.A — multicore comparison", rows)

    assert 8 <= ours["vs_fft_multicore"] <= 14        # paper 11x
    assert 4 <= ours["vs_direct_multicore"] <= 9      # paper 6x
    assert 9 <= ours["overall_vs_multicore"] <= 15    # paper 12.3x
