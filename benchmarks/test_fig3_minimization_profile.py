"""E3 — Figure 3: minimization profile.

(a) ~99% of an iteration is energy/force evaluation;
(b) within energy evaluation: 94.4% electrostatics, 5.38% vdW, 0.2% bonded.

Real measurement: the electrostatics vs vdW split of a real evaluation at
paper scale (~2200 atoms, ~10k pairs).
"""


from repro.perf.profiles import minimization_profile
from repro.perf.tables import ComparisonRow

PAPER_EVAL_FRACTION = 0.9898
PAPER_ELEC = 0.944
PAPER_VDW = 0.0538
PAPER_BONDED = 0.002


def test_fig3_minimization_profile(benchmark, bench_energy_model, print_comparison):
    model = bench_energy_model
    pair_i, pair_j = model.active_pairs()

    # Real measurement: the dominant electrostatics kernel (ACE self).
    from repro.minimize.ace import ace_self_energies

    m = model.molecule
    benchmark(
        ace_self_energies, m.coords, m.charges, m.born_radii, m.volumes, pair_i, pair_j
    )

    profile = minimization_profile()
    it = profile["iteration"]
    ev = profile["energy_evaluation"]
    rows = [
        ComparisonRow("energy evaluation fraction", PAPER_EVAL_FRACTION, it["energy_evaluation"]),
        ComparisonRow("electrostatics fraction", PAPER_ELEC, ev["electrostatics"]),
        ComparisonRow("vdW fraction", PAPER_VDW, ev["vdw"]),
        ComparisonRow("bonded fraction", PAPER_BONDED, ev["bonded"]),
    ]
    print_comparison("Fig. 3 — minimization profile", rows)

    assert it["energy_evaluation"] > 0.95
    assert abs(ev["electrostatics"] - PAPER_ELEC) < 0.03
    assert abs(ev["vdw"] - PAPER_VDW) < 0.02
    assert ev["bonded"] < 0.01
