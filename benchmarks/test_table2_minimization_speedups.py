"""E7 — Table 2: minimization kernel speedups.

Paper (serial ms -> GPU ms, speedup): self energies 6.15 -> 0.23 (26.7x),
pairwise + vdW 3.25 -> 0.19 (17x), force updates 0.95 -> 0.14 (6.7x).
The workload is one iteration: ~10,000 atom-atom computations per term over
a 2200-atom complex.

Real measurement: the pairwise GB + vdW evaluation at paper scale.
"""


from repro.minimize.ace import gb_pairwise_energy
from repro.perf.speedup import table2_minimization_speedups


def test_table2_minimization_speedups(benchmark, bench_energy_model, print_comparison):
    model = bench_energy_model
    m = model.molecule
    pair_i, pair_j = model.active_pairs()
    alphas = m.born_radii  # fixed radii: times the kernel, not the chain

    benchmark(gb_pairwise_energy, m.coords, m.charges, alphas, pair_i, pair_j)

    rows, ours = table2_minimization_speedups()
    print_comparison("Table 2 — minimization kernel speedups (per iteration)", rows)

    assert 18 <= ours["self_energies"] <= 37      # paper 26.7x
    assert 11 <= ours["pairwise_vdw"] <= 24       # paper 17x
    assert 4 <= ours["force_updates"] <= 10       # paper 6.7x
    # Absolute GPU kernel times land in the paper's band (+-35%).
    assert 0.15 <= ours["self_energies_gpu_ms"] <= 0.31     # paper 0.23 ms
    assert 0.12 <= ours["pairwise_vdw_gpu_ms"] <= 0.26      # paper 0.19 ms
    assert 0.09 <= ours["force_updates_gpu_ms"] <= 0.19     # paper 0.14 ms
    benchmark.extra_info["self_energy_speedup"] = ours["self_energies"]
