"""Observability overhead gate (the telemetry PR's artifact).

The telemetry layer (:mod:`repro.obs`) promises to be effectively free:
metrics are a handful of atomic counter updates per run boundary, and a
*traced* request adds ~a dozen span records to work that grids and
minimizes thousands of poses.  Two hard assertions:

* **enabled <= 5% on a warm map** — the most overhead-sensitive request
  there is: every heavy artifact comes from the memory cache, so stage
  work is minimal and instrumentation cost is at its *largest* relative
  share.  With tracing on and metrics recording, the warm repeat must
  stay within 5% of the fully-disabled wall clock (best-of-N,
  interleaved so clock drift hits both arms alike).
* **disabled bitwise-identical** — a traced+metered run and a fully
  disabled run (``set_metrics_enabled(False)``, no tracing) must produce
  bitwise-identical poses, energies and centers: telemetry observes the
  pipeline, it never perturbs it.

The traced run's span document is archived as ``sample-trace.json``
(Chrome trace-event format — drop it into ``chrome://tracing`` or
Perfetto) next to the gate-floor audit trail in the nightly artifact.
"""

import json
import time

import numpy as np

import pytest

from repro.api import FTMapService
from repro.cache import reset_cache_registry
from repro.mapping.ftmap import FTMapConfig
from repro.obs.metrics import set_metrics_enabled
from repro.obs.trace import check_trace, chrome_trace
from repro.perf.tables import ComparisonRow
from repro.structure import synthetic_protein

#: Enabled-over-disabled overhead ceiling on the warm map (acceptance
#: gate; measured well under this — the instrumented work is ~µs against
#: a ~10s-of-ms request).
MAX_ENABLED_OVERHEAD = 0.05
#: New gate in the telemetry PR.
PREV_MAX_ENABLED_OVERHEAD = 0.05

#: Timed rounds per arm (min taken; interleaved).
ROUNDS = 5


@pytest.fixture(autouse=True)
def _clean_state():
    """Fresh cache registry, metrics recording restored afterwards."""
    reset_cache_registry()
    prev = set_metrics_enabled(True)
    yield
    set_metrics_enabled(prev)
    reset_cache_registry()


def _workload():
    protein = synthetic_protein(n_residues=60, seed=3)
    config = dict(
        probe_names=("ethanol", "acetone"),
        num_rotations=32,
        receptor_grid=40,
        grid_spacing=1.25,
        minimize_top=2,
        minimizer_iterations=3,
        engine="fft",
    )
    return protein, config


def _probe_outputs(result):
    out = {}
    for name, pr in result.probe_results.items():
        out[name] = (
            [(p.rotation_index, p.translation, p.score) for p in pr.docked_poses],
            pr.minimized_energies.copy(),
            pr.minimized_centers.copy(),
        )
    return out


def test_observability_overhead_gate(print_comparison):
    protein, config = _workload()
    cfg_plain = FTMapConfig(**config, cache_policy="memory")
    cfg_traced = FTMapConfig(**config, cache_policy="memory", tracing=True)

    with FTMapService() as service:
        # Cold fill (untimed): both arms below repeat against a warm
        # cache — the config hash excludes `tracing` by construction, so
        # traced and plain requests share the same artifacts.
        service.map(protein, cfg_plain, streaming="sequential")

        t_disabled = float("inf")
        t_enabled = float("inf")
        trace_doc = None
        for _ in range(ROUNDS):
            set_metrics_enabled(False)
            t0 = time.perf_counter()
            service.map(protein, cfg_plain, streaming="sequential")
            t_disabled = min(t_disabled, time.perf_counter() - t0)

            set_metrics_enabled(True)
            t0 = time.perf_counter()
            mapped = service.map(protein, cfg_traced, streaming="sequential")
            t_enabled = min(t_enabled, time.perf_counter() - t0)
            trace_doc = mapped.trace

    overhead = t_enabled / t_disabled - 1.0
    print_comparison(
        "Telemetry overhead — warm mapping wall clock "
        f"({len(cfg_plain.probe_names)} probes, best of {ROUNDS})",
        [
            ComparisonRow("obs disabled (s)", None, t_disabled),
            ComparisonRow("traced + metered (s)", None, t_enabled),
            ComparisonRow("overhead", None, overhead * 100.0, "%"),
            ComparisonRow("spans recorded", None, len(trace_doc["spans"])),
            ComparisonRow(
                "gate floor: obs overhead (old -> new)",
                PREV_MAX_ENABLED_OVERHEAD,
                MAX_ENABLED_OVERHEAD,
                "x",
            ),
        ],
    )

    # Archive the real trace for the nightly artifact: directly loadable
    # in chrome://tracing / Perfetto.
    check_trace(trace_doc)
    with open("sample-trace.json", "w") as fh:
        json.dump(chrome_trace(trace_doc), fh, indent=1)

    assert trace_doc["spans"], "traced warm map recorded no spans"
    assert overhead <= MAX_ENABLED_OVERHEAD


def test_disabled_observability_is_bitwise_invisible():
    """Cold cache-off runs: traced+metered vs fully disabled agree bitwise."""
    protein, config = _workload()
    config = dict(config, num_rotations=8)

    with FTMapService() as service:
        set_metrics_enabled(False)
        r_off = service.map(
            protein, FTMapConfig(**config, cache_policy="off")
        ).result
        set_metrics_enabled(True)
        mapped = service.map(
            protein, FTMapConfig(**config, cache_policy="off", tracing=True)
        )
        r_on = mapped.result

    assert mapped.trace is not None
    out_off, out_on = _probe_outputs(r_off), _probe_outputs(r_on)
    for name in out_off:
        assert out_off[name][0] == out_on[name][0]               # poses
        assert np.array_equal(out_off[name][1], out_on[name][1])  # energies
        assert np.array_equal(out_off[name][2], out_on[name][2])  # centers
