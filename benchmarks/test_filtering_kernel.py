"""E12 — Figs. 5-6: on-GPU scoring + filtering.

Paper: filtering on one multiprocessor yields a modest 6.67x (Table 1) but
avoids shipping the whole score grid over PCIe — only the top-k poses cross
(vs the 125^3 float grid, ~8 MB saved per rotation).

Real measurement: the exclusion-filtering reference algorithm on a
paper-sized result grid.
"""

import numpy as np

from repro.cuda.device import Device
from repro.docking.filtering import filter_top_poses
from repro.gpu.scoring_kernel import d2h_savings_bytes, gpu_score_and_filter
from repro.perf.tables import ComparisonRow


def test_filtering_kernel(benchmark, print_comparison):
    rng = np.random.default_rng(12)
    grid = rng.normal(size=(64, 64, 64))

    poses = benchmark(filter_top_poses, grid, 4, 3)
    assert len(poses) == 4

    # GPU path equals the serial reference and saves the grid transfer.
    dev = Device()
    res = gpu_score_and_filter(dev, grid, k=4)
    assert [(p.translation, p.score) for p in res.poses] == [
        (p.translation, p.score) for p in poses
    ]

    paper_saved = 125**3 * 4 - 4 * 16
    rows = [
        ComparisonRow("D2H bytes saved per rotation (N=128)", float(paper_saved),
                      float(d2h_savings_bytes(125**3, 4))),
        ComparisonRow("kernel time on 1 SM (ms)", 30.0, res.predicted_kernel_time_s * 1e3 * (125**3 / 64**3)),
    ]
    print_comparison("Figs. 5-6 — on-GPU filtering", rows)

    assert d2h_savings_bytes(125**3, 4) == paper_saved
    # Exclusion invariant on the benchmarked grid.
    for i in range(len(poses)):
        for j in range(i + 1, len(poses)):
            cheb = max(
                abs(a - b) for a, b in zip(poses[i].translation, poses[j].translation)
            )
            assert cheb > 3
