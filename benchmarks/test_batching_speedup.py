"""E5 — Sec. III.A: multi-rotation batching.

Paper: "For 4^3-sized probe grids, we can perform 8 rotations in each pass,
achieving a speedup of 2.7x over direct correlation performed one rotation
at a time."  The batch cap of 8 falls out of the 64 KB constant memory.

Two real measurements on real grids:

* the GPU-model constant-memory batching sweep (the paper's artifact),
* the host batched-FFT path (`repro.docking.batched`) against the serial
  per-rotation FFT loop — the reproduction's own batching win, asserted at
  >= 1.5x wall-clock.
"""

import time

import numpy as np

from repro.cuda.device import Device
from repro.docking.batched import BatchedFFTCorrelationEngine
from repro.docking.fft import FFTCorrelationEngine
from repro.geometry.rotations import rotation_matrix_axis_angle
from repro.gpu.batching import gpu_batched_correlation, max_batch_rotations
from repro.grids.rotation import ligand_grid_spec, rotate_and_grid_ligand
from repro.perf.speedup import batching_sweep
from repro.perf.tables import ComparisonRow

PAPER_BATCH_SPEEDUP = 2.7
PAPER_BATCH_SIZE = 8

#: The batched host path (production config: fp32, like the paper's GPU)
#: must beat the per-rotation fp64 loop by at least this much (acceptance
#: floor; measured ~2.5-2.8x single-core).
MIN_BATCHED_FFT_SPEEDUP = 1.5
#: Unchanged by the serial-floor re-baselining pass (the docking serial
#: reference does not use the minimization kernels); re-measured ~2.2x.
PREV_MIN_BATCHED_FFT_SPEEDUP = 1.5

#: Pure-batching guard: same precision (fp64), same worker count — isolates
#: rotation stacking + staged zero-padded forwards from the fp32 win.
#: Measured 1.1-1.5x single-core depending on load; asserted only as
#: "never slower", the ratio itself is reported for the nightly artifact.
MIN_PURE_BATCHING_SPEEDUP = 1.0
PREV_MIN_PURE_BATCHING_SPEEDUP = 1.0


def _rotation_grids(probe, count, n=4, spacing=1.25):
    spec = ligand_grid_spec(probe, n=n, spacing=spacing)
    mats = [
        rotation_matrix_axis_angle(np.array([0.0, 0.3, 1.0]), a)
        for a in np.linspace(0, 2.5, count)
    ]
    return [
        rotate_and_grid_ligand(probe, R, spec, n_desolvation_terms=4) for R in mats
    ]


def test_batching_speedup(benchmark, bench_receptor_grids, bench_probe, print_comparison):
    rotations = _rotation_grids(bench_probe, 4)

    benchmark(gpu_batched_correlation, Device(), bench_receptor_grids, rotations)

    # Constant-memory cap reproduces the paper's batch of 8.
    assert max_batch_rotations(4, 22) == PAPER_BATCH_SIZE

    rows, times = batching_sweep(batches=(1, 2, 4, 8))
    print_comparison("Sec. III.A — rotation batching", rows)
    speedup = times[1] / times[8]
    assert 2.2 <= speedup <= 3.3  # paper: 2.7x


def test_batched_fft_wallclock_speedup(
    bench_receptor_grids, bench_probe, print_comparison
):
    """Real wall-clock: batched-FFT path vs the per-rotation FFT loop.

    Both engines are pinned to one FFT worker thread so the comparison
    isolates the batched path's restructuring from thread fan-out.  Two
    ratios are asserted: the production config (fp32 batched vs the fp64
    serial loop — precision is part of the batched path's design, matching
    the paper's fp32 GPU arithmetic), and a like-for-like fp64 ratio that
    measures rotation stacking + staged zero-padded forwards alone.
    """
    rotations = _rotation_grids(bench_probe, 16)
    serial = FFTCorrelationEngine(workers=1)
    batched = BatchedFFTCorrelationEngine(workers=1)
    batched_fp64 = BatchedFFTCorrelationEngine(workers=1, precision="double")

    # Warm the receptor-spectrum caches (PIPER transforms the protein once).
    serial.correlate(bench_receptor_grids, rotations[0])
    batched.correlate_batch(bench_receptor_grids, rotations[:2])
    batched_fp64.correlate_batch(bench_receptor_grids, rotations[:2])

    def best_of(fn, repeats=5):
        times = []
        for _ in range(repeats):
            t0 = time.perf_counter()
            fn()
            times.append(time.perf_counter() - t0)
        return min(times)

    t_loop = best_of(
        lambda: [serial.correlate(bench_receptor_grids, lg) for lg in rotations]
    )
    t_batched = best_of(
        lambda: batched.correlate_batch(bench_receptor_grids, rotations)
    )
    t_batched_fp64 = best_of(
        lambda: batched_fp64.correlate_batch(bench_receptor_grids, rotations)
    )
    speedup = t_loop / t_batched
    speedup_fp64 = t_loop / t_batched_fp64

    print_comparison(
        "Batched FFT path — wall clock",
        [
            ComparisonRow("per-rotation loop (ms/rotation)", None, t_loop / 16 * 1e3),
            ComparisonRow("batched path (ms/rotation)", None, t_batched / 16 * 1e3),
            ComparisonRow("batched-FFT speedup", None, speedup, "x"),
            ComparisonRow("pure-batching (fp64) speedup", None, speedup_fp64, "x"),
            # Floor audit rows (reference = previous floor, measured = the
            # floor enforced now) — collected into the nightly artifact.
            ComparisonRow(
                "gate floor: batched FFT (old -> new)",
                PREV_MIN_BATCHED_FFT_SPEEDUP,
                MIN_BATCHED_FFT_SPEEDUP,
                "x",
            ),
            ComparisonRow(
                "gate floor: pure batching (old -> new)",
                PREV_MIN_PURE_BATCHING_SPEEDUP,
                MIN_PURE_BATCHING_SPEEDUP,
                "x",
            ),
        ],
    )
    assert speedup >= MIN_BATCHED_FFT_SPEEDUP
    assert speedup_fp64 >= MIN_PURE_BATCHING_SPEEDUP

    # Identical top pose: argmin of the score grids must agree pose-for-pose.
    ref = serial.correlate(bench_receptor_grids, rotations[0])
    got = batched.correlate_batch(bench_receptor_grids, rotations[:1])[0]
    assert np.unravel_index(np.argmin(ref), ref.shape) == np.unravel_index(
        np.argmin(got), got.shape
    )
