"""E5 — Sec. III.A: multi-rotation constant-memory batching.

Paper: "For 4^3-sized probe grids, we can perform 8 rotations in each pass,
achieving a speedup of 2.7x over direct correlation performed one rotation
at a time."  The batch cap of 8 falls out of the 64 KB constant memory.

Real measurement: a 4-rotation batched correlation on real grids.
"""

import numpy as np
import pytest

from repro.cuda.device import Device
from repro.geometry.rotations import rotation_matrix_axis_angle
from repro.gpu.batching import gpu_batched_correlation, max_batch_rotations
from repro.grids.rotation import ligand_grid_spec, rotate_and_grid_ligand
from repro.perf.speedup import batching_sweep
from repro.perf.tables import ComparisonRow

PAPER_BATCH_SPEEDUP = 2.7
PAPER_BATCH_SIZE = 8


def test_batching_speedup(benchmark, bench_receptor_grids, bench_probe, print_comparison):
    spec = ligand_grid_spec(bench_probe, n=4, spacing=1.25)
    mats = [
        rotation_matrix_axis_angle(np.array([0.0, 0.3, 1.0]), a)
        for a in np.linspace(0, 2.5, 4)
    ]
    rotations = [
        rotate_and_grid_ligand(bench_probe, R, spec, n_desolvation_terms=4)
        for R in mats
    ]

    benchmark(gpu_batched_correlation, Device(), bench_receptor_grids, rotations)

    # Constant-memory cap reproduces the paper's batch of 8.
    assert max_batch_rotations(4, 22) == PAPER_BATCH_SIZE

    rows, times = batching_sweep(batches=(1, 2, 4, 8))
    print_comparison("Sec. III.A — rotation batching", rows)
    speedup = times[1] / times[8]
    assert 2.2 <= speedup <= 3.3  # paper: 2.7x
