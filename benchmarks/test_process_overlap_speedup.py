"""Process worker-pool streaming gate (the GIL-independence PR's artifact).

``streaming="process"`` runs the dock and refine stages in *worker
processes* (:class:`repro.workers.pool.ProcessWorkerPool`), so on a
GIL-bound workload the pipeline schedule is realised with true
parallelism: while probe ``k`` minimizes in one process, probe ``k+1``
docks in another — no interpreter lock couples them.  The thread pipeline
(``streaming="pipeline"``) runs the identical schedule but its stages
contend for one GIL, so a Python-heavy (serial-minimizer) workload gains
little from it.  Two hard assertions:

* **schedule speedup >= 1.4x** — per-probe stage times are *measured* on
  the real stage functions, then the sequential stage-loop sum is
  compared against the two-stage pipeline schedule's makespan
  (:func:`~repro.perf.speedup.pipeline_makespan`) — the schedule the
  worker pool realises GIL-free.  Deterministic on any host; the gate.
* **wall clock >= 1.4x over the thread pipeline** — the same requests
  through ``service.map`` thread-pipelined vs process-streamed, asserted
  only where worker processes can actually run in parallel (>= 2 usable
  CPUs; CI runners have them, single-core containers skip the wall-clock
  half, never the schedule half).

Plus the invariant that makes process shipping deployable at all: the
process-streamed ``MapResult`` is bitwise-identical to the sequential
one — pose ensembles cross shared memory, values never change.
"""

import os
import time

import numpy as np

from repro.api import FTMapService
from repro.cache import CacheManager, reset_cache_registry
from repro.mapping.ftmap import FTMapConfig, cluster_probe, dock_probe, minimize_poses
from repro.perf.speedup import pipeline_makespan
from repro.perf.tables import ComparisonRow
from repro.structure import build_probe, synthetic_protein
from repro.workers import shm_bytes_in_use

#: Overlap floor of the acceptance gate: the process-streamed multi-probe
#: path must beat the sequential stage loop (schedule, everywhere) and
#: the GIL-bound thread pipeline (wall, multi-core hosts) by this factor.
MIN_PROCESS_SPEEDUP = 1.4
#: First introduction of this gate (no prior floor to re-baseline).
PREV_MIN_PROCESS_SPEEDUP = 1.4


def _usable_cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def _workload():
    """GIL-bound on purpose: the *serial* minimizer spends its time in
    Python-level iteration, so the thread pipeline's stages serialize on
    the interpreter lock while the process pool overlaps them for real.
    Stage-balanced so the schedule has overlap to win (a lopsided
    workload is bounded by its big stage no matter the executor)."""
    protein = synthetic_protein(n_residues=60, seed=3)
    config = FTMapConfig(
        probe_names=(
            "ethanol", "acetone", "urea", "acetonitrile", "benzene", "phenol",
        ),
        num_rotations=48,
        receptor_grid=40,
        grid_spacing=1.25,
        minimize_top=3,
        minimizer_iterations=9,
        engine="fft",
        minimize_engine="serial",
        cache_policy="off",
    )
    return protein, config


def _measure_stage_times(protein, config):
    """Per-probe (dock, refine) wall times on the real stage functions."""
    times = []
    for name in config.probe_names:
        probe = build_probe(name)
        t0 = time.perf_counter()
        run = dock_probe(protein, probe, config)
        t_dock = time.perf_counter() - t0
        t0 = time.perf_counter()
        _, centers, energies, _ = minimize_poses(
            protein, probe, run.poses, config
        )
        cluster_probe(centers, energies, config)
        t_refine = time.perf_counter() - t0
        times.append([t_dock, t_refine])
    return times


def _probe_outputs(result):
    out = {}
    for name, pr in result.probe_results.items():
        out[name] = (
            [(p.rotation_index, p.translation, p.score) for p in pr.docked_poses],
            pr.minimized_energies.copy(),
            pr.minimized_centers.copy(),
        )
    return out


def test_process_overlap_speedup(print_comparison):
    reset_cache_registry()
    protein, config = _workload()

    # Warm the process (spectra cache, imports, allocator) so the timed
    # stage measurements see steady-state per-probe costs.
    _measure_stage_times(protein, config)
    stage_times = _measure_stage_times(protein, config)

    sequential_s = sum(sum(row) for row in stage_times)
    makespan_s = pipeline_makespan(stage_times)
    schedule_speedup = sequential_s / makespan_s
    dock_total = sum(row[0] for row in stage_times)
    refine_total = sum(row[1] for row in stage_times)

    # Bitwise identity + wall clock through the service front door.
    with FTMapService(cache=CacheManager(policy="off")) as service:
        fingerprint = service.register_receptor(protein)
        seq = service.map(fingerprint, config, streaming="sequential")
        t0 = time.perf_counter()
        pipe = service.map(fingerprint, config, streaming="pipeline")
        t_pipe = time.perf_counter() - t0
        t0 = time.perf_counter()
        proc = service.map(fingerprint, config, streaming="process")
        t_proc = time.perf_counter() - t0
    wall_speedup = t_pipe / t_proc
    assert proc.streaming == "process"
    assert shm_bytes_in_use() == 0        # every segment unlinked again

    cpus = _usable_cpus()
    print_comparison(
        "Process worker streaming — GIL-free stage overlap vs thread pipeline "
        f"({len(config.probe_names)} probes x {config.num_rotations} rotations, "
        "serial minimizer)",
        [
            ComparisonRow("dock stage total (s)", None, dock_total),
            ComparisonRow("refine stage total (s)", None, refine_total),
            ComparisonRow("sequential stage loop (s)", None, sequential_s),
            ComparisonRow("process schedule makespan (s)", None, makespan_s),
            ComparisonRow("schedule speedup", None, schedule_speedup, "x"),
            ComparisonRow("wall thread-pipelined (s)", None, t_pipe),
            ComparisonRow("wall process-streamed (s)", None, t_proc),
            ComparisonRow(
                f"wall speedup vs threads ({cpus} usable cpu(s))",
                None, wall_speedup, "x",
            ),
            # Floor audit row (reference = previous floor, measured = the
            # floor enforced now) — collected into the nightly artifact.
            ComparisonRow(
                "gate floor: process overlap (old -> new)",
                PREV_MIN_PROCESS_SPEEDUP,
                MIN_PROCESS_SPEEDUP,
                "x",
            ),
        ],
    )

    # Gate 1 (every host): the pipeline schedule the worker pool realises
    # GIL-free must clear the floor over the measured sequential loop.
    assert schedule_speedup >= MIN_PROCESS_SPEEDUP

    # Gate 2 (hosts with real parallelism, e.g. the CI runners): the
    # process pool must beat the GIL-bound thread pipeline in wall clock.
    if cpus >= 2:
        assert wall_speedup >= MIN_PROCESS_SPEEDUP

    # The invariant that makes process shipping deployable: identical
    # outputs across sequential, thread-pipelined and process-streamed.
    out_seq = _probe_outputs(seq.result)
    for other in (pipe, proc):
        out_other = _probe_outputs(other.result)
        for name in out_seq:
            assert out_seq[name][0] == out_other[name][0]                # poses
            assert np.array_equal(out_seq[name][1], out_other[name][1])  # energies
            assert np.array_equal(out_seq[name][2], out_other[name][2])  # centers
        assert len(seq.sites) == len(other.sites)
        for a, b in zip(seq.sites, other.sites):
            assert np.array_equal(a.center, b.center)
            assert a.best_energy == b.best_energy
