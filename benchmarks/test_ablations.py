"""E13-E17 — design-choice ablations (DESIGN.md Sec. 5).

These sweep the knobs the paper fixes by argument, confirming each argument
quantitatively:

* E13 assignment-table rebuild frequency — "only a few times per 1000
  minimization iterations; thus the transfer time is negligible",
* E14 host vs device accumulation for the flat pairs-list — "this
  accumulation is actually faster on the host",
* E15 desolvation-term count (4..18) — correlation cost scales with the
  channel count; the 22-correlation worst case is the paper's headline,
* E16 receptor-grid scaling — docking time is O(channels x T^3 x m^3) on
  the GPU and O(channels x N^3 log N^3) serially,
* E17 multi-GPU scaling — the paper's stated future work, modeled.
"""

import numpy as np
import pytest

from repro.cuda.device import Device
from repro.gpu.minimize_kernels import GpuMinimizationEngine, GpuMinimizationScheme
from repro.perf.tables import ComparisonRow


def test_e13_table_rebuild_overhead(benchmark, bench_energy_model, print_comparison):
    """Assignment-table rebuild + re-upload amortizes to noise at the
    paper's 'few per 1000 iterations' rate."""
    model = bench_energy_model
    dev = Device()
    engine = GpuMinimizationEngine(dev, model, GpuMinimizationScheme.SPLIT_ASSIGNMENT)

    benchmark.pedantic(engine.refresh_after_list_update, rounds=3, iterations=1)

    iter_time = engine.iteration_timing().total_s
    upload = dev.transfers[-1].predicted_time_s  # one table re-upload
    rows = []
    for rebuilds_per_1000 in (0, 3, 10, 100):
        overhead = rebuilds_per_1000 * upload / (1000 * iter_time)
        rows.append(
            ComparisonRow(
                f"{rebuilds_per_1000} rebuilds/1000 iters: overhead", None, overhead
            )
        )
    print_comparison("E13 — assignment-table rebuild overhead", rows)

    # 3 rebuilds per 1000 iterations (the paper's rate): < 0.1% overhead.
    assert 3 * upload / (1000 * iter_time) < 1e-3
    # Rebuilding EVERY iteration would be material (> 1%).
    assert 1000 * upload / (1000 * iter_time) > 1e-2


def test_e14_host_vs_device_accumulation(benchmark, bench_energy_model, print_comparison):
    """Flat pairs-list: serial accumulation on the host beats a serial
    single-thread accumulation on the device (slow global memory), as the
    paper found."""
    model = bench_energy_model
    p = model.n_active_pairs
    dev = Device()

    # Host path: PCIe transfer + host gather-adds.
    from repro.gpu.minimize_kernels import HOST_GATHER_ADD_S

    t_transfer = dev.cost_model.transfer_time(2 * p * 4)
    t_host = t_transfer + 2 * p * HOST_GATHER_ADD_S

    # Device path: one thread doing 2P dependent global-memory reads+adds.
    t_device = 2 * p * dev.spec.uncoalesced_access_ns * 1e-9 * dev.spec.num_sms
    # (a single thread cannot pipeline across SMs; scale the per-access
    # cost up by the lost parallelism)

    # Real measurement: the host accumulation itself.
    from repro.minimize.pairslist import PairsList

    i, j = model.active_pairs()
    pl = PairsList(atom1=i, atom2=j, energy1=np.ones(p), energy2=np.ones(p))
    benchmark(pl.accumulate_serial, model.molecule.n_atoms)

    rows = [
        ComparisonRow("host accumulate (ms, model)", None, t_host * 1e3),
        ComparisonRow("device 1-thread accumulate (ms, model)", None, t_device * 1e3),
        ComparisonRow("host/device ratio", None, t_host / t_device),
    ]
    print_comparison("E14 — host vs device serial accumulation", rows)
    assert t_host < t_device


def test_e15_desolvation_term_sweep(benchmark, bench_receptor_grids, bench_ligand_grids, print_comparison):
    """Docking cost vs desolvation-term count: 4 -> 18 terms grows the
    channel count 8 -> 22 and the correlation cost proportionally."""
    from repro.gpu.pipeline import GpuFTMapPipeline

    # Real numerics at one channel count.
    from repro.docking.direct import DirectCorrelationEngine

    benchmark(
        DirectCorrelationEngine().correlate, bench_receptor_grids, bench_ligand_grids
    )

    rows = []
    fixed_batch = {}
    auto_batch = {}
    for k in (4, 8, 12, 18):
        pipe = GpuFTMapPipeline(Device(), channels=4 + k, desolvation_terms=k)
        fixed_batch[k] = pipe.docking_times(batch=8).correlation_s
        auto_batch[k] = GpuFTMapPipeline(
            Device(), channels=4 + k, desolvation_terms=k
        ).docking_times().correlation_s
        rows.append(
            ComparisonRow(
                f"K={k} ({4 + k} ch): corr ms (batch=8 / auto)",
                None,
                fixed_batch[k] * 1e3,
            )
        )
        rows.append(ComparisonRow(f"K={k} auto-batch corr ms", None, auto_batch[k] * 1e3))
    print_comparison("E15 — desolvation term sweep", rows)

    # At fixed batch, cost is linear in the channel count ...
    assert fixed_batch[18] / fixed_batch[4] == pytest.approx(22 / 8, rel=0.15)
    # ... and auto-batching rewards fewer terms even more (bigger batches
    # fit constant memory), so the auto ratio exceeds the linear one.
    assert auto_batch[18] / auto_batch[4] > fixed_batch[18] / fixed_batch[4]


def test_e16_grid_size_scaling(benchmark, bench_receptor_grids, bench_ligand_grids, print_comparison):
    """Receptor grid sweep: serial FFT ~ N^3 log N^3; GPU direct ~ T^3."""
    from repro.docking.fft import FFTCorrelationEngine
    from repro.gpu.pipeline import GpuFTMapPipeline

    benchmark(
        FFTCorrelationEngine().correlate, bench_receptor_grids, bench_ligand_grids
    )

    rows = []
    serial = {}
    gpu = {}
    for n in (64, 96, 128, 160):
        pipe = GpuFTMapPipeline(Device(), receptor_grid=n)
        serial[n] = pipe.serial_docking_times().correlation_s
        gpu[n] = pipe.docking_times().correlation_s
        rows.append(
            ComparisonRow(
                f"N={n}: serial/GPU correlation", None, serial[n] / gpu[n], "x"
            )
        )
    print_comparison("E16 — receptor grid scaling", rows)

    expected = (160**3 * np.log2(160.0**3)) / (64**3 * np.log2(64.0**3))
    assert serial[160] / serial[64] == pytest.approx(expected, rel=0.1)
    t160 = (160 - 4 + 1) ** 3
    t64 = (64 - 4 + 1) ** 3
    assert gpu[160] / gpu[64] == pytest.approx(t160 / t64, rel=0.25)


def test_e17_multi_gpu_scaling(benchmark, print_comparison):
    """Sec. VI future work: near-linear scaling across devices."""
    from repro.cuda.multigpu import scaling_curve

    curve = benchmark(scaling_curve, 8)

    rows = [
        ComparisonRow(f"{g} GPUs: speedup vs 1", float(g), curve[g], "x")
        for g in (1, 2, 4, 8)
    ]
    print_comparison("E17 — multi-GPU scaling (modeled)", rows)

    assert curve[2] > 1.8
    assert curve[4] > 3.4
    assert 6.0 < curve[8] < 8.0
