"""PipelineExecutor: ordering, serial equivalence, error propagation."""

import threading
import time

import pytest

from repro.util.parallel import PipelineExecutor, pipeline_map


def add1(x):
    return x + 1


def double(x):
    return x * 2


class TestPipelineExecutor:
    def test_matches_serial_composition(self):
        items = list(range(20))
        expected = [double(add1(x)) for x in items]
        assert pipeline_map([add1, double], items) == expected
        assert pipeline_map([add1, double], items, mode="serial") == expected

    def test_order_preserved_under_uneven_stage_times(self):
        def slow_on_evens(x):
            if x % 2 == 0:
                time.sleep(0.01)
            return x
        items = list(range(10))
        assert pipeline_map([slow_on_evens, add1], items) == [
            x + 1 for x in items
        ]

    def test_three_stages(self):
        items = list(range(8))
        got = pipeline_map([add1, double, str], items)
        assert got == [str((x + 1) * 2) for x in items]

    def test_single_item_and_empty(self):
        assert pipeline_map([add1, double], [3]) == [8]
        assert pipeline_map([add1, double], []) == []

    def test_stages_overlap_across_items(self):
        """While stage 2 works on item k, stage 1 must be free to start
        item k+1 — the defining property of the pipeline."""
        in_stage1 = threading.Event()
        stage2_blocked = threading.Event()
        release = threading.Event()
        overlap_seen = []

        def stage1(x):
            if x == 1:
                in_stage1.set()
            return x

        def stage2(x):
            if x == 0:
                stage2_blocked.set()
                # Wait (bounded) for stage 1 to reach the *next* item.
                overlap_seen.append(in_stage1.wait(timeout=5.0))
                release.set()
            return x

        out = pipeline_map([stage1, stage2], [0, 1, 2])
        assert out == [0, 1, 2]
        assert stage2_blocked.is_set() and release.is_set()
        assert overlap_seen == [True]

    def test_earliest_item_error_wins(self):
        def boom_on(x):
            if x in (2, 5):
                raise ValueError(f"item {x}")
            return x

        with pytest.raises(ValueError, match="item 2"):
            pipeline_map([boom_on, add1], list(range(8)))

    def test_error_skips_later_stages_for_that_item_only(self):
        seen = []

        def flaky(x):
            if x == 1:
                raise RuntimeError("nope")
            return x

        def record(x):
            seen.append(x)
            return x

        with pytest.raises(RuntimeError, match="nope"):
            pipeline_map([flaky, record], [0, 1, 2])
        # Items 0 and 2 still flowed through stage 2; 1 was skipped.
        assert sorted(seen) == [0, 2]

    def test_validation(self):
        with pytest.raises(ValueError, match="at least one stage"):
            PipelineExecutor([])
        with pytest.raises(ValueError, match="unknown pipeline mode"):
            PipelineExecutor([add1], mode="process")
        with pytest.raises(ValueError, match="queue_size"):
            PipelineExecutor([add1], queue_size=0)
