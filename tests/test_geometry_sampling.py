"""Tests for SO(3) rotation-set sampling."""

import numpy as np
import pytest

from repro.geometry.rotations import is_rotation_matrix, rotation_angle_between
from repro.geometry.sampling import (
    rotation_set,
    super_fibonacci_rotations,
    uniform_euler_rotations,
)


class TestSuperFibonacci:
    def test_counts(self):
        for n in (1, 7, 64, 500):
            assert super_fibonacci_rotations(n).shape == (n, 3, 3)

    def test_all_valid_rotations(self):
        for R in super_fibonacci_rotations(100):
            assert is_rotation_matrix(R, atol=1e-8)

    def test_deterministic(self):
        a = super_fibonacci_rotations(32)
        b = super_fibonacci_rotations(32)
        assert np.array_equal(a, b)

    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            super_fibonacci_rotations(0)

    def test_spread_is_quasi_uniform(self):
        """Nearest-neighbor geodesic distances should be tightly clustered
        (low-discrepancy), unlike i.i.d. random sampling."""
        mats = super_fibonacci_rotations(200)
        nn = []
        for i in range(0, 200, 10):
            dists = [
                rotation_angle_between(mats[i], mats[j]) for j in range(200) if j != i
            ]
            nn.append(min(dists))
        nn = np.array(nn)
        assert nn.min() > 0.05          # no near-duplicates
        assert nn.max() / nn.min() < 4  # tight spread

    def test_500_covers_so3(self):
        """FTMap's 500-rotation set: any random orientation should be within
        a coarse angular step of some sample."""
        rng = np.random.default_rng(5)
        mats = super_fibonacci_rotations(500)
        from repro.geometry.rotations import random_rotation_matrix

        for _ in range(10):
            target = random_rotation_matrix(rng)
            best = min(rotation_angle_between(target, m) for m in mats)
            assert best < np.deg2rad(40)  # coarse-granularity coverage


class TestEulerGrid:
    def test_counts(self):
        assert uniform_euler_rotations(4, 3, 2).shape == (24, 3, 3)

    def test_all_valid(self):
        for R in uniform_euler_rotations(3, 3, 3):
            assert is_rotation_matrix(R, atol=1e-9)

    def test_rejects_zero_steps(self):
        with pytest.raises(ValueError):
            uniform_euler_rotations(0, 3, 3)


class TestRotationSet:
    def test_default_scheme(self):
        assert rotation_set(50).shape == (50, 3, 3)

    def test_euler_scheme(self):
        mats = rotation_set(27, scheme="euler")
        assert len(mats) == 27

    def test_unknown_scheme(self):
        with pytest.raises(ValueError):
            rotation_set(10, scheme="nope")
