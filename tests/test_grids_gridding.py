"""Tests for grid geometry and voxelization."""

import numpy as np
import pytest

from repro.grids.gridding import GridSpec, surface_layer_mask, voxelize_molecule
from repro.structure.molecule import Molecule


def point_molecule(coords):
    return Molecule(np.asarray(coords, dtype=float), ["CT"] * len(coords))


class TestGridSpec:
    def test_shape_extent(self):
        g = GridSpec(n=8, spacing=0.5)
        assert g.shape == (8, 8, 8)
        assert g.extent == pytest.approx(4.0)

    def test_invalid(self):
        with pytest.raises(ValueError):
            GridSpec(n=0)
        with pytest.raises(ValueError):
            GridSpec(n=4, spacing=0.0)
        with pytest.raises(ValueError):
            GridSpec(n=4, origin=(0.0, 0.0))

    def test_world_voxel_round_trip(self):
        g = GridSpec(n=16, spacing=0.8, origin=(1.0, -2.0, 3.0))
        pts = np.array([[1.0, -2.0, 3.0], [2.6, 0.4, 5.4]])
        assert np.allclose(g.voxel_to_world(g.world_to_voxel(pts)), pts)

    def test_centered_on(self):
        m = point_molecule([[5.0, 5.0, 5.0]])
        g = GridSpec.centered_on(m, n=9, spacing=1.0)
        # Molecule center maps to the central voxel (4, 4, 4).
        assert np.allclose(g.world_to_voxel(m.center()), [4, 4, 4])

    def test_contains(self):
        g = GridSpec(n=4, spacing=1.0)
        pts = np.array([[0.0, 0, 0], [3.0, 3, 3], [4.2, 0, 0], [-0.4, 0, 0]])
        assert g.contains(pts).tolist() == [True, True, False, True]


class TestVoxelize:
    def test_nearest_deposits_unit_weight(self):
        m = point_molecule([[1.0, 1.0, 1.0]])
        g = GridSpec(n=4, spacing=1.0)
        grid = voxelize_molecule(m, g)
        assert grid.sum() == pytest.approx(1.0)
        assert grid[1, 1, 1] == pytest.approx(1.0)

    def test_custom_weights(self):
        m = point_molecule([[0.0, 0, 0], [1.0, 0, 0]])
        g = GridSpec(n=4, spacing=1.0)
        grid = voxelize_molecule(m, g, weights=np.array([2.0, -1.0]))
        assert grid[0, 0, 0] == pytest.approx(2.0)
        assert grid[1, 0, 0] == pytest.approx(-1.0)

    def test_weights_shape_checked(self):
        m = point_molecule([[0.0, 0, 0]])
        g = GridSpec(n=4)
        with pytest.raises(ValueError):
            voxelize_molecule(m, g, weights=np.ones(3))

    def test_outside_atoms_dropped(self):
        m = point_molecule([[100.0, 0, 0]])
        g = GridSpec(n=4)
        assert voxelize_molecule(m, g).sum() == 0.0

    def test_trilinear_conserves_mass(self):
        m = point_molecule([[1.3, 1.7, 0.2]])
        g = GridSpec(n=6, spacing=1.0)
        grid = voxelize_molecule(m, g, mode="trilinear")
        assert grid.sum() == pytest.approx(1.0, abs=1e-12)

    def test_trilinear_on_lattice_matches_nearest(self):
        m = point_molecule([[2.0, 3.0, 1.0]])
        g = GridSpec(n=6)
        a = voxelize_molecule(m, g, mode="nearest")
        b = voxelize_molecule(m, g, mode="trilinear")
        assert np.allclose(a, b)

    def test_unknown_mode(self):
        m = point_molecule([[0.0, 0, 0]])
        with pytest.raises(ValueError):
            voxelize_molecule(m, GridSpec(n=4), mode="cubic")

    def test_accumulates_coincident_atoms(self):
        m = point_molecule([[1.0, 1, 1], [1.2, 1, 1]])
        g = GridSpec(n=4)
        assert voxelize_molecule(m, g)[1, 1, 1] == pytest.approx(2.0)


class TestSurfaceLayer:
    def test_solid_cube_surface(self):
        occ = np.zeros((5, 5, 5))
        occ[1:4, 1:4, 1:4] = 1.0
        surf = surface_layer_mask(occ)
        assert surf[1, 1, 1]            # corner of the cube is surface
        assert not surf[2, 2, 2]        # center is core
        assert surf.sum() == 26         # 3^3 - 1 interior voxel

    def test_single_voxel_is_surface(self):
        occ = np.zeros((3, 3, 3))
        occ[1, 1, 1] = 1.0
        assert surface_layer_mask(occ)[1, 1, 1]

    def test_empty_grid(self):
        assert surface_layer_mask(np.zeros((4, 4, 4))).sum() == 0

    def test_grid_boundary_counts_as_empty(self):
        occ = np.ones((3, 3, 3))
        surf = surface_layer_mask(occ)
        assert surf[0, 0, 0]
        assert not surf[1, 1, 1]
