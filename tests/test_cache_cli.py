"""``python -m repro.cache prune``: the fleet cache-maintenance CLI."""

import json
import os
import subprocess
import sys
import time

import pytest

from repro.cache.cli import main
from repro.cache.store import MISS, DiskStore


def _aged_put(store, key, value, age_s):
    store.put(key, value, codec="pickle")
    old = time.time() - age_s
    os.utime(store._path(key), (old, old))


class TestPruneCommand:
    def test_ttl_prune_prints_json_stats(self, tmp_path, capsys):
        store = DiskStore(tmp_path)
        _aged_put(store, "ns/old", {"v": 1}, age_s=2 * 3600)
        store.put("ns/new", {"v": 2}, codec="pickle")
        rc = main(["prune", "--ttl", "1", str(tmp_path)])
        assert rc == 0
        stats = json.loads(capsys.readouterr().out)
        assert stats["scanned"] == 2
        assert stats["removed"] == 1
        assert stats["remaining"] == 1
        assert store.get("ns/old") is MISS
        assert store.get("ns/new") == {"v": 2}

    def test_max_bytes_prune_evicts_oldest(self, tmp_path, capsys):
        store = DiskStore(tmp_path)
        payload = {"blob": list(range(400))}
        _aged_put(store, "ns/oldest", payload, age_s=300)
        _aged_put(store, "ns/newest", payload, age_s=100)
        budget = store.total_bytes() // 2
        rc = main(["prune", "--max-bytes", str(budget), str(tmp_path)])
        assert rc == 0
        stats = json.loads(capsys.readouterr().out)
        assert stats["removed"] == 1
        assert store.get("ns/oldest") is MISS
        assert store.get("ns/newest") is not MISS

    def test_prune_without_criteria_is_an_error(self, tmp_path):
        with pytest.raises(SystemExit) as err:
            main(["prune", str(tmp_path)])
        assert err.value.code == 2

    def test_negative_ttl_rejected(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["prune", "--ttl", "-1", str(tmp_path)])

    def test_negative_max_bytes_rejected(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["prune", "--max-bytes", "-5", str(tmp_path)])

    def test_missing_subcommand_is_an_error(self):
        with pytest.raises(SystemExit):
            main([])

    def test_prune_of_empty_directory_reports_zeroes(self, tmp_path, capsys):
        rc = main(["prune", "--ttl", "1", str(tmp_path)])
        assert rc == 0
        stats = json.loads(capsys.readouterr().out)
        assert stats == {
            "scanned": 0, "removed": 0, "freed_bytes": 0,
            "remaining": 0, "remaining_bytes": 0,
            "removed_tmp": 0, "removed_locks": 0,
        }


class TestModuleEntrypoint:
    def test_python_dash_m_invocation(self, tmp_path):
        """The cron-job shape: a real subprocess through ``__main__``."""
        store = DiskStore(tmp_path)
        _aged_put(store, "ns/old", {"v": 1}, age_s=2 * 3600)
        env = dict(os.environ)
        src = os.path.join(os.path.dirname(__file__), "..", "src")
        env["PYTHONPATH"] = os.path.abspath(src)
        proc = subprocess.run(
            [
                sys.executable, "-m", "repro.cache",
                "prune", "--ttl", "1", str(tmp_path),
            ],
            capture_output=True, text=True, env=env, timeout=120,
        )
        assert proc.returncode == 0, proc.stderr
        stats = json.loads(proc.stdout)
        assert stats["removed"] == 1
        assert store.get("ns/old") is MISS
