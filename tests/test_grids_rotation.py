"""Tests for per-rotation ligand re-gridding."""

import numpy as np
import pytest

from repro.geometry.rotations import rotation_matrix_axis_angle
from repro.grids.rotation import ligand_grid_spec, rotate_and_grid_ligand
from repro.structure.probes import build_probe


class TestLigandGridSpec:
    def test_origin_centered(self, ethanol):
        spec = ligand_grid_spec(ethanol, n=4, spacing=1.25)
        half = (4 - 1) * 1.25 / 2
        assert spec.origin == (-half, -half, -half)

    def test_too_small_grid_rejected(self, benzene):
        with pytest.raises(ValueError, match="does not fit"):
            ligand_grid_spec(benzene, n=2, spacing=0.5)

    def test_paper_probe_sizes(self):
        """All 16 probes fit a 4^3 grid at 1.25 A spacing (Sec. III.A)."""
        from repro.structure.probes import FTMAP_PROBE_NAMES

        for name in FTMAP_PROBE_NAMES:
            ligand_grid_spec(build_probe(name), n=4, spacing=1.25)  # no raise


class TestRotateAndGrid:
    def test_identity_rotation(self, ethanol):
        spec = ligand_grid_spec(ethanol, n=4, spacing=1.25)
        g = rotate_and_grid_ligand(ethanol, np.eye(3), spec)
        assert g.channels[0].sum() > 0

    def test_occupancy_count_rotation_invariant(self, ethanol):
        """Total deposited occupancy equals the atom count (when no two
        atoms share a voxel), for any rotation."""
        spec = ligand_grid_spec(ethanol, n=6, spacing=1.0)
        for angle in (0.0, 0.4, 1.1, 2.2):
            R = rotation_matrix_axis_angle(np.array([1.0, 0.7, -0.2]), angle)
            g = rotate_and_grid_ligand(ethanol, R, spec)
            # occupancy channel is binarized; with 1 A spacing ethanol's 3
            # heavy atoms land in distinct voxels
            assert g.channels[0].sum() == pytest.approx(3.0)

    def test_rotation_changes_grid(self, benzene):
        spec = ligand_grid_spec(benzene, n=6, spacing=1.0)
        a = rotate_and_grid_ligand(benzene, np.eye(3), spec)
        R = rotation_matrix_axis_angle(np.array([1.0, 0, 0]), np.pi / 2)
        b = rotate_and_grid_ligand(benzene, R, spec)
        assert not np.allclose(a.channels[0], b.channels[0])

    def test_centering_applied(self, ethanol):
        """Even a translated copy of the probe grids identically (the probe
        is centered before rotation)."""
        spec = ligand_grid_spec(ethanol, n=4, spacing=1.25)
        moved = ethanol.with_coords(ethanol.coords + 7.0)
        a = rotate_and_grid_ligand(ethanol, np.eye(3), spec)
        b = rotate_and_grid_ligand(moved, np.eye(3), spec)
        assert np.allclose(a.channels, b.channels)
